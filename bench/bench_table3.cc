// Table 3 of the paper: transformation counts when compiling the Coreutils
// suite with different options.
//
// Paper (Coreutils 6.10 under LLVM):
//   # functions inlined : 0 / 7,746 / 16,505
//   # loops unswitched  : 0 /   377 /  3,022
//   # loops unrolled    : 0 / 1,615 /  3,299
//   # branches converted: 0 /   959 /  5,405
//
// The suite here is the MiniC workload corpus (plus the linked libc, which
// -OVERIFY always inlines); the reproduced result is the shape — zero at
// -O0 and a large jump from -O3 to -OSYMBEX on every row.
#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using namespace overify;
using namespace overify::bench;

int main() {
  struct LevelTotals {
    int64_t inlined = 0;
    int64_t unswitched = 0;
    int64_t unrolled = 0;
    int64_t converted = 0;
    double compile_seconds = 0;
  };

  const OptLevel kLevels[] = {OptLevel::kO0, OptLevel::kO3, OptLevel::kOverify};
  LevelTotals totals[3];

  for (const Workload& workload : CoreutilsSuite()) {
    for (int i = 0; i < 3; ++i) {
      Compiler compiler;
      // All three levels compile against the same (standard) libc so the
      // counts isolate the cost-model difference, as in the paper; the
      // library-flavor effect is measured separately by bench_ablation.
      PipelineOptions options = PipelineOptions::For(kLevels[i]);
      options.use_verify_libc = false;
      CompileResult compiled =
          compiler.CompileWithOptions(workload.source, options, workload.name);
      if (!compiled.ok) {
        std::fprintf(stderr, "%s failed at %s:\n%s\n", workload.name.c_str(),
                     OptLevelName(kLevels[i]), compiled.errors.c_str());
        return 1;
      }
      auto stat = [&](const char* name) {
        auto it = compiled.pass_stats.find(name);
        return it == compiled.pass_stats.end() ? int64_t{0} : it->second;
      };
      totals[i].inlined += stat("inline.functions_inlined");
      totals[i].unswitched += stat("unswitch.loops_unswitched");
      totals[i].unrolled += stat("unroll.loops_unrolled");
      totals[i].converted += stat("ifconvert.branches_converted");
      totals[i].compile_seconds += compiled.compile_seconds;
    }
  }

  std::printf("Table 3: compiling the %zu-program workload suite with different options\n\n",
              CoreutilsSuite().size());
  TextTable table({"Optimization", "-O0", "-O3", "-OSYMBEX (-OVERIFY)", "paper -O0/-O3/-OSYMBEX"});
  auto row = [&](const char* name, auto get, const char* paper) {
    table.AddRow({name, FormatCount(static_cast<uint64_t>(get(totals[0]))),
                  FormatCount(static_cast<uint64_t>(get(totals[1]))),
                  FormatCount(static_cast<uint64_t>(get(totals[2]))), paper});
  };
  row("# functions inlined", [](const LevelTotals& t) { return t.inlined; },
      "0 / 7,746 / 16,505");
  row("# loops unswitched", [](const LevelTotals& t) { return t.unswitched; },
      "0 / 377 / 3,022");
  row("# loops unrolled", [](const LevelTotals& t) { return t.unrolled; },
      "0 / 1,615 / 3,299");
  row("# branches converted", [](const LevelTotals& t) { return t.converted; },
      "0 / 959 / 5,405");
  std::printf("%s\n", table.ToString().c_str());

  std::printf("total compile time: %.0f ms (-O0), %.0f ms (-O3), %.0f ms (-OVERIFY)\n",
              totals[0].compile_seconds * 1e3, totals[1].compile_seconds * 1e3,
              totals[2].compile_seconds * 1e3);
  return 0;
}
