// Figure 4 of the paper: per-experiment compile+analysis time for the
// Coreutils suite at -O0 / -O3 / -OSYMBEX.
//
// The paper runs 93 experiments (93 programs, 2-10 symbolic input bytes,
// one-hour KLEE budget each) and plots, per experiment, the time of the
// faster of {-O3, -OVERIFY} (yellow) plus the time the slower one loses
// (red when -O3 wins, blue when -OVERIFY wins). Headline numbers: -OSYMBEX
// cuts compile+analysis time 58% on average vs -O3 (63% vs -O0), wins up to
// 95x, and completes 6 experiments that time out at -O3 (11 at -O0).
//
// Here: the same 93-experiment structure (each workload at two input sizes,
// plus larger sizes for the first seven) with a scaled per-run budget. Rows
// are sorted like the figure: -O3-wins experiments on the left, biggest
// -OVERIFY gains on the right.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using namespace overify;
using namespace overify::bench;

namespace {

struct Experiment {
  std::string label;
  double time_o0 = 0;
  double time_o3 = 0;
  double time_overify = 0;
  bool o0_timeout = false;
  bool o3_timeout = false;
  bool overify_timeout = false;
};

// One compile+analyze run; returns seconds and sets `timeout` when the
// exploration hit a limit before exhausting the program.
double RunOne(const Workload& workload, OptLevel level, unsigned bytes, bool* timeout) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(workload.source, level, workload.name);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failure: %s at %s\n", workload.name.c_str(),
                 OptLevelName(level));
    std::exit(1);
  }
  SymexLimits limits;
  limits.max_paths = 60000;
  limits.max_seconds = 0.8;  // scaled stand-in for the paper's 1-hour budget
  SymexResult result = Analyze(compiled, "umain", bytes, limits);
  *timeout = !result.exhausted;
  return compiled.compile_seconds + result.wall_seconds;
}

}  // namespace

int main() {
  const auto& suite = CoreutilsSuite();

  // 93 experiments: every workload at 2 sizes, the first seven at a third.
  std::vector<std::pair<const Workload*, unsigned>> plan;
  for (const Workload& workload : suite) {
    plan.push_back({&workload, 3});
    plan.push_back({&workload, workload.default_sym_bytes + 2});
  }
  for (size_t i = 0; i < 7 && plan.size() < 93; ++i) {
    plan.push_back({&suite[i], suite[i].default_sym_bytes + 4});
  }

  std::vector<Experiment> experiments;
  for (auto& [workload, bytes] : plan) {
    Experiment e;
    e.label = workload->name + "/" + std::to_string(bytes);
    e.time_o0 = RunOne(*workload, OptLevel::kO0, bytes, &e.o0_timeout);
    e.time_o3 = RunOne(*workload, OptLevel::kO3, bytes, &e.o3_timeout);
    e.time_overify = RunOne(*workload, OptLevel::kOverify, bytes, &e.overify_timeout);
    experiments.push_back(std::move(e));
  }

  // Keep experiments where at least one configuration finished (the paper
  // keeps those finishing within an hour on at least one version).
  std::vector<Experiment> kept;
  for (const Experiment& e : experiments) {
    if (!e.o0_timeout || !e.o3_timeout || !e.overify_timeout) {
      kept.push_back(e);
    }
  }

  // Sort like Figure 4: by (time_overify - time_o3), so -O3 wins (red) on
  // the left and the biggest -OVERIFY gains (blue) on the right.
  std::sort(kept.begin(), kept.end(), [](const Experiment& a, const Experiment& b) {
    return (a.time_o3 - a.time_overify) < (b.time_o3 - b.time_overify);
  });

  std::printf("Figure 4: compile+analysis time per experiment (%zu experiments kept of %zu)\n",
              kept.size(), experiments.size());
  std::printf("bars: yellow = faster of the two, blue = -OVERIFY gain, red = -O3 gain\n\n");

  TextTable table({"experiment", "t(-O0) ms", "t(-O3) ms", "t(-OVERIFY) ms", "winner",
                   "factor", "bar"});
  double total_o0 = 0;
  double total_o3 = 0;
  double total_overify = 0;
  double max_factor = 1;
  std::string max_factor_label;
  int o3_timeouts_recovered = 0;
  int o0_timeouts_recovered = 0;

  for (const Experiment& e : kept) {
    total_o0 += e.time_o0;
    total_o3 += e.time_o3;
    total_overify += e.time_overify;
    bool overify_wins = e.time_overify <= e.time_o3;
    double factor = overify_wins ? (e.time_overify > 0 ? e.time_o3 / e.time_overify : 1.0)
                                 : (e.time_o3 > 0 ? e.time_overify / e.time_o3 : 1.0);
    if (overify_wins && factor > max_factor && !e.overify_timeout) {
      max_factor = factor;
      max_factor_label = e.label;
    }
    if (e.o3_timeout && !e.overify_timeout) {
      ++o3_timeouts_recovered;
    }
    if (e.o0_timeout && !e.overify_timeout) {
      ++o0_timeouts_recovered;
    }

    // ASCII rendering of the stacked bar (log-ish scale).
    double fast = std::min(e.time_o3, e.time_overify);
    double slow = std::max(e.time_o3, e.time_overify);
    auto bar_len = [](double seconds) {
      return static_cast<int>(std::min(24.0, seconds * 40.0));
    };
    std::string bar(bar_len(fast), '#');                       // yellow
    bar += std::string(bar_len(slow) - bar_len(fast), overify_wins ? '+' : '-');
    table.AddRow({e.label, FormatMillis(e.time_o0) + (e.o0_timeout ? "*" : ""),
                  FormatMillis(e.time_o3) + (e.o3_timeout ? "*" : ""),
                  FormatMillis(e.time_overify) + (e.overify_timeout ? "*" : ""),
                  overify_wins ? "-OVERIFY" : "-O3",
                  StrFormat("%.1fx", factor), bar});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(* = hit the exploration budget before exhausting the program)\n\n");

  double avg_reduction_o3 = total_o3 > 0 ? (1.0 - total_overify / total_o3) * 100.0 : 0;
  double avg_reduction_o0 = total_o0 > 0 ? (1.0 - total_overify / total_o0) * 100.0 : 0;
  std::printf("summary:\n");
  std::printf("  total compile+analysis: %.0f ms (-O0), %.0f ms (-O3), %.0f ms (-OVERIFY)\n",
              total_o0 * 1e3, total_o3 * 1e3, total_overify * 1e3);
  std::printf("  -OVERIFY reduces total time by %.0f%% vs -O3 and %.0f%% vs -O0\n",
              avg_reduction_o3, avg_reduction_o0);
  std::printf("  largest single-experiment win: %.0fx (%s)\n", max_factor,
              max_factor_label.c_str());
  std::printf("  budget-exhausted runs completed by -OVERIFY: %d (vs -O3), %d (vs -O0)\n",
              o3_timeouts_recovered, o0_timeouts_recovered);
  std::printf("  paper: 58%% avg reduction vs -O3, 63%% vs -O0, max 95x, 6 / 11 timeouts recovered\n");
  return 0;
}
