// Microbenchmarks of the engine's building blocks (google-benchmark):
// expression interning, solver queries through the chain, pipeline
// compilation throughput, concrete interpretation, and full exploration.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/cache/persist.h"
#include "src/symex/solver.h"
#include "src/workloads/textgen.h"
#include "src/workloads/workloads.h"

using namespace overify;
using namespace overify::bench;

namespace {

void BM_ExprInterning(benchmark::State& state) {
  for (auto _ : state) {
    ExprContext ctx;
    const Expr* acc = ctx.Constant(0, 32);
    for (unsigned i = 0; i < 64; ++i) {
      const Expr* sym = ctx.ZExt(ctx.Symbol(i % 8), 32);
      acc = ctx.Binary(ExprKind::kAdd, acc,
                       ctx.Binary(ExprKind::kMul, sym, ctx.Constant(i + 1, 32)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ExprInterning);

// Attaches the solver chain's fast-path counters to a benchmark's output so
// runs double as an observability check on the new hot paths.
// The preprocessing/prefix-cache effectiveness counters recorded in the
// BENCH_symex.json snapshot (run_benches.sh picks these up by name).
void ReportPreprocessStats(benchmark::State& state, const SolverStats& stats) {
  state.counters["presolve_shortcuts"] = static_cast<double>(stats.presolve_shortcuts);
  state.counters["prefix_subset_hits"] = static_cast<double>(stats.prefix_subset_hits);
  state.counters["prefix_superset_hits"] = static_cast<double>(stats.prefix_superset_hits);
  state.counters["prefix_model_hits"] = static_cast<double>(stats.prefix_model_hits);
  state.counters["preprocess_bindings"] = static_cast<double>(stats.preprocess_bindings);
  state.counters["preprocess_tautologies"] =
      static_cast<double>(stats.preprocess_tautologies);
}

// The learning core's search counters (docs/solver.md). Single-threaded
// exhaustive runs make every one of these deterministic, so run_benches.sh
// --check gates them exactly alongside `paths`.
void ReportCoreSearchStats(benchmark::State& state, const SolverStats& stats) {
  state.counters["core_candidates"] = static_cast<double>(stats.core_candidates);
  state.counters["core_conflicts"] = static_cast<double>(stats.core_conflicts);
  state.counters["core_learned"] = static_cast<double>(stats.core_learned);
  state.counters["core_backjumps"] = static_cast<double>(stats.core_backjumps);
  state.counters["core_restarts"] = static_cast<double>(stats.core_restarts);
}

void ReportSolverStats(benchmark::State& state, const SolverStats& stats) {
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["reuse_hits"] = static_cast<double>(stats.reuse_hits);
  state.counters["eval_memo_hits"] = static_cast<double>(stats.eval_memo_hits);
  state.counters["interval_memo_hits"] = static_cast<double>(stats.interval_memo_hits);
  state.counters["independence_drops"] = static_cast<double>(stats.independence_drops);
  state.counters["cex_evictions"] = static_cast<double>(stats.cex_evictions);
  ReportPreprocessStats(state, stats);
}

// Macro-run latency/effectiveness summary from the run's metrics registry
// (docs/observability.md): solver-query percentiles from the merged
// latency histogram, plus the combined cache hit rate (counterexample
// cache + prefix-trie subset/superset/model hits + model reuse over all
// queries). Informational in BENCH_symex.json — timings vary run to run,
// so `--check` never gates on them.
void ReportLatencyStats(benchmark::State& state, const SymexResult& result) {
  const LatencyHistogram& h = result.metrics.hist(Hist::kSolverQueryNs);
  state.counters["solver_p50_ns"] = static_cast<double>(h.P50());
  state.counters["solver_p95_ns"] = static_cast<double>(h.P95());
  const MetricsShard& m = result.metrics;
  double hits = static_cast<double>(
      m.Get(Counter::kSolverCacheHits) + m.Get(Counter::kPrefixSubsetHits) +
      m.Get(Counter::kPrefixSupersetHits) + m.Get(Counter::kPrefixModelHits) +
      m.Get(Counter::kSolverReuseHits));
  double queries = static_cast<double>(m.Get(Counter::kSolverQueries));
  state.counters["cache_hit_rate"] = queries > 0 ? hits / queries : 0.0;
}

void BM_SolverSingleByteQuery(benchmark::State& state) {
  ExprContext ctx;
  SolverChain chain(ctx);
  std::vector<const Expr*> path = {
      ctx.Compare(ICmpPredicate::kUGT, ctx.Symbol(0), ctx.Constant(10, 8))};
  int round = 0;
  for (auto _ : state) {
    // Vary the constant so the counterexample cache cannot shortcut.
    const Expr* cond = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0),
                                   ctx.Constant(11 + (round++ % 200), 8));
    benchmark::DoNotOptimize(chain.MayBeTrue(path, cond, nullptr));
  }
  ReportSolverStats(state, chain.stats());
}
BENCHMARK(BM_SolverSingleByteQuery);

void BM_FilterIndependent(benchmark::State& state) {
  // 32 path constraints over disjoint symbol pairs; the seed reaches only
  // one chain of them. The fixpoint is pure bitmask arithmetic.
  ExprContext ctx;
  std::vector<const Expr*> path;
  for (unsigned i = 0; i < 32; ++i) {
    path.push_back(ctx.Compare(ICmpPredicate::kULT, ctx.Symbol(2 * (i % 30)),
                               ctx.Symbol(2 * (i % 30) + 1)));
  }
  const Expr* seed = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0), ctx.Constant(7, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilterIndependent(path, seed));
  }
}
BENCHMARK(BM_FilterIndependent);

void BM_SolverMultiByteRelation(benchmark::State& state) {
  ExprContext ctx;
  int round = 0;
  for (auto _ : state) {
    CoreSolver core;
    const Expr* sum = ctx.Binary(
        ExprKind::kAdd, ctx.ZExt(ctx.Symbol(0), 32),
        ctx.Binary(ExprKind::kAdd, ctx.ZExt(ctx.Symbol(1), 32), ctx.ZExt(ctx.Symbol(2), 32)));
    const Expr* target =
        ctx.Compare(ICmpPredicate::kEq, sum, ctx.Constant(300 + (round++ % 50), 32));
    std::vector<uint8_t> model;
    benchmark::DoNotOptimize(core.CheckSat(ctx, {target}, &model));
  }
}
BENCHMARK(BM_SolverMultiByteRelation);

void BM_CompileWcAtOverify(benchmark::State& state) {
  for (auto _ : state) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kOverify);
    benchmark::DoNotOptimize(compiled.instruction_count);
  }
}
BENCHMARK(BM_CompileWcAtOverify);

void BM_InterpretWcText(benchmark::State& state) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kO3);
  TextGenOptions options;
  options.approx_words = 200;
  std::string text = GenerateText(options);
  for (auto _ : state) {
    Interpreter interp(*compiled.module);
    benchmark::DoNotOptimize(interp.Run("umain", text).return_value);
  }
}
BENCHMARK(BM_InterpretWcText);

void BM_ExploreWcAtOverify(benchmark::State& state) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kOverify);
  SymexLimits limits;
  limits.max_seconds = 30;
  SymexResult last;
  for (auto _ : state) {
    last = Analyze(compiled, "umain", 6, limits);
    benchmark::DoNotOptimize(last.paths_completed);
  }
  state.counters["paths"] = static_cast<double>(last.paths_completed);
  state.counters["solver_queries"] = static_cast<double>(last.solver.queries);
  state.counters["eval_memo_hits"] = static_cast<double>(last.solver.eval_memo_hits);
  state.counters["independence_drops"] = static_cast<double>(last.solver.independence_drops);
  ReportCoreSearchStats(state, last.solver);
  ReportPreprocessStats(state, last.solver);
  ReportLatencyStats(state, last);
}
BENCHMARK(BM_ExploreWcAtOverify);

void BM_ExploreWcAtO3(benchmark::State& state) {
  // The hardest engine workload in the suite: thousands of paths, heavy
  // forking (state clones) and solver traffic.
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kO3);
  SymexLimits limits;
  limits.max_seconds = 60;
  SymexResult last;
  for (auto _ : state) {
    last = Analyze(compiled, "umain", 6, limits);
    benchmark::DoNotOptimize(last.paths_completed);
  }
  state.counters["paths"] = static_cast<double>(last.paths_completed);
  state.counters["solver_queries"] = static_cast<double>(last.solver.queries);
  state.counters["eval_memo_hits"] = static_cast<double>(last.solver.eval_memo_hits);
  state.counters["independence_drops"] = static_cast<double>(last.solver.independence_drops);
  ReportCoreSearchStats(state, last.solver);
  ReportPreprocessStats(state, last.solver);
  ReportLatencyStats(state, last);
}
BENCHMARK(BM_ExploreWcAtO3);

// Warm-persisted exploration (docs/daemon.md): one cold run harvests its
// counterexample cache into a CacheStore, then every timed iteration
// replays the verification with the store attached — through a full byte
// round trip of the store per iteration, so each warm run consumes the
// serialized form exactly as a fresh process would. The headline counter is
// persist_rate = persist_hits / (persist_hits + core_queries): the fraction
// of would-be core searches the persisted entries answered. run_benches.sh
// --check gates it at >= 0.5 (a warm run must answer at least half its
// solver queries from the store; in practice it answers all of them).
void BM_ExploreWcWarmPersist(benchmark::State& state) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kOverify);
  SymexLimits limits;
  limits.max_seconds = 30;
  CacheStore store;
  SymexOptions cold_options;
  cold_options.cache_store = &store;
  SymexResult cold = Analyze(compiled, "umain", 6, limits, cold_options);
  if (!cold.ok || !cold.exhausted) {
    state.SkipWithError("cold harvest run did not exhaust");
    return;
  }
  const std::vector<uint8_t> bytes = store.Serialize();
  SymexResult last;
  for (auto _ : state) {
    CacheStore reloaded;
    reloaded.Deserialize(bytes);
    SymexOptions options;
    options.cache_store = &reloaded;
    last = Analyze(compiled, "umain", 6, limits, options);
    benchmark::DoNotOptimize(last.paths_completed);
  }
  const double hits = static_cast<double>(last.metrics.Get(Counter::kPersistHits));
  const double core_queries =
      static_cast<double>(last.metrics.Get(Counter::kSolverCoreQueries));
  state.counters["paths"] = static_cast<double>(last.paths_completed);
  state.counters["solver_queries"] = static_cast<double>(last.solver.queries);
  state.counters["persist_seeded"] =
      static_cast<double>(last.metrics.Get(Counter::kPersistSeeded));
  state.counters["persist_hits"] = hits;
  state.counters["persist_validations"] =
      static_cast<double>(last.metrics.Get(Counter::kPersistValidations));
  state.counters["persist_rejects"] =
      static_cast<double>(last.metrics.Get(Counter::kPersistRejects));
  state.counters["core_queries"] = core_queries;
  state.counters["persist_rate"] =
      hits + core_queries > 0 ? hits / (hits + core_queries) : 0.0;
}
BENCHMARK(BM_ExploreWcWarmPersist);

// Suite-scale macro benchmarks: the two widest workloads of the Coreutils
// suite (docs/workloads.md), explored at their full default symbolic width.
// cksum_wide's 72 bytes push constraint supports past symbol 64 (the
// SupportSet overflow vector) and pose one wide-support parity query per
// path; sum_block's 48-byte fork-free block stresses wide expression
// building instead of forking. Tracked in BENCH_symex.json like the engine
// microbenchmarks so suite-scale exploration cost cannot silently regress.
void RunExploreWorkload(benchmark::State& state, const char* name, OptLevel level,
                        bool slice = false) {
  const Workload* workload = FindWorkload(name);
  if (workload == nullptr) {
    state.SkipWithError(("unknown workload: " + std::string(name)).c_str());
    return;
  }
  Compiler compiler;
  CompileResult compiled = compiler.Compile(workload->source, level, workload->name);
  if (!compiled.ok) {
    state.SkipWithError((workload->name + " failed to compile: " + compiled.errors).c_str());
    return;
  }
  SymexLimits limits;
  limits.max_seconds = 60;
  SymexOptions options;
  options.slice_checks = slice;
  SymexResult last;
  for (auto _ : state) {
    last = Analyze(compiled, "umain", workload->default_sym_bytes, limits, options);
    benchmark::DoNotOptimize(last.paths_completed);
  }
  state.counters["paths"] = static_cast<double>(last.paths_completed);
  state.counters["solver_queries"] = static_cast<double>(last.solver.queries);
  state.counters["eval_memo_hits"] = static_cast<double>(last.solver.eval_memo_hits);
  state.counters["independence_drops"] = static_cast<double>(last.solver.independence_drops);
  if (slice) {
    // Slice-mode effectiveness (docs/slicing.md): deterministic, gated
    // exactly by run_benches.sh --check like paths and the core-search
    // counters. The --check gate additionally asserts slice-mode
    // solver_queries <= the whole-program variant's.
    const MetricsShard& m = last.metrics;
    state.counters["slice_checks_found"] =
        static_cast<double>(m.Get(Counter::kSliceChecksFound));
    state.counters["slices_built"] = static_cast<double>(m.Get(Counter::kSlicesBuilt));
    state.counters["slice_fallbacks"] = static_cast<double>(m.Get(Counter::kSliceFallbacks));
    const LatencyHistogram& ratio = m.hist(Hist::kSliceConeRatioPct);
    state.counters["slice_cone_pct_max"] = static_cast<double>(ratio.max_ns());
    state.counters["slice_cone_pct_mean"] =
        ratio.count() > 0 ? static_cast<double>(ratio.sum_ns()) /
                                static_cast<double>(ratio.count())
                          : 0.0;
  }
  ReportCoreSearchStats(state, last.solver);
  ReportPreprocessStats(state, last.solver);
  ReportLatencyStats(state, last);
}

void BM_ExploreCksumWideAtOverify(benchmark::State& state) {
  RunExploreWorkload(state, "cksum_wide", OptLevel::kOverify);
}
BENCHMARK(BM_ExploreCksumWideAtOverify);

void BM_ExploreSumBlockAtOverify(benchmark::State& state) {
  RunExploreWorkload(state, "sum_block", OptLevel::kOverify);
}
BENCHMARK(BM_ExploreSumBlockAtOverify);

// The slicing tentpole's macro benches (docs/slicing.md): the same wide
// workloads verified one slice per check. cksum_wide's checks merge into a
// single cone holding ~half the entry function, halving paths and solver
// queries against the whole-program bench above; sum_block's one check
// slices away the fork-free accumulation entirely and needs no solver
// queries at all.
void BM_ExploreCksumWideSliceAtOverify(benchmark::State& state) {
  RunExploreWorkload(state, "cksum_wide", OptLevel::kOverify, /*slice=*/true);
}
BENCHMARK(BM_ExploreCksumWideSliceAtOverify);

void BM_ExploreSumBlockSliceAtOverify(benchmark::State& state) {
  RunExploreWorkload(state, "sum_block", OptLevel::kOverify, /*slice=*/true);
}
BENCHMARK(BM_ExploreSumBlockSliceAtOverify);

void ReportStealStats(benchmark::State& state, const SymexResult& result) {
  state.counters["steals"] = static_cast<double>(result.steals);
  state.counters["steal_batches"] = static_cast<double>(result.steal_batches);
  state.counters["steal_reintern"] = static_cast<double>(result.steal_reintern);
}

void BM_ParallelExploreWc(benchmark::State& state) {
  // Thread scaling of the core-search workload (wc @ -O3) across the
  // scheduler's worker pool; run_benches.sh records the 1/2/4/8-worker
  // times as the thread_scaling section of BENCH_symex.json.
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kO3);
  SymexLimits limits;
  limits.max_seconds = 60;
  unsigned jobs = static_cast<unsigned>(state.range(0));
  SymexResult last;
  for (auto _ : state) {
    last = Analyze(compiled, "umain", 6, limits, jobs);
    benchmark::DoNotOptimize(last.paths_completed);
  }
  state.counters["paths"] = static_cast<double>(last.paths_completed);
  state.counters["workers"] = static_cast<double>(last.workers);
  ReportStealStats(state, last);
}
BENCHMARK(BM_ParallelExploreWc)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The steal-heavy variant: 4 workers fed from one root, so workers 1-3
// bootstrap (and keep re-balancing) entirely through the steal path. Run
// once with the default shared interner — batch steals, no re-intern;
// `steal_reintern` must report 0 — and once with the legacy per-worker
// interners, which pay an ExprTranslator pass per stolen state. The wall
// gap between the two entries in BENCH_symex.json is the steal path's
// constant factor; it exists even on a single-core host (the re-intern
// burns CPU regardless of parallelism).
void RunParallelWcVariant(benchmark::State& state, bool shared_interner) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kO3);
  SymexLimits limits;
  limits.max_seconds = 60;
  SymexOptions options;
  options.jobs = 4;
  options.shared_interner = shared_interner;
  SymexResult last;
  for (auto _ : state) {
    last = Analyze(compiled, "umain", 6, limits, options);
    benchmark::DoNotOptimize(last.paths_completed);
  }
  state.counters["paths"] = static_cast<double>(last.paths_completed);
  state.counters["workers"] = static_cast<double>(last.workers);
  ReportStealStats(state, last);
}

void BM_ParallelExploreWcSteal(benchmark::State& state) {
  RunParallelWcVariant(state, /*shared_interner=*/true);
}
BENCHMARK(BM_ParallelExploreWcSteal)->UseRealTime();

void BM_ParallelExploreWcStealReintern(benchmark::State& state) {
  RunParallelWcVariant(state, /*shared_interner=*/false);
}
BENCHMARK(BM_ParallelExploreWcStealReintern)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
