// Microbenchmarks of the engine's building blocks (google-benchmark):
// expression interning, solver queries through the chain, pipeline
// compilation throughput, concrete interpretation, and full exploration.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/symex/solver.h"
#include "src/workloads/textgen.h"

using namespace overify;
using namespace overify::bench;

namespace {

void BM_ExprInterning(benchmark::State& state) {
  for (auto _ : state) {
    ExprContext ctx;
    const Expr* acc = ctx.Constant(0, 32);
    for (unsigned i = 0; i < 64; ++i) {
      const Expr* sym = ctx.ZExt(ctx.Symbol(i % 8), 32);
      acc = ctx.Binary(ExprKind::kAdd, acc,
                       ctx.Binary(ExprKind::kMul, sym, ctx.Constant(i + 1, 32)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ExprInterning);

void BM_SolverSingleByteQuery(benchmark::State& state) {
  ExprContext ctx;
  SolverChain chain(ctx);
  std::vector<const Expr*> path = {
      ctx.Compare(ICmpPredicate::kUGT, ctx.Symbol(0), ctx.Constant(10, 8))};
  int round = 0;
  for (auto _ : state) {
    // Vary the constant so the counterexample cache cannot shortcut.
    const Expr* cond = ctx.Compare(ICmpPredicate::kEq, ctx.Symbol(0),
                                   ctx.Constant(11 + (round++ % 200), 8));
    benchmark::DoNotOptimize(chain.MayBeTrue(path, cond, nullptr));
  }
}
BENCHMARK(BM_SolverSingleByteQuery);

void BM_SolverMultiByteRelation(benchmark::State& state) {
  ExprContext ctx;
  int round = 0;
  for (auto _ : state) {
    CoreSolver core;
    const Expr* sum = ctx.Binary(
        ExprKind::kAdd, ctx.ZExt(ctx.Symbol(0), 32),
        ctx.Binary(ExprKind::kAdd, ctx.ZExt(ctx.Symbol(1), 32), ctx.ZExt(ctx.Symbol(2), 32)));
    const Expr* target =
        ctx.Compare(ICmpPredicate::kEq, sum, ctx.Constant(300 + (round++ % 50), 32));
    std::vector<uint8_t> model;
    benchmark::DoNotOptimize(core.CheckSat(ctx, {target}, &model));
  }
}
BENCHMARK(BM_SolverMultiByteRelation);

void BM_CompileWcAtOverify(benchmark::State& state) {
  for (auto _ : state) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kOverify);
    benchmark::DoNotOptimize(compiled.instruction_count);
  }
}
BENCHMARK(BM_CompileWcAtOverify);

void BM_InterpretWcText(benchmark::State& state) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kO3);
  TextGenOptions options;
  options.approx_words = 200;
  std::string text = GenerateText(options);
  for (auto _ : state) {
    Interpreter interp(*compiled.module);
    benchmark::DoNotOptimize(interp.Run("umain", text).return_value);
  }
}
BENCHMARK(BM_InterpretWcText);

void BM_ExploreWcAtOverify(benchmark::State& state) {
  Compiler compiler;
  CompileResult compiled = compiler.Compile(WcListing1(), OptLevel::kOverify);
  SymexLimits limits;
  limits.max_seconds = 30;
  for (auto _ : state) {
    SymexResult result = Analyze(compiled, "umain", 6, limits);
    benchmark::DoNotOptimize(result.paths_completed);
  }
}
BENCHMARK(BM_ExploreWcAtOverify);

}  // namespace

BENCHMARK_MAIN();
