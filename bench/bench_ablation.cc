// Ablation of the -OVERIFY ingredients (§4 names three compiler mechanisms
// plus the library flavor; DESIGN.md calls this experiment out).
//
// For a panel of workloads, each configuration disables one ingredient of
// the full -OVERIFY pipeline and re-measures exploration cost. This answers
// "where does the speedup come from?" — the paper's prototype bundles them.
#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using namespace overify;
using namespace overify::bench;

namespace {

struct Config {
  const char* name;
  void (*apply)(PipelineOptions&);
};

struct Cost {
  uint64_t paths = 0;
  uint64_t instructions = 0;
  uint64_t queries = 0;
  bool exhausted = true;
};

Cost Measure(const std::string& source, const PipelineOptions& options, unsigned bytes) {
  Compiler compiler;
  CompileResult compiled = compiler.CompileWithOptions(source, options);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile failed:\n%s\n", compiled.errors.c_str());
    std::exit(1);
  }
  SymexLimits limits;
  limits.max_paths = 120000;
  limits.max_seconds = 10;
  SymexResult result = Analyze(compiled, "umain", bytes, limits);
  return Cost{result.paths_completed, result.instructions, result.solver.queries,
              result.exhausted};
}

}  // namespace

int main() {
  const Config kConfigs[] = {
      {"full -OVERIFY", [](PipelineOptions&) {}},
      {"without if-conversion", [](PipelineOptions& o) { o.if_convert = false; }},
      {"without loop unswitching", [](PipelineOptions& o) { o.unswitch = false; }},
      {"without full unrolling", [](PipelineOptions& o) { o.unroll = false; }},
      {"without aggressive inlining",
       [](PipelineOptions& o) {
         o.inliner.callee_size_threshold = 40;
         o.inliner.always_inline_libc = false;
       }},
      {"without verify libc", [](PipelineOptions& o) { o.use_verify_libc = false; }},
      {"without annotations", [](PipelineOptions& o) { o.annotate = false; }},
      {"without runtime checks", [](PipelineOptions& o) { o.runtime_checks = false; }},
  };

  const char* kPanel[] = {"wc", "wc_any", "count_mode", "tr_flex", "grep_i", "trim",
                          "csv_count", "caesar", "grep_lite", "uniq_chars"};
  const unsigned kBytes = 5;

  std::printf("Ablation: exploration cost of -OVERIFY with one ingredient removed\n");
  std::printf("(panel: 10 workloads, %u symbolic bytes; cost = paths / interpreted instrs / queries)\n\n",
              kBytes);

  TextTable table({"configuration", "paths", "instructions", "solver queries", "vs full"});
  uint64_t full_instructions = 0;
  for (const Config& config : kConfigs) {
    Cost total;
    for (const char* name : kPanel) {
      const Workload* workload = FindWorkload(name);
      if (workload == nullptr) {
        std::fprintf(stderr, "missing workload %s\n", name);
        return 1;
      }
      PipelineOptions options = PipelineOptions::For(OptLevel::kOverify);
      config.apply(options);
      Cost cost = Measure(workload->source, options, kBytes);
      total.paths += cost.paths;
      total.instructions += cost.instructions;
      total.queries += cost.queries;
      total.exhausted &= cost.exhausted;
    }
    if (full_instructions == 0) {
      full_instructions = total.instructions;
    }
    double ratio = full_instructions > 0
                       ? static_cast<double>(total.instructions) / full_instructions
                       : 1.0;
    table.AddRow({config.name, FormatCount(total.paths) + (total.exhausted ? "" : " (capped)"),
                  FormatCount(total.instructions), FormatCount(total.queries),
                  StrFormat("%.2fx", ratio)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("reading: a ratio above 1.00x means removing the ingredient makes analysis "
              "more expensive.\n");
  return 0;
}
