#!/usr/bin/env bash
# Runs the engine benchmarks and emits BENCH_symex.json — the perf
# trajectory snapshot tracked across PRs (wall seconds, solver queries,
# core candidates, fast-path counters, thread scaling).
#
# Usage: bench/run_benches.sh [--check] [build_dir] [output_json]
#
# --check: after writing the snapshot, print a per-benchmark diff table
# against the committed BENCH_symex.json and fail (exit 1) on a wall-time
# slowdown beyond BENCH_CHECK_THRESHOLD (default 1.5x), on any change in
# the hardware-independent `paths` / core-search counters (`core_candidates`,
# `core_conflicts`, `core_learned`, `core_backjumps`, `core_restarts`), or on a
# nonzero `steal_reintern` in the default scheduler configuration — the CI
# regression gate. The thread_scaling section is gated the same way, but
# only when this host has at least as many cores as the one that produced
# the committed snapshot (fewer cores means the numbers measure overhead,
# not scaling — the gate prints a loud warning and skips instead of
# failing, so the bench gate is not host-dependent). Wall times compare
# across hosts only approximately; if the gate host class differs a lot
# from the one that produced the committed snapshot, widen the threshold
# (env) or regenerate the snapshot on the gate's host class. The counter
# checks are exact everywhere (pure functions of engine behavior, not
# hardware).
set -euo pipefail

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
COMMITTED="$REPO_ROOT/BENCH_symex.json"
if [[ "$CHECK" == "1" ]]; then
  # In check mode the fresh snapshot must not land on the committed
  # baseline: the diff would compare the file to itself (trivially
  # passing) after clobbering it.
  OUT="${2:-$(mktemp --suffix=.json)}"
  if [[ "$(readlink -f "$OUT" 2>/dev/null || echo "$OUT")" == "$COMMITTED" ]]; then
    echo "error: --check output would overwrite the committed baseline $COMMITTED" >&2
    exit 1
  fi
else
  OUT="${2:-BENCH_symex.json}"
fi

if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench_micro not found; build with:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

MICRO_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON"' EXIT

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_ExprInterning|BM_SolverSingleByteQuery|BM_SolverMultiByteRelation|BM_FilterIndependent|BM_ExploreWcAtOverify|BM_ExploreWcAtO3|BM_ExploreCksumWideAtOverify|BM_ExploreSumBlockAtOverify|BM_ExploreCksumWideSliceAtOverify|BM_ExploreSumBlockSliceAtOverify|BM_ExploreWcWarmPersist|BM_ParallelExploreWc' \
  --benchmark_format=json --benchmark_min_time=0.5 >"$MICRO_JSON"

python3 - "$MICRO_JSON" "$OUT" <<'PY'
import json
import os
import re
import sys

micro_path, out_path = sys.argv[1], sys.argv[2]
with open(micro_path) as f:
    micro = json.load(f)

benchmarks = {}
scaling = {}
for b in micro.get("benchmarks", []):
    # google-benchmark reports real_time in the declared time_unit (ns here).
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
    entry = {"wall_seconds_per_iter": b["real_time"] * scale,
             "iterations": b.get("iterations", 0)}
    for key in ("paths", "solver_queries", "core_candidates", "core_conflicts",
                "core_learned", "core_backjumps", "core_restarts", "eval_memo_hits",
                "interval_memo_hits", "independence_drops", "cache_hits",
                "reuse_hits", "cex_evictions", "presolve_shortcuts",
                "prefix_subset_hits", "prefix_superset_hits", "prefix_model_hits",
                "preprocess_bindings", "preprocess_tautologies",
                "workers", "steals", "steal_batches", "steal_reintern",
                "slice_checks_found", "slices_built", "slice_fallbacks",
                "slice_cone_pct_max", "persist_seeded", "persist_hits",
                "persist_validations", "persist_rejects", "core_queries"):
        if key in b:
            entry[key] = int(b[key])
    # Latency percentiles and hit rates from the metrics registry
    # (docs/observability.md). Informational: timing-derived, so the
    # --check gate below never diffs them.
    for key in ("solver_p50_ns", "solver_p95_ns", "cache_hit_rate",
                "slice_cone_pct_mean", "persist_rate"):
        if key in b:
            entry[key] = round(float(b[key]), 6)
    m = re.match(r"BM_ParallelExploreWc/(\d+)", b["name"])
    if m:
        scaling[m.group(1)] = entry
    else:
        benchmarks[b["name"]] = entry

thread_scaling = {"workload": "wc @ -O3, 6 symbolic bytes (core-search benchmark)",
                  "host_cores": os.cpu_count(),
                  "workers": scaling}
base = scaling.get("1", {}).get("wall_seconds_per_iter")
if base:
    for workers, entry in scaling.items():
        entry["speedup_vs_1_worker"] = round(base / entry["wall_seconds_per_iter"], 3)

snapshot = {
    "schema": "overify-bench-symex/v2",
    "host_context": micro.get("context", {}).get("host_name", "unknown"),
    "benchmarks": benchmarks,
    "thread_scaling": thread_scaling,
    # Pre-refactor engine (ordered-map interner, std::set support sets,
    # map-based memos/cex cache), measured at PR 1 on the reference box.
    # Kept as the fixed reference point for the >=2x acceptance bar.
    "baseline_pr1": {
        "BM_ExprInterning": {"wall_seconds_per_iter": 100.4e-6},
        "BM_SolverSingleByteQuery": {"wall_seconds_per_iter": 274.7e-9},
        "BM_SolverMultiByteRelation": {"wall_seconds_per_iter": 54.0e-6},
    },
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(benchmarks)} benchmarks, "
      f"{len(scaling)} thread-scaling points)")
PY

if [[ "$CHECK" == "1" ]]; then
  python3 - "$OUT" "$COMMITTED" <<'PY'
import json
import os
import sys

FRESH, COMMITTED = sys.argv[1], sys.argv[2]
THRESHOLD = float(os.environ.get("BENCH_CHECK_THRESHOLD", "1.5"))

with open(FRESH) as f:
    fresh_snapshot = json.load(f)
with open(COMMITTED) as f:
    committed_snapshot = json.load(f)
fresh = fresh_snapshot["benchmarks"]
committed = committed_snapshot["benchmarks"]

failed = []
print(f"{'benchmark':<40} {'committed':>12} {'fresh':>12} {'ratio':>7}")
for name in sorted(committed):
    if name not in fresh:
        print(f"{name:<40} {'(missing from fresh run)':>33}")
        failed.append(name)
        continue
    old = committed[name]["wall_seconds_per_iter"]
    new = fresh[name]["wall_seconds_per_iter"]
    ratio = new / old
    flag = " FAIL" if ratio > THRESHOLD else ""
    # The path count and the learning core's search counters (candidates,
    # conflicts, learned clauses, backjumps, restarts) are deterministic and
    # hardware-independent on these single-threaded benches: any drift is an
    # engine behavior change, flagged at any magnitude.
    drift = []
    for counter in ("paths", "core_candidates", "core_conflicts",
                    "core_learned", "core_backjumps", "core_restarts",
                    "slice_checks_found", "slices_built", "slice_fallbacks",
                    "slice_cone_pct_max"):
        if committed[name].get(counter) != fresh[name].get(counter):
            drift.append(f"{counter} {committed[name].get(counter)} -> "
                         f"{fresh[name].get(counter)}")
    if drift:
        flag = f" FAIL ({'; '.join(drift)})"
    print(f"{name:<40} {old:>12.3e} {new:>12.3e} {ratio:>6.2f}x{flag}")
    if flag:
        failed.append(name)

# Slicing effectiveness invariant (docs/slicing.md): verifying per-check
# slices must never cost more solver queries than the whole program on the
# tracked wide workloads — the win the slicing tentpole exists for.
for whole_name in ("BM_ExploreCksumWideAtOverify", "BM_ExploreSumBlockAtOverify"):
    slice_name = whole_name.replace("AtOverify", "SliceAtOverify")
    whole_entry, slice_entry = fresh.get(whole_name), fresh.get(slice_name)
    if whole_entry is None or slice_entry is None:
        continue
    whole_q, slice_q = whole_entry.get("solver_queries"), slice_entry.get("solver_queries")
    if whole_q is not None and slice_q is not None and slice_q > whole_q:
        print(f"{slice_name}: solver_queries = {slice_q} exceeds whole-program "
              f"{whole_name} = {whole_q}")
        failed.append(slice_name)

# Warm persisted-cache effectiveness (docs/daemon.md): a warm run must
# answer at least BENCH_PERSIST_RATE_MIN of its would-be core searches from
# the persisted store (persist_rate = persist_hits / (persist_hits +
# core_queries)). This is the acceptance bar of the cross-run cache: below
# it, persistence exists but does not pay.
PERSIST_RATE_MIN = float(os.environ.get("BENCH_PERSIST_RATE_MIN", "0.5"))
warm = fresh.get("BM_ExploreWcWarmPersist")
if warm is None:
    print("BM_ExploreWcWarmPersist: missing from fresh run")
    failed.append("BM_ExploreWcWarmPersist")
else:
    rate = warm.get("persist_rate", 0.0)
    print(f"BM_ExploreWcWarmPersist: warm persist_rate = {rate:.3f} "
          f"(persist_hits = {warm.get('persist_hits', 0)}, "
          f"core_queries = {warm.get('core_queries', 0)}; gate >= {PERSIST_RATE_MIN})")
    if rate < PERSIST_RATE_MIN:
        failed.append("BM_ExploreWcWarmPersist")
    if warm.get("persist_rejects", 0) != 0:
        print(f"BM_ExploreWcWarmPersist: persist_rejects = "
              f"{warm['persist_rejects']} (a clean same-binary store must "
              f"validate fully)")
        failed.append("BM_ExploreWcWarmPersist")

# Structural invariant of the default scheduler configuration: the shared
# interner means stolen states never re-intern. Steal *traffic* is
# scheduling-dependent and not diffed, but this counter is exactly zero on
# every host.
for name, entry in sorted(fresh.items()):
    if name.startswith("BM_ParallelExploreWcSteal/") and entry.get("steal_reintern", 0) != 0:
        print(f"{name}: steal_reintern = {entry['steal_reintern']} "
              "(must be 0 with the shared interner)")
        failed.append(name)

# Thread-scaling gate: wall times per worker count. Scaling numbers are
# only comparable when the gate host has at least as many cores as the host
# that produced the committed snapshot (a 1-core container "scales" by pure
# overhead) — skip loudly, don't fail, when it does not.
fresh_ts = fresh_snapshot.get("thread_scaling", {})
committed_ts = committed_snapshot.get("thread_scaling", {})
fresh_cores = fresh_ts.get("host_cores") or 0
committed_cores = committed_ts.get("host_cores") or 0
if committed_cores < 2:
    print(f"\nWARNING: skipping the thread-scaling gate: the committed "
          f"snapshot was measured on {committed_cores} core(s), where "
          f"multi-worker times measure scheduler overhead, not scaling — "
          f"there is no meaningful baseline to gate against. Regenerate the "
          f"snapshot on a multi-core host to arm the gate.")
elif fresh_cores < committed_cores:
    print(f"\nWARNING: skipping the thread-scaling gate: this host has "
          f"{fresh_cores} core(s) but the committed snapshot was measured on "
          f"{committed_cores}; scaling numbers are not comparable. Regenerate "
          f"the snapshot on a host with >= {committed_cores} cores to re-arm "
          f"the gate.")
else:
    for workers in sorted(committed_ts.get("workers", {}), key=int):
        name = f"thread_scaling/{workers}"
        if workers not in fresh_ts.get("workers", {}):
            print(f"{name:<40} {'(missing from fresh run)':>33}")
            failed.append(name)
            continue
        old = committed_ts["workers"][workers]["wall_seconds_per_iter"]
        new = fresh_ts["workers"][workers]["wall_seconds_per_iter"]
        ratio = new / old
        flag = " FAIL" if ratio > THRESHOLD else ""
        print(f"{name:<40} {old:>12.3e} {new:>12.3e} {ratio:>6.2f}x{flag}")
        if flag:
            failed.append(name)

if failed:
    print(f"\nregression gate FAILED (wall > {THRESHOLD}x, paths/core-search "
          f"counters drifted, slice-mode queries exceeded whole-program, "
          f"warm persist_rate below {PERSIST_RATE_MIN}, "
          f"or steal_reintern != 0): "
          f"{', '.join(failed)}")
    sys.exit(1)
print(f"\nregression gate passed (threshold {THRESHOLD}x; paths and "
      f"core-search counters exact; warm persist_rate >= {PERSIST_RATE_MIN}; "
      "steal path re-intern-free)")
PY
fi
