#!/usr/bin/env bash
# Runs the engine benchmarks and emits BENCH_symex.json — the perf
# trajectory snapshot tracked across PRs (wall seconds, solver queries,
# core candidates, fast-path counters).
#
# Usage: bench/run_benches.sh [build_dir] [output_json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_symex.json}"

if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "error: $BUILD_DIR/bench_micro not found; build with:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

MICRO_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON"' EXIT

"$BUILD_DIR/bench_micro" \
  --benchmark_filter='BM_ExprInterning|BM_SolverSingleByteQuery|BM_SolverMultiByteRelation|BM_FilterIndependent|BM_ExploreWcAtOverify|BM_ExploreWcAtO3' \
  --benchmark_format=json --benchmark_min_time=0.5 >"$MICRO_JSON"

python3 - "$MICRO_JSON" "$OUT" <<'PY'
import json
import sys

micro_path, out_path = sys.argv[1], sys.argv[2]
with open(micro_path) as f:
    micro = json.load(f)

benchmarks = {}
for b in micro.get("benchmarks", []):
    # google-benchmark reports real_time in the declared time_unit (ns here).
    unit = b.get("time_unit", "ns")
    scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[unit]
    entry = {"wall_seconds_per_iter": b["real_time"] * scale,
             "iterations": b.get("iterations", 0)}
    for key in ("paths", "solver_queries", "core_candidates", "eval_memo_hits",
                "interval_memo_hits", "independence_drops", "cache_hits",
                "reuse_hits", "cex_evictions"):
        if key in b:
            entry[key] = int(b[key])
    benchmarks[b["name"]] = entry

snapshot = {
    "schema": "overify-bench-symex/v1",
    "host_context": micro.get("context", {}).get("host_name", "unknown"),
    "benchmarks": benchmarks,
    # Pre-refactor engine (ordered-map interner, std::set support sets,
    # map-based memos/cex cache), measured at PR 1 on the reference box.
    # Kept as the fixed reference point for the >=2x acceptance bar.
    "baseline_pr1": {
        "BM_ExprInterning": {"wall_seconds_per_iter": 100.4e-6},
        "BM_SolverSingleByteQuery": {"wall_seconds_per_iter": 274.7e-9},
        "BM_SolverMultiByteRelation": {"wall_seconds_per_iter": 54.0e-6},
    },
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(benchmarks)} benchmarks)")
PY
