// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "src/driver/compiler.h"
#include "src/exec/interpreter.h"
#include "src/support/string_utils.h"
#include "src/support/table.h"

namespace overify {
namespace bench {

// The wc function of Listing 1 plus the driver the engine expects.
inline const char* WcListing1() {
  return R"(
int wc(unsigned char *str, int any) {
  int res = 0;
  int new_word = 1;
  for (unsigned char *p = str; *p; ++p) {
    if (isspace((int)*p) || (any && !isalpha((int)*p))) {
      new_word = 1;
    } else {
      if (new_word) {
        ++res;
        new_word = 0;
      }
    }
  }
  return res;
}
int umain(unsigned char *in, int n) { return wc(in, 1); }
)";
}

inline std::string FormatCount(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string result;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) {
      result += ',';
    }
    result += *it;
    ++counter;
  }
  return std::string(result.rbegin(), result.rend());
}

inline std::string FormatMillis(double seconds) {
  return FormatDouble(seconds * 1e3, 1);
}

}  // namespace bench
}  // namespace overify
