// Table 2 of the paper: the impact of each compiler-transformation family on
// Verification cost and Execution cost (+ improves, - hurts, 0 neutral).
//
// The paper states the matrix qualitatively; this harness measures it. For
// each row a microbenchmark kernel is compiled twice — with the
// transformation family enabled and disabled — and both builds are (a)
// symbolically analyzed (verification cost = interpreted instructions +
// solver queries) and (b) concretely executed (execution cost units).
#include "bench/bench_common.h"

using namespace overify;
using namespace overify::bench;

namespace {

struct Row {
  const char* name;
  const char* program;
  unsigned sym_bytes;
  // Mutates the baseline options into the "transformation off" variant.
  void (*disable)(PipelineOptions&);
  const char* paper_verify;  // the sign printed in the paper
  const char* paper_exec;
};

uint64_t VerifyCost(CompileResult& compiled, unsigned bytes) {
  SymexLimits limits;
  limits.max_paths = 200000;
  limits.max_seconds = 20;
  SymexResult result = Analyze(compiled, "umain", bytes, limits);
  return result.instructions + 10 * result.solver.queries;
}

uint64_t ExecCost(CompileResult& compiled, const std::string& input) {
  Interpreter interp(*compiled.module);
  InterpResult run = interp.Run("umain", input);
  return run.ok ? run.cost_units : 0;
}

const char* Sign(uint64_t off_cost, uint64_t on_cost) {
  // "+" = enabling the transformation reduces cost.
  if (on_cost * 100 < off_cost * 97) {
    return "+";
  }
  if (off_cost * 100 < on_cost * 97) {
    return "-";
  }
  return "0";
}

}  // namespace

int main() {
  const Row kRows[] = {
      {"Constant propagation/folding, arithmetic simplification",
       R"(
         int umain(unsigned char *in, int n) {
           int x = in[0];
           int y = x;        /* the paper's x=input(); y=x; x-=y example */
           x -= y;
           int k = (3 * 14 + 2) / 4;
           if (x + k == in[1] + 10) { return 1; }
           return 0;
         }
       )",
       3, [](PipelineOptions& o) { o.instcombine = false; o.cse = false; }, "+", "+"},

      {"Remove/split memory accesses (mem2reg + SROA)",
       R"(
         int umain(unsigned char *in, int n) {
           int parts[4];
           parts[0] = in[0]; parts[1] = in[1]; parts[2] = 7; parts[3] = 9;
           int sum = 0;
           for (int i = 0; i < 2; i++) { sum += parts[i]; }
           return sum + parts[2] * parts[3];
         }
       )",
       3, [](PipelineOptions& o) { o.mem2reg = false; o.sroa = false; }, "+", "+"},

      {"Simplify control flow (unswitch + jump threading + if-convert)",
       R"(
         int classify(unsigned char *s, int strict) {
           int bad = 0;
           for (long i = 0; s[i]; i++) {
             if (strict && !isalnum(s[i])) { bad++; }
             else if (s[i] == '?') { bad++; }
           }
           return bad;
         }
         int umain(unsigned char *in, int n) { return classify(in, 1); }
       )",
       4,
       [](PipelineOptions& o) {
         o.unswitch = false;
         o.jump_threading = false;
         o.if_convert = false;
       },
       "+", "+/-"},

      {"Restructure the program (inlining + unrolling)",
       R"(
         int weight(int c) { return isalpha(c) ? 2 : 1; }
         int umain(unsigned char *in, int n) {
           int sum = 0;
           for (int i = 0; i < 3; i++) { sum += weight(in[i]); }
           return sum;
         }
       )",
       3,
       [](PipelineOptions& o) {
         o.inline_functions = false;
         o.unroll = false;
       },
       "+/-", "+/-"},

      {"Program annotations (ranges, trip counts)",
       R"(
         int umain(unsigned char *in, int n) {
           int x = in[0] & 31;
           int sum = 0;
           /* putchar blocks speculation, so these branches survive to the
              engine; their conditions are decidable only via ranges. */
           if (x < 40) { putchar('a'); sum++; }
           if (x + (in[1] & 15) < 300) { putchar('b'); sum++; }
           if (in[1] > 5) { putchar('c'); sum++; }
           return sum;
         }
       )",
       2, [](PipelineOptions& o) { o.annotate = false; }, "+", "-"},

      {"Generate runtime checks",
       R"(
         int umain(unsigned char *in, int n) {
           int d = (in[0] & 7) + 1;
           int q = 100 / d;           /* provably safe: check elided */
           int r = 100 / (in[1] - 3); /* can trap: check stays */
           return q + r;
         }
       )",
       2, [](PipelineOptions& o) { o.runtime_checks = false; }, "+", "-"},
  };

  std::printf("Table 2: transformation impact on Verification and Execution cost\n");
  std::printf("(measured: each row on/off under the -OVERIFY pipeline; '+' = enabling helps)\n\n");

  TextTable table({"Transformation", "Verif (meas)", "Exec (meas)", "Verif (paper)",
                   "Exec (paper)"});
  for (const Row& row : kRows) {
    PipelineOptions on = PipelineOptions::For(OptLevel::kOverify);
    PipelineOptions off = on;
    row.disable(off);

    Compiler compiler;
    CompileResult on_build = compiler.CompileWithOptions(row.program, on);
    CompileResult off_build = compiler.CompileWithOptions(row.program, off);
    if (!on_build.ok || !off_build.ok) {
      std::fprintf(stderr, "compile failed for row '%s'\n%s%s\n", row.name,
                   on_build.errors.c_str(), off_build.errors.c_str());
      return 1;
    }

    std::string input(row.sym_bytes, 'a');
    uint64_t verify_on = VerifyCost(on_build, row.sym_bytes);
    uint64_t verify_off = VerifyCost(off_build, row.sym_bytes);
    uint64_t exec_on = ExecCost(on_build, input);
    uint64_t exec_off = ExecCost(off_build, input);

    table.AddRow({row.name,
                  StrFormat("%s (%llu vs %llu)", Sign(verify_off, verify_on),
                            static_cast<unsigned long long>(verify_on),
                            static_cast<unsigned long long>(verify_off)),
                  StrFormat("%s (%llu vs %llu)", Sign(exec_off, exec_on),
                            static_cast<unsigned long long>(exec_on),
                            static_cast<unsigned long long>(exec_off)),
                  row.paper_verify, row.paper_exec});
  }
  // The machine-specific row cannot be modeled without a hardware backend.
  table.AddRow({"Improve cache behavior / regalloc / scheduling", "n/a (no machine backend)",
                "n/a", "-", "+"});
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
