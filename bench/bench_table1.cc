// Table 1 of the paper: exhaustively explore all paths of Listing 1's `wc`
// for bounded symbolic input under -O0 / -O2 / -O3 / -OVERIFY, reporting
// verification time, compile time, run time, interpreted instructions and
// completed paths.
//
// Paper (10 symbolic bytes, KLEE on the authors' machine):
//   t_verify[ms]: 13,126 / 8,079 / 736 / 49
//   t_compile[ms]: 38 / 42 / 43 / 44
//   t_run[ms]: 3,318 / 704 / 694 / 1,827     (text with 1e8 words)
//   #instructions: 896,853 / 480,229 / 37,829 / 312
//   #paths: 30,537 / 30,537 / 2,045 / 11
//
// Here the substrate is this toolkit's own engine, so absolute numbers
// differ; the orderings and the -O2-keeps-paths / -OVERIFY-n+1 structure are
// the reproduced results. Input is scaled to 6 symbolic bytes so the -O0
// row finishes in seconds (its path count is capped and flagged when not).
#include "bench/bench_common.h"
#include "src/workloads/textgen.h"

using namespace overify;
using namespace overify::bench;

int main() {
  const unsigned kSymBytes = 6;
  const uint64_t kPathCap = 400000;

  std::printf("Table 1: verifying wc (Listing 1) with %u symbolic input bytes\n", kSymBytes);
  std::printf("(paper used 10 bytes on KLEE; orderings are the reproduced result)\n\n");

  TextGenOptions text_options;
  text_options.approx_words = 2000;
  std::string text = GenerateText(text_options);

  TextTable table({"Optimization", "-O0", "-O2", "-O3", "-OVERIFY"});
  std::vector<std::string> tverify = {"t_verify [ms]"};
  std::vector<std::string> tcompile = {"t_compile [ms]"};
  std::vector<std::string> trun = {"t_run [cost units]"};
  std::vector<std::string> instructions = {"# instructions"};
  std::vector<std::string> paths = {"# paths"};

  for (OptLevel level :
       {OptLevel::kO0, OptLevel::kO2, OptLevel::kO3, OptLevel::kOverify}) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(WcListing1(), level);
    if (!compiled.ok) {
      std::fprintf(stderr, "compile failed at %s:\n%s\n", OptLevelName(level),
                   compiled.errors.c_str());
      return 1;
    }

    SymexLimits limits;
    limits.max_paths = kPathCap;
    limits.max_seconds = 60;
    SymexResult analysis = Analyze(compiled, "umain", kSymBytes, limits);

    Interpreter interp(*compiled.module);
    InterpResult run = interp.Run("umain", text);

    std::string cap_marker = analysis.exhausted ? "" : " (capped)";
    tverify.push_back(FormatMillis(analysis.wall_seconds) + cap_marker);
    tcompile.push_back(FormatMillis(compiled.compile_seconds));
    trun.push_back(FormatCount(run.cost_units));
    instructions.push_back(FormatCount(analysis.instructions) + cap_marker);
    paths.push_back(FormatCount(analysis.paths_completed) + cap_marker);

    if (!analysis.bugs.empty()) {
      std::fprintf(stderr, "unexpected bug at %s: %s\n", OptLevelName(level),
                   analysis.bugs[0].message.c_str());
      return 1;
    }
  }

  table.AddRow(tverify);
  table.AddRow(tcompile);
  table.AddRow(trun);
  table.AddRow(instructions);
  table.AddRow(paths);
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Paper reference (10 bytes, KLEE):\n");
  std::printf("  t_verify[ms] 13,126 / 8,079 / 736 / 49   #paths 30,537 / 30,537 / 2,045 / 11\n");
  std::printf("  t_run[ms]     3,318 /   704 / 694 / 1,827\n");
  return 0;
}
