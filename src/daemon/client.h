// Client side of the verification daemon protocol (docs/daemon.md).
//
// Wraps a connected Unix-socket fd in typed request/response calls. Every
// call is synchronous: one frame out, one frame in. A false return means
// the transport failed (daemon gone, frame garbled); protocol-level errors
// come back through the reply's ok/error fields instead.
#pragma once

#include <string>

#include "src/daemon/protocol.h"

namespace overify {
namespace daemon {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to the daemon's Unix socket. False (with a message in
  // `error()`) when the socket is absent or refuses.
  bool Connect(const std::string& socket_path);
  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  bool Analyze(const AnalyzeRequest& request, AnalyzeReply& reply);
  // Liveness check; also verifies the server speaks our protocol version.
  bool Ping();
  bool Stats(StatsReply& reply);
  bool SaveStore();
  bool Shutdown();

 private:
  // One round trip; false on transport failure.
  bool Call(const std::vector<uint8_t>& request, std::vector<uint8_t>& response);
  // For bodyless-ok requests (save/shutdown): sends one tag byte and checks
  // the response status.
  bool SimpleCall(RequestTag tag);

  int fd_ = -1;
  std::string error_;
};

}  // namespace daemon
}  // namespace overify
