#include "src/daemon/server.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/daemon/protocol.h"
#include "src/driver/compiler.h"
#include "src/support/serialize.h"
#include "src/testing/diff_harness.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace daemon {

DaemonServer::DaemonServer(ServerOptions options)
    : options_(std::move(options)), store_(options_.max_runs) {
  if (!options_.store_path.empty()) {
    if (!store_.Load(options_.store_path)) {
      // Any load defect means a cold store, but only an *existing* file that
      // fails to load is a reject (version bump, corruption) — a missing
      // file is just the first start, and the smoke test asserts the reject
      // counter stays at zero across a healthy cold-start/restart cycle.
      struct stat st;
      if (::stat(options_.store_path.c_str(), &st) == 0) {
        metrics_.Inc(Counter::kDaemonStoreRejects);
        if (options_.verbose) {
          std::fprintf(stderr, "daemon: store %s not loaded: %s (starting cold)\n",
                       options_.store_path.c_str(), store_.load_error().c_str());
        }
      } else if (options_.verbose) {
        std::fprintf(stderr, "daemon: no store at %s yet (starting cold)\n",
                     options_.store_path.c_str());
      }
    } else if (options_.verbose) {
      std::fprintf(stderr, "daemon: store %s loaded: %zu runs, %zu entries\n",
                   options_.store_path.c_str(), store_.runs(), store_.TotalEntries());
    }
  }
}

std::vector<uint8_t> DaemonServer::HandleAnalyze(const std::vector<uint8_t>& request) {
  AnalyzeRequest req;
  if (!DecodeAnalyzeRequest(request, req)) {
    return EncodeError("malformed analyze request");
  }
  const Workload* workload = FindWorkload(req.workload.c_str());
  if (workload == nullptr) {
    return EncodeError("unknown workload '" + req.workload + "'");
  }
  if (req.opt_level > static_cast<uint8_t>(OptLevel::kOverify)) {
    return EncodeError("invalid optimization level " + std::to_string(req.opt_level));
  }
  const OptLevel level = static_cast<OptLevel>(req.opt_level);
  const unsigned sym_bytes =
      req.sym_bytes != 0 ? req.sym_bytes : workload->default_sym_bytes;

  Compiler compiler;
  CompileResult compiled = compiler.Compile(workload->source, level, workload->name);
  if (!compiled.ok) {
    return EncodeError("compile failed: " + compiled.errors);
  }

  SymexLimits limits;
  limits.max_paths = req.max_paths;
  limits.max_seconds = static_cast<double>(req.max_seconds_ms) / 1000.0;
  SymexOptions opts;
  opts.jobs = req.jobs;
  opts.slice_checks = req.slice_checks != 0;
  opts.cache_store = &store_;
  opts.warm_interner = &warm_interner_;

  // The run-memo key. The module hash is taken on the *freshly compiled*
  // module — every request compiles fresh, so the pre-run hash is the
  // stable one. The fingerprint mirrors what the driver hands the pool
  // (annotations are injected there when the compile produced any).
  SymexOptions fp_opts = opts;
  if (compiled.annotations != nullptr && compiled.annotations->size() > 0) {
    fp_opts.annotations = compiled.annotations.get();
  }
  const uint64_t module_hash = ModuleContentHash(*compiled.module);
  const uint64_t options_fp = OptionsFingerprint(fp_opts);

  AnalyzeReply reply;
  if (req.force_run == 0) {
    if (RunBlob* blob = store_.FindRun(module_hash, options_fp)) {
      if (!blob->run_signature.empty()) {
        metrics_.Inc(Counter::kDaemonRunHits);
        reply.ok = true;
        reply.run_hit = true;
        reply.signature = blob->run_signature;
        if (options_.verbose) {
          std::fprintf(stderr, "daemon: %s @ %s -> run hit\n", workload->name.c_str(),
                       OptLevelName(level));
        }
        return EncodeAnalyzeReply(reply);
      }
    }
  }
  metrics_.Inc(Counter::kDaemonRunMisses);

  SymexResult result = Analyze(compiled, "umain", sym_bytes, limits, opts);
  if (!result.ok) {
    return EncodeError("analyze failed: " + result.error);
  }
  const difftest::RunSignature signature =
      difftest::SignatureOf(result, *compiled.module, "umain", /*confirm_models=*/true);

  RunBlob* blob = store_.FindRun(module_hash, options_fp);
  if (blob == nullptr) {
    blob = &store_.PutRun(module_hash, options_fp);
  }
  blob->run_signature = signature.ToString();

  reply.ok = true;
  reply.signature = blob->run_signature;
  reply.exhausted = result.exhausted;
  reply.paths = result.paths_completed;
  reply.bugs = result.bugs.size();
  reply.persist_seeded = result.metrics.Get(Counter::kPersistSeeded);
  reply.persist_hits = result.metrics.Get(Counter::kPersistHits);
  reply.persist_validations = result.metrics.Get(Counter::kPersistValidations);
  reply.persist_rejects = result.metrics.Get(Counter::kPersistRejects);
  reply.core_queries = result.metrics.Get(Counter::kSolverCoreQueries);
  reply.cache_hits = result.metrics.Get(Counter::kSolverCacheHits);
  if (options_.verbose) {
    std::fprintf(stderr,
                 "daemon: %s @ %s -> ran: %llu paths, seeded %llu, persist hits %llu\n",
                 workload->name.c_str(), OptLevelName(level),
                 static_cast<unsigned long long>(reply.paths),
                 static_cast<unsigned long long>(reply.persist_seeded),
                 static_cast<unsigned long long>(reply.persist_hits));
  }
  return EncodeAnalyzeReply(reply);
}

std::vector<uint8_t> DaemonServer::Handle(const std::vector<uint8_t>& request,
                                          bool& shutdown) {
  metrics_.Inc(Counter::kDaemonRequests);
  if (request.empty()) {
    return EncodeError("empty request");
  }
  switch (static_cast<RequestTag>(request[0])) {
    case RequestTag::kAnalyze: {
      std::vector<uint8_t> response = HandleAnalyze(request);
      // The store's LRU may have evicted while memoizing; mirror the total
      // into the daemon's shard so Stats and the bench report see it.
      metrics_.Set(Counter::kDaemonRunEvictions, store_.evictions());
      return response;
    }
    case RequestTag::kPing: {
      ByteWriter w;
      w.U8(0);
      w.U32(kDaemonProtocolVersion);
      return w.Take();
    }
    case RequestTag::kStats: {
      StatsReply stats;
      stats.ok = true;
      stats.requests = metrics_.Get(Counter::kDaemonRequests);
      stats.run_hits = metrics_.Get(Counter::kDaemonRunHits);
      stats.run_misses = metrics_.Get(Counter::kDaemonRunMisses);
      stats.run_evictions = store_.evictions();
      stats.store_rejects = metrics_.Get(Counter::kDaemonStoreRejects);
      stats.store_runs = store_.runs();
      stats.store_entries = store_.TotalEntries();
      return EncodeStatsReply(stats);
    }
    case RequestTag::kSaveStore: {
      if (options_.store_path.empty()) {
        return EncodeError("daemon started without --store");
      }
      if (!store_.Save(options_.store_path)) {
        return EncodeError("store save failed: " + options_.store_path);
      }
      ByteWriter w;
      w.U8(0);
      return w.Take();
    }
    case RequestTag::kShutdown: {
      shutdown = true;
      ByteWriter w;
      w.U8(0);
      return w.Take();
    }
  }
  return EncodeError("unknown request tag " + std::to_string(request[0]));
}

int DaemonServer::Run() {
  if (options_.socket_path.empty()) {
    std::fprintf(stderr, "daemon: no socket path\n");
    return 1;
  }
  if (options_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "daemon: socket path too long: %s\n",
                 options_.socket_path.c_str());
    return 1;
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("daemon: socket");
    return 1;
  }
  ::unlink(options_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("daemon: bind");
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 8) != 0) {
    std::perror("daemon: listen");
    ::close(listener);
    return 1;
  }
  if (options_.verbose) {
    std::fprintf(stderr, "daemon: listening on %s\n", options_.socket_path.c_str());
  }

  bool shutdown = false;
  while (!shutdown) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::perror("daemon: accept");
      break;
    }
    // One connection at a time, frames in order until the client closes.
    std::vector<uint8_t> request;
    while (!shutdown && ReadFrame(conn, request)) {
      const std::vector<uint8_t> response = Handle(request, shutdown);
      if (!WriteFrame(conn, response)) {
        break;
      }
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(options_.socket_path.c_str());

  if (!options_.store_path.empty()) {
    if (store_.Save(options_.store_path)) {
      if (options_.verbose) {
        std::fprintf(stderr, "daemon: store saved to %s (%zu runs, %zu entries)\n",
                     options_.store_path.c_str(), store_.runs(), store_.TotalEntries());
      }
    } else {
      std::fprintf(stderr, "daemon: failed to save store to %s\n",
                   options_.store_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace daemon
}  // namespace overify
