// Wire protocol of the verification daemon (docs/daemon.md).
//
// A client connects to the daemon's Unix socket and exchanges
// length-prefixed frames: a u32 little-endian payload length followed by
// that many payload bytes. Each request frame is a u8 tag plus a
// tag-specific body serialized with ByteWriter (src/support/serialize.h);
// each response frame opens with a u8 status (0 = ok, 1 = error, the error
// body being a single diagnostic string). The protocol is versioned
// independently of the cache store — kDaemonProtocolVersion only changes
// when the frames themselves do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace overify {
namespace daemon {

constexpr uint32_t kDaemonProtocolVersion = 1;

// The largest frame either side accepts. Protects both ends from a garbage
// length prefix (a stray client writing text into the socket).
constexpr uint32_t kMaxFrameBytes = 1u << 26;

enum class RequestTag : uint8_t {
  kAnalyze = 1,   // verify one workload; answered from the run cache if warm
  kPing = 2,      // liveness + protocol version
  kStats = 3,     // daemon counters + store occupancy
  kSaveStore = 4, // persist the store to the daemon's --store path now
  kShutdown = 5,  // drain and exit after replying
};

struct AnalyzeRequest {
  std::string workload;    // suite workload name (src/workloads)
  uint8_t opt_level = 4;   // OptLevel as u8; 4 = kOverify
  uint32_t sym_bytes = 0;  // 0 = the workload's default width
  // Skip the run-level signature cache and actually execute, still seeding
  // solver caches from the store. CI uses this to measure the solver-level
  // persisted hit rate in isolation.
  uint8_t force_run = 0;
  uint8_t slice_checks = 0;
  uint32_t jobs = 1;
  uint64_t max_paths = 100000;
  uint64_t max_seconds_ms = 10000;
};

struct AnalyzeReply {
  bool ok = false;
  std::string error;
  // Answered from the daemon's run cache without executing (signature
  // memoized under the module's content hash + options fingerprint).
  bool run_hit = false;
  std::string signature;  // RunSignature::ToString() of the verification
  bool exhausted = false;
  uint64_t paths = 0;
  uint64_t bugs = 0;
  // Solver-level persistence counters of this run (all zero on a run_hit —
  // nothing executed).
  uint64_t persist_seeded = 0;
  uint64_t persist_hits = 0;
  uint64_t persist_validations = 0;
  uint64_t persist_rejects = 0;
  uint64_t core_queries = 0;
  uint64_t cache_hits = 0;
};

struct StatsReply {
  bool ok = false;
  std::string error;
  uint64_t requests = 0;
  uint64_t run_hits = 0;
  uint64_t run_misses = 0;
  uint64_t run_evictions = 0;
  uint64_t store_rejects = 0;
  uint64_t store_runs = 0;
  uint64_t store_entries = 0;
};

// ---- Frame IO (blocking, on a connected socket fd) ----

// False on EOF, short read/write, or an oversized length prefix.
bool ReadFrame(int fd, std::vector<uint8_t>& payload);
bool WriteFrame(int fd, const std::vector<uint8_t>& payload);

// ---- Request/response bodies ----

std::vector<uint8_t> EncodeAnalyzeRequest(const AnalyzeRequest& request);
bool DecodeAnalyzeRequest(const std::vector<uint8_t>& body, AnalyzeRequest& request);

std::vector<uint8_t> EncodeAnalyzeReply(const AnalyzeReply& reply);
bool DecodeAnalyzeReply(const std::vector<uint8_t>& frame, AnalyzeReply& reply);

std::vector<uint8_t> EncodeStatsReply(const StatsReply& reply);
bool DecodeStatsReply(const std::vector<uint8_t>& frame, StatsReply& reply);

std::vector<uint8_t> EncodeError(const std::string& message);

}  // namespace daemon
}  // namespace overify
