#include "src/daemon/protocol.h"

#include <unistd.h>

#include <cerrno>

#include "src/support/serialize.h"

namespace overify {
namespace daemon {

namespace {

bool ReadExact(int fd, uint8_t* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, buf + done, n - done);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (got == 0) {
      return false;  // EOF mid-frame (or a clean close between frames)
    }
    done += static_cast<size_t>(got);
  }
  return true;
}

bool WriteExact(int fd, const uint8_t* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t put = ::write(fd, buf + done, n - done);
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<size_t>(put);
  }
  return true;
}

}  // namespace

bool ReadFrame(int fd, std::vector<uint8_t>& payload) {
  uint8_t header[4];
  if (!ReadExact(fd, header, sizeof(header))) {
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(header[0]) |
                          (static_cast<uint32_t>(header[1]) << 8) |
                          (static_cast<uint32_t>(header[2]) << 16) |
                          (static_cast<uint32_t>(header[3]) << 24);
  if (length > kMaxFrameBytes) {
    return false;
  }
  payload.resize(length);
  return length == 0 || ReadExact(fd, payload.data(), length);
}

bool WriteFrame(int fd, const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const uint8_t header[4] = {
      static_cast<uint8_t>(length),
      static_cast<uint8_t>(length >> 8),
      static_cast<uint8_t>(length >> 16),
      static_cast<uint8_t>(length >> 24),
  };
  return WriteExact(fd, header, sizeof(header)) &&
         (payload.empty() || WriteExact(fd, payload.data(), payload.size()));
}

std::vector<uint8_t> EncodeAnalyzeRequest(const AnalyzeRequest& request) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RequestTag::kAnalyze));
  w.Str(request.workload);
  w.U8(request.opt_level);
  w.U32(request.sym_bytes);
  w.U8(request.force_run);
  w.U8(request.slice_checks);
  w.U32(request.jobs);
  w.U64(request.max_paths);
  w.U64(request.max_seconds_ms);
  return w.Take();
}

bool DecodeAnalyzeRequest(const std::vector<uint8_t>& body, AnalyzeRequest& request) {
  ByteReader r(body);
  if (r.U8() != static_cast<uint8_t>(RequestTag::kAnalyze)) {
    return false;
  }
  request.workload = r.Str();
  request.opt_level = r.U8();
  request.sym_bytes = r.U32();
  request.force_run = r.U8();
  request.slice_checks = r.U8();
  request.jobs = r.U32();
  request.max_paths = r.U64();
  request.max_seconds_ms = r.U64();
  return r.AtEnd();
}

std::vector<uint8_t> EncodeAnalyzeReply(const AnalyzeReply& reply) {
  ByteWriter w;
  if (!reply.ok) {
    w.U8(1);
    w.Str(reply.error);
    return w.Take();
  }
  w.U8(0);
  w.U8(reply.run_hit ? 1 : 0);
  w.Str(reply.signature);
  w.U8(reply.exhausted ? 1 : 0);
  w.U64(reply.paths);
  w.U64(reply.bugs);
  w.U64(reply.persist_seeded);
  w.U64(reply.persist_hits);
  w.U64(reply.persist_validations);
  w.U64(reply.persist_rejects);
  w.U64(reply.core_queries);
  w.U64(reply.cache_hits);
  return w.Take();
}

bool DecodeAnalyzeReply(const std::vector<uint8_t>& frame, AnalyzeReply& reply) {
  ByteReader r(frame);
  const uint8_t status = r.U8();
  if (status == 1) {
    reply.ok = false;
    reply.error = r.Str();
    return r.AtEnd();
  }
  if (status != 0) {
    return false;
  }
  reply.ok = true;
  reply.run_hit = r.U8() != 0;
  reply.signature = r.Str();
  reply.exhausted = r.U8() != 0;
  reply.paths = r.U64();
  reply.bugs = r.U64();
  reply.persist_seeded = r.U64();
  reply.persist_hits = r.U64();
  reply.persist_validations = r.U64();
  reply.persist_rejects = r.U64();
  reply.core_queries = r.U64();
  reply.cache_hits = r.U64();
  return r.AtEnd();
}

std::vector<uint8_t> EncodeStatsReply(const StatsReply& reply) {
  ByteWriter w;
  if (!reply.ok) {
    w.U8(1);
    w.Str(reply.error);
    return w.Take();
  }
  w.U8(0);
  w.U64(reply.requests);
  w.U64(reply.run_hits);
  w.U64(reply.run_misses);
  w.U64(reply.run_evictions);
  w.U64(reply.store_rejects);
  w.U64(reply.store_runs);
  w.U64(reply.store_entries);
  return w.Take();
}

bool DecodeStatsReply(const std::vector<uint8_t>& frame, StatsReply& reply) {
  ByteReader r(frame);
  const uint8_t status = r.U8();
  if (status == 1) {
    reply.ok = false;
    reply.error = r.Str();
    return r.AtEnd();
  }
  if (status != 0) {
    return false;
  }
  reply.ok = true;
  reply.requests = r.U64();
  reply.run_hits = r.U64();
  reply.run_misses = r.U64();
  reply.run_evictions = r.U64();
  reply.store_rejects = r.U64();
  reply.store_runs = r.U64();
  reply.store_entries = r.U64();
  return r.AtEnd();
}

std::vector<uint8_t> EncodeError(const std::string& message) {
  ByteWriter w;
  w.U8(1);
  w.Str(message);
  return w.Take();
}

}  // namespace daemon
}  // namespace overify
