// The verification daemon: a long-lived server that keeps the expensive
// state of verification warm between runs (docs/daemon.md).
//
// Three layers of warmth, coarsest first:
//   1. Run-level memoization — a finished verification's RunSignature is
//      stored under (module content hash, options fingerprint); a repeat
//      request is answered without executing anything.
//   2. The persisted CacheStore — solver-level UNSAT cores, SAT models and
//      learned clauses seeded into every run's SolverChains, loaded from /
//      saved to the --store file across daemon restarts.
//   3. A warm shared expression interner — repeat runs of the same module
//      re-intern into an already-populated DAG.
//
// The server is single-threaded by design: verification runs themselves
// parallelize through SymexOptions::jobs, and serializing requests keeps
// the store free of write races without locks. Clients connect over a Unix
// domain socket and speak the framed protocol of src/daemon/protocol.h.
#pragma once

#include <string>

#include "src/cache/persist.h"
#include "src/support/metrics.h"
#include "src/symex/expr.h"

namespace overify {
namespace daemon {

struct ServerOptions {
  std::string socket_path;  // Unix socket to listen on (required)
  std::string store_path;   // cache store file; empty = in-memory only
  size_t max_runs = 64;     // run-blob LRU capacity of the store
  bool verbose = false;     // one stderr line per request
};

class DaemonServer {
 public:
  explicit DaemonServer(ServerOptions options);

  // Binds, listens, and serves until a Shutdown request (or a socket-level
  // failure). Returns a process exit code. On shutdown the store is saved
  // to store_path (when set).
  int Run();

  // The daemon's own counters (daemon.* in the metrics registry), exposed
  // for tests driving the server in-process.
  const MetricsShard& metrics() const { return metrics_; }
  CacheStore& store() { return store_; }

 private:
  // Handles one decoded request frame; returns the response frame. Sets
  // `shutdown` when the request asked the server to exit.
  std::vector<uint8_t> Handle(const std::vector<uint8_t>& request, bool& shutdown);
  std::vector<uint8_t> HandleAnalyze(const std::vector<uint8_t>& request);

  ServerOptions options_;
  CacheStore store_;
  ExprInterner warm_interner_{/*concurrent=*/true};
  MetricsShard metrics_;
};

}  // namespace daemon
}  // namespace overify
