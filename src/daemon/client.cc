#include "src/daemon/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "src/support/serialize.h"

namespace overify {
namespace daemon {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& socket_path) {
  Close();
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    error_ = "socket path too long: " + socket_path;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = "socket(): " + std::string(std::strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "connect(" + socket_path + "): " + std::string(std::strerror(errno));
    ::close(fd);
    return false;
  }
  fd_ = fd;
  error_.clear();
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Call(const std::vector<uint8_t>& request, std::vector<uint8_t>& response) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, request)) {
    error_ = "request write failed (daemon gone?)";
    return false;
  }
  if (!ReadFrame(fd_, response)) {
    error_ = "response read failed (daemon gone?)";
    return false;
  }
  return true;
}

bool Client::SimpleCall(RequestTag tag) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(tag));
  std::vector<uint8_t> response;
  if (!Call(w.Take(), response)) {
    return false;
  }
  ByteReader r(response);
  if (r.U8() != 0) {
    error_ = r.Str();
    return false;
  }
  return true;
}

bool Client::Analyze(const AnalyzeRequest& request, AnalyzeReply& reply) {
  std::vector<uint8_t> response;
  if (!Call(EncodeAnalyzeRequest(request), response)) {
    return false;
  }
  if (!DecodeAnalyzeReply(response, reply)) {
    error_ = "malformed analyze reply";
    return false;
  }
  return true;
}

bool Client::Ping() {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RequestTag::kPing));
  std::vector<uint8_t> response;
  if (!Call(w.Take(), response)) {
    return false;
  }
  ByteReader r(response);
  if (r.U8() != 0) {
    error_ = "ping rejected";
    return false;
  }
  const uint32_t version = r.U32();
  if (!r.ok() || version != kDaemonProtocolVersion) {
    error_ = "protocol version mismatch: daemon speaks v" + std::to_string(version) +
             ", client v" + std::to_string(kDaemonProtocolVersion);
    return false;
  }
  return true;
}

bool Client::Stats(StatsReply& reply) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(RequestTag::kStats));
  std::vector<uint8_t> response;
  if (!Call(w.Take(), response)) {
    return false;
  }
  if (!DecodeStatsReply(response, reply)) {
    error_ = "malformed stats reply";
    return false;
  }
  return true;
}

bool Client::SaveStore() { return SimpleCall(RequestTag::kSaveStore); }

bool Client::Shutdown() { return SimpleCall(RequestTag::kShutdown); }

}  // namespace daemon
}  // namespace overify
