#include "src/cache/persist.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "src/ir/module.h"
#include "src/ir/printer.h"
#include "src/support/serialize.h"
#include "src/symex/executor.h"
#include "src/symex/expr_hash.h"

namespace overify {

namespace {

// Checksum over the serialized payload: a PortableHasher fold of 8-byte
// little-endian words plus the tail. Defined on bytes, so it is the same on
// every machine that produced the same payload.
uint64_t PayloadChecksum(const uint8_t* data, size_t size) {
  PortableHasher hasher;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word = 0;
    for (int b = 7; b >= 0; --b) {
      word = (word << 8) | data[i + static_cast<size_t>(b)];
    }
    hasher.Fold(word);
  }
  for (; i < size; ++i) {
    hasher.Fold(data[i]);
  }
  hasher.Fold(static_cast<uint64_t>(size));
  return hasher.hash();
}

void WriteEntry(ByteWriter& w, const PersistedEntry& entry) {
  w.U64(entry.set_hash);
  w.U64(entry.fingerprint);
  w.U8(entry.result);
  w.U64(entry.keys.size());
  for (uint64_t key : entry.keys) {
    w.U64(key);
  }
  w.Blob(entry.model);
  w.U64(entry.clauses.size());
  for (const LearnedClause& clause : entry.clauses) {
    w.U64(clause.lits.size());
    for (const auto& [symbol, value] : clause.lits) {
      w.U16(symbol);
      w.U8(value);
    }
    // Activity is carried as its IEEE-754 bit pattern; it only orders
    // clause eviction, so bit-exactness matters more than readability.
    uint64_t activity_bits;
    static_assert(sizeof(activity_bits) == sizeof(clause.activity), "double is 64-bit");
    std::memcpy(&activity_bits, &clause.activity, sizeof(activity_bits));
    w.U64(activity_bits);
  }
}

bool ReadEntry(ByteReader& r, PersistedEntry& entry) {
  entry.set_hash = r.U64();
  entry.fingerprint = r.U64();
  entry.result = r.U8();
  if (entry.result > 1) {
    return false;  // only kSat/kUnsat are ever persisted
  }
  const uint64_t num_keys = r.U64();
  if (num_keys > r.remaining() / 8) {
    return false;  // length field exceeds the bytes that could back it
  }
  entry.keys.resize(num_keys);
  for (uint64_t& key : entry.keys) {
    key = r.U64();
  }
  entry.model = r.Blob();
  const uint64_t num_clauses = r.U64();
  if (num_clauses > r.remaining() / 8) {
    return false;
  }
  entry.clauses.resize(num_clauses);
  for (LearnedClause& clause : entry.clauses) {
    const uint64_t num_lits = r.U64();
    if (num_lits > r.remaining() / 3) {
      return false;
    }
    clause.lits.resize(num_lits);
    for (auto& [symbol, value] : clause.lits) {
      symbol = r.U16();
      value = r.U8();
    }
    const uint64_t activity_bits = r.U64();
    std::memcpy(&clause.activity, &activity_bits, sizeof(clause.activity));
  }
  return r.ok();
}

}  // namespace

void SeedChain(const RunBlob& blob, SolverChain& chain) {
  for (const PersistedEntry& entry : blob.entries) {
    chain.SeedPersistedEntry(entry.keys, entry.set_hash, entry.fingerprint,
                             entry.result == 0 ? SatResult::kSat : SatResult::kUnsat,
                             entry.model, entry.clauses);
  }
}

void HarvestChain(const SolverChain& chain, RunBlob& blob) {
  std::unordered_set<uint64_t> present;
  present.reserve(blob.entries.size());
  for (const PersistedEntry& entry : blob.entries) {
    present.insert(entry.set_hash);
  }
  chain.cex_cache().ForEachLive([&](const PrefixCache::Entry& live) {
    if (live.result == SatResult::kUnknown || live.unvalidated) {
      // kUnknown never persists; an unvalidated model was loaded from a
      // store and never confirmed this run — re-persisting it would launder
      // it into looking fresh.
      return;
    }
    if (!present.insert(live.set_hash).second) {
      return;
    }
    PersistedEntry entry;
    entry.keys = live.keys;
    entry.set_hash = live.set_hash;
    entry.fingerprint = live.fingerprint;
    entry.result = live.result == SatResult::kSat ? 0 : 1;
    entry.model = live.model;
    entry.clauses = live.clauses;
    blob.entries.push_back(std::move(entry));
  });
}

uint64_t ModuleContentHash(Module& module) {
  const std::string text = PrintModule(module);
  PortableHasher hasher;
  for (char c : text) {
    hasher.Fold(static_cast<uint8_t>(c));
  }
  hasher.Fold(static_cast<uint64_t>(text.size()));
  return hasher.hash();
}

uint64_t OptionsFingerprint(const SymexOptions& options) {
  // Fields that change which constraint sets arise or how they are judged.
  // jobs / shared_interner / metrics_timing / trace_path are deliberately
  // excluded: the scheduler contract makes results worker-count-invariant,
  // so a 1-job warm run may reuse a 8-job cold harvest.
  PortableHasher hasher;
  hasher.Fold(static_cast<uint8_t>(EffectiveStrategy(options)));
  hasher.Fold(static_cast<uint8_t>(options.solver_preprocess ? 1 : 0));
  hasher.Fold(static_cast<uint8_t>(options.solver_learning ? 1 : 0));
  hasher.Fold(static_cast<uint8_t>(options.slice_checks ? 1 : 0));
  hasher.Fold(static_cast<uint8_t>(options.annotations != nullptr ? 1 : 0));
  hasher.Fold(options.search_seed);
  hasher.Fold(static_cast<uint8_t>(options.faults.enabled() ? 1 : 0));
  if (options.faults.enabled()) {
    hasher.Fold(options.faults.seed);
    hasher.Fold(options.faults.period);
    hasher.Fold(options.faults.sites);
    hasher.Fold(options.faults.max_worker_deaths);
  }
  return hasher.hash();
}

RunBlob* CacheStore::FindRun(uint64_t module_hash, uint64_t options_fp) {
  for (RunBlob& blob : runs_) {
    if (blob.module_hash == module_hash && blob.options_fp == options_fp) {
      blob.last_used = ++tick_;
      return &blob;
    }
  }
  return nullptr;
}

RunBlob& CacheStore::PutRun(uint64_t module_hash, uint64_t options_fp) {
  if (RunBlob* existing = FindRun(module_hash, options_fp)) {
    existing->run_signature.clear();
    existing->entries.clear();
    return *existing;
  }
  if (runs_.size() >= max_runs_ && !runs_.empty()) {
    auto lru = std::min_element(runs_.begin(), runs_.end(),
                                [](const RunBlob& a, const RunBlob& b) {
                                  return a.last_used < b.last_used;
                                });
    runs_.erase(lru);
    ++evictions_;
  }
  runs_.emplace_back();
  RunBlob& blob = runs_.back();
  blob.module_hash = module_hash;
  blob.options_fp = options_fp;
  blob.last_used = ++tick_;
  return blob;
}

size_t CacheStore::TotalEntries() const {
  size_t total = 0;
  for (const RunBlob& blob : runs_) {
    total += blob.entries.size();
  }
  return total;
}

std::vector<uint8_t> CacheStore::Serialize() const {
  ByteWriter payload;
  payload.U64(runs_.size());
  for (const RunBlob& blob : runs_) {
    payload.U64(blob.module_hash);
    payload.U64(blob.options_fp);
    payload.U64(blob.last_used);
    payload.Str(blob.run_signature);
    payload.U64(blob.entries.size());
    for (const PersistedEntry& entry : blob.entries) {
      WriteEntry(payload, entry);
    }
  }

  ByteWriter file;
  file.U64(kCacheStoreMagic);
  file.U32(kCacheStoreVersion);
  file.U64(payload.bytes().size());
  const uint64_t checksum = PayloadChecksum(payload.bytes().data(), payload.bytes().size());
  for (uint8_t b : payload.bytes()) {
    file.U8(b);
  }
  file.U64(checksum);
  return file.Take();
}

bool CacheStore::Deserialize(const std::vector<uint8_t>& bytes) {
  runs_.clear();
  tick_ = 0;
  load_error_.clear();

  ByteReader r(bytes);
  if (r.U64() != kCacheStoreMagic) {
    load_error_ = "bad magic (not a cache store)";
    return false;
  }
  const uint32_t version = r.U32();
  if (version != kCacheStoreVersion) {
    load_error_ = "version mismatch (store v" + std::to_string(version) + ", expected v" +
                  std::to_string(kCacheStoreVersion) + ")";
    return false;
  }
  const uint64_t payload_size = r.U64();
  if (!r.ok() || payload_size + 8 != r.remaining()) {
    load_error_ = "truncated or oversized payload";
    return false;
  }
  const uint8_t* payload = bytes.data() + (bytes.size() - r.remaining());
  const uint64_t expected = PayloadChecksum(payload, payload_size);

  ByteReader body(payload, payload_size);
  const uint64_t num_runs = body.U64();
  if (num_runs > payload_size) {
    load_error_ = "corrupt run count";
    return false;
  }
  std::vector<RunBlob> runs;
  runs.reserve(num_runs);
  for (uint64_t i = 0; i < num_runs; ++i) {
    RunBlob blob;
    blob.module_hash = body.U64();
    blob.options_fp = body.U64();
    blob.last_used = body.U64();
    blob.run_signature = body.Str();
    const uint64_t num_entries = body.U64();
    if (num_entries > payload_size) {
      load_error_ = "corrupt entry count";
      return false;
    }
    blob.entries.resize(num_entries);
    for (PersistedEntry& entry : blob.entries) {
      if (!ReadEntry(body, entry)) {
        load_error_ = "corrupt entry";
        return false;
      }
    }
    tick_ = std::max(tick_, blob.last_used);
    runs.push_back(std::move(blob));
  }
  if (!body.AtEnd()) {
    load_error_ = "trailing or missing payload bytes";
    return false;
  }
  // Checksum verified after structural parsing so the error message can be
  // specific, but before the parsed runs are adopted — a corrupted store
  // never contributes a single entry.
  ByteReader tail(payload + payload_size, 8);
  if (tail.U64() != expected) {
    load_error_ = "checksum mismatch";
    return false;
  }
  runs_ = std::move(runs);
  return true;
}

bool CacheStore::Load(const std::string& path) {
  runs_.clear();
  load_error_.clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    load_error_ = "cannot open " + path;
    return false;
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return Deserialize(bytes);
}

bool CacheStore::Save(const std::string& path) const {
  const std::vector<uint8_t> bytes = Serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace overify
