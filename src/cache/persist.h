// Persistent cross-run verification cache (docs/daemon.md).
//
// A CacheStore holds the harvest of previous verification runs — per
// (module content hash, options fingerprint) "run blobs" carrying the run's
// determinism signature and the counterexample cache's live entries (UNSAT
// cores, SAT models, learned clauses) — and serializes them to a versioned,
// checksummed on-disk file. A later run (or a warm daemon serving many
// runs) seeds its SolverChains from the matching blob, so solver queries
// whose constraint sets were answered in a previous process are answered
// from the store.
//
// Everything in a blob is addressed by portable content hashes
// (src/symex/expr_hash.h): entry identity survives processes, machines, and
// interner creation orders. Trust is asymmetric by design: UNSAT verdicts
// are covered by the 128-bit entry identity plus the store checksum, while
// SAT models are seeded *unvalidated* and re-checked against live
// constraints at first use — a corrupted or stale store degrades to a cache
// miss, never a wrong verdict.
//
// Any load failure (missing file, bad magic, version mismatch, checksum
// mismatch, truncation) leaves the store empty and records a reason:
// callers fall back to a cold run. Saves are atomic (tmp + rename) so a
// crashed writer can only lose the new store, not corrupt the old one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/symex/solver.h"

namespace overify {

class Module;
struct SymexOptions;

// Bump on ANY change to the serialized layout *or* to the definition of the
// portable content hash (src/symex/expr_hash.cc) — stores written under a
// different definition must be rejected wholesale, not reinterpreted.
constexpr uint32_t kCacheStoreVersion = 1;

// "OVFYCACH" little-endian.
constexpr uint64_t kCacheStoreMagic = 0x484341435946564Full;

// One persisted counterexample-cache entry. Field meanings match
// PrefixCache::Entry; `result` is 0 = kSat, 1 = kUnsat (kUnknown is never
// cached, live or persisted).
struct PersistedEntry {
  std::vector<uint64_t> keys;  // ascending per-constraint structural hashes
  uint64_t set_hash = 0;
  uint64_t fingerprint = 0;  // portable content fingerprint
  uint8_t result = 0;
  std::vector<uint8_t> model;
  std::vector<LearnedClause> clauses;
};

// The harvest of one (module, options) verification run.
struct RunBlob {
  uint64_t module_hash = 0;  // ModuleContentHash of the verified module
  uint64_t options_fp = 0;   // OptionsFingerprint of the run's options
  // RunSignature::ToString() of the run that produced the entries. The
  // daemon returns it for run-level hits, and the warm/cold differential
  // compares it bit-for-bit against a cold in-process run.
  std::string run_signature;
  std::vector<PersistedEntry> entries;
  uint64_t last_used = 0;  // logical LRU tick, maintained by CacheStore
};

class SolverChain;

// Seeds `chain`'s counterexample cache with every entry of `blob`
// (SAT models arrive unvalidated; see SolverChain::SeedPersistedEntry).
void SeedChain(const RunBlob& blob, SolverChain& chain);

// Appends `chain`'s live cache entries to `blob`, skipping set hashes the
// blob already holds — multi-worker runs harvest one chain after another
// into the same blob.
void HarvestChain(const SolverChain& chain, RunBlob& blob);

// The portable content hash of a module: a fold of its canonical printed
// form, so two processes that compiled the same source agree independently
// of pointer identity or pass ordering accidents.
uint64_t ModuleContentHash(Module& module);

// Fingerprint of the SymexOptions fields that change solver behavior or
// verdicts. Two runs may share cache entries only when these match.
uint64_t OptionsFingerprint(const SymexOptions& options);

class CacheStore {
 public:
  explicit CacheStore(size_t max_runs = 64) : max_runs_(max_runs) {}

  // Replaces the store's contents from `path`. Returns false — leaving the
  // store empty, with the reason in load_error() — on any defect; the
  // caller proceeds cold.
  bool Load(const std::string& path);
  // Atomic save: writes `path`.tmp, then renames over `path`.
  bool Save(const std::string& path) const;
  const std::string& load_error() const { return load_error_; }

  // The blob for (module_hash, options_fp), bumping its LRU tick; null when
  // the store has no matching run.
  RunBlob* FindRun(uint64_t module_hash, uint64_t options_fp);
  // Creates (or resets) the blob for (module_hash, options_fp), evicting
  // the least-recently-used run beyond max_runs.
  RunBlob& PutRun(uint64_t module_hash, uint64_t options_fp);

  // Byte-level round trip (the on-disk payload; tests and the daemon's
  // stats endpoint reuse it).
  std::vector<uint8_t> Serialize() const;
  // Full-file deserialization including magic/version/checksum envelope.
  bool Deserialize(const std::vector<uint8_t>& bytes);

  size_t runs() const { return runs_.size(); }
  uint64_t evictions() const { return evictions_; }
  size_t TotalEntries() const;

 private:
  size_t max_runs_;
  std::vector<RunBlob> runs_;
  uint64_t tick_ = 0;
  uint64_t evictions_ = 0;
  std::string load_error_;
};

}  // namespace overify
