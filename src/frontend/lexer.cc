#include "src/frontend/lexer.h"

#include <cctype>
#include <map>

#include "src/support/string_utils.h"

namespace overify {

const char* TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kEof:
      return "end of file";
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kIntLit:
      return "integer literal";
    case TokKind::kStringLit:
      return "string literal";
    default:
      return "token";
  }
}

CLexer::CLexer(std::string source, DiagnosticEngine& diags)
    : source_(std::move(source)), diags_(diags) {}

std::vector<CToken> CLexer::Tokenize() {
  std::vector<CToken> tokens;
  while (true) {
    CToken tok = Next();
    tokens.push_back(tok);
    if (tok.kind == TokKind::kEof || diags_.HasErrors()) {
      break;
    }
  }
  if (tokens.empty() || tokens.back().kind != TokKind::kEof) {
    CToken eof;
    eof.loc = Loc();
    tokens.push_back(eof);
  }
  return tokens;
}

SourceLoc CLexer::Loc() const {
  return SourceLoc{static_cast<uint32_t>(line_), static_cast<uint32_t>(pos_ - line_start_ + 1)};
}

char CLexer::Peek(size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

bool CLexer::Match(char c) {
  if (Peek() == c) {
    ++pos_;
    return true;
  }
  return false;
}

void CLexer::SkipWhitespaceAndComments() {
  while (pos_ < source_.size()) {
    char c = source_[pos_];
    if (c == '\n') {
      ++pos_;
      ++line_;
      line_start_ = pos_;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      ++pos_;
    } else if (c == '/' && Peek(1) == '/') {
      while (pos_ < source_.size() && source_[pos_] != '\n') {
        ++pos_;
      }
    } else if (c == '/' && Peek(1) == '*') {
      pos_ += 2;
      while (pos_ < source_.size() && !(Peek() == '*' && Peek(1) == '/')) {
        if (source_[pos_] == '\n') {
          ++line_;
          line_start_ = pos_ + 1;
        }
        ++pos_;
      }
      pos_ = std::min(pos_ + 2, source_.size());
    } else {
      break;
    }
  }
}

int64_t CLexer::LexEscape() {
  // Called after the backslash.
  char c = Peek();
  ++pos_;
  switch (c) {
    case 'n':
      return '\n';
    case 't':
      return '\t';
    case 'r':
      return '\r';
    case '0':
      return '\0';
    case 'a':
      return '\a';
    case 'b':
      return '\b';
    case 'f':
      return '\f';
    case 'v':
      return '\v';
    case '\\':
      return '\\';
    case '\'':
      return '\'';
    case '"':
      return '"';
    case 'x': {
      int value = 0;
      while (isxdigit(static_cast<unsigned char>(Peek()))) {
        char h = Peek();
        int digit = h <= '9' ? h - '0' : (h | 32) - 'a' + 10;
        value = value * 16 + digit;
        ++pos_;
      }
      return value;
    }
    default:
      diags_.Error(Loc(), StrFormat("unknown escape sequence '\\%c'", c));
      return c;
  }
}

CToken CLexer::Next() {
  SkipWhitespaceAndComments();
  CToken tok;
  tok.loc = Loc();
  if (pos_ >= source_.size()) {
    tok.kind = TokKind::kEof;
    return tok;
  }

  char c = source_[pos_];

  if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (pos_ < source_.size() &&
           (isalnum(static_cast<unsigned char>(source_[pos_])) || source_[pos_] == '_')) {
      ++pos_;
    }
    tok.text = source_.substr(start, pos_ - start);
    static const std::map<std::string, TokKind> kKeywords = {
        {"void", TokKind::kKwVoid},     {"char", TokKind::kKwChar},
        {"int", TokKind::kKwInt},       {"long", TokKind::kKwLong},
        {"unsigned", TokKind::kKwUnsigned}, {"signed", TokKind::kKwSigned},
        {"const", TokKind::kKwConst},   {"if", TokKind::kKwIf},
        {"else", TokKind::kKwElse},     {"while", TokKind::kKwWhile},
        {"do", TokKind::kKwDo},         {"for", TokKind::kKwFor},
        {"return", TokKind::kKwReturn}, {"break", TokKind::kKwBreak},
        {"continue", TokKind::kKwContinue}, {"sizeof", TokKind::kKwSizeof},
    };
    auto it = kKeywords.find(tok.text);
    tok.kind = it == kKeywords.end() ? TokKind::kIdent : it->second;
    return tok;
  }

  if (isdigit(static_cast<unsigned char>(c))) {
    tok.kind = TokKind::kIntLit;
    int64_t value = 0;
    if (c == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      pos_ += 2;
      while (isxdigit(static_cast<unsigned char>(Peek()))) {
        char h = Peek();
        int digit = h <= '9' ? h - '0' : (h | 32) - 'a' + 10;
        value = value * 16 + digit;
        ++pos_;
      }
    } else {
      while (isdigit(static_cast<unsigned char>(Peek()))) {
        value = value * 10 + (Peek() - '0');
        ++pos_;
      }
    }
    // Integer suffixes (u, U, l, L) do not change the value in MiniC.
    while (Peek() == 'u' || Peek() == 'U' || Peek() == 'l' || Peek() == 'L') {
      ++pos_;
    }
    tok.int_value = value;
    return tok;
  }

  if (c == '\'') {
    ++pos_;
    tok.kind = TokKind::kIntLit;
    if (Peek() == '\\') {
      ++pos_;
      tok.int_value = LexEscape();
    } else {
      tok.int_value = static_cast<unsigned char>(Peek());
      ++pos_;
    }
    if (!Match('\'')) {
      diags_.Error(tok.loc, "unterminated character literal");
    }
    return tok;
  }

  if (c == '"') {
    ++pos_;
    tok.kind = TokKind::kStringLit;
    while (pos_ < source_.size() && Peek() != '"') {
      if (Peek() == '\\') {
        ++pos_;
        tok.text += static_cast<char>(LexEscape());
      } else {
        if (Peek() == '\n') {
          diags_.Error(tok.loc, "unterminated string literal");
          return tok;
        }
        tok.text += Peek();
        ++pos_;
      }
    }
    if (!Match('"')) {
      diags_.Error(tok.loc, "unterminated string literal");
    }
    return tok;
  }

  ++pos_;
  switch (c) {
    case '(':
      tok.kind = TokKind::kLParen;
      return tok;
    case ')':
      tok.kind = TokKind::kRParen;
      return tok;
    case '{':
      tok.kind = TokKind::kLBrace;
      return tok;
    case '}':
      tok.kind = TokKind::kRBrace;
      return tok;
    case '[':
      tok.kind = TokKind::kLBracket;
      return tok;
    case ']':
      tok.kind = TokKind::kRBracket;
      return tok;
    case ';':
      tok.kind = TokKind::kSemi;
      return tok;
    case ',':
      tok.kind = TokKind::kComma;
      return tok;
    case '?':
      tok.kind = TokKind::kQuestion;
      return tok;
    case ':':
      tok.kind = TokKind::kColon;
      return tok;
    case '~':
      tok.kind = TokKind::kTilde;
      return tok;
    case '+':
      tok.kind = Match('+') ? TokKind::kPlusPlus
                 : Match('=') ? TokKind::kPlusAssign
                              : TokKind::kPlus;
      return tok;
    case '-':
      tok.kind = Match('-') ? TokKind::kMinusMinus
                 : Match('=') ? TokKind::kMinusAssign
                              : TokKind::kMinus;
      return tok;
    case '*':
      tok.kind = Match('=') ? TokKind::kStarAssign : TokKind::kStar;
      return tok;
    case '/':
      tok.kind = Match('=') ? TokKind::kSlashAssign : TokKind::kSlash;
      return tok;
    case '%':
      tok.kind = Match('=') ? TokKind::kPercentAssign : TokKind::kPercent;
      return tok;
    case '&':
      tok.kind = Match('&') ? TokKind::kAmpAmp
                 : Match('=') ? TokKind::kAmpAssign
                              : TokKind::kAmp;
      return tok;
    case '|':
      tok.kind = Match('|') ? TokKind::kPipePipe
                 : Match('=') ? TokKind::kPipeAssign
                              : TokKind::kPipe;
      return tok;
    case '^':
      tok.kind = Match('=') ? TokKind::kCaretAssign : TokKind::kCaret;
      return tok;
    case '!':
      tok.kind = Match('=') ? TokKind::kNe : TokKind::kBang;
      return tok;
    case '=':
      tok.kind = Match('=') ? TokKind::kEq : TokKind::kAssign;
      return tok;
    case '<':
      if (Match('<')) {
        tok.kind = Match('=') ? TokKind::kShlAssign : TokKind::kShl;
      } else {
        tok.kind = Match('=') ? TokKind::kLe : TokKind::kLt;
      }
      return tok;
    case '>':
      if (Match('>')) {
        tok.kind = Match('=') ? TokKind::kShrAssign : TokKind::kShr;
      } else {
        tok.kind = Match('=') ? TokKind::kGe : TokKind::kGt;
      }
      return tok;
    default:
      diags_.Error(tok.loc, StrFormat("unexpected character '%c'", c));
      tok.kind = TokKind::kEof;
      return tok;
  }
}

}  // namespace overify
