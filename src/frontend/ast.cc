#include "src/frontend/ast.h"

namespace overify {

CTypeContext::CTypeContext() {
  auto make = [this](CTypeKind kind) {
    types_.push_back(std::unique_ptr<CType>(new CType(kind, nullptr, 0)));
    return types_.back().get();
  };
  basics_[0] = make(CTypeKind::kVoid);
  basics_[1] = make(CTypeKind::kChar);
  basics_[2] = make(CTypeKind::kUChar);
  basics_[3] = make(CTypeKind::kInt);
  basics_[4] = make(CTypeKind::kUInt);
  basics_[5] = make(CTypeKind::kLong);
  basics_[6] = make(CTypeKind::kULong);
}

CType* CTypeContext::Void() { return basics_[0]; }
CType* CTypeContext::Char() { return basics_[1]; }
CType* CTypeContext::UChar() { return basics_[2]; }
CType* CTypeContext::Int() { return basics_[3]; }
CType* CTypeContext::UInt() { return basics_[4]; }
CType* CTypeContext::Long() { return basics_[5]; }
CType* CTypeContext::ULong() { return basics_[6]; }

CType* CTypeContext::Pointer(CType* pointee) {
  for (auto& [key, type] : pointer_cache_) {
    if (key == pointee) {
      return type;
    }
  }
  types_.push_back(std::unique_ptr<CType>(new CType(CTypeKind::kPointer, pointee, 0)));
  pointer_cache_.push_back({pointee, types_.back().get()});
  return types_.back().get();
}

CType* CTypeContext::Array(CType* element, uint64_t count) {
  for (auto& [key, type] : array_cache_) {
    if (key.first == element && key.second == count) {
      return type;
    }
  }
  types_.push_back(std::unique_ptr<CType>(new CType(CTypeKind::kArray, element, count)));
  array_cache_.push_back({{element, count}, types_.back().get()});
  return types_.back().get();
}

unsigned CType::BitWidth() const {
  switch (kind_) {
    case CTypeKind::kChar:
    case CTypeKind::kUChar:
      return 8;
    case CTypeKind::kInt:
    case CTypeKind::kUInt:
      return 32;
    case CTypeKind::kLong:
    case CTypeKind::kULong:
    case CTypeKind::kPointer:
      return 64;
    default:
      OVERIFY_UNREACHABLE("BitWidth() of non-scalar type");
  }
}

int CType::Rank() const {
  switch (kind_) {
    case CTypeKind::kChar:
    case CTypeKind::kUChar:
      return 1;
    case CTypeKind::kInt:
    case CTypeKind::kUInt:
      return 2;
    case CTypeKind::kLong:
    case CTypeKind::kULong:
      return 3;
    default:
      return 0;
  }
}

std::string CType::ToString() const {
  switch (kind_) {
    case CTypeKind::kVoid:
      return "void";
    case CTypeKind::kChar:
      return "char";
    case CTypeKind::kUChar:
      return "unsigned char";
    case CTypeKind::kInt:
      return "int";
    case CTypeKind::kUInt:
      return "unsigned int";
    case CTypeKind::kLong:
      return "long";
    case CTypeKind::kULong:
      return "unsigned long";
    case CTypeKind::kPointer:
      return pointee_->ToString() + "*";
    case CTypeKind::kArray:
      return pointee_->ToString() + "[" + std::to_string(count_) + "]";
  }
  return "?";
}

}  // namespace overify
