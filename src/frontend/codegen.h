// MiniC -> VIR code generation (with integrated type checking).
//
// Code is emitted naively, the way a non-optimizing C compiler would: every
// local lives in an alloca, short-circuit operators branch, comparisons
// produce icmp+zext. That naivety is load-bearing: it is exactly the -O0
// baseline whose verification cost Table 1 of the paper measures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/support/diagnostics.h"

namespace overify {

struct MiniCSource {
  std::string code;
  // Functions from this source are marked Function::is_libc (the -OVERIFY
  // pipeline always-inlines them).
  bool is_libc = false;
};

// Compiles the given sources (in order, sharing one symbol table) into a
// fresh module. Returns null and fills `diags` on error.
std::unique_ptr<Module> CompileMiniC(const std::vector<MiniCSource>& sources,
                                     const std::string& module_name, DiagnosticEngine& diags);

// Single-source convenience wrapper.
std::unique_ptr<Module> CompileMiniC(const std::string& source, const std::string& module_name,
                                     DiagnosticEngine& diags);

}  // namespace overify
