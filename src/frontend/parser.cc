#include "src/frontend/parser.h"

#include "src/frontend/lexer.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

class MiniCParser {
 public:
  MiniCParser(std::vector<CToken> tokens, CTypeContext& types, DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), types_(types), diags_(diags) {}

  std::unique_ptr<CTranslationUnit> Run() {
    auto unit = std::make_unique<CTranslationUnit>();
    while (Cur().kind != TokKind::kEof && !diags_.HasErrors()) {
      ParseTopLevel(*unit);
    }
    if (diags_.HasErrors()) {
      return nullptr;
    }
    return unit;
  }

 private:
  const CToken& Cur() const { return tokens_[pos_]; }
  const CToken& Ahead(size_t n) const {
    size_t index = pos_ + n;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }
  bool At(TokKind kind) const { return Cur().kind == kind; }
  bool Eat(TokKind kind) {
    if (At(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  void Error(const std::string& message) {
    if (!diags_.HasErrors()) {
      diags_.Error(Cur().loc, message);
    }
  }
  bool Expect(TokKind kind, const char* what) {
    if (!Eat(kind)) {
      Error(StrFormat("expected %s", what));
      return false;
    }
    return true;
  }

  static bool IsTypeStart(TokKind kind) {
    switch (kind) {
      case TokKind::kKwVoid:
      case TokKind::kKwChar:
      case TokKind::kKwInt:
      case TokKind::kKwLong:
      case TokKind::kKwUnsigned:
      case TokKind::kKwSigned:
      case TokKind::kKwConst:
        return true;
      default:
        return false;
    }
  }

  // type-specifier := const? (void | [signed|unsigned] (char|int|long)?) const?
  // Returns null on error. Sets *is_const when a const qualifier was seen.
  CType* ParseTypeSpecifier(bool* is_const = nullptr) {
    bool konst = Eat(TokKind::kKwConst);
    CType* base = nullptr;
    if (Eat(TokKind::kKwVoid)) {
      base = types_.Void();
    } else if (Eat(TokKind::kKwChar)) {
      base = types_.Char();
    } else if (Eat(TokKind::kKwInt)) {
      base = types_.Int();
    } else if (Eat(TokKind::kKwLong)) {
      Eat(TokKind::kKwInt);  // "long int"
      base = types_.Long();
    } else if (Eat(TokKind::kKwSigned)) {
      if (Eat(TokKind::kKwChar)) {
        base = types_.Char();
      } else if (Eat(TokKind::kKwLong)) {
        Eat(TokKind::kKwInt);
        base = types_.Long();
      } else {
        Eat(TokKind::kKwInt);
        base = types_.Int();
      }
    } else if (Eat(TokKind::kKwUnsigned)) {
      if (Eat(TokKind::kKwChar)) {
        base = types_.UChar();
      } else if (Eat(TokKind::kKwLong)) {
        Eat(TokKind::kKwInt);
        base = types_.ULong();
      } else {
        Eat(TokKind::kKwInt);
        base = types_.UInt();
      }
    } else {
      Error("expected type");
      return nullptr;
    }
    konst |= Eat(TokKind::kKwConst);
    // Pointer declarators.
    while (Eat(TokKind::kStar)) {
      base = types_.Pointer(base);
      konst = Eat(TokKind::kKwConst) || false;  // `T* const` qualifies the pointer
    }
    if (is_const != nullptr) {
      *is_const = konst;
    }
    return base;
  }

  void ParseTopLevel(CTranslationUnit& unit) {
    bool is_const = false;
    SourceLoc loc = Cur().loc;
    CType* type = ParseTypeSpecifier(&is_const);
    if (type == nullptr) {
      return;
    }
    if (!At(TokKind::kIdent)) {
      Error("expected name");
      return;
    }
    std::string name = Cur().text;
    Advance();

    if (At(TokKind::kLParen)) {
      ParseFunctionRest(unit, loc, type, std::move(name));
      return;
    }
    // Global variable.
    auto global = std::make_unique<CGlobalDecl>();
    global->loc = loc;
    global->name = std::move(name);
    global->is_const = is_const;
    CType* full_type = type;
    if (Eat(TokKind::kLBracket)) {
      if (!At(TokKind::kIntLit)) {
        Error("expected array size");
        return;
      }
      uint64_t count = static_cast<uint64_t>(Cur().int_value);
      Advance();
      Expect(TokKind::kRBracket, "']'");
      full_type = types_.Array(type, count);
    }
    global->type = full_type;
    if (Eat(TokKind::kAssign)) {
      if (At(TokKind::kStringLit)) {
        global->has_string_init = true;
        global->string_init = Cur().text;
        Advance();
      } else if (Eat(TokKind::kLBrace)) {
        global->has_init_list = true;
        if (!At(TokKind::kRBrace)) {
          global->init_list.push_back(ParseAssign());
          while (Eat(TokKind::kComma)) {
            if (At(TokKind::kRBrace)) {
              break;  // trailing comma
            }
            global->init_list.push_back(ParseAssign());
          }
        }
        Expect(TokKind::kRBrace, "'}'");
      } else {
        global->init = ParseAssign();
      }
    }
    Expect(TokKind::kSemi, "';'");
    unit.globals.push_back(std::move(global));
  }

  void ParseFunctionRest(CTranslationUnit& unit, SourceLoc loc, CType* return_type,
                         std::string name) {
    auto fn = std::make_unique<CFunctionDecl>();
    fn->loc = loc;
    fn->name = std::move(name);
    fn->return_type = return_type;
    Expect(TokKind::kLParen, "'('");
    if (!At(TokKind::kRParen)) {
      if (At(TokKind::kKwVoid) && Ahead(1).kind == TokKind::kRParen) {
        Advance();  // f(void)
      } else {
        while (true) {
          CParam param;
          param.type = ParseTypeSpecifier();
          if (param.type == nullptr) {
            return;
          }
          if (At(TokKind::kIdent)) {
            param.name = Cur().text;
            Advance();
          }
          if (Eat(TokKind::kLBracket)) {
            // Array parameters decay to pointers; size (if any) is ignored.
            if (At(TokKind::kIntLit)) {
              Advance();
            }
            Expect(TokKind::kRBracket, "']'");
            param.type = types_.Pointer(param.type);
          }
          fn->params.push_back(std::move(param));
          if (!Eat(TokKind::kComma)) {
            break;
          }
        }
      }
    }
    Expect(TokKind::kRParen, "')'");
    if (Eat(TokKind::kSemi)) {
      unit.functions.push_back(std::move(fn));  // prototype
      return;
    }
    fn->body = ParseBlock();
    unit.functions.push_back(std::move(fn));
  }

  std::unique_ptr<CStmt> ParseBlock() {
    auto block = std::make_unique<CStmt>(CStmtKind::kBlock, Cur().loc);
    if (!Expect(TokKind::kLBrace, "'{'")) {
      return block;
    }
    while (!At(TokKind::kRBrace) && !At(TokKind::kEof) && !diags_.HasErrors()) {
      block->stmts.push_back(ParseStatement());
    }
    Expect(TokKind::kRBrace, "'}'");
    return block;
  }

  std::unique_ptr<CStmt> ParseDeclStatement() {
    SourceLoc loc = Cur().loc;
    CType* type = ParseTypeSpecifier();
    auto stmt = std::make_unique<CStmt>(CStmtKind::kDecl, loc);
    if (type == nullptr) {
      return stmt;
    }
    if (!At(TokKind::kIdent)) {
      Error("expected variable name");
      return stmt;
    }
    stmt->decl_name = Cur().text;
    Advance();
    if (Eat(TokKind::kLBracket)) {
      if (!At(TokKind::kIntLit)) {
        Error("expected array size");
        return stmt;
      }
      type = types_.Array(type, static_cast<uint64_t>(Cur().int_value));
      Advance();
      Expect(TokKind::kRBracket, "']'");
    }
    stmt->decl_type = type;
    if (Eat(TokKind::kAssign)) {
      if (Eat(TokKind::kLBrace)) {
        stmt->has_init_list = true;
        if (!At(TokKind::kRBrace)) {
          stmt->init_list.push_back(ParseAssign());
          while (Eat(TokKind::kComma)) {
            if (At(TokKind::kRBrace)) {
              break;
            }
            stmt->init_list.push_back(ParseAssign());
          }
        }
        Expect(TokKind::kRBrace, "'}'");
      } else {
        stmt->init = ParseAssign();
      }
    }
    Expect(TokKind::kSemi, "';'");
    return stmt;
  }

  std::unique_ptr<CStmt> ParseStatement() {
    SourceLoc loc = Cur().loc;
    switch (Cur().kind) {
      case TokKind::kLBrace:
        return ParseBlock();
      case TokKind::kSemi: {
        Advance();
        return std::make_unique<CStmt>(CStmtKind::kEmpty, loc);
      }
      case TokKind::kKwIf: {
        Advance();
        auto stmt = std::make_unique<CStmt>(CStmtKind::kIf, loc);
        Expect(TokKind::kLParen, "'('");
        stmt->cond = ParseExpr();
        Expect(TokKind::kRParen, "')'");
        stmt->then_branch = ParseStatement();
        if (Eat(TokKind::kKwElse)) {
          stmt->else_branch = ParseStatement();
        }
        return stmt;
      }
      case TokKind::kKwWhile: {
        Advance();
        auto stmt = std::make_unique<CStmt>(CStmtKind::kWhile, loc);
        Expect(TokKind::kLParen, "'('");
        stmt->cond = ParseExpr();
        Expect(TokKind::kRParen, "')'");
        stmt->body = ParseStatement();
        return stmt;
      }
      case TokKind::kKwDo: {
        Advance();
        auto stmt = std::make_unique<CStmt>(CStmtKind::kDoWhile, loc);
        stmt->body = ParseStatement();
        if (!Eat(TokKind::kKwWhile)) {
          Error("expected 'while' after do-body");
          return stmt;
        }
        Expect(TokKind::kLParen, "'('");
        stmt->cond = ParseExpr();
        Expect(TokKind::kRParen, "')'");
        Expect(TokKind::kSemi, "';'");
        return stmt;
      }
      case TokKind::kKwFor: {
        Advance();
        auto stmt = std::make_unique<CStmt>(CStmtKind::kFor, loc);
        Expect(TokKind::kLParen, "'('");
        if (!At(TokKind::kSemi)) {
          if (IsTypeStart(Cur().kind)) {
            stmt->for_init = ParseDeclStatement();  // consumes the ';'
          } else {
            auto init = std::make_unique<CStmt>(CStmtKind::kExpr, Cur().loc);
            init->expr = ParseExpr();
            stmt->for_init = std::move(init);
            Expect(TokKind::kSemi, "';'");
          }
        } else {
          Advance();
        }
        if (!At(TokKind::kSemi)) {
          stmt->cond = ParseExpr();
        }
        Expect(TokKind::kSemi, "';'");
        if (!At(TokKind::kRParen)) {
          stmt->for_step = ParseExpr();
        }
        Expect(TokKind::kRParen, "')'");
        stmt->body = ParseStatement();
        return stmt;
      }
      case TokKind::kKwReturn: {
        Advance();
        auto stmt = std::make_unique<CStmt>(CStmtKind::kReturn, loc);
        if (!At(TokKind::kSemi)) {
          stmt->expr = ParseExpr();
        }
        Expect(TokKind::kSemi, "';'");
        return stmt;
      }
      case TokKind::kKwBreak: {
        Advance();
        Expect(TokKind::kSemi, "';'");
        return std::make_unique<CStmt>(CStmtKind::kBreak, loc);
      }
      case TokKind::kKwContinue: {
        Advance();
        Expect(TokKind::kSemi, "';'");
        return std::make_unique<CStmt>(CStmtKind::kContinue, loc);
      }
      default:
        if (IsTypeStart(Cur().kind)) {
          return ParseDeclStatement();
        }
        auto stmt = std::make_unique<CStmt>(CStmtKind::kExpr, loc);
        stmt->expr = ParseExpr();
        Expect(TokKind::kSemi, "';'");
        return stmt;
    }
  }

  // ---- Expressions ----

  std::unique_ptr<CExpr> ParseExpr() {
    auto lhs = ParseAssign();
    while (At(TokKind::kComma)) {
      SourceLoc loc = Cur().loc;
      Advance();
      auto expr = std::make_unique<CExpr>(CExprKind::kComma, loc);
      expr->children.push_back(std::move(lhs));
      expr->children.push_back(ParseAssign());
      lhs = std::move(expr);
    }
    return lhs;
  }

  static bool IsAssignOp(TokKind kind) {
    switch (kind) {
      case TokKind::kAssign:
      case TokKind::kPlusAssign:
      case TokKind::kMinusAssign:
      case TokKind::kStarAssign:
      case TokKind::kSlashAssign:
      case TokKind::kPercentAssign:
      case TokKind::kAmpAssign:
      case TokKind::kPipeAssign:
      case TokKind::kCaretAssign:
      case TokKind::kShlAssign:
      case TokKind::kShrAssign:
        return true;
      default:
        return false;
    }
  }

  std::unique_ptr<CExpr> ParseAssign() {
    auto lhs = ParseConditional();
    if (IsAssignOp(Cur().kind)) {
      SourceLoc loc = Cur().loc;
      TokKind op = Cur().kind;
      Advance();
      auto expr = std::make_unique<CExpr>(CExprKind::kAssign, loc);
      expr->op = op;
      expr->children.push_back(std::move(lhs));
      expr->children.push_back(ParseAssign());  // right associative
      return expr;
    }
    return lhs;
  }

  std::unique_ptr<CExpr> ParseConditional() {
    auto cond = ParseBinary(0);
    if (!At(TokKind::kQuestion)) {
      return cond;
    }
    SourceLoc loc = Cur().loc;
    Advance();
    auto expr = std::make_unique<CExpr>(CExprKind::kCond, loc);
    expr->children.push_back(std::move(cond));
    expr->children.push_back(ParseExpr());
    Expect(TokKind::kColon, "':'");
    expr->children.push_back(ParseConditional());
    return expr;
  }

  static int BinaryPrecedence(TokKind kind) {
    switch (kind) {
      case TokKind::kPipePipe:
        return 1;
      case TokKind::kAmpAmp:
        return 2;
      case TokKind::kPipe:
        return 3;
      case TokKind::kCaret:
        return 4;
      case TokKind::kAmp:
        return 5;
      case TokKind::kEq:
      case TokKind::kNe:
        return 6;
      case TokKind::kLt:
      case TokKind::kGt:
      case TokKind::kLe:
      case TokKind::kGe:
        return 7;
      case TokKind::kShl:
      case TokKind::kShr:
        return 8;
      case TokKind::kPlus:
      case TokKind::kMinus:
        return 9;
      case TokKind::kStar:
      case TokKind::kSlash:
      case TokKind::kPercent:
        return 10;
      default:
        return -1;
    }
  }

  std::unique_ptr<CExpr> ParseBinary(int min_prec) {
    auto lhs = ParseUnary();
    while (true) {
      int prec = BinaryPrecedence(Cur().kind);
      if (prec < 0 || prec < min_prec) {
        return lhs;
      }
      TokKind op = Cur().kind;
      SourceLoc loc = Cur().loc;
      Advance();
      auto rhs = ParseBinary(prec + 1);
      auto expr = std::make_unique<CExpr>(CExprKind::kBinary, loc);
      expr->op = op;
      expr->children.push_back(std::move(lhs));
      expr->children.push_back(std::move(rhs));
      lhs = std::move(expr);
    }
  }

  std::unique_ptr<CExpr> ParseUnary() {
    SourceLoc loc = Cur().loc;
    switch (Cur().kind) {
      case TokKind::kPlus:
        Advance();
        return ParseUnary();  // unary plus is a no-op
      case TokKind::kMinus:
      case TokKind::kTilde:
      case TokKind::kBang:
      case TokKind::kStar:
      case TokKind::kAmp: {
        char op = Cur().kind == TokKind::kMinus   ? '-'
                  : Cur().kind == TokKind::kTilde ? '~'
                  : Cur().kind == TokKind::kBang  ? '!'
                  : Cur().kind == TokKind::kStar  ? '*'
                                                  : '&';
        Advance();
        auto expr = std::make_unique<CExpr>(CExprKind::kUnary, loc);
        expr->unary_op = op;
        expr->children.push_back(ParseUnary());
        return expr;
      }
      case TokKind::kPlusPlus:
      case TokKind::kMinusMinus: {
        TokKind op = Cur().kind;
        Advance();
        auto expr = std::make_unique<CExpr>(CExprKind::kIncDec, loc);
        expr->op = op;
        expr->is_prefix = true;
        expr->children.push_back(ParseUnary());
        return expr;
      }
      case TokKind::kKwSizeof: {
        Advance();
        Expect(TokKind::kLParen, "'('");
        auto expr = std::make_unique<CExpr>(CExprKind::kSizeof, loc);
        expr->sizeof_type = ParseTypeSpecifier();
        Expect(TokKind::kRParen, "')'");
        return expr;
      }
      case TokKind::kLParen:
        // Cast or parenthesized expression.
        if (IsTypeStart(Ahead(1).kind)) {
          Advance();
          auto expr = std::make_unique<CExpr>(CExprKind::kCast, loc);
          expr->cast_type = ParseTypeSpecifier();
          Expect(TokKind::kRParen, "')'");
          expr->children.push_back(ParseUnary());
          return expr;
        }
        return ParsePostfix();
      default:
        return ParsePostfix();
    }
  }

  std::unique_ptr<CExpr> ParsePostfix() {
    auto expr = ParsePrimary();
    while (true) {
      SourceLoc loc = Cur().loc;
      if (At(TokKind::kLBracket)) {
        Advance();
        auto index = std::make_unique<CExpr>(CExprKind::kIndex, loc);
        index->children.push_back(std::move(expr));
        index->children.push_back(ParseExpr());
        Expect(TokKind::kRBracket, "']'");
        expr = std::move(index);
      } else if (At(TokKind::kLParen)) {
        if (expr->kind != CExprKind::kIdent) {
          Error("called object is not a function name");
          return expr;
        }
        Advance();
        auto call = std::make_unique<CExpr>(CExprKind::kCall, loc);
        call->text = expr->text;
        if (!At(TokKind::kRParen)) {
          call->children.push_back(ParseAssign());
          while (Eat(TokKind::kComma)) {
            call->children.push_back(ParseAssign());
          }
        }
        Expect(TokKind::kRParen, "')'");
        expr = std::move(call);
      } else if (At(TokKind::kPlusPlus) || At(TokKind::kMinusMinus)) {
        auto inc = std::make_unique<CExpr>(CExprKind::kIncDec, loc);
        inc->op = Cur().kind;
        inc->is_prefix = false;
        Advance();
        inc->children.push_back(std::move(expr));
        expr = std::move(inc);
      } else {
        return expr;
      }
    }
  }

  std::unique_ptr<CExpr> ParsePrimary() {
    SourceLoc loc = Cur().loc;
    switch (Cur().kind) {
      case TokKind::kIntLit: {
        auto expr = std::make_unique<CExpr>(CExprKind::kIntLit, loc);
        expr->int_value = Cur().int_value;
        Advance();
        return expr;
      }
      case TokKind::kStringLit: {
        auto expr = std::make_unique<CExpr>(CExprKind::kStringLit, loc);
        expr->text = Cur().text;
        Advance();
        return expr;
      }
      case TokKind::kIdent: {
        auto expr = std::make_unique<CExpr>(CExprKind::kIdent, loc);
        expr->text = Cur().text;
        Advance();
        return expr;
      }
      case TokKind::kLParen: {
        Advance();
        auto expr = ParseExpr();
        Expect(TokKind::kRParen, "')'");
        return expr;
      }
      default:
        Error("expected expression");
        return std::make_unique<CExpr>(CExprKind::kIntLit, loc);
    }
  }

  std::vector<CToken> tokens_;
  CTypeContext& types_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<CTranslationUnit> ParseMiniC(const std::string& source, CTypeContext& types,
                                             DiagnosticEngine& diags) {
  CLexer lexer(source, diags);
  std::vector<CToken> tokens = lexer.Tokenize();
  if (diags.HasErrors()) {
    return nullptr;
  }
  return MiniCParser(std::move(tokens), types, diags).Run();
}

}  // namespace overify
