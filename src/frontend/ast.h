// MiniC abstract syntax tree and frontend type system.
//
// MiniC covers the C89 subset that the workload suite and the bundled C
// library use: the integer types (with signedness), pointers, fixed-size
// arrays, the usual operators with C semantics, and function definitions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/frontend/token.h"
#include "src/support/assert.h"

namespace overify {

// ---- Types -----------------------------------------------------------------

enum class CTypeKind {
  kVoid,
  kChar,    // signed 8-bit
  kUChar,
  kInt,     // signed 32-bit
  kUInt,
  kLong,    // signed 64-bit
  kULong,
  kPointer,
  kArray,
};

class CType;

// Owns and interns frontend types; one per compilation.
class CTypeContext {
 public:
  CTypeContext();
  CTypeContext(const CTypeContext&) = delete;
  CTypeContext& operator=(const CTypeContext&) = delete;

  CType* Void();
  CType* Char();
  CType* UChar();
  CType* Int();
  CType* UInt();
  CType* Long();
  CType* ULong();
  CType* Pointer(CType* pointee);
  CType* Array(CType* element, uint64_t count);

 private:
  std::vector<std::unique_ptr<CType>> types_;
  CType* basics_[7];
  std::vector<std::pair<CType*, CType*>> pointer_cache_;
  std::vector<std::pair<std::pair<CType*, uint64_t>, CType*>> array_cache_;
};

class CType {
 public:
  CTypeKind kind() const { return kind_; }
  bool IsVoid() const { return kind_ == CTypeKind::kVoid; }
  bool IsInteger() const {
    return kind_ >= CTypeKind::kChar && kind_ <= CTypeKind::kULong;
  }
  bool IsPointer() const { return kind_ == CTypeKind::kPointer; }
  bool IsArray() const { return kind_ == CTypeKind::kArray; }
  bool IsScalar() const { return IsInteger() || IsPointer(); }

  bool IsSigned() const {
    return kind_ == CTypeKind::kChar || kind_ == CTypeKind::kInt || kind_ == CTypeKind::kLong;
  }
  unsigned BitWidth() const;
  // Conversion rank for the usual arithmetic conversions.
  int Rank() const;

  CType* pointee() const {
    OVERIFY_ASSERT(IsPointer(), "pointee() on non-pointer");
    return pointee_;
  }
  CType* element() const {
    OVERIFY_ASSERT(IsArray(), "element() on non-array");
    return pointee_;
  }
  uint64_t array_count() const {
    OVERIFY_ASSERT(IsArray(), "array_count() on non-array");
    return count_;
  }

  std::string ToString() const;

 private:
  friend class CTypeContext;
  CType(CTypeKind kind, CType* pointee, uint64_t count)
      : kind_(kind), pointee_(pointee), count_(count) {}

  CTypeKind kind_;
  CType* pointee_;
  uint64_t count_;
};

// ---- Expressions -----------------------------------------------------------

enum class CExprKind {
  kIntLit,
  kStringLit,
  kIdent,
  kUnary,       // op in {'-','~','!','*','&'}
  kBinary,      // op: TokKind of the operator
  kAssign,      // op: kAssign or compound assign TokKind
  kCond,        // a ? b : c
  kCall,
  kIndex,       // a[i]
  kCast,        // (type) x
  kSizeof,      // sizeof(type)
  kIncDec,      // ++/--; `is_prefix`, op kPlusPlus/kMinusMinus
  kComma,
};

struct CExpr {
  CExprKind kind;
  SourceLoc loc;
  TokKind op = TokKind::kEof;
  char unary_op = 0;
  bool is_prefix = false;
  int64_t int_value = 0;
  std::string text;  // identifier / call target / string contents
  CType* sizeof_type = nullptr;
  CType* cast_type = nullptr;
  std::vector<std::unique_ptr<CExpr>> children;

  CExpr(CExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---- Statements ------------------------------------------------------------

enum class CStmtKind {
  kExpr,
  kDecl,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
  kEmpty,
};

struct CStmt {
  CStmtKind kind;
  SourceLoc loc;

  // kDecl
  std::string decl_name;
  CType* decl_type = nullptr;
  std::unique_ptr<CExpr> init;                      // scalar initializer
  std::vector<std::unique_ptr<CExpr>> init_list;    // brace initializer
  bool has_init_list = false;

  // kExpr / kReturn condition-less payloads
  std::unique_ptr<CExpr> expr;

  // kIf / kWhile / kDoWhile / kFor
  std::unique_ptr<CExpr> cond;
  std::unique_ptr<CStmt> then_branch;
  std::unique_ptr<CStmt> else_branch;
  std::unique_ptr<CStmt> body;
  std::unique_ptr<CStmt> for_init;   // declaration or expression statement
  std::unique_ptr<CExpr> for_step;

  // kBlock
  std::vector<std::unique_ptr<CStmt>> stmts;

  CStmt(CStmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---- Top-level declarations -------------------------------------------------

struct CParam {
  std::string name;
  CType* type = nullptr;
};

struct CFunctionDecl {
  SourceLoc loc;
  std::string name;
  CType* return_type = nullptr;
  std::vector<CParam> params;
  std::unique_ptr<CStmt> body;  // null for a prototype
};

struct CGlobalDecl {
  SourceLoc loc;
  std::string name;
  CType* type = nullptr;
  bool is_const = false;
  std::unique_ptr<CExpr> init;
  std::vector<std::unique_ptr<CExpr>> init_list;
  bool has_init_list = false;
  std::string string_init;
  bool has_string_init = false;
};

struct CTranslationUnit {
  std::vector<std::unique_ptr<CGlobalDecl>> globals;
  std::vector<std::unique_ptr<CFunctionDecl>> functions;
};

}  // namespace overify
