// MiniC lexer.
#pragma once

#include <string>
#include <vector>

#include "src/frontend/token.h"
#include "src/support/diagnostics.h"

namespace overify {

class CLexer {
 public:
  // The source is copied: lexers are routinely constructed from temporaries.
  CLexer(std::string source, DiagnosticEngine& diags);

  // Tokenizes the whole input; the final token is kEof.
  std::vector<CToken> Tokenize();

 private:
  CToken Next();
  void SkipWhitespaceAndComments();
  SourceLoc Loc() const;
  char Peek(size_t ahead = 0) const;
  bool Match(char c);
  int64_t LexEscape();

  std::string source_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
};

}  // namespace overify
