// MiniC parser: token stream -> CTranslationUnit.
#pragma once

#include <memory>
#include <string>

#include "src/frontend/ast.h"
#include "src/support/diagnostics.h"

namespace overify {

// Parses MiniC source. Types are allocated in `types`, which must outlive
// the returned AST. Returns null (with diagnostics) on error.
std::unique_ptr<CTranslationUnit> ParseMiniC(const std::string& source, CTypeContext& types,
                                             DiagnosticEngine& diags);

}  // namespace overify
