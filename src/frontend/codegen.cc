#include "src/frontend/codegen.h"

#include <map>
#include <optional>

#include "src/frontend/ast.h"
#include "src/frontend/parser.h"
#include "src/ir/irbuilder.h"
#include "src/ir/cfg.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

// An rvalue with its C type.
struct TypedValue {
  Value* value = nullptr;
  CType* type = nullptr;
};

// An lvalue: address plus the C type of the object at that address.
struct LValue {
  Value* address = nullptr;
  CType* type = nullptr;
};

struct FunctionInfo {
  Function* fn = nullptr;
  CType* return_type = nullptr;
  std::vector<CType*> params;
  bool defined = false;
};

class Codegen {
 public:
  Codegen(Module& module, CTypeContext& ctypes, DiagnosticEngine& diags)
      : module_(module), ctypes_(ctypes), diags_(diags), builder_(module) {}

  bool CompileUnit(const CTranslationUnit& unit, bool is_libc) {
    for (const auto& global : unit.globals) {
      EmitGlobal(*global);
    }
    // Declare all functions first so any order of definition works.
    for (const auto& fn : unit.functions) {
      DeclareFunction(*fn, is_libc);
    }
    for (const auto& fn : unit.functions) {
      if (fn->body != nullptr && !diags_.HasErrors()) {
        EmitFunction(*fn);
      }
    }
    return !diags_.HasErrors();
  }

 private:
  void Error(SourceLoc loc, const std::string& message) {
    if (!diags_.HasErrors()) {
      diags_.Error(loc, message);
    }
  }

  // ---- Types ----

  Type* IrTypeOf(CType* type) {
    IRContext& ctx = module_.context();
    switch (type->kind()) {
      case CTypeKind::kVoid:
        return ctx.VoidTy();
      case CTypeKind::kChar:
      case CTypeKind::kUChar:
        return ctx.I8();
      case CTypeKind::kInt:
      case CTypeKind::kUInt:
        return ctx.I32();
      case CTypeKind::kLong:
      case CTypeKind::kULong:
        return ctx.I64();
      case CTypeKind::kPointer:
        return ctx.PtrTy(IrTypeOf(type->pointee()));
      case CTypeKind::kArray:
        return ctx.ArrayTy(IrTypeOf(type->element()), type->array_count());
    }
    OVERIFY_UNREACHABLE("bad CType");
  }

  // Integer promotion: char/uchar promote to int.
  CType* Promote(CType* type) {
    if (type->kind() == CTypeKind::kChar || type->kind() == CTypeKind::kUChar) {
      return ctypes_.Int();
    }
    return type;
  }

  CType* CommonArithType(CType* a, CType* b) {
    a = Promote(a);
    b = Promote(b);
    if (a == b) {
      return a;
    }
    if (a->Rank() != b->Rank()) {
      CType* wider = a->Rank() > b->Rank() ? a : b;
      CType* narrower = a->Rank() > b->Rank() ? b : a;
      // If the wider type is unsigned, or it can represent all values of the
      // narrower (true here since widths strictly increase with rank), use
      // the wider type's signedness.
      (void)narrower;
      return wider;
    }
    // Same rank, different signedness: unsigned wins.
    return a->IsSigned() ? b : a;
  }

  Value* ConvertValue(SourceLoc loc, TypedValue from, CType* to) {
    if (from.type == to) {
      return from.value;
    }
    if (from.type->IsInteger() && to->IsInteger()) {
      unsigned from_bits = from.type->BitWidth();
      unsigned to_bits = to->BitWidth();
      if (from_bits == to_bits) {
        return from.value;  // same representation; signedness is a C-level fact
      }
      if (from_bits < to_bits) {
        return builder_.CreateCast(from.type->IsSigned() ? Opcode::kSExt : Opcode::kZExt,
                                   from.value, module_.context().IntTy(to_bits));
      }
      return builder_.CreateCast(Opcode::kTrunc, from.value, module_.context().IntTy(to_bits));
    }
    if (from.type->IsPointer() && to->IsPointer()) {
      // MiniC permits pointer conversions only between identically-laid-out
      // pointees (e.g. char* <-> unsigned char*).
      if (IrTypeOf(from.type) == IrTypeOf(to)) {
        return from.value;
      }
      Error(loc, StrFormat("cannot convert %s to %s", from.type->ToString().c_str(),
                           to->ToString().c_str()));
      return module_.context().GetUndef(IrTypeOf(to));
    }
    if (from.type->IsInteger() && to->IsPointer()) {
      // Only the null constant converts implicitly.
      if (const auto* c = DynCast<ConstantInt>(from.value)) {
        if (c->IsZero()) {
          return module_.context().GetNull(IrTypeOf(to));
        }
      }
      Error(loc, "cannot convert integer to pointer");
      return module_.context().GetUndef(IrTypeOf(to));
    }
    Error(loc, StrFormat("cannot convert %s to %s", from.type->ToString().c_str(),
                         to->ToString().c_str()));
    return module_.context().GetUndef(IrTypeOf(to));
  }

  // ---- Globals ----

  std::optional<int64_t> EvalConst(const CExpr& expr) {
    switch (expr.kind) {
      case CExprKind::kIntLit:
        return expr.int_value;
      case CExprKind::kSizeof:
        return static_cast<int64_t>(IrTypeOf(expr.sizeof_type)->SizeInBytes());
      case CExprKind::kUnary: {
        auto inner = EvalConst(*expr.children[0]);
        if (!inner.has_value()) {
          return std::nullopt;
        }
        switch (expr.unary_op) {
          case '-':
            return -*inner;
          case '~':
            return ~*inner;
          case '!':
            return *inner == 0 ? 1 : 0;
          default:
            return std::nullopt;
        }
      }
      case CExprKind::kBinary: {
        auto lhs = EvalConst(*expr.children[0]);
        auto rhs = EvalConst(*expr.children[1]);
        if (!lhs.has_value() || !rhs.has_value()) {
          return std::nullopt;
        }
        switch (expr.op) {
          case TokKind::kPlus:
            return *lhs + *rhs;
          case TokKind::kMinus:
            return *lhs - *rhs;
          case TokKind::kStar:
            return *lhs * *rhs;
          case TokKind::kSlash:
            return *rhs == 0 ? std::optional<int64_t>() : *lhs / *rhs;
          case TokKind::kPercent:
            return *rhs == 0 ? std::optional<int64_t>() : *lhs % *rhs;
          case TokKind::kShl:
            return *lhs << (*rhs & 63);
          case TokKind::kShr:
            return *lhs >> (*rhs & 63);
          case TokKind::kAmp:
            return *lhs & *rhs;
          case TokKind::kPipe:
            return *lhs | *rhs;
          case TokKind::kCaret:
            return *lhs ^ *rhs;
          default:
            return std::nullopt;
        }
      }
      case CExprKind::kCast:
        return EvalConst(*expr.children[0]);
      default:
        return std::nullopt;
    }
  }

  void SerializeInt(std::vector<uint8_t>& bytes, int64_t value, unsigned size) {
    for (unsigned i = 0; i < size; ++i) {
      bytes.push_back(static_cast<uint8_t>(value >> (8 * i)));
    }
  }

  void EmitGlobal(const CGlobalDecl& decl) {
    if (module_.GetGlobal(decl.name) != nullptr || globals_.count(decl.name) != 0) {
      Error(decl.loc, StrFormat("redefinition of '%s'", decl.name.c_str()));
      return;
    }
    CType* type = decl.type;
    std::vector<uint8_t> bytes;
    if (decl.has_string_init) {
      if (!type->IsArray() || type->element()->BitWidth() != 8) {
        Error(decl.loc, "string initializer requires a char array");
        return;
      }
      if (type->array_count() < decl.string_init.size() + 1) {
        Error(decl.loc, "string initializer does not fit");
        return;
      }
      bytes.assign(decl.string_init.begin(), decl.string_init.end());
      bytes.resize(type->IsArray() ? static_cast<size_t>(type->array_count()) : bytes.size(), 0);
    } else if (decl.has_init_list) {
      if (!type->IsArray()) {
        Error(decl.loc, "brace initializer requires an array");
        return;
      }
      unsigned elem_size = static_cast<unsigned>(IrTypeOf(type->element())->SizeInBytes());
      for (const auto& item : decl.init_list) {
        auto value = EvalConst(*item);
        if (!value.has_value()) {
          Error(item->loc, "global initializer must be a constant expression");
          return;
        }
        SerializeInt(bytes, *value, elem_size);
      }
      if (decl.init_list.size() > type->array_count()) {
        Error(decl.loc, "too many initializers");
        return;
      }
      bytes.resize(IrTypeOf(type)->SizeInBytes(), 0);
    } else if (decl.init != nullptr) {
      auto value = EvalConst(*decl.init);
      if (!value.has_value()) {
        Error(decl.init->loc, "global initializer must be a constant expression");
        return;
      }
      SerializeInt(bytes, *value, static_cast<unsigned>(IrTypeOf(type)->SizeInBytes()));
    }
    GlobalVariable* global =
        module_.CreateGlobal(decl.name, IrTypeOf(type), decl.is_const, std::move(bytes));
    globals_[decl.name] = {global, type};
  }

  // ---- Functions ----

  void DeclareFunction(const CFunctionDecl& decl, bool is_libc) {
    auto it = functions_.find(decl.name);
    if (it != functions_.end()) {
      FunctionInfo& info = it->second;
      // Re-declaration must match; a second definition is an error.
      bool matches = info.return_type == decl.return_type &&
                     info.params.size() == decl.params.size();
      if (matches) {
        for (size_t i = 0; i < decl.params.size(); ++i) {
          matches &= info.params[i] == decl.params[i].type;
        }
      }
      if (!matches) {
        Error(decl.loc, StrFormat("conflicting declaration of '%s'", decl.name.c_str()));
        return;
      }
      if (decl.body != nullptr) {
        if (info.defined) {
          Error(decl.loc, StrFormat("redefinition of '%s'", decl.name.c_str()));
        }
        info.defined = true;
      }
      return;
    }
    std::vector<Type*> ir_params;
    FunctionInfo info;
    info.return_type = decl.return_type;
    for (const CParam& param : decl.params) {
      if (!param.type->IsScalar()) {
        Error(decl.loc, "parameters must be scalar");
        return;
      }
      info.params.push_back(param.type);
      ir_params.push_back(IrTypeOf(param.type));
    }
    info.fn = module_.CreateFunction(decl.name, IrTypeOf(decl.return_type), ir_params);
    info.fn->set_is_libc(is_libc);
    info.defined = decl.body != nullptr;
    functions_[decl.name] = info;
  }

  // Known external functions get declarations on first use.
  FunctionInfo* LookupOrBuiltin(SourceLoc loc, const std::string& name) {
    auto it = functions_.find(name);
    if (it != functions_.end()) {
      return &it->second;
    }
    FunctionInfo info;
    if (name == "putchar") {
      info.return_type = ctypes_.Int();
      info.params = {ctypes_.Int()};
      info.fn = module_.CreateFunction("putchar", IrTypeOf(ctypes_.Int()),
                                       {IrTypeOf(ctypes_.Int())});
    } else if (name == "getchar") {
      info.return_type = ctypes_.Int();
      info.fn = module_.CreateFunction("getchar", IrTypeOf(ctypes_.Int()), {});
    } else if (name == "abort") {
      info.return_type = ctypes_.Void();
      info.fn = module_.CreateFunction("abort", module_.context().VoidTy(), {});
    } else {
      Error(loc, StrFormat("call to undeclared function '%s'", name.c_str()));
      return nullptr;
    }
    functions_[name] = info;
    return &functions_[name];
  }

  void EmitFunction(const CFunctionDecl& decl) {
    FunctionInfo& info = functions_[decl.name];
    fn_ = info.fn;
    return_type_ = decl.return_type;
    scopes_.clear();
    break_targets_.clear();
    continue_targets_.clear();
    next_block_id_ = 0;

    BasicBlock* entry = fn_->CreateBlock("entry");
    builder_.SetInsertPoint(entry);
    PushScope();
    // Parameters are spilled to allocas, exactly like clang -O0.
    for (unsigned i = 0; i < decl.params.size(); ++i) {
      const CParam& param = decl.params[i];
      Value* slot = builder_.CreateAlloca(IrTypeOf(param.type),
                                          param.name.empty() ? StrFormat("p%u", i) : param.name);
      builder_.CreateStore(fn_->Arg(i), slot);
      if (!param.name.empty()) {
        fn_->Arg(i)->set_name(param.name + ".arg");
        DefineLocal(decl.loc, param.name, slot, param.type);
      }
    }
    EmitStmt(*decl.body);
    PopScope();

    // Fall-off-the-end: return a zero value (void functions just return).
    if (!builder_.BlockTerminated()) {
      if (return_type_->IsVoid()) {
        builder_.CreateRetVoid();
      } else if (return_type_->IsPointer()) {
        builder_.CreateRet(module_.context().GetNull(IrTypeOf(return_type_)));
      } else {
        builder_.CreateRet(module_.context().GetInt(IrTypeOf(return_type_), 0));
      }
    }
    RemoveUnreachableBlocks(*fn_);
    fn_ = nullptr;
  }

  // ---- Scopes ----

  struct Local {
    Value* address = nullptr;
    CType* type = nullptr;
  };

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  void DefineLocal(SourceLoc loc, const std::string& name, Value* address, CType* type) {
    if (scopes_.back().count(name) != 0) {
      Error(loc, StrFormat("redefinition of '%s'", name.c_str()));
      return;
    }
    scopes_.back()[name] = Local{address, type};
  }

  const Local* LookupLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  BasicBlock* NewBlock(const char* hint) {
    return fn_->CreateBlock(StrFormat("%s%u", hint, next_block_id_++));
  }

  // ---- Statements ----

  void EmitStmt(const CStmt& stmt) {
    // Code after a terminator (return/break/continue) is unreachable; give
    // it a fresh block so emission stays structurally valid, and let
    // RemoveUnreachableBlocks clean it up.
    if (builder_.BlockTerminated()) {
      builder_.SetInsertPoint(NewBlock("dead"));
    }
    switch (stmt.kind) {
      case CStmtKind::kEmpty:
        return;
      case CStmtKind::kBlock: {
        PushScope();
        for (const auto& child : stmt.stmts) {
          EmitStmt(*child);
        }
        PopScope();
        return;
      }
      case CStmtKind::kExpr:
        EmitRValue(*stmt.expr);
        return;
      case CStmtKind::kDecl:
        EmitDecl(stmt);
        return;
      case CStmtKind::kReturn: {
        if (stmt.expr == nullptr) {
          if (!return_type_->IsVoid()) {
            Error(stmt.loc, "non-void function must return a value");
            return;
          }
          builder_.CreateRetVoid();
          return;
        }
        TypedValue value = EmitRValue(*stmt.expr);
        if (return_type_->IsVoid()) {
          Error(stmt.loc, "void function cannot return a value");
          return;
        }
        builder_.CreateRet(ConvertValue(stmt.loc, value, return_type_));
        return;
      }
      case CStmtKind::kIf: {
        Value* cond = EmitCondition(*stmt.cond);
        BasicBlock* then_bb = NewBlock("if.then");
        BasicBlock* end_bb = NewBlock("if.end");
        BasicBlock* else_bb = stmt.else_branch != nullptr ? NewBlock("if.else") : end_bb;
        builder_.CreateCondBr(cond, then_bb, else_bb);
        builder_.SetInsertPoint(then_bb);
        EmitStmt(*stmt.then_branch);
        if (!builder_.BlockTerminated()) {
          builder_.CreateBr(end_bb);
        }
        if (stmt.else_branch != nullptr) {
          builder_.SetInsertPoint(else_bb);
          EmitStmt(*stmt.else_branch);
          if (!builder_.BlockTerminated()) {
            builder_.CreateBr(end_bb);
          }
        }
        builder_.SetInsertPoint(end_bb);
        return;
      }
      case CStmtKind::kWhile: {
        BasicBlock* cond_bb = NewBlock("while.cond");
        BasicBlock* body_bb = NewBlock("while.body");
        BasicBlock* end_bb = NewBlock("while.end");
        builder_.CreateBr(cond_bb);
        builder_.SetInsertPoint(cond_bb);
        builder_.CreateCondBr(EmitCondition(*stmt.cond), body_bb, end_bb);
        builder_.SetInsertPoint(body_bb);
        break_targets_.push_back(end_bb);
        continue_targets_.push_back(cond_bb);
        EmitStmt(*stmt.body);
        break_targets_.pop_back();
        continue_targets_.pop_back();
        if (!builder_.BlockTerminated()) {
          builder_.CreateBr(cond_bb);
        }
        builder_.SetInsertPoint(end_bb);
        return;
      }
      case CStmtKind::kDoWhile: {
        BasicBlock* body_bb = NewBlock("do.body");
        BasicBlock* cond_bb = NewBlock("do.cond");
        BasicBlock* end_bb = NewBlock("do.end");
        builder_.CreateBr(body_bb);
        builder_.SetInsertPoint(body_bb);
        break_targets_.push_back(end_bb);
        continue_targets_.push_back(cond_bb);
        EmitStmt(*stmt.body);
        break_targets_.pop_back();
        continue_targets_.pop_back();
        if (!builder_.BlockTerminated()) {
          builder_.CreateBr(cond_bb);
        }
        builder_.SetInsertPoint(cond_bb);
        builder_.CreateCondBr(EmitCondition(*stmt.cond), body_bb, end_bb);
        builder_.SetInsertPoint(end_bb);
        return;
      }
      case CStmtKind::kFor: {
        PushScope();
        if (stmt.for_init != nullptr) {
          EmitStmt(*stmt.for_init);
        }
        BasicBlock* cond_bb = NewBlock("for.cond");
        BasicBlock* body_bb = NewBlock("for.body");
        BasicBlock* step_bb = NewBlock("for.step");
        BasicBlock* end_bb = NewBlock("for.end");
        builder_.CreateBr(cond_bb);
        builder_.SetInsertPoint(cond_bb);
        if (stmt.cond != nullptr) {
          builder_.CreateCondBr(EmitCondition(*stmt.cond), body_bb, end_bb);
        } else {
          builder_.CreateBr(body_bb);
        }
        builder_.SetInsertPoint(body_bb);
        break_targets_.push_back(end_bb);
        continue_targets_.push_back(step_bb);
        EmitStmt(*stmt.body);
        break_targets_.pop_back();
        continue_targets_.pop_back();
        if (!builder_.BlockTerminated()) {
          builder_.CreateBr(step_bb);
        }
        builder_.SetInsertPoint(step_bb);
        if (stmt.for_step != nullptr) {
          EmitRValue(*stmt.for_step);
        }
        builder_.CreateBr(cond_bb);
        builder_.SetInsertPoint(end_bb);
        PopScope();
        return;
      }
      case CStmtKind::kBreak: {
        if (break_targets_.empty()) {
          Error(stmt.loc, "'break' outside a loop");
          return;
        }
        builder_.CreateBr(break_targets_.back());
        return;
      }
      case CStmtKind::kContinue: {
        if (continue_targets_.empty()) {
          Error(stmt.loc, "'continue' outside a loop");
          return;
        }
        builder_.CreateBr(continue_targets_.back());
        return;
      }
    }
  }

  void EmitDecl(const CStmt& stmt) {
    CType* type = stmt.decl_type;
    Value* slot = builder_.CreateAlloca(IrTypeOf(type), stmt.decl_name);
    DefineLocal(stmt.loc, stmt.decl_name, slot, type);
    if (stmt.has_init_list) {
      if (!type->IsArray()) {
        Error(stmt.loc, "brace initializer requires an array");
        return;
      }
      if (stmt.init_list.size() > type->array_count()) {
        Error(stmt.loc, "too many initializers");
        return;
      }
      IRContext& ctx = module_.context();
      for (size_t i = 0; i < stmt.init_list.size(); ++i) {
        TypedValue v = EmitRValue(*stmt.init_list[i]);
        Value* converted = ConvertValue(stmt.loc, v, type->element());
        Value* addr = builder_.CreateGep(IrTypeOf(type), slot,
                                         {ctx.GetInt(64, 0), ctx.GetInt(64, i)});
        builder_.CreateStore(converted, addr);
      }
      // Remaining elements are zero-initialized (C array init semantics).
      for (uint64_t i = stmt.init_list.size(); i < type->array_count(); ++i) {
        Value* addr = builder_.CreateGep(IrTypeOf(type), slot,
                                         {ctx.GetInt(64, 0), ctx.GetInt(64, i)});
        builder_.CreateStore(ctx.GetInt(IrTypeOf(type->element()), 0), addr);
      }
      return;
    }
    if (stmt.init != nullptr) {
      TypedValue v = EmitRValue(*stmt.init);
      if (!type->IsScalar()) {
        Error(stmt.loc, "cannot initialize a non-scalar with an expression");
        return;
      }
      builder_.CreateStore(ConvertValue(stmt.loc, v, type), slot);
    }
  }

  // ---- Expressions ----

  // Converts a scalar rvalue to an i1 condition.
  Value* EmitCondition(const CExpr& expr) {
    TypedValue v = EmitRValue(expr);
    return ToBool(expr.loc, v);
  }

  Value* ToBool(SourceLoc loc, TypedValue v) {
    IRContext& ctx = module_.context();
    if (v.type->IsPointer()) {
      return builder_.CreateICmp(ICmpPredicate::kNe, v.value,
                                 ctx.GetNull(IrTypeOf(v.type)));
    }
    if (!v.type->IsInteger()) {
      Error(loc, "condition must be scalar");
      return ctx.False();
    }
    return builder_.CreateICmp(ICmpPredicate::kNe, v.value,
                               ctx.GetInt(IrTypeOf(v.type), 0));
  }

  // C boolean result: i1 -> int 0/1.
  TypedValue BoolToInt(Value* i1) {
    Value* z = builder_.CreateCast(Opcode::kZExt, i1, module_.context().I32());
    return TypedValue{z, ctypes_.Int()};
  }

  std::optional<LValue> EmitLValue(const CExpr& expr) {
    switch (expr.kind) {
      case CExprKind::kIdent: {
        if (const Local* local = LookupLocal(expr.text)) {
          return LValue{local->address, local->type};
        }
        auto it = globals_.find(expr.text);
        if (it != globals_.end()) {
          return LValue{it->second.first, it->second.second};
        }
        Error(expr.loc, StrFormat("use of undeclared identifier '%s'", expr.text.c_str()));
        return std::nullopt;
      }
      case CExprKind::kUnary: {
        if (expr.unary_op != '*') {
          break;
        }
        TypedValue ptr = EmitRValue(*expr.children[0]);
        if (!ptr.type->IsPointer()) {
          Error(expr.loc, "cannot dereference a non-pointer");
          return std::nullopt;
        }
        return LValue{ptr.value, ptr.type->pointee()};
      }
      case CExprKind::kIndex: {
        TypedValue base = EmitRValue(*expr.children[0]);
        TypedValue index = EmitRValue(*expr.children[1]);
        if (!base.type->IsPointer()) {
          Error(expr.loc, "subscripted value must be a pointer or array");
          return std::nullopt;
        }
        if (!index.type->IsInteger()) {
          Error(expr.loc, "array index must be an integer");
          return std::nullopt;
        }
        Value* idx = ConvertValue(expr.loc, index, index.type->IsSigned() ? ctypes_.Long()
                                                                          : ctypes_.ULong());
        Value* addr =
            builder_.CreateGep(IrTypeOf(base.type->pointee()), base.value, {idx});
        return LValue{addr, base.type->pointee()};
      }
      default:
        break;
    }
    Error(expr.loc, "expression is not assignable");
    return std::nullopt;
  }

  TypedValue LoadLValue(SourceLoc loc, const LValue& lv) {
    if (lv.type->IsArray()) {
      // Array lvalues decay to a pointer to the first element.
      IRContext& ctx = module_.context();
      Value* decayed = builder_.CreateGep(IrTypeOf(lv.type), lv.address,
                                          {ctx.GetInt(64, 0), ctx.GetInt(64, 0)});
      return TypedValue{decayed, ctypes_.Pointer(lv.type->element())};
    }
    (void)loc;
    return TypedValue{builder_.CreateLoad(lv.address), lv.type};
  }

  TypedValue Undef(CType* type) {
    return TypedValue{module_.context().GetUndef(IrTypeOf(type)), type};
  }

  TypedValue EmitRValue(const CExpr& expr) {
    IRContext& ctx = module_.context();
    switch (expr.kind) {
      case CExprKind::kIntLit: {
        // Literal type: int if it fits, else long.
        bool fits = expr.int_value >= INT32_MIN && expr.int_value <= INT32_MAX;
        CType* type = fits ? ctypes_.Int() : ctypes_.Long();
        return TypedValue{ctx.GetInt(IrTypeOf(type), static_cast<uint64_t>(expr.int_value)),
                          type};
      }
      case CExprKind::kStringLit: {
        GlobalVariable* global = InternString(expr.text);
        Value* decayed = builder_.CreateGep(global->value_type(), global,
                                            {ctx.GetInt(64, 0), ctx.GetInt(64, 0)});
        return TypedValue{decayed, ctypes_.Pointer(ctypes_.Char())};
      }
      case CExprKind::kSizeof:
        return TypedValue{
            ctx.GetInt(64, IrTypeOf(expr.sizeof_type)->SizeInBytes()), ctypes_.ULong()};
      case CExprKind::kIdent:
      case CExprKind::kIndex: {
        auto lv = EmitLValue(expr);
        if (!lv.has_value()) {
          return Undef(ctypes_.Int());
        }
        return LoadLValue(expr.loc, *lv);
      }
      case CExprKind::kCast: {
        TypedValue v = EmitRValue(*expr.children[0]);
        if (expr.cast_type->IsVoid()) {
          return TypedValue{ctx.GetUndef(ctx.VoidTy()), expr.cast_type};
        }
        // Explicit casts additionally allow pointer<->pointer with distinct
        // layouts... which MiniC does not need; integer<->integer and the
        // implicit rules cover the suite.
        if (v.type->IsPointer() && expr.cast_type->IsPointer()) {
          if (IrTypeOf(v.type) == IrTypeOf(expr.cast_type)) {
            return TypedValue{v.value, expr.cast_type};
          }
          Error(expr.loc, "unsupported pointer cast");
          return Undef(expr.cast_type);
        }
        return TypedValue{ConvertValue(expr.loc, v, expr.cast_type), expr.cast_type};
      }
      case CExprKind::kUnary:
        return EmitUnary(expr);
      case CExprKind::kBinary:
        return EmitBinary(expr);
      case CExprKind::kAssign:
        return EmitAssign(expr);
      case CExprKind::kCond:
        return EmitConditionalExpr(expr);
      case CExprKind::kCall:
        return EmitCall(expr);
      case CExprKind::kIncDec:
        return EmitIncDec(expr);
      case CExprKind::kComma: {
        EmitRValue(*expr.children[0]);
        return EmitRValue(*expr.children[1]);
      }
    }
    OVERIFY_UNREACHABLE("bad expression kind");
  }

  TypedValue EmitUnary(const CExpr& expr) {
    IRContext& ctx = module_.context();
    switch (expr.unary_op) {
      case '-': {
        TypedValue v = EmitRValue(*expr.children[0]);
        if (!v.type->IsInteger()) {
          Error(expr.loc, "unary '-' requires an integer");
          return Undef(ctypes_.Int());
        }
        CType* type = Promote(v.type);
        Value* value = ConvertValue(expr.loc, v, type);
        return TypedValue{
            builder_.CreateSub(ctx.GetInt(IrTypeOf(type), 0), value), type};
      }
      case '~': {
        TypedValue v = EmitRValue(*expr.children[0]);
        if (!v.type->IsInteger()) {
          Error(expr.loc, "unary '~' requires an integer");
          return Undef(ctypes_.Int());
        }
        CType* type = Promote(v.type);
        Value* value = ConvertValue(expr.loc, v, type);
        return TypedValue{
            builder_.CreateXor(value, ctx.GetInt(IrTypeOf(type), ~uint64_t{0})), type};
      }
      case '!': {
        TypedValue v = EmitRValue(*expr.children[0]);
        Value* b = ToBool(expr.loc, v);
        Value* inverted = builder_.CreateXor(b, ctx.True());
        return BoolToInt(inverted);
      }
      case '*': {
        auto lv = EmitLValue(expr);
        if (!lv.has_value()) {
          return Undef(ctypes_.Int());
        }
        return LoadLValue(expr.loc, *lv);
      }
      case '&': {
        auto lv = EmitLValue(*expr.children[0]);
        if (!lv.has_value()) {
          return Undef(ctypes_.Pointer(ctypes_.Int()));
        }
        if (lv->type->IsArray()) {
          // &array is the array address; MiniC types it as pointer-to-element.
          IRContext& c = module_.context();
          Value* decayed = builder_.CreateGep(IrTypeOf(lv->type), lv->address,
                                              {c.GetInt(64, 0), c.GetInt(64, 0)});
          return TypedValue{decayed, ctypes_.Pointer(lv->type->element())};
        }
        return TypedValue{lv->address, ctypes_.Pointer(lv->type)};
      }
      default:
        OVERIFY_UNREACHABLE("bad unary op");
    }
  }

  // Pointer +/- integer via gep (index scaled by element size).
  TypedValue EmitPointerArith(SourceLoc loc, TypedValue ptr, TypedValue offset, bool negate) {
    Value* idx = ConvertValue(loc, offset,
                              offset.type->IsSigned() ? ctypes_.Long() : ctypes_.ULong());
    if (negate) {
      idx = builder_.CreateSub(module_.context().GetInt(64, 0), idx);
    }
    Value* addr = builder_.CreateGep(IrTypeOf(ptr.type->pointee()), ptr.value, {idx});
    return TypedValue{addr, ptr.type};
  }

  TypedValue EmitBinary(const CExpr& expr) {
    IRContext& ctx = module_.context();
    // Short-circuit operators first (they control evaluation order).
    if (expr.op == TokKind::kAmpAmp || expr.op == TokKind::kPipePipe) {
      bool is_and = expr.op == TokKind::kAmpAmp;
      Value* lhs = EmitCondition(*expr.children[0]);
      BasicBlock* lhs_bb = builder_.insert_block();
      BasicBlock* rhs_bb = NewBlock(is_and ? "and.rhs" : "or.rhs");
      BasicBlock* end_bb = NewBlock(is_and ? "and.end" : "or.end");
      if (is_and) {
        builder_.CreateCondBr(lhs, rhs_bb, end_bb);
      } else {
        builder_.CreateCondBr(lhs, end_bb, rhs_bb);
      }
      builder_.SetInsertPoint(rhs_bb);
      Value* rhs = EmitCondition(*expr.children[1]);
      BasicBlock* rhs_end = builder_.insert_block();
      builder_.CreateBr(end_bb);
      builder_.SetInsertPoint(end_bb);
      PhiInst* phi = builder_.CreatePhi(ctx.I1(), is_and ? "and" : "or");
      phi->AddIncoming(ctx.GetBool(!is_and), lhs_bb);
      phi->AddIncoming(rhs, rhs_end);
      return BoolToInt(phi);
    }

    TypedValue lhs = EmitRValue(*expr.children[0]);
    TypedValue rhs = EmitRValue(*expr.children[1]);

    // Pointer arithmetic and pointer comparisons.
    if (lhs.type->IsPointer() || rhs.type->IsPointer()) {
      switch (expr.op) {
        case TokKind::kPlus:
          if (lhs.type->IsPointer() && rhs.type->IsInteger()) {
            return EmitPointerArith(expr.loc, lhs, rhs, false);
          }
          if (rhs.type->IsPointer() && lhs.type->IsInteger()) {
            return EmitPointerArith(expr.loc, rhs, lhs, false);
          }
          Error(expr.loc, "invalid pointer addition");
          return Undef(ctypes_.Int());
        case TokKind::kMinus:
          if (lhs.type->IsPointer() && rhs.type->IsInteger()) {
            return EmitPointerArith(expr.loc, lhs, rhs, true);
          }
          Error(expr.loc, "pointer difference is not supported in MiniC");
          return Undef(ctypes_.Int());
        case TokKind::kEq:
        case TokKind::kNe:
        case TokKind::kLt:
        case TokKind::kGt:
        case TokKind::kLe:
        case TokKind::kGe: {
          // Allow ptr vs ptr (same layout) and ptr vs the 0 literal.
          Value* l = lhs.value;
          Value* r = rhs.value;
          if (lhs.type->IsPointer() && rhs.type->IsInteger()) {
            r = ConvertValue(expr.loc, rhs, lhs.type);
          } else if (rhs.type->IsPointer() && lhs.type->IsInteger()) {
            l = ConvertValue(expr.loc, lhs, rhs.type);
          } else if (IrTypeOf(lhs.type) != IrTypeOf(rhs.type)) {
            Error(expr.loc, "comparison of incompatible pointers");
            return Undef(ctypes_.Int());
          }
          ICmpPredicate pred = expr.op == TokKind::kEq   ? ICmpPredicate::kEq
                               : expr.op == TokKind::kNe ? ICmpPredicate::kNe
                               : expr.op == TokKind::kLt ? ICmpPredicate::kULT
                               : expr.op == TokKind::kGt ? ICmpPredicate::kUGT
                               : expr.op == TokKind::kLe ? ICmpPredicate::kULE
                                                         : ICmpPredicate::kUGE;
          return BoolToInt(builder_.CreateICmp(pred, l, r));
        }
        default:
          Error(expr.loc, "invalid pointer operation");
          return Undef(ctypes_.Int());
      }
    }

    if (!lhs.type->IsInteger() || !rhs.type->IsInteger()) {
      Error(expr.loc, "binary operator requires integer operands");
      return Undef(ctypes_.Int());
    }

    // Shifts: result type is the promoted LHS; RHS converts independently.
    if (expr.op == TokKind::kShl || expr.op == TokKind::kShr) {
      CType* type = Promote(lhs.type);
      Value* l = ConvertValue(expr.loc, lhs, type);
      Value* r = ConvertValue(expr.loc, rhs, type);
      Opcode opcode = expr.op == TokKind::kShl ? Opcode::kShl
                      : type->IsSigned()       ? Opcode::kAShr
                                               : Opcode::kLShr;
      return TypedValue{builder_.CreateBinary(opcode, l, r), type};
    }

    CType* type = CommonArithType(lhs.type, rhs.type);
    Value* l = ConvertValue(expr.loc, lhs, type);
    Value* r = ConvertValue(expr.loc, rhs, type);
    bool is_signed = type->IsSigned();

    switch (expr.op) {
      case TokKind::kPlus:
        return TypedValue{builder_.CreateAdd(l, r), type};
      case TokKind::kMinus:
        return TypedValue{builder_.CreateSub(l, r), type};
      case TokKind::kStar:
        return TypedValue{builder_.CreateMul(l, r), type};
      case TokKind::kSlash:
        return TypedValue{
            builder_.CreateBinary(is_signed ? Opcode::kSDiv : Opcode::kUDiv, l, r), type};
      case TokKind::kPercent:
        return TypedValue{
            builder_.CreateBinary(is_signed ? Opcode::kSRem : Opcode::kURem, l, r), type};
      case TokKind::kAmp:
        return TypedValue{builder_.CreateAnd(l, r), type};
      case TokKind::kPipe:
        return TypedValue{builder_.CreateOr(l, r), type};
      case TokKind::kCaret:
        return TypedValue{builder_.CreateXor(l, r), type};
      case TokKind::kEq:
      case TokKind::kNe:
      case TokKind::kLt:
      case TokKind::kGt:
      case TokKind::kLe:
      case TokKind::kGe: {
        ICmpPredicate pred;
        switch (expr.op) {
          case TokKind::kEq:
            pred = ICmpPredicate::kEq;
            break;
          case TokKind::kNe:
            pred = ICmpPredicate::kNe;
            break;
          case TokKind::kLt:
            pred = is_signed ? ICmpPredicate::kSLT : ICmpPredicate::kULT;
            break;
          case TokKind::kGt:
            pred = is_signed ? ICmpPredicate::kSGT : ICmpPredicate::kUGT;
            break;
          case TokKind::kLe:
            pred = is_signed ? ICmpPredicate::kSLE : ICmpPredicate::kULE;
            break;
          default:
            pred = is_signed ? ICmpPredicate::kSGE : ICmpPredicate::kUGE;
            break;
        }
        return BoolToInt(builder_.CreateICmp(pred, l, r));
      }
      default:
        Error(expr.loc, "unsupported binary operator");
        return Undef(ctypes_.Int());
    }
  }

  TypedValue EmitAssign(const CExpr& expr) {
    auto lv = EmitLValue(*expr.children[0]);
    if (!lv.has_value()) {
      return Undef(ctypes_.Int());
    }
    if (!lv->type->IsScalar()) {
      Error(expr.loc, "assignment target must be scalar");
      return Undef(ctypes_.Int());
    }
    Value* result;
    if (expr.op == TokKind::kAssign) {
      TypedValue rhs = EmitRValue(*expr.children[1]);
      result = ConvertValue(expr.loc, rhs, lv->type);
    } else {
      // Compound assignment: build the equivalent binary expression on the
      // loaded value.
      TypedValue lhs{builder_.CreateLoad(lv->address), lv->type};
      TypedValue rhs = EmitRValue(*expr.children[1]);
      TokKind op;
      switch (expr.op) {
        case TokKind::kPlusAssign:
          op = TokKind::kPlus;
          break;
        case TokKind::kMinusAssign:
          op = TokKind::kMinus;
          break;
        case TokKind::kStarAssign:
          op = TokKind::kStar;
          break;
        case TokKind::kSlashAssign:
          op = TokKind::kSlash;
          break;
        case TokKind::kPercentAssign:
          op = TokKind::kPercent;
          break;
        case TokKind::kAmpAssign:
          op = TokKind::kAmp;
          break;
        case TokKind::kPipeAssign:
          op = TokKind::kPipe;
          break;
        case TokKind::kCaretAssign:
          op = TokKind::kCaret;
          break;
        case TokKind::kShlAssign:
          op = TokKind::kShl;
          break;
        default:
          op = TokKind::kShr;
          break;
      }
      TypedValue combined = EmitBinaryOnValues(expr.loc, op, lhs, rhs);
      result = ConvertValue(expr.loc, combined, lv->type);
    }
    builder_.CreateStore(result, lv->address);
    return TypedValue{result, lv->type};
  }

  // Applies a binary operator to already-emitted operands (compound assigns,
  // pointer ops included).
  TypedValue EmitBinaryOnValues(SourceLoc loc, TokKind op, TypedValue lhs, TypedValue rhs) {
    // Reuse EmitBinary's logic by faking a tiny expression tree would be
    // clumsy; replicate the pointer/integer dispatch minimally.
    if (lhs.type->IsPointer() && rhs.type->IsInteger()) {
      if (op == TokKind::kPlus) {
        return EmitPointerArith(loc, lhs, rhs, false);
      }
      if (op == TokKind::kMinus) {
        return EmitPointerArith(loc, lhs, rhs, true);
      }
      Error(loc, "invalid pointer operation");
      return Undef(ctypes_.Int());
    }
    if (!lhs.type->IsInteger() || !rhs.type->IsInteger()) {
      Error(loc, "operands must be integers");
      return Undef(ctypes_.Int());
    }
    if (op == TokKind::kShl || op == TokKind::kShr) {
      CType* type = Promote(lhs.type);
      Value* l = ConvertValue(loc, lhs, type);
      Value* r = ConvertValue(loc, rhs, type);
      Opcode opcode = op == TokKind::kShl ? Opcode::kShl
                      : type->IsSigned()  ? Opcode::kAShr
                                          : Opcode::kLShr;
      return TypedValue{builder_.CreateBinary(opcode, l, r), type};
    }
    CType* type = CommonArithType(lhs.type, rhs.type);
    Value* l = ConvertValue(loc, lhs, type);
    Value* r = ConvertValue(loc, rhs, type);
    bool is_signed = type->IsSigned();
    Opcode opcode;
    switch (op) {
      case TokKind::kPlus:
        opcode = Opcode::kAdd;
        break;
      case TokKind::kMinus:
        opcode = Opcode::kSub;
        break;
      case TokKind::kStar:
        opcode = Opcode::kMul;
        break;
      case TokKind::kSlash:
        opcode = is_signed ? Opcode::kSDiv : Opcode::kUDiv;
        break;
      case TokKind::kPercent:
        opcode = is_signed ? Opcode::kSRem : Opcode::kURem;
        break;
      case TokKind::kAmp:
        opcode = Opcode::kAnd;
        break;
      case TokKind::kPipe:
        opcode = Opcode::kOr;
        break;
      case TokKind::kCaret:
        opcode = Opcode::kXor;
        break;
      default:
        Error(loc, "unsupported compound operator");
        return Undef(ctypes_.Int());
    }
    return TypedValue{builder_.CreateBinary(opcode, l, r), type};
  }

  TypedValue EmitConditionalExpr(const CExpr& expr) {
    Value* cond = EmitCondition(*expr.children[0]);
    BasicBlock* then_bb = NewBlock("cond.then");
    BasicBlock* else_bb = NewBlock("cond.else");
    BasicBlock* end_bb = NewBlock("cond.end");
    builder_.CreateCondBr(cond, then_bb, else_bb);

    builder_.SetInsertPoint(then_bb);
    TypedValue tv = EmitRValue(*expr.children[1]);
    BasicBlock* then_end = builder_.insert_block();

    builder_.SetInsertPoint(else_bb);
    TypedValue fv = EmitRValue(*expr.children[2]);
    BasicBlock* else_end = builder_.insert_block();

    CType* type;
    if (tv.type->IsPointer() && fv.type->IsPointer()) {
      type = tv.type;
    } else if (tv.type->IsPointer() || fv.type->IsPointer()) {
      type = tv.type->IsPointer() ? tv.type : fv.type;
    } else {
      type = CommonArithType(tv.type, fv.type);
    }

    builder_.SetInsertPoint(then_end);
    Value* tvc = ConvertValue(expr.loc, tv, type);
    builder_.CreateBr(end_bb);
    builder_.SetInsertPoint(else_end);
    Value* fvc = ConvertValue(expr.loc, fv, type);
    builder_.CreateBr(end_bb);

    builder_.SetInsertPoint(end_bb);
    PhiInst* phi = builder_.CreatePhi(IrTypeOf(type), "cond");
    phi->AddIncoming(tvc, then_end);
    phi->AddIncoming(fvc, else_end);
    return TypedValue{phi, type};
  }

  TypedValue EmitCall(const CExpr& expr) {
    // __check(cond) / __check(cond, "message") builtin.
    if (expr.text == "__check") {
      if (expr.children.empty() || expr.children.size() > 2) {
        Error(expr.loc, "__check takes (condition[, message])");
        return Undef(ctypes_.Int());
      }
      std::string message = "__check failed";
      if (expr.children.size() == 2) {
        if (expr.children[1]->kind != CExprKind::kStringLit) {
          Error(expr.loc, "__check message must be a string literal");
          return Undef(ctypes_.Int());
        }
        message = expr.children[1]->text;
      }
      Value* cond = EmitCondition(*expr.children[0]);
      builder_.CreateCheck(cond, CheckKind::kAssert, message);
      return TypedValue{module_.context().GetInt(32, 0), ctypes_.Int()};
    }

    FunctionInfo* info = LookupOrBuiltin(expr.loc, expr.text);
    if (info == nullptr) {
      return Undef(ctypes_.Int());
    }
    if (expr.children.size() != info->params.size()) {
      Error(expr.loc, StrFormat("wrong number of arguments to '%s'", expr.text.c_str()));
      return Undef(info->return_type->IsVoid() ? ctypes_.Int() : info->return_type);
    }
    std::vector<Value*> args;
    for (size_t i = 0; i < expr.children.size(); ++i) {
      TypedValue arg = EmitRValue(*expr.children[i]);
      args.push_back(ConvertValue(expr.children[i]->loc, arg, info->params[i]));
    }
    Value* result = builder_.CreateCall(info->fn, std::move(args),
                                        info->return_type->IsVoid() ? "" : expr.text + ".r");
    if (info->return_type->IsVoid()) {
      return TypedValue{result, ctypes_.Void()};
    }
    return TypedValue{result, info->return_type};
  }

  TypedValue EmitIncDec(const CExpr& expr) {
    IRContext& ctx = module_.context();
    auto lv = EmitLValue(*expr.children[0]);
    if (!lv.has_value() || !lv->type->IsScalar()) {
      Error(expr.loc, "++/-- requires a scalar lvalue");
      return Undef(ctypes_.Int());
    }
    bool is_inc = expr.op == TokKind::kPlusPlus;
    Value* old_value = builder_.CreateLoad(lv->address);
    Value* new_value;
    if (lv->type->IsPointer()) {
      Value* one = ctx.GetInt(64, is_inc ? 1 : static_cast<uint64_t>(-1));
      new_value = builder_.CreateGep(IrTypeOf(lv->type->pointee()), old_value, {one});
    } else {
      Value* one = ctx.GetInt(IrTypeOf(lv->type), 1);
      new_value = is_inc ? builder_.CreateAdd(old_value, one)
                         : builder_.CreateSub(old_value, one);
    }
    builder_.CreateStore(new_value, lv->address);
    return TypedValue{expr.is_prefix ? new_value : old_value, lv->type};
  }

  GlobalVariable* InternString(const std::string& text) {
    auto it = string_globals_.find(text);
    if (it != string_globals_.end()) {
      return it->second;
    }
    GlobalVariable* global =
        module_.CreateStringGlobal(StrFormat(".str.%zu", string_globals_.size()), text);
    string_globals_[text] = global;
    return global;
  }

  Module& module_;
  CTypeContext& ctypes_;
  DiagnosticEngine& diags_;
  IRBuilder builder_;

  std::map<std::string, FunctionInfo> functions_;
  std::map<std::string, std::pair<GlobalVariable*, CType*>> globals_;
  std::map<std::string, GlobalVariable*> string_globals_;

  Function* fn_ = nullptr;
  CType* return_type_ = nullptr;
  std::vector<std::map<std::string, Local>> scopes_;
  std::vector<BasicBlock*> break_targets_;
  std::vector<BasicBlock*> continue_targets_;
  unsigned next_block_id_ = 0;
};

}  // namespace

std::unique_ptr<Module> CompileMiniC(const std::vector<MiniCSource>& sources,
                                     const std::string& module_name, DiagnosticEngine& diags) {
  auto module = std::make_unique<Module>(module_name);
  CTypeContext ctypes;
  Codegen codegen(*module, ctypes, diags);
  for (const MiniCSource& source : sources) {
    auto unit = ParseMiniC(source.code, ctypes, diags);
    if (unit == nullptr) {
      return nullptr;
    }
    if (!codegen.CompileUnit(*unit, source.is_libc)) {
      return nullptr;
    }
  }
  return module;
}

std::unique_ptr<Module> CompileMiniC(const std::string& source, const std::string& module_name,
                                     DiagnosticEngine& diags) {
  return CompileMiniC({MiniCSource{source, false}}, module_name, diags);
}

}  // namespace overify
