// Tokens of the MiniC language (the C89 subset the workload suite and the
// bundled C library are written in).
#pragma once

#include <cstdint>
#include <string>

#include "src/support/diagnostics.h"

namespace overify {

enum class TokKind {
  kEof,
  kIdent,
  kIntLit,     // integer or character literal (value in `int_value`)
  kStringLit,  // contents in `text`, unescaped

  // Keywords.
  kKwVoid,
  kKwChar,
  kKwInt,
  kKwLong,
  kKwUnsigned,
  kKwSigned,
  kKwConst,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwDo,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwSizeof,

  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kQuestion,
  kColon,
  kAssign,       // =
  kPlusAssign,   // +=
  kMinusAssign,  // -=
  kStarAssign,   // *=
  kSlashAssign,  // /=
  kPercentAssign,
  kAmpAssign,
  kPipeAssign,
  kCaretAssign,
  kShlAssign,
  kShrAssign,
  kPlusPlus,
  kMinusMinus,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kAmpAmp,
  kPipePipe,
  kEq,   // ==
  kNe,   // !=
  kLt,
  kGt,
  kLe,
  kGe,
  kShl,  // <<
  kShr,  // >>
};

struct CToken {
  TokKind kind = TokKind::kEof;
  std::string text;       // identifier name or string contents
  int64_t int_value = 0;  // for kIntLit
  SourceLoc loc;
};

const char* TokKindName(TokKind kind);

}  // namespace overify
