#include "src/testing/diff_harness.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/cache/persist.h"
#include "src/exec/interpreter.h"

namespace overify {
namespace difftest {

namespace {

void AppendBytes(std::ostringstream& out, const std::vector<uint8_t>& bytes) {
  out << "[";
  for (size_t i = 0; i < bytes.size(); ++i) {
    out << (i == 0 ? "" : " ") << static_cast<unsigned>(bytes[i]);
  }
  out << "]";
}

}  // namespace

std::string LatticeCell::Name() const {
  std::ostringstream out;
  out << OptLevelName(level) << "/j" << jobs << "/"
      << (shared_interner ? "shared" : "legacy") << "/"
      << (solver_preprocess ? "prep" : "noprep") << "/"
      << (solver_learning ? "learn" : "nolearn") << "/" << SearchStrategyName(strategy);
  if (slice_checks) {
    out << "/slice";
  }
  return out.str();
}

SymexOptions LatticeCell::ToOptions() const {
  SymexOptions options;
  options.jobs = jobs;
  options.shared_interner = shared_interner;
  options.solver_preprocess = solver_preprocess;
  options.solver_learning = solver_learning;
  options.strategy = strategy;
  options.slice_checks = slice_checks;
  return options;
}

bool BugSignature::operator<(const BugSignature& other) const {
  if (kind != other.kind) {
    return kind < other.kind;
  }
  if (message != other.message) {
    return message < other.message;
  }
  if (example_input != other.example_input) {
    return example_input < other.example_input;
  }
  return confirmed < other.confirmed;
}

bool RunSignature::operator==(const RunSignature& other) const {
  return exhausted == other.exhausted && paths_completed == other.paths_completed &&
         paths_infeasible == other.paths_infeasible && paths_bug == other.paths_bug &&
         paths_limit == other.paths_limit && paths_unexplored == other.paths_unexplored &&
         paths_unknown == other.paths_unknown &&
         paths_unknown_budget == other.paths_unknown_budget &&
         paths_unknown_deadline == other.paths_unknown_deadline &&
         paths_unknown_injected == other.paths_unknown_injected &&
         instructions == other.instructions && forks == other.forks &&
         stop_cause == other.stop_cause && bugs == other.bugs;
}

std::string RunSignature::ToString() const {
  std::ostringstream out;
  out << (exhausted ? "exhausted" : "CAPPED") << " paths=" << paths_completed
      << " infeasible=" << paths_infeasible << " bug=" << paths_bug
      << " limit=" << paths_limit << " unexplored=" << paths_unexplored
      << " unknown=" << paths_unknown << " (budget=" << paths_unknown_budget
      << " deadline=" << paths_unknown_deadline << " injected=" << paths_unknown_injected
      << ")" << " instructions=" << instructions << " forks=" << forks
      << " stop=" << StopCauseName(stop_cause);
  for (const BugSignature& bug : bugs) {
    out << "\n    bug " << BugKindName(bug.kind) << " '" << bug.message << "' input=";
    AppendBytes(out, bug.example_input);
    out << (bug.confirmed ? " (confirmed)" : " (UNCONFIRMED)");
  }
  return out.str();
}

std::string SemanticSignature::ToString() const {
  std::ostringstream out;
  out << (exhausted ? "exhausted" : "CAPPED") << " kinds=[";
  for (size_t i = 0; i < bug_kinds.size(); ++i) {
    out << (i == 0 ? "" : " ") << BugKindName(bug_kinds[i].first)
        << (bug_kinds[i].second ? "+confirmed" : "+unconfirmed");
  }
  out << "]";
  return out.str();
}

SemanticSignature SemanticOf(const RunSignature& signature) {
  SemanticSignature semantic;
  semantic.exhausted = signature.exhausted;
  for (const BugSignature& bug : signature.bugs) {
    semantic.bug_kinds.emplace_back(bug.kind, bug.confirmed);
  }
  std::sort(semantic.bug_kinds.begin(), semantic.bug_kinds.end());
  semantic.bug_kinds.erase(std::unique(semantic.bug_kinds.begin(), semantic.bug_kinds.end()),
                           semantic.bug_kinds.end());
  return semantic;
}

std::vector<LatticeCell> FullLattice(const DiffOptions& options) {
  std::vector<LatticeCell> cells;
  for (OptLevel level : options.levels) {
    for (unsigned jobs : options.jobs) {
      for (bool shared : options.interners) {
        for (bool preprocess : options.preprocess) {
          for (bool learning : options.learning) {
            for (SearchStrategy strategy : options.strategies) {
              for (bool slice : options.slicing) {
                LatticeCell cell;
                cell.level = level;
                cell.jobs = jobs;
                cell.shared_interner = shared;
                cell.solver_preprocess = preprocess;
                cell.solver_learning = learning;
                cell.strategy = strategy;
                cell.slice_checks = slice;
                cells.push_back(cell);
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

// Builds the canonical signature of one run, replaying bug inputs through
// the interpreter of this cell's build when confirmation is on.
RunSignature SignatureOf(const SymexResult& result, Module& module, const std::string& entry,
                         bool confirm_models) {
  RunSignature signature;
  signature.exhausted = result.exhausted;
  signature.paths_completed = result.paths_completed;
  signature.paths_infeasible = result.paths_infeasible;
  signature.paths_bug = result.paths_bug;
  signature.paths_limit = result.paths_limit;
  signature.paths_unexplored = result.paths_unexplored;
  signature.paths_unknown = result.paths_unknown;
  signature.paths_unknown_budget = result.paths_unknown_budget;
  signature.paths_unknown_deadline = result.paths_unknown_deadline;
  signature.paths_unknown_injected = result.paths_unknown_injected;
  signature.instructions = result.instructions;
  signature.forks = result.forks;
  signature.stop_cause = result.stop_cause;
  Function* entry_fn = module.GetFunction(entry);
  for (const BugReport& bug : result.bugs) {
    BugSignature sig;
    sig.kind = bug.kind;
    sig.message = bug.message;
    sig.example_input = bug.example_input;
    if (confirm_models && entry_fn != nullptr && !bug.example_input.empty()) {
      Interpreter interp(module);
      InterpResult replay = interp.Run(entry_fn, bug.example_input);
      sig.confirmed = !replay.ok;
    }
    signature.bugs.push_back(std::move(sig));
  }
  std::sort(signature.bugs.begin(), signature.bugs.end());
  return signature;
}

namespace {

void DescribeMismatch(std::ostringstream& diff, const LatticeCell& reference_cell,
                      const RunSignature& reference, const LatticeCell& cell,
                      const RunSignature& actual) {
  diff << "cell " << cell.Name() << " diverges from " << reference_cell.Name() << ":\n"
       << "  reference: " << reference.ToString() << "\n"
       << "  actual:    " << actual.ToString() << "\n";
}

}  // namespace

DiffReport RunDifferential(const std::string& name, const std::string& source,
                           unsigned sym_bytes, const DiffOptions& options) {
  DiffReport report;
  report.name = name;
  report.sym_bytes = sym_bytes;
  std::ostringstream diff;

  // Reference semantic signature across levels (from the first cell of the
  // first level group).
  bool have_semantic_reference = false;
  SemanticSignature semantic_reference;
  LatticeCell semantic_reference_cell;

  for (OptLevel level : options.levels) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(source, level, name);
    if (!compiled.ok) {
      diff << "compile failed at " << OptLevelName(level) << ":\n" << compiled.errors << "\n";
      continue;
    }

    // Within one level every scheduler/solver cell must produce the same
    // canonical signature; the first cell is the reference. Slice-mode cells
    // form their own reference group — their path/fork counts are per-slice
    // sums, comparable only to other slice cells (the cross-level semantic
    // comparison below still ties the two groups' bug sets together).
    struct LevelReference {
      bool have = false;
      RunSignature signature;
      LatticeCell cell;
    };
    std::map<bool, LevelReference> references;  // keyed by slice_checks
    for (const LatticeCell& cell : FullLattice(options)) {
      if (cell.level != level) {
        continue;
      }
      LevelReference& ref = references[cell.slice_checks];
      SymexResult result =
          Analyze(compiled, options.entry, sym_bytes, options.limits, cell.ToOptions());
      if (!result.ok) {
        diff << "cell " << cell.Name() << " rejected the input: " << result.error << "\n";
        continue;
      }
      RunSignature signature =
          SignatureOf(result, *compiled.module, options.entry, options.confirm_models);
      report.cells.push_back(CellResult{cell, signature});

      for (const BugSignature& bug : signature.bugs) {
        if (bug.kind == BugKind::kEngineError) {
          diff << "cell " << cell.Name() << " hit an engine error: " << bug.message << "\n";
        }
      }
      if (options.require_exhausted && !signature.exhausted) {
        diff << "cell " << cell.Name() << " did not exhaust within the limits: "
             << signature.ToString() << "\n";
      }

      if (!ref.have) {
        ref.have = true;
        ref.signature = signature;
        ref.cell = cell;
      } else {
        // Counts are only contractual on exhausted runs; when exhaustion is
        // not required, capped cells fall back to the semantic comparison
        // below, and the reference is promoted to the group's first
        // *exhausted* cell so exhausted cells are still held to the
        // bit-identical contract against each other.
        bool comparable = options.require_exhausted ||
                          (ref.signature.exhausted && signature.exhausted);
        if (comparable && signature != ref.signature) {
          DescribeMismatch(diff, ref.cell, ref.signature, cell, signature);
        }
        if (!options.require_exhausted && !ref.signature.exhausted && signature.exhausted) {
          ref.signature = signature;
          ref.cell = cell;
        }
      }

      // Cross-level semantics are only contractual for exhausted cells: a
      // capped run's bug set is whatever the schedule discovered before the
      // limit, so capped cells (tolerated when exhaustion is not required)
      // stay out of this comparison entirely.
      if (signature.exhausted) {
        SemanticSignature semantic = SemanticOf(signature);
        if (!have_semantic_reference) {
          have_semantic_reference = true;
          semantic_reference = semantic;
          semantic_reference_cell = cell;
        } else if (!(semantic == semantic_reference)) {
          diff << "cell " << cell.Name() << " semantic signature diverges from "
               << semantic_reference_cell.Name() << ":\n"
               << "  reference: " << semantic_reference.ToString() << "\n"
               << "  actual:    " << semantic.ToString() << "\n";
        }
      }
    }
    bool any_ran = false;
    for (const auto& [slice, ref] : references) {
      (void)slice;
      any_ran = any_ran || ref.have;
    }
    if (!any_ran) {
      diff << "no cells ran at " << OptLevelName(level) << "\n";
    }
  }

  if (report.cells.empty()) {
    diff << "no lattice cells ran\n";
  }
  report.diff = diff.str();
  report.ok = report.diff.empty();
  return report;
}

DiffReport RunDifferential(const Workload& workload, unsigned sym_bytes,
                           const DiffOptions& options) {
  return RunDifferential(workload.name, workload.source,
                         sym_bytes == 0 ? workload.default_sym_bytes : sym_bytes, options);
}

namespace {

// The degradation contract's invariants on one result, independent of any
// reference: cause attribution must sum, and a partial run must say why it
// is partial.
void CheckAttribution(std::ostringstream& diff, const std::string& label,
                      const SymexResult& result, const RunSignature& signature) {
  if (result.paths_unknown != result.paths_unknown_budget + result.paths_unknown_deadline +
                                  result.paths_unknown_injected) {
    diff << label << ": unknown breakdown does not sum: " << signature.ToString() << "\n";
  }
  if (result.paths_terminated != result.paths_infeasible + result.paths_bug +
                                     result.paths_limit + result.paths_unexplored +
                                     result.paths_unknown) {
    diff << label << ": terminated paths do not sum by cause: " << signature.ToString()
         << "\n";
  }
  if (!result.exhausted && result.stop_cause == StopCause::kNone &&
      result.paths_unknown == 0) {
    diff << label << ": partial run with no attributed cause: " << signature.ToString()
         << "\n";
  }
  for (const BugSignature& bug : signature.bugs) {
    // Soundness must not degrade: every surviving report replays. Engine
    // errors are the one exception — the interpreter has no equivalent trap
    // for an engine-side limitation.
    if (bug.kind != BugKind::kEngineError && !bug.confirmed) {
      diff << label << ": bug report not confirmed by replay: " << BugKindName(bug.kind)
           << " '" << bug.message << "'\n";
    }
  }
}

}  // namespace

DiffReport RunRobustnessDifferential(const std::string& name, const std::string& source,
                                     unsigned sym_bytes, const RobustnessOptions& options) {
  DiffReport report;
  report.name = name;
  report.sym_bytes = sym_bytes;
  std::ostringstream diff;

  Compiler compiler;
  CompileResult compiled = compiler.Compile(source, options.level, name);
  if (!compiled.ok) {
    diff << "compile failed at " << OptLevelName(options.level) << ":\n"
         << compiled.errors << "\n";
    report.diff = diff.str();
    return report;
  }

  auto run_once = [&](const SymexOptions& opts, const SymexLimits& limits,
                      const std::string& label, SymexResult* result_out) -> RunSignature {
    SymexResult result = Analyze(compiled, options.entry, sym_bytes, limits, opts);
    if (!result.ok) {
      diff << label << " rejected the input: " << result.error << "\n";
    }
    RunSignature signature =
        SignatureOf(result, *compiled.module, options.entry, /*confirm_models=*/true);
    CheckAttribution(diff, label, result, signature);
    if (result_out != nullptr) {
      *result_out = std::move(result);
    }
    return signature;
  };

  // Fault-free references, one per worker count. Exhausted clean runs are
  // already bit-identical across worker counts (the scheduler contract);
  // re-check it here so a broken reference does not masquerade as a fault
  // regression.
  std::map<unsigned, RunSignature> clean;
  for (unsigned jobs : options.jobs) {
    SymexOptions opts;
    opts.jobs = jobs;
    opts.strategy = options.strategy;
    std::string label = "clean/j" + std::to_string(jobs);
    RunSignature signature = run_once(opts, options.limits, label, nullptr);
    if (!signature.exhausted) {
      diff << label << " did not exhaust within the limits (size RobustnessOptions::limits "
           << "so it does): " << signature.ToString() << "\n";
    }
    if (!clean.empty() && signature != clean.begin()->second) {
      diff << label << " diverges from clean/j" << clean.begin()->first << ":\n"
           << "  reference: " << clean.begin()->second.ToString() << "\n"
           << "  actual:    " << signature.ToString() << "\n";
    }
    clean.emplace(jobs, std::move(signature));
  }

  // Fault axis: every seed x worker count, run twice. Single-worker runs
  // must reproduce bit for bit; any run that still exhausts must match the
  // clean reference exactly (injected faults may only cost completeness).
  for (uint64_t seed : options.fault_seeds) {
    if (seed == 0) {
      continue;  // seed 0 means disabled
    }
    for (unsigned jobs : options.jobs) {
      SymexOptions opts;
      opts.jobs = jobs;
      opts.strategy = options.strategy;
      opts.faults.seed = seed;
      opts.faults.period = options.fault_period;
      // Keep at least one worker alive so multi-worker runs can still
      // exhaust; at one worker a death would just abandon the run.
      opts.faults.max_worker_deaths = jobs > 1 ? jobs - 1 : 0;
      std::ostringstream label_out;
      label_out << "faults/seed=0x" << std::hex << seed << std::dec << "/j" << jobs;
      std::string label = label_out.str();

      RunSignature first = run_once(opts, options.limits, label + "/run1", nullptr);
      RunSignature second = run_once(opts, options.limits, label + "/run2", nullptr);
      if (jobs == 1 && first != second) {
        diff << label << " is not reproducible at one worker:\n"
             << "  run1: " << first.ToString() << "\n"
             << "  run2: " << second.ToString() << "\n";
      }
      for (const RunSignature* signature : {&first, &second}) {
        if (signature->exhausted && *signature != clean.at(jobs)) {
          diff << label << " exhausted but diverges from the fault-free run:\n"
               << "  clean:   " << clean.at(jobs).ToString() << "\n"
               << "  faulted: " << signature->ToString() << "\n";
        }
      }
    }
  }

  // Budget axis at one worker: a tightened max_paths must yield the same
  // partial signature on every run — budget-limited degradation is
  // deterministic, not merely bounded.
  for (uint64_t budget : options.path_budgets) {
    SymexLimits limits = options.limits;
    limits.max_paths = budget;
    SymexOptions opts;
    opts.jobs = 1;
    opts.strategy = options.strategy;
    std::string label = "budget/max_paths=" + std::to_string(budget);
    RunSignature first = run_once(opts, limits, label + "/run1", nullptr);
    RunSignature second = run_once(opts, limits, label + "/run2", nullptr);
    if (first != second) {
      diff << label << " is not deterministic:\n"
           << "  run1: " << first.ToString() << "\n"
           << "  run2: " << second.ToString() << "\n";
    }
  }

  report.diff = diff.str();
  report.ok = report.diff.empty();
  return report;
}

DiffReport RunRobustnessDifferential(const Workload& workload, unsigned sym_bytes,
                                     const RobustnessOptions& options) {
  return RunRobustnessDifferential(workload.name, workload.source,
                                   sym_bytes == 0 ? workload.default_sym_bytes : sym_bytes,
                                   options);
}

DiffReport RunWarmColdDifferential(const std::string& name, const std::string& source,
                                   unsigned sym_bytes, const WarmColdOptions& options) {
  DiffReport report;
  report.name = name;
  report.sym_bytes = sym_bytes;
  std::ostringstream diff;

  Compiler compiler;
  CompileResult compiled = compiler.Compile(source, options.level, name);
  if (!compiled.ok) {
    diff << "compile failed at " << OptLevelName(options.level) << ":\n"
         << compiled.errors << "\n";
    report.diff = diff.str();
    return report;
  }

  for (unsigned jobs : options.jobs) {
    LatticeCell cell;
    cell.level = options.level;
    cell.jobs = jobs;
    const std::string base = "warmcold/j" + std::to_string(jobs);

    auto run_once = [&](CacheStore* store, const std::string& label,
                        SymexResult* result_out) -> RunSignature {
      SymexOptions opts = cell.ToOptions();
      opts.cache_store = store;
      SymexResult result = Analyze(compiled, options.entry, sym_bytes, options.limits, opts);
      if (!result.ok) {
        diff << label << " rejected the input: " << result.error << "\n";
      }
      RunSignature signature =
          SignatureOf(result, *compiled.module, options.entry, /*confirm_models=*/true);
      if (result_out != nullptr) {
        *result_out = std::move(result);
      }
      return signature;
    };

    // The reference: a cold run with no store at all.
    RunSignature reference = run_once(nullptr, base + "/cold", nullptr);
    report.cells.push_back(CellResult{cell, reference});
    if (!reference.exhausted) {
      diff << base << "/cold did not exhaust within the limits (size "
           << "WarmColdOptions::limits so it does): " << reference.ToString() << "\n";
    }

    // Cold-with-store: an empty store seeds nothing, so attaching it must
    // change nothing — and its harvest becomes round 1's seed.
    CacheStore store;
    RunSignature harvest = run_once(&store, base + "/harvest", nullptr);
    if (harvest != reference) {
      DescribeMismatch(diff, cell, reference, cell, harvest);
      diff << "  (attaching an empty store changed the run)\n";
    }

    for (unsigned round = 1; round <= options.rounds; ++round) {
      const std::string label = base + "/warm" + std::to_string(round);
      // Full byte round trip between rounds: the warm run consumes exactly
      // what a fresh process loading the file would.
      CacheStore reloaded;
      if (!reloaded.Deserialize(store.Serialize())) {
        diff << label << ": store failed its own round trip: " << reloaded.load_error()
             << "\n";
        break;
      }
      SymexResult warm_result;
      RunSignature warm = run_once(&reloaded, label, &warm_result);
      if (warm != reference) {
        DescribeMismatch(diff, cell, reference, cell, warm);
        diff << "  (warm round " << round << " diverged from the cold reference)\n";
      }
      if (warm_result.metrics.Get(Counter::kPersistSeeded) == 0) {
        diff << label << ": the persisted store seeded no cache entries — the warm axis "
             << "proved nothing\n";
      }
      store = std::move(reloaded);
    }
  }

  if (report.cells.empty()) {
    diff << "no warm/cold cells ran\n";
  }
  report.diff = diff.str();
  report.ok = report.diff.empty();
  return report;
}

DiffReport RunWarmColdDifferential(const Workload& workload, unsigned sym_bytes,
                                   const WarmColdOptions& options) {
  return RunWarmColdDifferential(workload.name, workload.source,
                                 sym_bytes == 0 ? workload.default_sym_bytes : sym_bytes,
                                 options);
}

}  // namespace difftest
}  // namespace overify
