#include "src/testing/diff_harness.h"

#include <algorithm>
#include <sstream>

#include "src/exec/interpreter.h"

namespace overify {
namespace difftest {

namespace {

void AppendBytes(std::ostringstream& out, const std::vector<uint8_t>& bytes) {
  out << "[";
  for (size_t i = 0; i < bytes.size(); ++i) {
    out << (i == 0 ? "" : " ") << static_cast<unsigned>(bytes[i]);
  }
  out << "]";
}

}  // namespace

std::string LatticeCell::Name() const {
  std::ostringstream out;
  out << OptLevelName(level) << "/j" << jobs << "/"
      << (shared_interner ? "shared" : "legacy") << "/"
      << (solver_preprocess ? "prep" : "noprep") << "/" << SearchStrategyName(strategy);
  return out.str();
}

SymexOptions LatticeCell::ToOptions() const {
  SymexOptions options;
  options.jobs = jobs;
  options.shared_interner = shared_interner;
  options.solver_preprocess = solver_preprocess;
  options.strategy = strategy;
  return options;
}

bool BugSignature::operator<(const BugSignature& other) const {
  if (kind != other.kind) {
    return kind < other.kind;
  }
  if (message != other.message) {
    return message < other.message;
  }
  if (example_input != other.example_input) {
    return example_input < other.example_input;
  }
  return confirmed < other.confirmed;
}

bool RunSignature::operator==(const RunSignature& other) const {
  return exhausted == other.exhausted && paths_completed == other.paths_completed &&
         paths_infeasible == other.paths_infeasible && paths_bug == other.paths_bug &&
         paths_limit == other.paths_limit && paths_unexplored == other.paths_unexplored &&
         instructions == other.instructions && forks == other.forks && bugs == other.bugs;
}

std::string RunSignature::ToString() const {
  std::ostringstream out;
  out << (exhausted ? "exhausted" : "CAPPED") << " paths=" << paths_completed
      << " infeasible=" << paths_infeasible << " bug=" << paths_bug
      << " limit=" << paths_limit << " unexplored=" << paths_unexplored
      << " instructions=" << instructions << " forks=" << forks;
  for (const BugSignature& bug : bugs) {
    out << "\n    bug " << BugKindName(bug.kind) << " '" << bug.message << "' input=";
    AppendBytes(out, bug.example_input);
    out << (bug.confirmed ? " (confirmed)" : " (UNCONFIRMED)");
  }
  return out.str();
}

std::string SemanticSignature::ToString() const {
  std::ostringstream out;
  out << (exhausted ? "exhausted" : "CAPPED") << " kinds=[";
  for (size_t i = 0; i < bug_kinds.size(); ++i) {
    out << (i == 0 ? "" : " ") << BugKindName(bug_kinds[i].first)
        << (bug_kinds[i].second ? "+confirmed" : "+unconfirmed");
  }
  out << "]";
  return out.str();
}

SemanticSignature SemanticOf(const RunSignature& signature) {
  SemanticSignature semantic;
  semantic.exhausted = signature.exhausted;
  for (const BugSignature& bug : signature.bugs) {
    semantic.bug_kinds.emplace_back(bug.kind, bug.confirmed);
  }
  std::sort(semantic.bug_kinds.begin(), semantic.bug_kinds.end());
  semantic.bug_kinds.erase(std::unique(semantic.bug_kinds.begin(), semantic.bug_kinds.end()),
                           semantic.bug_kinds.end());
  return semantic;
}

std::vector<LatticeCell> FullLattice(const DiffOptions& options) {
  std::vector<LatticeCell> cells;
  for (OptLevel level : options.levels) {
    for (unsigned jobs : options.jobs) {
      for (bool shared : options.interners) {
        for (bool preprocess : options.preprocess) {
          for (SearchStrategy strategy : options.strategies) {
            LatticeCell cell;
            cell.level = level;
            cell.jobs = jobs;
            cell.shared_interner = shared;
            cell.solver_preprocess = preprocess;
            cell.strategy = strategy;
            cells.push_back(cell);
          }
        }
      }
    }
  }
  return cells;
}

namespace {

// Builds the canonical signature of one run, replaying bug inputs through
// the interpreter of this cell's build when confirmation is on.
RunSignature SignatureOf(const SymexResult& result, Module& module, const std::string& entry,
                         bool confirm_models) {
  RunSignature signature;
  signature.exhausted = result.exhausted;
  signature.paths_completed = result.paths_completed;
  signature.paths_infeasible = result.paths_infeasible;
  signature.paths_bug = result.paths_bug;
  signature.paths_limit = result.paths_limit;
  signature.paths_unexplored = result.paths_unexplored;
  signature.instructions = result.instructions;
  signature.forks = result.forks;
  Function* entry_fn = module.GetFunction(entry);
  for (const BugReport& bug : result.bugs) {
    BugSignature sig;
    sig.kind = bug.kind;
    sig.message = bug.message;
    sig.example_input = bug.example_input;
    if (confirm_models && entry_fn != nullptr && !bug.example_input.empty()) {
      Interpreter interp(module);
      InterpResult replay = interp.Run(entry_fn, bug.example_input);
      sig.confirmed = !replay.ok;
    }
    signature.bugs.push_back(std::move(sig));
  }
  std::sort(signature.bugs.begin(), signature.bugs.end());
  return signature;
}

void DescribeMismatch(std::ostringstream& diff, const LatticeCell& reference_cell,
                      const RunSignature& reference, const LatticeCell& cell,
                      const RunSignature& actual) {
  diff << "cell " << cell.Name() << " diverges from " << reference_cell.Name() << ":\n"
       << "  reference: " << reference.ToString() << "\n"
       << "  actual:    " << actual.ToString() << "\n";
}

}  // namespace

DiffReport RunDifferential(const std::string& name, const std::string& source,
                           unsigned sym_bytes, const DiffOptions& options) {
  DiffReport report;
  report.name = name;
  report.sym_bytes = sym_bytes;
  std::ostringstream diff;

  // Reference semantic signature across levels (from the first cell of the
  // first level group).
  bool have_semantic_reference = false;
  SemanticSignature semantic_reference;
  LatticeCell semantic_reference_cell;

  for (OptLevel level : options.levels) {
    Compiler compiler;
    CompileResult compiled = compiler.Compile(source, level, name);
    if (!compiled.ok) {
      diff << "compile failed at " << OptLevelName(level) << ":\n" << compiled.errors << "\n";
      continue;
    }

    // Within one level every scheduler/solver cell must produce the same
    // canonical signature; the first cell is the reference.
    bool have_reference = false;
    RunSignature reference;
    LatticeCell reference_cell;
    for (const LatticeCell& cell : FullLattice(options)) {
      if (cell.level != level) {
        continue;
      }
      SymexResult result =
          Analyze(compiled, options.entry, sym_bytes, options.limits, cell.ToOptions());
      RunSignature signature =
          SignatureOf(result, *compiled.module, options.entry, options.confirm_models);
      report.cells.push_back(CellResult{cell, signature});

      for (const BugSignature& bug : signature.bugs) {
        if (bug.kind == BugKind::kEngineError) {
          diff << "cell " << cell.Name() << " hit an engine error: " << bug.message << "\n";
        }
      }
      if (options.require_exhausted && !signature.exhausted) {
        diff << "cell " << cell.Name() << " did not exhaust within the limits: "
             << signature.ToString() << "\n";
      }

      if (!have_reference) {
        have_reference = true;
        reference = signature;
        reference_cell = cell;
      } else {
        // Counts are only contractual on exhausted runs; when exhaustion is
        // not required, capped cells fall back to the semantic comparison
        // below, and the reference is promoted to the level's first
        // *exhausted* cell so exhausted cells are still held to the
        // bit-identical contract against each other.
        bool comparable = options.require_exhausted ||
                          (reference.exhausted && signature.exhausted);
        if (comparable && signature != reference) {
          DescribeMismatch(diff, reference_cell, reference, cell, signature);
        }
        if (!options.require_exhausted && !reference.exhausted && signature.exhausted) {
          reference = signature;
          reference_cell = cell;
        }
      }

      // Cross-level semantics are only contractual for exhausted cells: a
      // capped run's bug set is whatever the schedule discovered before the
      // limit, so capped cells (tolerated when exhaustion is not required)
      // stay out of this comparison entirely.
      if (signature.exhausted) {
        SemanticSignature semantic = SemanticOf(signature);
        if (!have_semantic_reference) {
          have_semantic_reference = true;
          semantic_reference = semantic;
          semantic_reference_cell = cell;
        } else if (!(semantic == semantic_reference)) {
          diff << "cell " << cell.Name() << " semantic signature diverges from "
               << semantic_reference_cell.Name() << ":\n"
               << "  reference: " << semantic_reference.ToString() << "\n"
               << "  actual:    " << semantic.ToString() << "\n";
        }
      }
    }
    if (!have_reference) {
      diff << "no cells ran at " << OptLevelName(level) << "\n";
    }
  }

  if (report.cells.empty()) {
    diff << "no lattice cells ran\n";
  }
  report.diff = diff.str();
  report.ok = report.diff.empty();
  return report;
}

DiffReport RunDifferential(const Workload& workload, unsigned sym_bytes,
                           const DiffOptions& options) {
  return RunDifferential(workload.name, workload.source,
                         sym_bytes == 0 ? workload.default_sym_bytes : sym_bytes, options);
}

}  // namespace difftest
}  // namespace overify
