// Differential verification harness: one workload, every configuration.
//
// The engine has five independently-toggleable fast paths (shared interner,
// constraint preprocessing, prefix caching behind it, CDCL-style learning
// in the backtracking core, searcher strategy) on top of the
// optimization-level axis the paper studies. Each of them claims
// "identical results either way" — this harness is the single oracle that
// enforces the claim at suite scale instead of scattered per-feature
// equivalence tests. It runs a program through the full configuration
// lattice
//
//   {-O0, -OVERIFY, -O3} x {1, 4 workers} x {shared, legacy interner}
//                        x {preprocess on, off} x {learning on, off}
//                        x {dfs, coverage-guided}
//
// and asserts a canonical RunSignature per cell:
//
//  - within one optimization level (same compiled module), the signature —
//    per-cause terminated counters, path/fork/instruction counts, and the
//    sorted bug reports with their confirmed models — must be bit-identical
//    across every scheduler/solver configuration of an exhausted run;
//  - across levels the compiled programs differ, so counts are not
//    comparable; the semantic signature (exhaustion, plus the sorted set of
//    bug kinds with whether each confirmed) must still agree.
//
// "Confirmed" means the bug's example input was replayed through the
// concrete interpreter on that cell's build and actually trapped — the
// harness never trusts a model it has not executed.
//
// On mismatch the report carries a readable per-cell diff. Workloads come
// from the Coreutils suite (src/workloads) or from any MiniC source — the
// randomized kernel generator (src/workloads/textgen.h) plugs in through
// the source entry point for fuzz-style differential runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/compiler.h"
#include "src/sched/searcher.h"
#include "src/symex/executor.h"
#include "src/workloads/workloads.h"

namespace overify {
namespace difftest {

// One cell of the configuration lattice.
struct LatticeCell {
  OptLevel level = OptLevel::kOverify;
  unsigned jobs = 1;
  bool shared_interner = true;
  bool solver_preprocess = true;
  bool solver_learning = true;
  SearchStrategy strategy = SearchStrategy::kDfs;
  // Per-check slice verification (docs/slicing.md). Slice-mode path/fork
  // counts are per-slice sums, so slice cells form their own bit-identical
  // reference group within a level; the cross-level semantic comparison
  // still holds them to the same (kind, confirmed) bug set as whole-program
  // cells.
  bool slice_checks = false;

  // "O3/j4/shared/prep/learn/dfs" — stable, greppable cell id; slice-mode
  // cells append "/slice".
  std::string Name() const;
  SymexOptions ToOptions() const;
};

// One bug report in canonical form. Reports are compared field-by-field
// within a level; across levels only (kind, confirmed) participates.
struct BugSignature {
  BugKind kind = BugKind::kEngineError;
  std::string message;
  std::vector<uint8_t> example_input;
  // The example input was replayed through the concrete interpreter on this
  // cell's build and trapped.
  bool confirmed = false;

  bool operator==(const BugSignature& other) const {
    return kind == other.kind && message == other.message &&
           example_input == other.example_input && confirmed == other.confirmed;
  }
  bool operator<(const BugSignature& other) const;
};

// The canonical result of one cell's run: everything the determinism
// contract covers, nothing schedule-dependent (steal traffic, wall time and
// solver statistics are deliberately absent).
struct RunSignature {
  bool exhausted = false;
  uint64_t paths_completed = 0;
  uint64_t paths_infeasible = 0;
  uint64_t paths_bug = 0;
  uint64_t paths_limit = 0;
  uint64_t paths_unexplored = 0;
  // Solver-gave-up paths with their cause breakdown; part of the graceful
  // degradation contract (docs/robustness.md): a partial run's losses are
  // attributed, so they are part of the canonical signature.
  uint64_t paths_unknown = 0;
  uint64_t paths_unknown_budget = 0;
  uint64_t paths_unknown_deadline = 0;
  uint64_t paths_unknown_injected = 0;
  uint64_t instructions = 0;
  uint64_t forks = 0;
  StopCause stop_cause = StopCause::kNone;
  std::vector<BugSignature> bugs;  // sorted

  bool operator==(const RunSignature& other) const;
  bool operator!=(const RunSignature& other) const { return !(*this == other); }
  // Multi-line rendering for diffs and logs.
  std::string ToString() const;
};

// The level-independent part: exhaustion + sorted distinct (kind,
// confirmed) pairs. Comparable across optimization levels, where counts and
// messages are not.
struct SemanticSignature {
  bool exhausted = false;
  std::vector<std::pair<BugKind, bool>> bug_kinds;  // sorted, distinct

  bool operator==(const SemanticSignature& other) const {
    return exhausted == other.exhausted && bug_kinds == other.bug_kinds;
  }
  std::string ToString() const;
};

SemanticSignature SemanticOf(const RunSignature& signature);

// The canonical signature of one finished run — what every differential
// asserts per cell. Exposed for the verification daemon (which memoizes
// signatures per module content hash) and the warm/cold persistence
// differential. When `confirm_models` is set, each bug's example input is
// replayed through the concrete interpreter of `module` to fill
// BugSignature::confirmed.
RunSignature SignatureOf(const SymexResult& result, Module& module, const std::string& entry,
                         bool confirm_models);

struct DiffOptions {
  std::vector<OptLevel> levels = {OptLevel::kO0, OptLevel::kOverify, OptLevel::kO3};
  std::vector<unsigned> jobs = {1, 4};
  std::vector<bool> interners = {true, false};    // shared_interner values
  std::vector<bool> preprocess = {true, false};   // solver_preprocess values
  std::vector<bool> learning = {true, false};     // solver_learning values
  std::vector<SearchStrategy> strategies = {SearchStrategy::kDfs,
                                            SearchStrategy::kCoverageGuided};
  // Slice-mode axis (docs/slicing.md). Default spans whole-program only so
  // the base lattice's cost is unchanged; slicing suites set {false, true}
  // to assert slice-vs-whole verdict equivalence on top of the scheduler
  // and solver axes.
  std::vector<bool> slicing = {false};
  std::string entry = "umain";
  SymexLimits limits;  // callers size this so every cell exhausts
  // Replay each bug's example input through the interpreter (sets
  // BugSignature::confirmed). Off skips the replays for speed.
  bool confirm_models = true;
  // Fail the report when any cell fails to exhaust within the limits. The
  // determinism contract covers exhausted runs only — a capped cell's
  // counts *and* bug set are whatever the schedule reached before the limit
  // — so with this off, capped cells are excluded from both the per-level
  // count comparison and the cross-level semantic comparison (exhausted
  // cells are still held to the full contract against each other).
  bool require_exhausted = true;
};

// The cells the options span, level-major (the harness compiles once per
// level and reuses the module across that level's scheduler cells).
std::vector<LatticeCell> FullLattice(const DiffOptions& options);

struct CellResult {
  LatticeCell cell;
  RunSignature signature;
};

struct DiffReport {
  std::string name;
  unsigned sym_bytes = 0;
  bool ok = false;
  // Human-readable mismatch description (empty when ok). Each divergence
  // names the cell, the reference cell, and the fields that differ.
  std::string diff;
  std::vector<CellResult> cells;
};

// Runs `source` (a MiniC program defining `entry`) with `sym_bytes`
// symbolic input bytes through every cell of the lattice and cross-checks
// the signatures. Compile failures and engine errors surface through
// DiffReport::diff.
DiffReport RunDifferential(const std::string& name, const std::string& source,
                           unsigned sym_bytes, const DiffOptions& options = {});

// Suite convenience: `sym_bytes` of 0 uses the workload's default.
DiffReport RunDifferential(const Workload& workload, unsigned sym_bytes = 0,
                           const DiffOptions& options = {});

// ---- Robustness differential ----
//
// The fault-and-budget counterpart of RunDifferential: instead of sweeping
// engine configurations and asserting equivalence, it sweeps injected fault
// seeds and tightened budgets and asserts the graceful-degradation contract
// (docs/robustness.md):
//
//  - same seed + budget + workers ⇒ reproducible: single-worker runs are
//    bit-identical run to run, faults included;
//  - an injected-fault run that still exhausts is bit-identical to the
//    fault-free run (faults may only cost completeness, never change
//    results);
//  - every partial run is fully cause-attributed: the unknown breakdown
//    sums, paths_terminated sums, and a non-exhausted run names a stop
//    cause or carries unknown paths;
//  - every surviving bug report (engine errors aside) is confirmed by
//    concrete replay — soundness never degrades.
struct RobustnessOptions {
  std::vector<unsigned> jobs = {1, 4};
  // Fault seeds to sweep (0 entries are skipped: seed 0 means disabled).
  std::vector<uint64_t> fault_seeds = {0x0badc0de, 0x5eed5eed, 0x00c0ffee};
  uint32_t fault_period = 64;
  // max_paths values for the budget-limited determinism axis (run at one
  // worker, where partial signatures are schedule-independent).
  std::vector<uint64_t> path_budgets = {4, 64};
  std::string entry = "umain";
  SymexLimits limits;  // sized so the clean run exhausts
  OptLevel level = OptLevel::kOverify;
  SearchStrategy strategy = SearchStrategy::kDfs;
};

DiffReport RunRobustnessDifferential(const std::string& name, const std::string& source,
                                     unsigned sym_bytes,
                                     const RobustnessOptions& options = {});

// Suite convenience: `sym_bytes` of 0 uses the workload's default.
DiffReport RunRobustnessDifferential(const Workload& workload, unsigned sym_bytes = 0,
                                     const RobustnessOptions& options = {});

// ---- Warm/cold persistence differential ----
//
// The cross-run-cache counterpart of RunDifferential: proves that a run
// seeded from a persisted CacheStore (src/cache/persist.h) is
// signature-identical to a cold run of the same module. Per worker count it
// runs cold without a store (the reference), cold with an empty store (the
// harvest), then `rounds` warm runs — each consuming the store through a
// full serialize/deserialize round trip, exactly what a new process (or the
// daemon's next client) would see. Any divergence, a store that fails its
// own round trip, or a warm round that seeded nothing lands in
// DiffReport::diff.
struct WarmColdOptions {
  OptLevel level = OptLevel::kOverify;
  std::vector<unsigned> jobs = {1, 4};
  // Warm reruns per worker count; each harvests back into the store, so
  // round N+1 consumes what round N (and the cold run) learned.
  unsigned rounds = 2;
  std::string entry = "umain";
  SymexLimits limits;  // sized so every run exhausts
};

DiffReport RunWarmColdDifferential(const std::string& name, const std::string& source,
                                   unsigned sym_bytes, const WarmColdOptions& options = {});

// Suite convenience: `sym_bytes` of 0 uses the workload's default.
DiffReport RunWarmColdDifferential(const Workload& workload, unsigned sym_bytes = 0,
                                   const WarmColdOptions& options = {});

}  // namespace difftest
}  // namespace overify
