#include "src/support/env.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace overify {
namespace {

// Shared shape of a rejection diagnostic: variable, offending value, reason,
// accepted range. Keeping it in one place keeps the CI grep for these
// messages trivial.
std::string Diagnostic(const char* name, const char* value, const char* reason,
                       const std::string& range) {
  std::string msg = "invalid ";
  msg += name;
  msg += "=\"";
  msg += value;
  msg += "\": ";
  msg += reason;
  msg += " (expected ";
  msg += range;
  msg += "); using default";
  return msg;
}

bool IsSpaceOnly(const char* s) {
  for (; *s; ++s) {
    if (!std::isspace(static_cast<unsigned char>(*s))) return false;
  }
  return true;
}

}  // namespace

EnvParse ParseEnvUint64(const char* name, uint64_t min_value, uint64_t max_value,
                        uint64_t* out) {
  EnvParse parse;
  const char* raw = std::getenv(name);
  if (raw == nullptr) return parse;
  parse.present = true;

  const std::string range = "integer in [" + std::to_string(min_value) + ", " +
                            std::to_string(max_value) + "]";
  if (*raw == '\0' || IsSpaceOnly(raw)) {
    parse.error = Diagnostic(name, raw, "empty value", range);
    return parse;
  }
  // strtoull skips leading whitespace and parses "-1" as a huge unsigned;
  // a complete literal allows neither.
  if (std::isspace(static_cast<unsigned char>(*raw))) {
    parse.error = Diagnostic(name, raw, "leading whitespace", range);
    return parse;
  }
  if (*raw == '-' || *raw == '+') {
    parse.error = Diagnostic(name, raw, "sign not allowed", range);
    return parse;
  }

  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(raw, &end, 0);
  if (end == raw || *end != '\0') {
    parse.error = Diagnostic(name, raw, "not a number", range);
    return parse;
  }
  if (errno == ERANGE || value < min_value || value > max_value) {
    parse.error = Diagnostic(name, raw, "out of range", range);
    return parse;
  }
  parse.ok = true;
  *out = static_cast<uint64_t>(value);
  return parse;
}

EnvParse ParseEnvDouble(const char* name, double min_value, double max_value, double* out) {
  EnvParse parse;
  const char* raw = std::getenv(name);
  if (raw == nullptr) return parse;
  parse.present = true;

  char range_buf[96];
  std::snprintf(range_buf, sizeof(range_buf), "number in [%g, %g]", min_value, max_value);
  const std::string range = range_buf;
  if (*raw == '\0' || IsSpaceOnly(raw)) {
    parse.error = Diagnostic(name, raw, "empty value", range);
    return parse;
  }
  if (std::isspace(static_cast<unsigned char>(*raw))) {
    parse.error = Diagnostic(name, raw, "leading whitespace", range);
    return parse;
  }

  errno = 0;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') {
    parse.error = Diagnostic(name, raw, "not a number", range);
    return parse;
  }
  if (errno == ERANGE || !(value >= min_value && value <= max_value)) {
    parse.error = Diagnostic(name, raw, "out of range", range);
    return parse;
  }
  parse.ok = true;
  *out = value;
  return parse;
}

std::string ReportEnvError(const EnvParse& parse) {
  if (!parse.Rejected()) return std::string();
  std::fprintf(stderr, "overify: %s\n", parse.error.c_str());
  return parse.error;
}

}  // namespace overify
