#include "src/support/fault.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "src/support/assert.h"
#include "src/support/env.h"

namespace overify {

namespace {

// SplitMix64 finalizer (same mixer as HashMix64 in src/symex/expr.h;
// duplicated here so src/support stays dependency-free).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Per-site salts: any distinct odd constants work; they keep the sites'
// streams independent of each other.
constexpr uint64_t kSiteSalt[] = {
    0x9e3779b97f4a7c15ull,  // kSolverUnknown
    0xbf58476d1ce4e5b9ull,  // kPrefixCacheLookup
    0x94d049bb133111ebull,  // kStealBatch
    0x2545f4914f6cdd1dull,  // kWorkerStall
    0xd1b54a32d192ed03ull,  // kWorkerDeath
};
static_assert(sizeof(kSiteSalt) / sizeof(kSiteSalt[0]) ==
                  static_cast<unsigned>(FaultSite::kNumSites),
              "one salt per site");

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kSolverUnknown:
      return "solver-unknown";
    case FaultSite::kPrefixCacheLookup:
      return "prefix-cache-lookup";
    case FaultSite::kStealBatch:
      return "steal-batch";
    case FaultSite::kWorkerStall:
      return "worker-stall";
    case FaultSite::kWorkerDeath:
      return "worker-death";
    case FaultSite::kNumSites:
      break;
  }
  return "?";
}

void FaultStats::Accumulate(const FaultStats& other) {
  solver_unknown += other.solver_unknown;
  cache_lookup += other.cache_lookup;
  steal_batch += other.steal_batch;
  worker_stalls += other.worker_stalls;
  worker_deaths += other.worker_deaths;
  draws += other.draws;
}

FaultConfig FaultConfig::FromEnv() {
  FaultConfig config;
  const char* seed = std::getenv("OVERIFY_FAULT_SEED");
  if (seed == nullptr || *seed == '\0') {
    return config;  // disabled — unset/empty is the documented off switch
  }
  // A garbage seed used to strtoull to 0, which silently *disabled*
  // injection: a robustness CI sweep with a mistyped seed tested nothing.
  // Strict parsing keeps injection off but says so.
  EnvParse parse = ParseEnvUint64("OVERIFY_FAULT_SEED", 1, UINT64_MAX, &config.seed);
  ReportEnvError(parse);
  if (!parse.ok) {
    return config;  // disabled, loudly
  }
  uint64_t period = 0;
  parse = ParseEnvUint64("OVERIFY_FAULT_PERIOD", 1, UINT32_MAX, &period);
  ReportEnvError(parse);
  if (parse.ok) {
    config.period = static_cast<uint32_t>(period);
  }
  if (const char* sites = std::getenv("OVERIFY_FAULT_SITES")) {
    // All-or-nothing: one unknown site name rejects the whole list (keeping
    // the all-sites default) instead of silently running a narrower
    // experiment than the sweep asked for.
    uint32_t mask = 0;
    bool valid = true;
    const char* p = sites;
    while (true) {
      const char* end = std::strchr(p, ',');
      size_t len = end == nullptr ? std::strlen(p) : static_cast<size_t>(end - p);
      bool known = false;
      for (unsigned s = 0; s < static_cast<unsigned>(FaultSite::kNumSites); ++s) {
        const char* name = FaultSiteName(static_cast<FaultSite>(s));
        if (len == std::strlen(name) && std::strncmp(p, name, len) == 0) {
          mask |= 1u << s;
          known = true;
        }
      }
      if (!known) {
        EnvParse reject;
        reject.present = true;
        reject.error = "invalid OVERIFY_FAULT_SITES=\"" + std::string(sites) +
                       "\": unknown site \"" + std::string(p, len) +
                       "\" (expected comma-separated site names); using default";
        ReportEnvError(reject);
        valid = false;
        break;
      }
      if (end == nullptr) {
        break;
      }
      p = end + 1;
    }
    if (valid && mask != 0) {
      config.sites = mask;
    }
  }
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config, unsigned worker_index)
    : config_(config), stream_(Mix(config.seed ^ (uint64_t{worker_index} + 1))) {}

bool FaultInjector::Fire(FaultSite site) {
  if (!config_.SiteEnabled(site)) {
    return false;
  }
  OVERIFY_ASSERT(site < FaultSite::kNumSites, "invalid fault site");
  unsigned index = static_cast<unsigned>(site);
  uint64_t ordinal = ++counters_[index];
  ++stats_.draws;
  uint32_t period = config_.period == 0 ? 1 : config_.period;
  if (Mix(stream_ ^ (ordinal * kSiteSalt[index])) % period != 0) {
    return false;
  }
  switch (site) {
    case FaultSite::kSolverUnknown:
      ++stats_.solver_unknown;
      break;
    case FaultSite::kPrefixCacheLookup:
      ++stats_.cache_lookup;
      break;
    case FaultSite::kStealBatch:
      ++stats_.steal_batch;
      break;
    case FaultSite::kWorkerStall:
      ++stats_.worker_stalls;
      break;
    case FaultSite::kWorkerDeath:
      ++stats_.worker_deaths;
      break;
    case FaultSite::kNumSites:
      break;
  }
  return true;
}

}  // namespace overify
