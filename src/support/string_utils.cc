#include "src/support/string_utils.h"

#include <cstdarg>
#include <cstdio>

namespace overify {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      result += sep;
    }
    result += parts[i];
  }
  return result;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && (text[begin] == ' ' || text[begin] == '\t' ||
                                 text[begin] == '\n' || text[begin] == '\r')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\n' || text[end - 1] == '\r')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string EscapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\0':
        out += "\\0";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20 || static_cast<unsigned char>(c) >= 0x7F) {
          out += StrFormat("\\x%02x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  std::string s = StrFormat("%.*f", digits, value);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') {
      --last;
    }
    s.erase(last + 1);
  }
  return s;
}

}  // namespace overify
