#include "src/support/metrics.h"

#include "src/support/string_utils.h"

namespace overify {

namespace {

const char* const kCounterNames[] = {
#define OVERIFY_COUNTER_NAME(name, str, det) str,
    OVERIFY_METRIC_COUNTERS(OVERIFY_COUNTER_NAME)
#undef OVERIFY_COUNTER_NAME
};

const bool kCounterDeterministic[] = {
#define OVERIFY_COUNTER_DET(name, str, det) det,
    OVERIFY_METRIC_COUNTERS(OVERIFY_COUNTER_DET)
#undef OVERIFY_COUNTER_DET
};

const char* const kHistNames[] = {
#define OVERIFY_HIST_NAME(name, str) str,
    OVERIFY_METRIC_HISTS(OVERIFY_HIST_NAME)
#undef OVERIFY_HIST_NAME
};

static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) == kNumCounters,
              "counter name table out of sync with the enum");
static_assert(sizeof(kHistNames) / sizeof(kHistNames[0]) == kNumHists,
              "histogram name table out of sync with the enum");

}  // namespace

const char* CounterName(Counter c) { return kCounterNames[static_cast<size_t>(c)]; }

bool CounterIsDeterministic(Counter c) {
  return kCounterDeterministic[static_cast<size_t>(c)];
}

const char* HistName(Hist h) { return kHistNames[static_cast<size_t>(h)]; }

// ---- LatencyHistogram ----

// Log-linear bucketing with 2 significant mantissa bits: values below 4 map
// to their own buckets (0..3); otherwise, with e the index of the leading
// bit, the bucket is 4*e + the two mantissa bits below it. Each power of
// two therefore splits into 4 equal-width sub-buckets.
size_t LatencyHistogram::BucketFor(uint64_t ns) {
  if (ns < 4) {
    return static_cast<size_t>(ns);
  }
  const unsigned e = 63u - static_cast<unsigned>(__builtin_clzll(ns));
  const uint64_t mantissa = (ns >> (e - 2)) & 3;
  size_t bucket = static_cast<size_t>(e) * 4 + static_cast<size_t>(mantissa) - 4;
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

uint64_t LatencyHistogram::BucketLow(size_t bucket) {
  if (bucket < 4) {
    return bucket;
  }
  const uint64_t e = (bucket + 4) / 4;
  const uint64_t mantissa = (bucket + 4) % 4;
  return (uint64_t{1} << e) | (mantissa << (e - 2));
}

uint64_t LatencyHistogram::BucketHigh(size_t bucket) {
  if (bucket < 4) {
    return bucket;
  }
  if (bucket == kNumBuckets - 1) {
    return ~uint64_t{0};
  }
  return BucketLow(bucket + 1) - 1;
}

uint64_t LatencyHistogram::ValueAt(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  // The rank to reach, 1-based; q = 0 means the first recorded value.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      uint64_t mid = BucketLow(i) + (BucketHigh(i) - BucketLow(i)) / 2;
      return mid < max_ ? mid : max_;
    }
  }
  return max_;
}

// ---- Rendering ----

TextTable RenderMetricsTable(const MetricsShard& shard, bool all) {
  TextTable table({"metric", "value"});
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (!all && shard.counters[i] == 0) {
      continue;
    }
    table.AddRow({kCounterNames[i], StrFormat("%llu", (unsigned long long)shard.counters[i])});
  }
  bool separated = false;
  for (size_t i = 0; i < kNumHists; ++i) {
    const LatencyHistogram& h = shard.hists[i];
    if (h.count() == 0 && !all) {
      continue;
    }
    if (!separated) {
      table.AddSeparator();
      separated = true;
    }
    table.AddRow({kHistNames[i],
                  StrFormat("n=%llu p50=%llu p95=%llu max=%llu",
                            (unsigned long long)h.count(), (unsigned long long)h.P50(),
                            (unsigned long long)h.P95(), (unsigned long long)h.max_ns())});
  }
  return table;
}

}  // namespace overify
