#include "src/support/diagnostics.h"

#include <sstream>

namespace overify {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void DiagnosticEngine::Report(Severity severity, SourceLoc loc, std::string message) {
  if (severity == Severity::kError) {
    ++error_count_;
  }
  diagnostics_.push_back(Diagnostic{severity, loc, std::move(message)});
}

void DiagnosticEngine::Print(std::ostream& os) const {
  for (const Diagnostic& diag : diagnostics_) {
    os << SeverityName(diag.severity);
    if (diag.loc.IsValid()) {
      os << " " << diag.loc.line << ":" << diag.loc.col;
    }
    os << ": " << diag.message << "\n";
  }
}

std::string DiagnosticEngine::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

void DiagnosticEngine::Clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace overify
