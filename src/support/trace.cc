#include "src/support/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/support/fault.h"
#include "src/support/metrics.h"

namespace overify {

namespace {

struct KindInfo {
  const char* name;
  const char* category;
};

const KindInfo kKinds[] = {
    {"solver_query", "solver"}, {"core_search", "solver"},  {"cache_lookup", "solver"},
    {"preprocess", "solver"},   {"fork_decide", "engine"},  {"path_run", "engine"},
    {"steal_batch", "sched"},   {"worker_run", "sched"},    {"fault_fired", "fault"},
};

// Argument name tables. The numeric args were produced by casting engine
// enums; each table mirrors its enum's declaration order (SatResult and
// UnknownCause in src/symex/solver.h, PathOutcome in src/symex/engine_core.h)
// so this file needs no dependency on the symex layer.
const char* const kVerdictNames[] = {"sat", "unsat", "unknown"};
const char* const kCauseNames[] = {"none",     "budget",    "query_timeout",
                                   "deadline", "cancelled", "injected"};
const char* const kHitNames[] = {"exact", "subset", "superset", "model_extension",
                                 "reuse", "miss"};
const char* const kForkNames[] = {"true", "false", "fork", "infeasible", "unknown"};
const char* const kPathNames[] = {"completed", "infeasible", "bug",
                                  "limit",     "unknown",    "died"};

template <size_t N>
const char* NameOrRaw(const char* const (&table)[N], uint64_t value) {
  return value < N ? table[value] : "?";
}

void WriteArgs(std::FILE* f, TraceKind kind, uint64_t a, uint64_t b) {
  switch (kind) {
    case TraceKind::kSolverQuery:
      std::fprintf(f, "{\"verdict\":\"%s\",\"cause\":\"%s\"}", NameOrRaw(kVerdictNames, a),
                   NameOrRaw(kCauseNames, b));
      break;
    case TraceKind::kCoreSearch:
      std::fprintf(f, "{\"verdict\":\"%s\",\"candidates\":%" PRIu64 "}",
                   NameOrRaw(kVerdictNames, a), b);
      break;
    case TraceKind::kCacheLookup:
      std::fprintf(f, "{\"hit\":\"%s\"}", NameOrRaw(kHitNames, a));
      break;
    case TraceKind::kPreprocess:
      std::fprintf(f, "{\"constraints\":%" PRIu64 "}", a);
      break;
    case TraceKind::kForkDecide:
      std::fprintf(f, "{\"outcome\":\"%s\"}", NameOrRaw(kForkNames, a));
      break;
    case TraceKind::kPathRun:
      std::fprintf(f, "{\"outcome\":\"%s\",\"depth\":%" PRIu64 "}",
                   NameOrRaw(kPathNames, a), b);
      break;
    case TraceKind::kStealBatch:
      std::fprintf(f, "{\"states\":%" PRIu64 ",\"victim\":%" PRIu64 "}", a, b);
      break;
    case TraceKind::kWorkerRun:
      std::fprintf(f, "{\"worker\":%" PRIu64 "}", a);
      break;
    case TraceKind::kFaultFired:
      std::fprintf(f, "{\"site\":\"%s\"}",
                   a < static_cast<uint64_t>(FaultSite::kNumSites)
                       ? FaultSiteName(static_cast<FaultSite>(a))
                       : "?");
      break;
  }
}

}  // namespace

TraceSink::TraceSink(std::string path, unsigned workers)
    : path_(std::move(path)), epoch_ns_(MetricsNowNs()) {
  buffers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    auto buffer = std::make_unique<TraceBuffer>();
    buffer->tid_ = w;
    buffers_.push_back(std::move(buffer));
  }
}

bool TraceSink::Write() const {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[trace] cannot open '%s' for writing; trace dropped\n",
                 path_.c_str());
    return false;
  }
  std::fprintf(f, "[");
  bool first = true;
  // Thread-name metadata first, so Perfetto labels each track.
  for (const auto& buffer : buffers_) {
    std::fprintf(f,
                 "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                 "\"args\":{\"name\":\"worker-%u\"}}",
                 first ? "" : ",", buffer->tid_ + 1, buffer->tid_);
    first = false;
  }
  for (const auto& buffer : buffers_) {
    for (const TraceBuffer::Event& e : buffer->events_) {
      const KindInfo& kind = kKinds[static_cast<size_t>(e.kind)];
      // Timestamps relative to the sink epoch, in microseconds (the trace
      // event format's unit), at nanosecond resolution.
      const double ts_us = static_cast<double>(e.ts_ns - epoch_ns_) / 1000.0;
      std::fprintf(f, "%s\n{\"name\":\"%s\",\"cat\":\"%s\",", first ? "" : ",", kind.name,
                   kind.category);
      first = false;
      if (e.instant) {
        std::fprintf(f, "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,", ts_us);
      } else {
        std::fprintf(f, "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,", ts_us,
                     static_cast<double>(e.dur_ns) / 1000.0);
      }
      std::fprintf(f, "\"pid\":1,\"tid\":%u,\"args\":", buffer->tid_ + 1);
      WriteArgs(f, e.kind, e.arg_a, e.arg_b);
      std::fprintf(f, "}");
    }
  }
  std::fprintf(f, "\n]\n");
  const bool ok = std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "[trace] error writing '%s'\n", path_.c_str());
  }
  return ok;
}

}  // namespace overify
