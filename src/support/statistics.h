// A process-wide named-counter registry.
//
// Optimization passes bump counters such as "inline.functions_inlined" or
// "unswitch.loops_unswitched"; the Table 3 benchmark snapshots the registry
// before and after a pipeline run to report exactly the rows the paper does.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace overify {

class StatisticsRegistry {
 public:
  // The registry is a process-wide singleton: passes are constructed in many
  // places and all contribute to one compile-session snapshot.
  static StatisticsRegistry& Global();

  void Add(const std::string& name, int64_t delta);
  int64_t Get(const std::string& name) const;

  // Snapshot of every counter, sorted by name.
  std::map<std::string, int64_t> Snapshot() const;

  void Reset();

 private:
  std::map<std::string, int64_t> counters_;
};

// Convenience handle bound to one counter name.
class Statistic {
 public:
  explicit Statistic(std::string name) : name_(std::move(name)) {}

  void operator+=(int64_t delta) { StatisticsRegistry::Global().Add(name_, delta); }
  void operator++() { *this += 1; }
  void operator++(int) { *this += 1; }
  int64_t Value() const { return StatisticsRegistry::Global().Get(name_); }
  const std::string& Name() const { return name_; }

 private:
  std::string name_;
};

// Computes per-counter deltas between two snapshots (after - before).
std::map<std::string, int64_t> SnapshotDelta(const std::map<std::string, int64_t>& before,
                                             const std::map<std::string, int64_t>& after);

}  // namespace overify
