// Little-endian byte serialization for the persisted cache store.
//
// The store (src/cache/persist.h) must be bit-identical across machines:
// the same logical content always serializes to the same bytes, no matter
// the host's endianness or word width. ByteWriter therefore emits every
// integer explicitly little-endian byte by byte, and ByteReader is fully
// bounds-checked — a truncated or corrupted buffer flips a sticky fail flag
// instead of reading past the end, so loaders can treat any `!ok()` as
// "reject the store and fall back cold".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace overify {

class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  // Length-prefixed (u64) byte string.
  void Blob(const std::vector<uint8_t>& v) {
    U64(v.size());
    bytes_.insert(bytes_.end(), v.begin(), v.end());
  }
  void Str(const std::string& v) {
    U64(v.size());
    bytes_.insert(bytes_.end(), v.begin(), v.end());
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint16_t U16() {
    const uint16_t lo = U8();
    const uint16_t hi = U8();
    return static_cast<uint16_t>(lo | (hi << 8));
  }
  uint32_t U32() {
    const uint32_t lo = U16();
    const uint32_t hi = U16();
    return lo | (hi << 16);
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }
  std::vector<uint8_t> Blob() {
    const uint64_t size = U64();
    if (!Need(size)) return {};
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + size);
    pos_ += size;
    return out;
  }
  std::string Str() {
    const uint64_t size = U64();
    if (!Need(size)) return {};
    std::string out(reinterpret_cast<const char*>(data_ + pos_), size);
    pos_ += size;
    return out;
  }

  // False once any read ran past the end; all subsequent reads return 0.
  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || n > size_ - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace overify
