// Diagnostic reporting used by the MiniC frontend and the textual IR parser.
//
// A DiagnosticEngine collects diagnostics instead of printing them eagerly so
// that library clients (tests, the driver) can inspect them programmatically.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace overify {

// A position in a source buffer. Lines and columns are 1-based; 0 means unknown.
struct SourceLoc {
  uint32_t line = 0;
  uint32_t col = 0;

  bool IsValid() const { return line != 0; }
  bool operator==(const SourceLoc& o) const { return line == o.line && col == o.col; }
  bool operator!=(const SourceLoc& o) const { return !(*this == o); }
};

enum class Severity {
  kNote,
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

// Collects diagnostics for one compilation. Not thread-safe; one engine per
// compilation pipeline.
class DiagnosticEngine {
 public:
  void Report(Severity severity, SourceLoc loc, std::string message);
  void Error(SourceLoc loc, std::string message) {
    Report(Severity::kError, loc, std::move(message));
  }
  void Warning(SourceLoc loc, std::string message) {
    Report(Severity::kWarning, loc, std::move(message));
  }

  bool HasErrors() const { return error_count_ > 0; }
  size_t ErrorCount() const { return error_count_; }
  const std::vector<Diagnostic>& Diagnostics() const { return diagnostics_; }

  // Renders all diagnostics as "severity line:col: message" lines.
  void Print(std::ostream& os) const;
  std::string ToString() const;

  void Clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
};

}  // namespace overify
