#include "src/support/statistics.h"

namespace overify {

StatisticsRegistry& StatisticsRegistry::Global() {
  static StatisticsRegistry registry;
  return registry;
}

void StatisticsRegistry::Add(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

int64_t StatisticsRegistry::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> StatisticsRegistry::Snapshot() const { return counters_; }

void StatisticsRegistry::Reset() { counters_.clear(); }

std::map<std::string, int64_t> SnapshotDelta(const std::map<std::string, int64_t>& before,
                                             const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> delta;
  for (const auto& [name, value] : after) {
    int64_t prev = 0;
    if (auto it = before.find(name); it != before.end()) {
      prev = it->second;
    }
    if (value != prev) {
      delta[name] = value - prev;
    }
  }
  return delta;
}

}  // namespace overify
