// Small string helpers shared across the toolkit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace overify {

std::vector<std::string> SplitString(std::string_view text, char sep);
std::string JoinStrings(const std::vector<std::string>& parts, std::string_view sep);
std::string_view TrimWhitespace(std::string_view text);

// Formats like printf into a std::string. Annotated so the compiler checks
// format arguments at every call site.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string StrFormat(const char* fmt, ...);

// Escapes non-printable characters as C-style escapes (used by IR printers).
std::string EscapeString(std::string_view text);

// Formats a double with `digits` significant decimals, trimming trailing zeros.
std::string FormatDouble(double value, int digits);

}  // namespace overify
