// Deterministic pseudo-random numbers (SplitMix64).
//
// Workload generators and randomized property tests need reproducible streams;
// std::mt19937 seeding differences across standard libraries make golden
// values brittle, so we carry our own tiny generator.
#pragma once

#include <cstdint>

#include "src/support/assert.h"

namespace overify {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform value in [0, bound).
  uint64_t NextBelow(uint64_t bound) {
    OVERIFY_ASSERT(bound > 0, "NextBelow bound must be positive");
    return Next() % bound;
  }

  // Uniform value in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    OVERIFY_ASSERT(lo <= hi, "NextInRange requires lo <= hi");
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  bool NextBool() { return (Next() & 1) != 0; }

  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

}  // namespace overify
