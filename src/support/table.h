// ASCII table rendering used by every benchmark harness so their output
// mirrors the tables in the paper.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace overify {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds a row; missing cells render empty, extra cells are an error.
  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal rule before the next added row.
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToString() const;

  size_t RowCount() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace overify
