// Internal invariant checking for the overify toolkit.
//
// OVERIFY_ASSERT is active in all build types: the toolkit is a research
// artifact whose correctness claims (path counts, bug preservation) depend on
// IR invariants holding, so we never compile the checks out.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace overify {

[[noreturn]] inline void AssertFail(const char* cond, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "overify: assertion `%s` failed at %s:%d: %s\n", cond, file, line, msg);
  std::abort();
}

}  // namespace overify

#define OVERIFY_ASSERT(cond, msg)                                 \
  do {                                                            \
    if (!(cond)) {                                                \
      ::overify::AssertFail(#cond, __FILE__, __LINE__, (msg));    \
    }                                                             \
  } while (0)

#define OVERIFY_UNREACHABLE(msg) ::overify::AssertFail("unreachable", __FILE__, __LINE__, (msg))
