// Seed-deterministic fault injection for robustness testing.
//
// The engine's graceful-degradation contract (docs/robustness.md) is only
// testable if its failure modes can be provoked on demand and reproduced
// exactly. A FaultInjector does that: each named injection site draws from
// a private counter-based stream — fire decisions are a pure function of
// (seed, worker index, site, draw ordinal), never of wall time or memory
// layout — so a failing seed replays bit-identically, and a single-worker
// run with faults enabled is as deterministic as one without.
//
// A draw costs one hash; disabled injectors (seed 0, the default) cost one
// predictable branch, so the sites stay in release builds.
#pragma once

#include <cstdint>
#include <string>

namespace overify {

// Named injection sites. Each models one real failure the engine must
// degrade through, not crash on (docs/robustness.md spells out the expected
// behavior per site).
enum class FaultSite : unsigned {
  kSolverUnknown = 0,     // a solver query gives up (returns kUnknown)
  kPrefixCacheLookup,     // the counterexample cache misses spuriously
  kStealBatch,            // a steal attempt against one victim fails
  kWorkerStall,           // a worker pauses before running a state
  kWorkerDeath,           // a worker dies mid-state and never returns
  kNumSites,
};

const char* FaultSiteName(FaultSite site);

struct FaultConfig {
  // 0 disables every site (the default: production runs draw nothing).
  uint64_t seed = 0;
  // Mean draws between fires per site; 1 fires on every draw.
  uint32_t period = 64;
  // Per-site enable bitmask (bit = static_cast<unsigned>(site)).
  uint32_t sites = ~0u;
  // Upper bound on worker deaths per run, claimed atomically across workers
  // (jobs - 1 guarantees a survivor, so the run still exhausts).
  uint32_t max_worker_deaths = ~0u;

  bool enabled() const { return seed != 0; }
  bool SiteEnabled(FaultSite site) const {
    return enabled() && (sites & (1u << static_cast<unsigned>(site))) != 0;
  }

  // Reads OVERIFY_FAULT_SEED / OVERIFY_FAULT_PERIOD / OVERIFY_FAULT_SITES
  // (comma-separated site names; absent = all). Returns the disabled config
  // when OVERIFY_FAULT_SEED is unset or empty — tests use this to join a CI
  // seed sweep without code changes. Parsing is strict (src/support/env.h):
  // a malformed value keeps the compiled-in default and prints a one-line
  // diagnostic rather than silently running a different experiment.
  static FaultConfig FromEnv();
};

// Fires per site, aggregated into SymexResult::faults. Excluded from the
// determinism contract's RunSignature, like steal traffic: multi-worker
// draw interleavings are schedule-dependent even though each worker's
// stream is not.
struct FaultStats {
  uint64_t solver_unknown = 0;
  uint64_t cache_lookup = 0;
  uint64_t steal_batch = 0;
  uint64_t worker_stalls = 0;
  uint64_t worker_deaths = 0;
  uint64_t draws = 0;

  void Accumulate(const FaultStats& other);
  uint64_t TotalFires() const {
    return solver_unknown + cache_lookup + steal_batch + worker_stalls + worker_deaths;
  }
};

class FaultInjector {
 public:
  // Disabled injector: Fire() always returns false.
  FaultInjector() = default;
  // One injector per worker; the worker index salts the stream so workers
  // draw independent (but individually reproducible) sequences.
  FaultInjector(const FaultConfig& config, unsigned worker_index);

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }

  // Advances `site`'s counter and returns whether the fault fires there.
  bool Fire(FaultSite site);

  const FaultStats& stats() const { return stats_; }

 private:
  FaultConfig config_;
  uint64_t stream_ = 0;
  uint64_t counters_[static_cast<unsigned>(FaultSite::kNumSites)] = {};
  FaultStats stats_;
};

}  // namespace overify
