#include "src/support/table.h"

#include <algorithm>
#include <sstream>

#include "src/support/assert.h"

namespace overify {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  OVERIFY_ASSERT(cells.size() <= header_.size(), "row has more cells than the table header");
  cells.resize(header_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::AddSeparator() { pending_separator_ = true; }

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const Row& row : rows_) {
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto print_rule = [&] {
    os << "+";
    for (size_t w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      os << " " << cells[i] << std::string(widths[i] - cells[i].size(), ' ') << " |";
    }
    os << "\n";
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator_before) {
      print_rule();
    }
    print_cells(row.cells);
  }
  print_rule();
}

std::string TextTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace overify
