// Wall-clock timing helpers used by the driver and the benchmark harnesses.
#pragma once

#include <chrono>

namespace overify {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates the lifetime of the scope into a double (in seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { accumulator_ += watch_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& accumulator_;
  Stopwatch watch_;
};

}  // namespace overify
