// Typed metrics registry for the symbolic-execution engine.
//
// One MetricsShard per worker holds every engine counter (enum-indexed, no
// string hashing on the hot path) plus fixed-bucket latency histograms for
// the hot phases. Shards merge deterministically — counter merge is
// element-wise addition and histogram merge is bucket-wise addition, both
// associative and commutative — so the pool's aggregation is one loop
// instead of a hand-written sum per counter family, and 1-vs-N-worker
// exhausted runs produce identical merged values for every counter flagged
// deterministic below (docs/observability.md).
//
// Histogram recording is gated by MetricsShard::timing: a bare SolverChain
// (microbenchmarks, tests) keeps it off so the ~100ns cache-hit fast path
// never pays for two clock reads; engine-owned shards switch it on
// (SymexOptions::metrics_timing), where queries are microseconds and the
// overhead vanishes.
//
// This registry is for the engine's per-run telemetry. The process-wide
// string-keyed StatisticsRegistry (src/support/statistics.h) serves the
// compiler passes' Table 3 reporting and is unrelated.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>

#include "src/support/table.h"

namespace overify {

// X-macro: (enum name, dotted display name, deterministic).
//
// `deterministic` marks counters whose merged value is identical for 1..N
// workers on exhausted runs — exactly the fields the diff harness's
// RunSignature covers. Solver/preprocess/cache counters are NOT
// deterministic: caches are per-worker, so where a state runs decides
// whether its queries hit or search; steal and fault counters are
// schedule-dependent by nature.
#define OVERIFY_METRIC_COUNTERS(X)                            \
  X(kPathsCompleted, "paths.completed", true)                 \
  X(kPathsInfeasible, "paths.infeasible", true)               \
  X(kPathsBug, "paths.bug", true)                             \
  X(kPathsLimit, "paths.limit", true)                         \
  X(kPathsUnexplored, "paths.unexplored", true)               \
  X(kPathsUnknown, "paths.unknown", true)                     \
  X(kPathsUnknownBudget, "paths.unknown_budget", true)        \
  X(kPathsUnknownDeadline, "paths.unknown_deadline", true)    \
  X(kPathsUnknownInjected, "paths.unknown_injected", true)    \
  X(kInstructions, "engine.instructions", true)               \
  X(kForks, "engine.forks", true)                             \
  X(kAnnotationHits, "engine.annotation_hits", true)          \
  X(kSolverQueries, "solver.queries", false)                  \
  X(kSolverCacheHits, "solver.cache_hits", false)             \
  X(kSolverReuseHits, "solver.reuse_hits", false)             \
  X(kSolverCoreQueries, "solver.core_queries", false)         \
  X(kSolverCoreCandidates, "solver.core_candidates", false)   \
  X(kSolverCoreConflicts, "solver.core_conflicts", false)     \
  X(kSolverCoreLearned, "solver.core_learned", false)         \
  X(kSolverCoreLearnedHits, "solver.core_learned_hits", false) \
  X(kSolverCoreBackjumps, "solver.core_backjumps", false)     \
  X(kSolverCoreRestarts, "solver.core_restarts", false)       \
  X(kSolverIndependenceDrops, "solver.independence_drops", false) \
  X(kSolverEvalMemoHits, "solver.eval_memo_hits", false)      \
  X(kSolverIntervalMemoHits, "solver.interval_memo_hits", false) \
  X(kSolverCexEvictions, "solver.cex_evictions", false)       \
  X(kSolverUnknownBudget, "solver.unknown_budget", false)     \
  X(kSolverUnknownDeadline, "solver.unknown_deadline", false) \
  X(kSolverUnknownCancelled, "solver.unknown_cancelled", false) \
  X(kSolverUnknownInjected, "solver.unknown_injected", false) \
  X(kPreprocessBindings, "preprocess.bindings", false)        \
  X(kPreprocessSubstitutions, "preprocess.substitutions", false) \
  X(kPreprocessTautologies, "preprocess.tautologies", false)  \
  X(kPreprocessContradictions, "preprocess.contradictions", false) \
  X(kPresolveShortcuts, "preprocess.presolve_shortcuts", false) \
  X(kPrefixSubsetHits, "prefix.subset_hits", false)           \
  X(kPrefixSupersetHits, "prefix.superset_hits", false)       \
  X(kPrefixModelHits, "prefix.model_hits", false)             \
  X(kPrefixCollisions, "prefix.collisions", false)            \
  X(kPersistSeeded, "persist.seeded", false)                  \
  X(kPersistHits, "persist.hits", false)                      \
  X(kPersistValidations, "persist.validations", false)        \
  X(kPersistRejects, "persist.rejects", false)                \
  X(kDaemonRequests, "daemon.requests", false)                \
  X(kDaemonRunHits, "daemon.run_hits", false)                 \
  X(kDaemonRunMisses, "daemon.run_misses", false)             \
  X(kDaemonRunEvictions, "daemon.run_evictions", false)       \
  X(kDaemonStoreRejects, "daemon.store_rejects", false)       \
  X(kSteals, "steal.states", false)                           \
  X(kStealBatches, "steal.batches", false)                    \
  X(kStealReintern, "steal.reintern", false)                  \
  X(kFaultSolverUnknown, "fault.solver_unknown", false)       \
  X(kFaultCacheLookup, "fault.cache_lookup", false)           \
  X(kFaultStealBatch, "fault.steal_batch", false)             \
  X(kFaultWorkerStalls, "fault.worker_stalls", false)         \
  X(kFaultWorkerDeaths, "fault.worker_deaths", false)         \
  X(kFaultDraws, "fault.draws", false)                        \
  X(kSliceChecksFound, "slice.checks_found", true)            \
  X(kSlicesBuilt, "slice.built", true)                        \
  X(kSliceConeInstructions, "slice.cone_instructions", true)  \
  X(kSliceEntryInstructions, "slice.entry_instructions", true) \
  X(kSliceFallbacks, "slice.fallbacks", true)                 \
  X(kSliceReplayConfirmed, "slice.replay_confirmed", true)    \
  X(kSliceReplayFailed, "slice.replay_failed", true)

// X-macro: (enum name, dotted display name). Query, core-search, path-run
// and steal-batch latencies are recorded whenever the shard's timing flag is
// on; the cache-lookup, preprocess and fork-decide sub-spans are trace-only
// (their events are often cheaper than a clock-read pair, so metrics mode
// skips them — docs/observability.md#overhead).
// kCoreConflictDepth and kSliceConeRatioPct are the non-latency histograms:
// kCoreConflictDepth records the decision depth of every core-search
// conflict (a raw level count, not nanoseconds), so observability can tell
// shallow thrashing from deep near-miss search; kSliceConeRatioPct records
// each emitted slice's size as a percentage of the original entry function
// (docs/slicing.md). Both bypass the timing gate — recording costs a few
// adds, no clock reads.
#define OVERIFY_METRIC_HISTS(X)            \
  X(kSolverQueryNs, "solver.query_ns")     \
  X(kCoreSearchNs, "solver.core_search_ns") \
  X(kCoreConflictDepth, "solver.core_conflict_depth") \
  X(kCacheLookupNs, "solver.cache_lookup_ns") \
  X(kPreprocessNs, "preprocess.extend_ns") \
  X(kForkDecideNs, "engine.fork_decide_ns") \
  X(kPathRunNs, "engine.path_run_ns")      \
  X(kStealBatchNs, "steal.batch_ns")       \
  X(kSliceConeRatioPct, "slice.cone_ratio_pct")

enum class Counter : uint32_t {
#define OVERIFY_COUNTER_ENUM(name, str, det) name,
  OVERIFY_METRIC_COUNTERS(OVERIFY_COUNTER_ENUM)
#undef OVERIFY_COUNTER_ENUM
      kNumCounters,
};

enum class Hist : uint32_t {
#define OVERIFY_HIST_ENUM(name, str) name,
  OVERIFY_METRIC_HISTS(OVERIFY_HIST_ENUM)
#undef OVERIFY_HIST_ENUM
      kNumHists,
};

constexpr size_t kNumCounters = static_cast<size_t>(Counter::kNumCounters);
constexpr size_t kNumHists = static_cast<size_t>(Hist::kNumHists);

const char* CounterName(Counter c);
bool CounterIsDeterministic(Counter c);
const char* HistName(Hist h);

// The clock every metric duration and trace timestamp comes from. One
// source keeps histogram durations and trace spans mutually consistent.
inline uint64_t MetricsNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Fixed-bucket log-linear latency histogram (HdrHistogram-style, 2
// significant mantissa bits): 4 sub-buckets per power of two, ~12.5%
// relative error, 256 buckets covering the full uint64 nanosecond range.
// No allocation, merge is bucket-wise addition.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 256;

  void Record(uint64_t ns) {
    ++buckets_[BucketFor(ns)];
    ++count_;
    sum_ += ns;
    if (ns > max_) {
      max_ = ns;
    }
  }

  // Bucket-wise addition: associative and commutative (unit-tested), so the
  // pool may merge worker shards in any order or grouping.
  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  void Reset() { *this = LatencyHistogram(); }

  uint64_t count() const { return count_; }
  uint64_t sum_ns() const { return sum_; }
  uint64_t max_ns() const { return max_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  // The value at quantile `q` in [0, 1], approximated as the midpoint of
  // the bucket where the cumulative count crosses q * count (clamped to the
  // recorded max). 0 when empty.
  uint64_t ValueAt(double q) const;
  uint64_t P50() const { return ValueAt(0.50); }
  uint64_t P95() const { return ValueAt(0.95); }

  // Bucket geometry, exposed for tests: values in
  // [BucketLow(i), BucketHigh(i)] land in bucket i.
  static size_t BucketFor(uint64_t ns);
  static uint64_t BucketLow(size_t bucket);
  static uint64_t BucketHigh(size_t bucket);

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// One worker's slice of the registry. Exactly one thread writes a shard
// while a run is live; the pool merges them after the join, so no field is
// atomic and increments cost what a plain uint64_t add costs.
struct MetricsShard {
  uint64_t counters[kNumCounters] = {};
  LatencyHistogram hists[kNumHists];
  // Gates histogram recording (the clock reads, not the counters). Callers
  // check it — typically through `timing || trace != nullptr` — before
  // taking timestamps.
  bool timing = false;

  void Inc(Counter c) { ++counters[static_cast<size_t>(c)]; }
  void Add(Counter c, uint64_t n) { counters[static_cast<size_t>(c)] += n; }
  // For subsystem-owned totals (ExprContext memos, preprocessor stats,
  // cache evictions, fault stats) synced into the shard on export.
  void Set(Counter c, uint64_t v) { counters[static_cast<size_t>(c)] = v; }
  uint64_t Get(Counter c) const { return counters[static_cast<size_t>(c)]; }

  void Record(Hist h, uint64_t ns) { hists[static_cast<size_t>(h)].Record(ns); }
  const LatencyHistogram& hist(Hist h) const { return hists[static_cast<size_t>(h)]; }

  // Element-wise counter addition + bucket-wise histogram merge:
  // associative and commutative, the property the determinism tests pin.
  void Merge(const MetricsShard& other) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      counters[i] += other.counters[i];
    }
    for (size_t i = 0; i < kNumHists; ++i) {
      hists[i].Merge(other.hists[i]);
    }
    timing = timing || other.timing;
  }

  void Reset() {
    std::memset(counters, 0, sizeof(counters));
    for (size_t i = 0; i < kNumHists; ++i) {
      hists[i].Reset();
    }
  }
};

// Renders a merged shard as the standard two-column telemetry table:
// every non-zero counter (all counters when `all` is set), then one row
// per recorded histogram with count/p50/p95/max.
TextTable RenderMetricsTable(const MetricsShard& shard, bool all = false);

}  // namespace overify
