// Opt-in structured run tracing: Chrome-trace-event/Perfetto-compatible
// JSON timelines of the engine's hot phases.
//
// A TraceSink owns one TraceBuffer per worker; exactly one thread writes a
// buffer while a run is live, so recording is a lock-free vector push of a
// small POD event. The engine holds a TraceBuffer* that is null when
// tracing is off — the disabled cost is one cold-pointer branch per
// instrumented site, nothing else (docs/observability.md spells out the
// overhead contract).
//
// Span kinds cover the phases every perf investigation of this engine has
// needed so far: solver query (verdict + unknown cause), core search,
// prefix-cache lookup (hit class), constraint preprocessing, fork/branch
// decision, whole-path execution, steal batches, worker lifecycle, and
// fault firings (instants). After the workers join, TraceSink::Write emits
// one JSON array of trace events — load it at https://ui.perfetto.dev or
// chrome://tracing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace overify {

enum class TraceKind : uint16_t {
  kSolverQuery,  // arg_a = SatResult, arg_b = UnknownCause
  kCoreSearch,   // arg_a = SatResult, arg_b = candidates tried
  kCacheLookup,  // arg_a = CacheHitClass
  kPreprocess,   // arg_a = constraints newly consumed
  kForkDecide,   // arg_a = ForkOutcome
  kPathRun,      // arg_a = path outcome, arg_b = final depth
  kStealBatch,   // arg_a = states taken, arg_b = victim worker
  kWorkerRun,    // arg_a = worker index
  kFaultFired,   // instant; arg_a = FaultSite
};

// How a prefix-cache lookup resolved (the span's "hit" arg).
enum class CacheHitClass : uint8_t {
  kExact,
  kSubset,
  kSuperset,
  kModelExtension,
  kReuse,
  kMiss,
};

// How a branch decision resolved (the span's "outcome" arg). Mirrors the
// engine's CondOutcome order so the cast is a no-op.
enum class ForkOutcome : uint8_t {
  kTrue,
  kFalse,
  kFork,
  kInfeasible,
  kUnknown,
};

class TraceSink;

// One worker's event log. Not thread-safe by design: one writer per buffer.
class TraceBuffer {
 public:
  void Span(TraceKind kind, uint64_t start_ns, uint64_t end_ns, uint64_t arg_a = 0,
            uint64_t arg_b = 0) {
    events_.push_back(Event{kind, false, start_ns, end_ns - start_ns, arg_a, arg_b});
  }

  void Instant(TraceKind kind, uint64_t ts_ns, uint64_t arg_a = 0) {
    events_.push_back(Event{kind, true, ts_ns, 0, arg_a, 0});
  }

  size_t size() const { return events_.size(); }

 private:
  friend class TraceSink;

  struct Event {
    TraceKind kind;
    bool instant;
    uint64_t ts_ns;   // absolute MetricsNowNs timestamp
    uint64_t dur_ns;  // 0 for instants
    uint64_t arg_a;
    uint64_t arg_b;
  };

  std::vector<Event> events_;
  unsigned tid_ = 0;
};

class TraceSink {
 public:
  // `workers` buffers, tids 0..workers-1; the epoch (t=0 of the timeline)
  // is the construction instant.
  TraceSink(std::string path, unsigned workers);

  TraceBuffer* buffer(unsigned worker) { return buffers_[worker].get(); }
  unsigned workers() const { return static_cast<unsigned>(buffers_.size()); }
  uint64_t epoch_ns() const { return epoch_ns_; }
  const std::string& path() const { return path_; }

  // Serializes every buffer to `path` as a Chrome trace-event JSON array.
  // Returns false (with a stderr warning) if the file cannot be written.
  // Call after the writers joined.
  bool Write() const;

 private:
  std::string path_;
  uint64_t epoch_ns_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

}  // namespace overify
