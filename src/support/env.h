// Strict environment-variable parsing for the OVERIFY_* knobs.
//
// The engine's tuning variables (OVERIFY_CDCL_*, OVERIFY_FAULT_*) used to
// go through atoi-style parsing, which silently turns "abc" into 0 and
// accepts trailing garbage — a mistyped CI sweep value then runs a
// *different experiment* without anyone noticing. These helpers reject
// anything that is not a complete, in-range literal and return a structured
// diagnostic naming the variable, the offending value, and the accepted
// range; callers keep their compiled-in default and surface the diagnostic
// instead of guessing.
#pragma once

#include <cstdint>
#include <string>

namespace overify {

// Outcome of one environment lookup. `present` distinguishes "unset" (not
// an error: the default applies silently) from "set but rejected".
struct EnvParse {
  bool present = false;  // the variable was set (to anything, even garbage)
  bool ok = false;       // present and parsed as a complete in-range literal
  std::string error;     // structured diagnostic when present && !ok

  // Present and rejected — the caller should report `error`.
  bool Rejected() const { return present && !ok; }
};

// Parses `name` as an unsigned decimal/hex integer (0x prefix accepted) in
// [min_value, max_value]. On success writes `*out`; otherwise `*out` is
// untouched, so callers can pre-load it with the default.
EnvParse ParseEnvUint64(const char* name, uint64_t min_value, uint64_t max_value,
                        uint64_t* out);

// Parses `name` as a floating-point literal in [min_value, max_value]
// (inclusive). Same contract as ParseEnvUint64.
EnvParse ParseEnvDouble(const char* name, double min_value, double max_value, double* out);

// Reports a rejected parse on stderr (one line, prefixed "overify:"), and
// returns the same diagnostic so callers embedding it elsewhere (structured
// errors, logs) do not re-format. No-op (empty string) when !Rejected().
std::string ReportEnvError(const EnvParse& parse);

}  // namespace overify
