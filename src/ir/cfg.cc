#include "src/ir/cfg.h"

#include <algorithm>
#include <set>

#include "src/ir/context.h"
#include "src/ir/module.h"

namespace overify {

namespace {

void PostOrderVisit(BasicBlock* block, std::set<BasicBlock*>& visited,
                    std::vector<BasicBlock*>& order) {
  if (!visited.insert(block).second) {
    return;
  }
  for (BasicBlock* succ : block->Successors()) {
    PostOrderVisit(succ, visited, order);
  }
  order.push_back(block);
}

}  // namespace

std::vector<BasicBlock*> ReversePostOrder(Function& fn) {
  std::vector<BasicBlock*> order;
  std::set<BasicBlock*> visited;
  PostOrderVisit(fn.entry(), visited, order);
  std::reverse(order.begin(), order.end());
  return order;
}

std::map<BasicBlock*, std::vector<BasicBlock*>> PredecessorMap(Function& fn) {
  std::map<BasicBlock*, std::vector<BasicBlock*>> preds;
  for (BasicBlock& block : fn) {
    preds[&block];  // ensure every block has an entry
    for (BasicBlock* succ : block.Successors()) {
      preds[succ].push_back(&block);
    }
  }
  return preds;
}

void RedirectPhiIncoming(BasicBlock* block, BasicBlock* from, BasicBlock* to) {
  for (PhiInst* phi : block->Phis()) {
    phi->ReplaceIncomingBlock(from, to);
  }
}

size_t RemoveUnreachableBlocks(Function& fn) {
  std::set<BasicBlock*> reachable;
  std::vector<BasicBlock*> worklist = {fn.entry()};
  while (!worklist.empty()) {
    BasicBlock* block = worklist.back();
    worklist.pop_back();
    if (!reachable.insert(block).second) {
      continue;
    }
    for (BasicBlock* succ : block->Successors()) {
      worklist.push_back(succ);
    }
  }

  std::vector<BasicBlock*> dead;
  for (BasicBlock& block : fn) {
    if (reachable.count(&block) == 0) {
      dead.push_back(&block);
    }
  }

  // Remove phi entries flowing from dead blocks into survivors.
  for (BasicBlock* block : dead) {
    for (BasicBlock* succ : block->Successors()) {
      if (reachable.count(succ) == 0) {
        continue;
      }
      for (PhiInst* phi : succ->Phis()) {
        int index;
        while ((index = phi->IncomingIndexFor(block)) >= 0) {
          phi->RemoveIncoming(static_cast<unsigned>(index));
        }
      }
    }
  }

  // Values defined in dead blocks can only be used by other dead blocks
  // (defs dominate uses), so dropping references before erasure is safe.
  for (BasicBlock* block : dead) {
    block->DropAllReferences();
  }
  for (BasicBlock* block : dead) {
    fn.EraseBlock(block);
  }
  return dead.size();
}

BasicBlock* SplitEdge(BasicBlock* pred, BasicBlock* succ) {
  Function* fn = pred->parent();
  IRContext& ctx = fn->parent()->context();
  BasicBlock* middle = fn->CreateBlock(pred->name() + "." + succ->name());
  middle->Append(std::make_unique<BranchInst>(ctx, succ));

  auto* br = Cast<BranchInst>(pred->Terminator());
  if (br->true_dest() == succ) {
    br->SetDest(0, middle);
  }
  if (br->IsConditional() && br->false_dest() == succ) {
    br->SetDest(1, middle);
  }
  RedirectPhiIncoming(succ, pred, middle);
  return middle;
}

}  // namespace overify
