// VIR instructions.
//
// One flat Opcode enum with thin subclasses carrying per-opcode extras.
// Operands are data values only; control-flow targets (branch destinations,
// phi incoming blocks) are stored out-of-band so use-lists stay purely
// data-flow, which keeps ReplaceAllUsesWith and dead-code queries simple.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/type.h"
#include "src/ir/value.h"

namespace overify {

class BasicBlock;
class Function;
class IRContext;

enum class Opcode {
  kAlloca,
  kLoad,
  kStore,
  kGep,
  // Binary arithmetic/bitwise. Keep contiguous: BinaryInst::ClassOf uses the range.
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  kICmp,
  kSelect,
  // Casts. Keep contiguous.
  kZExt,
  kSExt,
  kTrunc,
  kCall,
  kPhi,
  kCheck,
  // Terminators. Keep contiguous.
  kBr,
  kRet,
  kUnreachable,
};

const char* OpcodeName(Opcode opcode);

enum class ICmpPredicate {
  kEq,
  kNe,
  kULT,
  kULE,
  kUGT,
  kUGE,
  kSLT,
  kSLE,
  kSGT,
  kSGE,
};

const char* PredicateName(ICmpPredicate pred);
// The predicate P' with P'(a,b) == P(b,a).
ICmpPredicate SwapPredicate(ICmpPredicate pred);
// The predicate P' with P'(a,b) == !P(a,b).
ICmpPredicate InvertPredicate(ICmpPredicate pred);
bool IsSignedPredicate(ICmpPredicate pred);

enum class CheckKind {
  kAssert,      // user-level __check()
  kBounds,      // memory access in range
  kDivByZero,   // divisor non-zero
  kOverflow,    // arithmetic did not wrap
  kNullDeref,   // pointer non-null
  kShift,       // shift amount < bit width
};

const char* CheckKindName(CheckKind kind);

class Instruction : public Value {
 public:
  ~Instruction() override;

  Opcode opcode() const { return opcode_; }

  size_t NumOperands() const { return operands_.size(); }
  Value* Operand(unsigned i) const {
    OVERIFY_ASSERT(i < operands_.size(), "operand index out of range");
    return operands_[i];
  }
  const std::vector<Value*>& operands() const { return operands_; }
  void SetOperand(unsigned i, Value* value);

  BasicBlock* parent() const { return parent_; }
  Function* ParentFunction() const;

  bool IsTerminator() const { return opcode_ >= Opcode::kBr; }
  bool IsBinaryOp() const { return opcode_ >= Opcode::kAdd && opcode_ <= Opcode::kAShr; }
  bool IsCast() const { return opcode_ >= Opcode::kZExt && opcode_ <= Opcode::kTrunc; }
  // True if the instruction writes memory, transfers control, or otherwise
  // cannot be erased just because its result is unused.
  bool HasSideEffects() const;
  // True if the instruction can be speculatively executed on a path where it
  // was originally guarded by a branch (no side effects, no traps, no loads).
  bool IsSafeToSpeculate() const;
  // Like IsSafeToSpeculate but permits loads; used where the dominating
  // context guarantees the address stays dereferenceable.
  bool IsSpeculatableOrLoad() const;

  // Detaches this instruction from its block and destroys it.
  // The instruction must have no remaining uses.
  void EraseFromParent();
  // Detaches without destroying; caller receives ownership.
  std::unique_ptr<Instruction> RemoveFromParent();

  // Creates an un-parented copy of this instruction with the same operands.
  // Phi incoming blocks and branch targets are copied verbatim; callers remap
  // them via the cloning utilities.
  std::unique_ptr<Instruction> Clone(IRContext& ctx) const;

  static bool ClassOf(const Value* v) { return v->value_kind() == ValueKind::kInstruction; }

 protected:
  Instruction(Opcode opcode, Type* type, std::vector<Value*> operands);

  // Raw operand storage for subclasses that grow/shrink their operand list
  // (phi incoming edges, branch condition removal). Callers must keep
  // use-lists consistent.
  std::vector<Value*>& operands_ref() { return operands_; }
  // Drops the use record of operand `i` prior to removing it from the list.
  void UnregisterOperandUse(unsigned i) { operands_[i]->RemoveUse(this, i); }

 private:
  friend class BasicBlock;
  void DropAllOperands();

  Opcode opcode_;
  std::vector<Value*> operands_;
  BasicBlock* parent_ = nullptr;
  std::list<std::unique_ptr<Instruction>>::iterator self_;
};

// `%p = alloca T` — reserves stack storage for one T; result type T*.
class AllocaInst : public Instruction {
 public:
  AllocaInst(IRContext& ctx, Type* allocated_type);

  Type* allocated_type() const { return allocated_type_; }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kAlloca;
  }

 private:
  Type* allocated_type_;
};

class LoadInst : public Instruction {
 public:
  explicit LoadInst(Value* pointer);

  Value* pointer() const { return Operand(0); }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kLoad;
  }
};

class StoreInst : public Instruction {
 public:
  StoreInst(IRContext& ctx, Value* value, Value* pointer);

  Value* value() const { return Operand(0); }
  Value* pointer() const { return Operand(1); }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kStore;
  }
};

// `%q = gep T, %p, i0, i1, ...` — classic LLVM getelementptr: the first index
// steps over whole T objects; later indices walk into arrays and structs.
// Struct field indices must be ConstantInt.
class GepInst : public Instruction {
 public:
  GepInst(IRContext& ctx, Type* source_type, Value* base, std::vector<Value*> indices);

  Type* source_type() const { return source_type_; }
  Value* base() const { return Operand(0); }
  size_t NumIndices() const { return NumOperands() - 1; }
  Value* Index(unsigned i) const { return Operand(i + 1); }

  // The element type the full index list resolves to (result is pointer to it).
  static Type* ResolveType(Type* source_type, const std::vector<Value*>& indices);

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kGep;
  }

 private:
  Type* source_type_;
};

class BinaryInst : public Instruction {
 public:
  BinaryInst(Opcode opcode, Value* lhs, Value* rhs);

  Value* lhs() const { return Operand(0); }
  Value* rhs() const { return Operand(1); }

  static bool ClassOf(const Value* v) {
    if (!Instruction::ClassOf(v)) {
      return false;
    }
    return static_cast<const Instruction*>(v)->IsBinaryOp();
  }
};

class ICmpInst : public Instruction {
 public:
  ICmpInst(IRContext& ctx, ICmpPredicate pred, Value* lhs, Value* rhs);

  ICmpPredicate predicate() const { return predicate_; }
  void set_predicate(ICmpPredicate pred) { predicate_ = pred; }
  Value* lhs() const { return Operand(0); }
  Value* rhs() const { return Operand(1); }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kICmp;
  }

 private:
  ICmpPredicate predicate_;
};

class SelectInst : public Instruction {
 public:
  SelectInst(Value* cond, Value* true_value, Value* false_value);

  Value* condition() const { return Operand(0); }
  Value* true_value() const { return Operand(1); }
  Value* false_value() const { return Operand(2); }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kSelect;
  }
};

class CastInst : public Instruction {
 public:
  CastInst(Opcode opcode, Value* value, Type* dest_type);

  Value* value() const { return Operand(0); }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->IsCast();
  }
};

class CallInst : public Instruction {
 public:
  CallInst(Function* callee, std::vector<Value*> args);

  Function* callee() const { return callee_; }
  void set_callee(Function* callee) { callee_ = callee; }
  size_t NumArgs() const { return NumOperands(); }
  Value* Arg(unsigned i) const { return Operand(i); }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kCall;
  }

 private:
  Function* callee_;
};

class PhiInst : public Instruction {
 public:
  explicit PhiInst(Type* type);

  size_t NumIncoming() const { return NumOperands(); }
  Value* IncomingValue(unsigned i) const { return Operand(i); }
  BasicBlock* IncomingBlock(unsigned i) const { return incoming_blocks_[i]; }
  void AddIncoming(Value* value, BasicBlock* block);
  // Returns the incoming value for `block`; asserts the block is present.
  Value* IncomingValueFor(const BasicBlock* block) const;
  // Returns -1 if absent.
  int IncomingIndexFor(const BasicBlock* block) const;
  void RemoveIncoming(unsigned i);
  void ReplaceIncomingBlock(BasicBlock* from, BasicBlock* to);

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kPhi;
  }

 private:
  friend class Instruction;
  std::vector<BasicBlock*> incoming_blocks_;
};

// `check cond, kind, "message"` — verification-oriented runtime check: traps
// (reports a bug) if cond is false, otherwise falls through.
class CheckInst : public Instruction {
 public:
  CheckInst(IRContext& ctx, Value* cond, CheckKind check_kind, std::string message);

  Value* condition() const { return Operand(0); }
  CheckKind check_kind() const { return check_kind_; }
  const std::string& message() const { return message_; }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kCheck;
  }

 private:
  friend class Instruction;
  CheckKind check_kind_;
  std::string message_;
};

class BranchInst : public Instruction {
 public:
  // Unconditional branch.
  BranchInst(IRContext& ctx, BasicBlock* dest);
  // Conditional branch.
  BranchInst(IRContext& ctx, Value* cond, BasicBlock* true_dest, BasicBlock* false_dest);

  bool IsConditional() const { return NumOperands() == 1; }
  Value* condition() const {
    OVERIFY_ASSERT(IsConditional(), "condition() on unconditional branch");
    return Operand(0);
  }
  BasicBlock* true_dest() const { return true_dest_; }
  BasicBlock* false_dest() const { return false_dest_; }
  BasicBlock* SingleDest() const {
    OVERIFY_ASSERT(!IsConditional(), "SingleDest() on conditional branch");
    return true_dest_;
  }
  void SetDest(unsigned i, BasicBlock* dest);
  // Rewrites this conditional branch into an unconditional one to `dest`.
  void MakeUnconditional(BasicBlock* dest);

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kBr;
  }

 private:
  friend class Instruction;
  BasicBlock* true_dest_;
  BasicBlock* false_dest_;  // null for unconditional branches
};

class RetInst : public Instruction {
 public:
  // `ret void`
  explicit RetInst(IRContext& ctx);
  // `ret %value`
  RetInst(IRContext& ctx, Value* value);

  bool HasValue() const { return NumOperands() == 1; }
  Value* value() const { return Operand(0); }

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) && static_cast<const Instruction*>(v)->opcode() == Opcode::kRet;
  }
};

class UnreachableInst : public Instruction {
 public:
  explicit UnreachableInst(IRContext& ctx);

  static bool ClassOf(const Value* v) {
    return Instruction::ClassOf(v) &&
           static_cast<const Instruction*>(v)->opcode() == Opcode::kUnreachable;
  }
};

}  // namespace overify
