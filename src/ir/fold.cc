#include "src/ir/fold.h"

#include "src/ir/constant.h"
#include "src/support/assert.h"

namespace overify {

std::optional<uint64_t> FoldBinary(Opcode opcode, unsigned bits, uint64_t lhs, uint64_t rhs) {
  lhs = TruncateToWidth(lhs, bits);
  rhs = TruncateToWidth(rhs, bits);
  switch (opcode) {
    case Opcode::kAdd:
      return TruncateToWidth(lhs + rhs, bits);
    case Opcode::kSub:
      return TruncateToWidth(lhs - rhs, bits);
    case Opcode::kMul:
      return TruncateToWidth(lhs * rhs, bits);
    case Opcode::kUDiv:
      if (rhs == 0) {
        return std::nullopt;
      }
      return TruncateToWidth(lhs / rhs, bits);
    case Opcode::kSDiv: {
      if (rhs == 0) {
        return std::nullopt;
      }
      int64_t a = SignExtend(lhs, bits);
      int64_t b = SignExtend(rhs, bits);
      if (b == -1 && a == SignExtend(uint64_t{1} << (bits - 1), bits)) {
        return std::nullopt;  // INT_MIN / -1 overflows
      }
      return TruncateToWidth(static_cast<uint64_t>(a / b), bits);
    }
    case Opcode::kURem:
      if (rhs == 0) {
        return std::nullopt;
      }
      return TruncateToWidth(lhs % rhs, bits);
    case Opcode::kSRem: {
      if (rhs == 0) {
        return std::nullopt;
      }
      int64_t a = SignExtend(lhs, bits);
      int64_t b = SignExtend(rhs, bits);
      if (b == -1) {
        return 0;  // remainder of division by -1 is 0 (even for INT_MIN)
      }
      return TruncateToWidth(static_cast<uint64_t>(a % b), bits);
    }
    case Opcode::kAnd:
      return lhs & rhs;
    case Opcode::kOr:
      return lhs | rhs;
    case Opcode::kXor:
      return lhs ^ rhs;
    case Opcode::kShl:
      if (rhs >= bits) {
        return std::nullopt;
      }
      return TruncateToWidth(lhs << rhs, bits);
    case Opcode::kLShr:
      if (rhs >= bits) {
        return std::nullopt;
      }
      return lhs >> rhs;
    case Opcode::kAShr: {
      if (rhs >= bits) {
        return std::nullopt;
      }
      int64_t a = SignExtend(lhs, bits);
      return TruncateToWidth(static_cast<uint64_t>(a >> rhs), bits);
    }
    default:
      OVERIFY_UNREACHABLE("FoldBinary on non-binary opcode");
  }
}

bool FoldICmp(ICmpPredicate pred, unsigned bits, uint64_t lhs, uint64_t rhs) {
  uint64_t ua = TruncateToWidth(lhs, bits);
  uint64_t ub = TruncateToWidth(rhs, bits);
  int64_t sa = SignExtend(lhs, bits);
  int64_t sb = SignExtend(rhs, bits);
  switch (pred) {
    case ICmpPredicate::kEq:
      return ua == ub;
    case ICmpPredicate::kNe:
      return ua != ub;
    case ICmpPredicate::kULT:
      return ua < ub;
    case ICmpPredicate::kULE:
      return ua <= ub;
    case ICmpPredicate::kUGT:
      return ua > ub;
    case ICmpPredicate::kUGE:
      return ua >= ub;
    case ICmpPredicate::kSLT:
      return sa < sb;
    case ICmpPredicate::kSLE:
      return sa <= sb;
    case ICmpPredicate::kSGT:
      return sa > sb;
    case ICmpPredicate::kSGE:
      return sa >= sb;
  }
  OVERIFY_UNREACHABLE("bad predicate");
}

uint64_t FoldCast(Opcode opcode, unsigned src_bits, unsigned dst_bits, uint64_t value) {
  switch (opcode) {
    case Opcode::kZExt:
      return TruncateToWidth(value, src_bits);
    case Opcode::kSExt:
      return TruncateToWidth(static_cast<uint64_t>(SignExtend(value, src_bits)), dst_bits);
    case Opcode::kTrunc:
      return TruncateToWidth(value, dst_bits);
    default:
      OVERIFY_UNREACHABLE("FoldCast on non-cast opcode");
  }
}

}  // namespace overify
