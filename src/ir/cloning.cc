#include "src/ir/cloning.h"

#include "src/ir/module.h"

namespace overify {

void RemapInstruction(Instruction* inst, const CloneMapping& mapping) {
  for (unsigned i = 0; i < inst->NumOperands(); ++i) {
    Value* mapped = mapping.Lookup(inst->Operand(i));
    if (mapped != inst->Operand(i)) {
      inst->SetOperand(i, mapped);
    }
  }
  if (auto* br = DynCast<BranchInst>(inst)) {
    br->SetDest(0, mapping.Lookup(br->true_dest()));
    if (br->IsConditional()) {
      br->SetDest(1, mapping.Lookup(br->false_dest()));
    }
  }
  if (auto* phi = DynCast<PhiInst>(inst)) {
    for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
      BasicBlock* mapped = mapping.Lookup(phi->IncomingBlock(i));
      if (mapped != phi->IncomingBlock(i)) {
        phi->ReplaceIncomingBlock(phi->IncomingBlock(i), mapped);
      }
    }
  }
}

void CloneBlocksInto(const std::vector<BasicBlock*>& blocks, Function* dest,
                     const std::string& name_suffix, CloneMapping& mapping) {
  IRContext& ctx = dest->parent()->context();

  // First create all destination blocks so branch targets can be remapped.
  for (BasicBlock* block : blocks) {
    BasicBlock* clone = dest->CreateBlock(block->name() + name_suffix);
    mapping.blocks[block] = clone;
  }

  // Clone instructions with original operands, recording the value mapping.
  for (BasicBlock* block : blocks) {
    BasicBlock* clone = mapping.blocks[block];
    for (auto& inst : *block) {
      std::unique_ptr<Instruction> copy = inst->Clone(ctx);
      if (inst->HasName()) {
        copy->set_name(inst->name() + name_suffix);
      }
      mapping.values[inst.get()] = copy.get();
      clone->Append(std::move(copy));
    }
  }

  // Remap in a second pass so cross-references inside the region (including
  // back edges and phi cycles) resolve to clones.
  for (BasicBlock* block : blocks) {
    BasicBlock* clone = mapping.blocks[block];
    for (auto& inst : *clone) {
      RemapInstruction(inst.get(), mapping);
    }
  }
}

}  // namespace overify
