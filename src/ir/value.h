// Value: the base class of everything that can appear as an operand in VIR.
//
// Values track their uses explicitly (user instruction + operand index) so
// passes can run ReplaceAllUsesWith and query dead-ness in O(uses).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/assert.h"

namespace overify {

class Type;
class Instruction;

enum class ValueKind {
  kArgument,
  kConstantInt,
  kNull,
  kUndef,
  kGlobalVariable,
  kFunction,
  kInstruction,
};

struct Use {
  Instruction* user = nullptr;
  unsigned operand_index = 0;
};

class Value {
 public:
  virtual ~Value() = default;

  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind value_kind() const { return value_kind_; }
  Type* type() const { return type_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  bool HasName() const { return !name_.empty(); }

  const std::vector<Use>& uses() const { return uses_; }
  bool HasUses() const { return !uses_.empty(); }
  size_t NumUses() const { return uses_.size(); }

  // Rewrites every use of this value to use `replacement` instead.
  void ReplaceAllUsesWith(Value* replacement);

  // Dense per-function index assigned by Function::AssignLocalSlots; the
  // execution engines use it for flat frame storage. kNoLocalSlot until
  // assigned. Only meaningful for Arguments and Instructions.
  static constexpr uint32_t kNoLocalSlot = 0xFFFFFFFF;
  uint32_t local_slot() const { return local_slot_; }
  void set_local_slot(uint32_t slot) { local_slot_ = slot; }

 protected:
  Value(ValueKind kind, Type* type) : value_kind_(kind), type_(type) {}

 private:
  friend class Instruction;
  void AddUse(Instruction* user, unsigned operand_index);
  void RemoveUse(Instruction* user, unsigned operand_index);

  ValueKind value_kind_;
  Type* type_;
  std::string name_;
  std::vector<Use> uses_;
  uint32_t local_slot_ = kNoLocalSlot;
};

// A formal parameter of a Function.
class Argument : public Value {
 public:
  Argument(Type* type, unsigned index) : Value(ValueKind::kArgument, type), index_(index) {}

  unsigned index() const { return index_; }

  static bool ClassOf(const Value* v) { return v->value_kind() == ValueKind::kArgument; }

 private:
  unsigned index_;
};

// LLVM-style casting helpers.
template <typename T>
bool Isa(const Value* v) {
  return v != nullptr && T::ClassOf(v);
}

template <typename T>
T* DynCast(Value* v) {
  return Isa<T>(v) ? static_cast<T*>(v) : nullptr;
}

template <typename T>
const T* DynCast(const Value* v) {
  return Isa<T>(v) ? static_cast<const T*>(v) : nullptr;
}

template <typename T>
T* Cast(Value* v) {
  OVERIFY_ASSERT(Isa<T>(v), "invalid Cast<>");
  return static_cast<T*>(v);
}

template <typename T>
const T* Cast(const Value* v) {
  OVERIFY_ASSERT(Isa<T>(v), "invalid Cast<>");
  return static_cast<const T*>(v);
}

}  // namespace overify
