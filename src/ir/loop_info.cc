#include "src/ir/loop_info.h"

#include <algorithm>

#include "src/ir/cfg.h"

namespace overify {

bool Loop::Contains(const Loop* other) const {
  while (other != nullptr) {
    if (other == this) {
      return true;
    }
    other = other->parent();
  }
  return false;
}

BasicBlock* Loop::Preheader() const {
  BasicBlock* candidate = nullptr;
  for (BasicBlock* pred : header_->Predecessors()) {
    if (Contains(pred)) {
      continue;
    }
    if (candidate != nullptr) {
      return nullptr;  // multiple outside predecessors
    }
    candidate = pred;
  }
  if (candidate == nullptr) {
    return nullptr;
  }
  // The preheader must branch only to the header.
  std::vector<BasicBlock*> succs = candidate->Successors();
  if (succs.size() != 1 || succs[0] != header_) {
    return nullptr;
  }
  return candidate;
}

BasicBlock* Loop::Latch() const {
  BasicBlock* candidate = nullptr;
  for (BasicBlock* pred : header_->Predecessors()) {
    if (!Contains(pred)) {
      continue;
    }
    if (candidate != nullptr) {
      return nullptr;
    }
    candidate = pred;
  }
  return candidate;
}

std::vector<BasicBlock*> Loop::ExitingBlocks() const {
  std::vector<BasicBlock*> result;
  for (BasicBlock* block : blocks_) {
    for (BasicBlock* succ : block->Successors()) {
      if (!Contains(succ)) {
        result.push_back(block);
        break;
      }
    }
  }
  return result;
}

std::vector<BasicBlock*> Loop::ExitBlocks() const {
  std::vector<BasicBlock*> result;
  for (BasicBlock* block : blocks_) {
    for (BasicBlock* succ : block->Successors()) {
      if (!Contains(succ) &&
          std::find(result.begin(), result.end(), succ) == result.end()) {
        result.push_back(succ);
      }
    }
  }
  return result;
}

bool Loop::IsInvariant(const Value* value) const {
  const auto* inst = DynCast<Instruction>(value);
  if (inst == nullptr) {
    return true;  // constants, arguments, globals
  }
  return !Contains(inst->parent());
}

LoopInfo::LoopInfo(Function& fn, DominatorTree& dom) {
  auto preds = PredecessorMap(fn);

  // Discover loops headers in post-order of the dominator relation by
  // scanning RPO backwards: inner loops get created before outer ones merge
  // them in.
  const std::vector<BasicBlock*>& rpo = dom.ReversePostOrderBlocks();
  std::map<BasicBlock*, unsigned> rpo_index;
  for (unsigned i = 0; i < rpo.size(); ++i) {
    rpo_index[rpo[i]] = i;
  }

  for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
    BasicBlock* header = *it;
    // Collect back edges into `header`.
    std::vector<BasicBlock*> latches;
    for (BasicBlock* pred : preds[header]) {
      if (dom.Dominates(header, pred)) {
        latches.push_back(pred);
      }
    }
    if (latches.empty()) {
      continue;
    }

    auto loop = std::make_unique<Loop>();
    loop->header_ = header;
    loop->block_set_.insert(header);

    // Walk backwards from the latches to the header.
    std::vector<BasicBlock*> worklist = latches;
    while (!worklist.empty()) {
      BasicBlock* block = worklist.back();
      worklist.pop_back();
      if (!loop->block_set_.insert(block).second) {
        continue;
      }
      for (BasicBlock* pred : preds[block]) {
        if (dom.IsReachable(pred)) {
          worklist.push_back(pred);
        }
      }
    }
    // Materialize the member list in reverse postorder, never in set
    // (pointer) order: passes derive hoist and clone order from it.
    loop->blocks_.assign(loop->block_set_.begin(), loop->block_set_.end());
    std::sort(loop->blocks_.begin(), loop->blocks_.end(),
              [&rpo_index](BasicBlock* a, BasicBlock* b) {
                return rpo_index[a] < rpo_index[b];
              });
    loops_.push_back(std::move(loop));
  }

  // Establish nesting: loop A is a subloop of B if B contains A's header and
  // A != B and B's block set is a superset. Innermost = smallest containing.
  for (auto& inner : loops_) {
    Loop* best = nullptr;
    for (auto& outer : loops_) {
      if (outer.get() == inner.get() || !outer->block_set_.count(inner->header_)) {
        continue;
      }
      if (best == nullptr || best->blocks_.size() > outer->blocks_.size()) {
        best = outer.get();
      }
    }
    inner->parent_ = best;
    if (best != nullptr) {
      best->subloops_.push_back(inner.get());
    } else {
      top_level_.push_back(inner.get());
    }
  }

  // Depths.
  for (auto& loop : loops_) {
    unsigned depth = 1;
    for (Loop* p = loop->parent_; p != nullptr; p = p->parent_) {
      ++depth;
    }
    loop->depth_ = depth;
  }

  // Innermost loop per block.
  for (auto& loop : loops_) {
    for (BasicBlock* block : loop->blocks_) {
      auto it = innermost_.find(block);
      if (it == innermost_.end() || it->second->blocks_.size() > loop->blocks_.size()) {
        innermost_[block] = loop.get();
      }
    }
  }
}

Loop* LoopInfo::LoopFor(BasicBlock* block) const {
  auto it = innermost_.find(block);
  return it == innermost_.end() ? nullptr : it->second;
}

std::vector<Loop*> LoopInfo::LoopsInnermostFirst() const {
  std::vector<Loop*> result;
  for (const auto& loop : loops_) {
    result.push_back(loop.get());
  }
  std::sort(result.begin(), result.end(), [](const Loop* a, const Loop* b) {
    if (a->depth() != b->depth()) {
      return a->depth() > b->depth();
    }
    return a->blocks().size() < b->blocks().size();
  });
  return result;
}

}  // namespace overify
