// Cloning utilities shared by the inliner, loop unroller and loop unswitcher.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/ir/function.h"

namespace overify {

// Maps original values/blocks to their clones.
struct CloneMapping {
  std::map<Value*, Value*> values;
  std::map<BasicBlock*, BasicBlock*> blocks;

  // Lookup with identity fallback: values outside the cloned region map to
  // themselves.
  Value* Lookup(Value* v) const {
    auto it = values.find(v);
    return it == values.end() ? v : it->second;
  }
  BasicBlock* Lookup(BasicBlock* block) const {
    auto it = blocks.find(block);
    return it == blocks.end() ? block : it->second;
  }
};

// Clones `blocks` (instructions and all) into `dest`, appending the new
// blocks at the end in the same relative order. Operands, branch targets and
// phi incoming blocks that refer to cloned entities are remapped; references
// to values outside the region are preserved. `mapping` may be pre-seeded
// (e.g. mapping callee arguments to call operands for inlining) and is
// extended with all clones.
void CloneBlocksInto(const std::vector<BasicBlock*>& blocks, Function* dest,
                     const std::string& name_suffix, CloneMapping& mapping);

// Rewrites the operands, branch targets and phi incoming blocks of `inst`
// through `mapping`.
void RemapInstruction(Instruction* inst, const CloneMapping& mapping);

}  // namespace overify
