// Types for the VIR intermediate representation.
//
// Types are immutable and interned by IRContext: pointer equality is type
// equality. The layout model (sizes, alignments, struct field offsets) is
// fixed to a 64-bit little-endian target so that the concrete interpreter and
// the symbolic-execution memory model agree byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace overify {

class Type {
 public:
  enum class Kind {
    kVoid,
    kInt,       // i1, i8, i16, i32, i64
    kPointer,   // T*
    kArray,     // [N x T]
    kStruct,    // { T0, T1, ... } with natural alignment
    kFunction,  // ret (params...)
  };

  Kind kind() const { return kind_; }

  bool IsVoid() const { return kind_ == Kind::kVoid; }
  bool IsInt() const { return kind_ == Kind::kInt; }
  bool IsInt(unsigned bits) const { return IsInt() && bits_ == bits; }
  bool IsBool() const { return IsInt(1); }
  bool IsPointer() const { return kind_ == Kind::kPointer; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsStruct() const { return kind_ == Kind::kStruct; }
  bool IsFunction() const { return kind_ == Kind::kFunction; }
  // Types a Value may have (loadable / SSA-register types).
  bool IsFirstClass() const { return IsInt() || IsPointer(); }

  unsigned bits() const;                        // kInt only
  Type* pointee() const;                        // kPointer only
  Type* element() const;                        // kArray only
  uint64_t array_count() const;                 // kArray only
  const std::vector<Type*>& fields() const;     // kStruct only
  Type* return_type() const;                    // kFunction only
  const std::vector<Type*>& params() const;     // kFunction only

  // Layout queries. Valid for sized types (everything except void/function).
  uint64_t SizeInBytes() const;
  uint64_t AlignInBytes() const;
  uint64_t FieldOffset(unsigned field_index) const;  // kStruct only

  std::string ToString() const;

 private:
  friend class IRContext;
  Type() = default;

  Kind kind_ = Kind::kVoid;
  unsigned bits_ = 0;
  Type* pointee_ = nullptr;       // pointer pointee or array element
  uint64_t array_count_ = 0;
  std::vector<Type*> contained_;  // struct fields or function params
  Type* return_type_ = nullptr;
};

}  // namespace overify
