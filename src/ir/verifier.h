// Structural IR verifier. Run after every pass in tests; returns all
// violations found rather than stopping at the first.
#pragma once

#include <string>
#include <vector>

#include "src/ir/module.h"

namespace overify {

// Returns a list of human-readable violations; empty means the IR is valid.
std::vector<std::string> VerifyFunction(Function& fn);
std::vector<std::string> VerifyModule(Module& module);

// Asserts validity; prints violations and aborts on failure.
void VerifyModuleOrDie(Module& module, const char* when);

}  // namespace overify
