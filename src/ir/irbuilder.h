// IRBuilder: convenience layer for constructing instructions at an insertion
// point. The builder performs no simplification — `-O0` output must stay as
// naive as a non-optimizing compiler's, which is itself part of the paper's
// experiment design.
#pragma once

#include <string>
#include <vector>

#include "src/ir/basic_block.h"
#include "src/ir/context.h"
#include "src/ir/instruction.h"
#include "src/ir/module.h"

namespace overify {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module), ctx_(module.context()) {}

  IRContext& ctx() { return ctx_; }
  Module& module() { return module_; }

  void SetInsertPoint(BasicBlock* block) {
    block_ = block;
    before_ = nullptr;
  }
  // Inserts before `inst` (which stays after everything newly created).
  void SetInsertPoint(Instruction* inst) {
    block_ = inst->parent();
    before_ = inst;
  }
  BasicBlock* insert_block() const { return block_; }

  // True once the current block has a terminator (no more insertion allowed
  // at the end).
  bool BlockTerminated() const { return block_ != nullptr && block_->Terminator() != nullptr; }

  ConstantInt* Int(Type* type, uint64_t value) { return ctx_.GetInt(type, value); }
  ConstantInt* I32Val(uint64_t value) { return ctx_.GetInt(ctx_.I32(), value); }
  ConstantInt* I64Val(uint64_t value) { return ctx_.GetInt(ctx_.I64(), value); }
  ConstantInt* I8Val(uint64_t value) { return ctx_.GetInt(ctx_.I8(), value); }
  ConstantInt* Bool(bool value) { return ctx_.GetBool(value); }

  Value* CreateAlloca(Type* type, const std::string& name = "");
  Value* CreateLoad(Value* pointer, const std::string& name = "");
  void CreateStore(Value* value, Value* pointer);
  Value* CreateGep(Type* source_type, Value* base, std::vector<Value*> indices,
                   const std::string& name = "");

  Value* CreateBinary(Opcode opcode, Value* lhs, Value* rhs, const std::string& name = "");
  Value* CreateAdd(Value* lhs, Value* rhs, const std::string& name = "") {
    return CreateBinary(Opcode::kAdd, lhs, rhs, name);
  }
  Value* CreateSub(Value* lhs, Value* rhs, const std::string& name = "") {
    return CreateBinary(Opcode::kSub, lhs, rhs, name);
  }
  Value* CreateMul(Value* lhs, Value* rhs, const std::string& name = "") {
    return CreateBinary(Opcode::kMul, lhs, rhs, name);
  }
  Value* CreateAnd(Value* lhs, Value* rhs, const std::string& name = "") {
    return CreateBinary(Opcode::kAnd, lhs, rhs, name);
  }
  Value* CreateOr(Value* lhs, Value* rhs, const std::string& name = "") {
    return CreateBinary(Opcode::kOr, lhs, rhs, name);
  }
  Value* CreateXor(Value* lhs, Value* rhs, const std::string& name = "") {
    return CreateBinary(Opcode::kXor, lhs, rhs, name);
  }

  Value* CreateICmp(ICmpPredicate pred, Value* lhs, Value* rhs, const std::string& name = "");
  Value* CreateSelect(Value* cond, Value* true_value, Value* false_value,
                      const std::string& name = "");
  Value* CreateCast(Opcode opcode, Value* value, Type* dest_type, const std::string& name = "");
  // Widens/narrows `value` to `dest_type` as needed; `is_signed` picks
  // sext vs zext when widening. Returns `value` unchanged if same width.
  Value* CreateIntResize(Value* value, Type* dest_type, bool is_signed,
                         const std::string& name = "");

  Value* CreateCall(Function* callee, std::vector<Value*> args, const std::string& name = "");
  PhiInst* CreatePhi(Type* type, const std::string& name = "");
  void CreateCheck(Value* cond, CheckKind kind, std::string message);

  void CreateBr(BasicBlock* dest);
  void CreateCondBr(Value* cond, BasicBlock* true_dest, BasicBlock* false_dest);
  void CreateRet(Value* value);
  void CreateRetVoid();
  void CreateUnreachable();

 private:
  Instruction* Insert(std::unique_ptr<Instruction> inst, const std::string& name);

  Module& module_;
  IRContext& ctx_;
  BasicBlock* block_ = nullptr;
  Instruction* before_ = nullptr;
};

}  // namespace overify
