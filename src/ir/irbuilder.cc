#include "src/ir/irbuilder.h"

namespace overify {

Instruction* IRBuilder::Insert(std::unique_ptr<Instruction> inst, const std::string& name) {
  OVERIFY_ASSERT(block_ != nullptr, "no insertion point set");
  if (!name.empty()) {
    inst->set_name(name);
  }
  if (before_ != nullptr) {
    return block_->InsertBefore(before_, std::move(inst));
  }
  OVERIFY_ASSERT(block_->Terminator() == nullptr, "inserting after a terminator");
  return block_->Append(std::move(inst));
}

Value* IRBuilder::CreateAlloca(Type* type, const std::string& name) {
  return Insert(std::make_unique<AllocaInst>(ctx_, type), name);
}

Value* IRBuilder::CreateLoad(Value* pointer, const std::string& name) {
  return Insert(std::make_unique<LoadInst>(pointer), name);
}

void IRBuilder::CreateStore(Value* value, Value* pointer) {
  Insert(std::make_unique<StoreInst>(ctx_, value, pointer), "");
}

Value* IRBuilder::CreateGep(Type* source_type, Value* base, std::vector<Value*> indices,
                            const std::string& name) {
  return Insert(std::make_unique<GepInst>(ctx_, source_type, base, std::move(indices)), name);
}

Value* IRBuilder::CreateBinary(Opcode opcode, Value* lhs, Value* rhs, const std::string& name) {
  return Insert(std::make_unique<BinaryInst>(opcode, lhs, rhs), name);
}

Value* IRBuilder::CreateICmp(ICmpPredicate pred, Value* lhs, Value* rhs,
                             const std::string& name) {
  return Insert(std::make_unique<ICmpInst>(ctx_, pred, lhs, rhs), name);
}

Value* IRBuilder::CreateSelect(Value* cond, Value* true_value, Value* false_value,
                               const std::string& name) {
  return Insert(std::make_unique<SelectInst>(cond, true_value, false_value), name);
}

Value* IRBuilder::CreateCast(Opcode opcode, Value* value, Type* dest_type,
                             const std::string& name) {
  return Insert(std::make_unique<CastInst>(opcode, value, dest_type), name);
}

Value* IRBuilder::CreateIntResize(Value* value, Type* dest_type, bool is_signed,
                                  const std::string& name) {
  unsigned src_bits = value->type()->bits();
  unsigned dst_bits = dest_type->bits();
  if (src_bits == dst_bits) {
    return value;
  }
  if (src_bits < dst_bits) {
    return CreateCast(is_signed ? Opcode::kSExt : Opcode::kZExt, value, dest_type, name);
  }
  return CreateCast(Opcode::kTrunc, value, dest_type, name);
}

Value* IRBuilder::CreateCall(Function* callee, std::vector<Value*> args,
                             const std::string& name) {
  return Insert(std::make_unique<CallInst>(callee, std::move(args)), name);
}

PhiInst* IRBuilder::CreatePhi(Type* type, const std::string& name) {
  OVERIFY_ASSERT(block_ != nullptr, "no insertion point set");
  auto phi = std::make_unique<PhiInst>(type);
  if (!name.empty()) {
    phi->set_name(name);
  }
  // Phis always go at the head of the block, before existing non-phis.
  PhiInst* raw = phi.get();
  block_->InsertBefore(block_->FirstNonPhi(), std::move(phi));
  return raw;
}

void IRBuilder::CreateCheck(Value* cond, CheckKind kind, std::string message) {
  Insert(std::make_unique<CheckInst>(ctx_, cond, kind, std::move(message)), "");
}

void IRBuilder::CreateBr(BasicBlock* dest) {
  Insert(std::make_unique<BranchInst>(ctx_, dest), "");
}

void IRBuilder::CreateCondBr(Value* cond, BasicBlock* true_dest, BasicBlock* false_dest) {
  Insert(std::make_unique<BranchInst>(ctx_, cond, true_dest, false_dest), "");
}

void IRBuilder::CreateRet(Value* value) {
  Insert(std::make_unique<RetInst>(ctx_, value), "");
}

void IRBuilder::CreateRetVoid() { Insert(std::make_unique<RetInst>(ctx_), ""); }

void IRBuilder::CreateUnreachable() { Insert(std::make_unique<UnreachableInst>(ctx_), ""); }

}  // namespace overify
