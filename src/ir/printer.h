// Textual VIR output. The format round-trips through the parser in
// src/ir/parser.h; tests rely on Print(Parse(Print(m))) == Print(m).
#pragma once

#include <string>

#include "src/ir/module.h"

namespace overify {

std::string PrintModule(Module& module);
std::string PrintFunction(Function& fn);

}  // namespace overify
