#include "src/ir/printer.h"

#include <map>
#include <set>
#include <sstream>

#include "src/ir/cfg.h"
#include "src/support/assert.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

// Blocks in an order where definitions always precede their non-phi uses
// textually: reverse postorder (a dominator precedes everything it
// dominates), with unreachable blocks appended in layout order.
std::vector<BasicBlock*> PrintOrder(Function& fn) {
  std::vector<BasicBlock*> order = ReversePostOrder(fn);
  std::set<BasicBlock*> seen(order.begin(), order.end());
  for (BasicBlock& block : fn) {
    if (seen.count(&block) == 0) {
      order.push_back(&block);
    }
  }
  return order;
}

// Assigns stable, unique printed names to values and blocks within a function.
class NameAssigner {
 public:
  explicit NameAssigner(Function& fn) {
    for (unsigned i = 0; i < fn.NumArgs(); ++i) {
      AssignValue(fn.Arg(i));
    }
    for (BasicBlock* block : PrintOrder(fn)) {
      AssignBlock(block);
      for (auto& inst : *block) {
        if (!inst->type()->IsVoid()) {
          AssignValue(inst.get());
        }
      }
    }
  }

  std::string ValueName(const Value* v) const {
    auto it = value_names_.find(v);
    OVERIFY_ASSERT(it != value_names_.end(), "printing reference to value outside function");
    return it->second;
  }

  std::string BlockName(const BasicBlock* block) const {
    auto it = block_names_.find(block);
    OVERIFY_ASSERT(it != block_names_.end(), "printing reference to unknown block");
    return it->second;
  }

 private:
  void AssignValue(const Value* v) {
    std::string base = v->HasName() ? v->name() : StrFormat("t%u", next_temp_++);
    value_names_[v] = Uniquify(base, used_value_names_);
  }

  void AssignBlock(const BasicBlock* block) {
    std::string base = block->name().empty() ? "bb" : block->name();
    block_names_[block] = Uniquify(base, used_block_names_);
  }

  static std::string Uniquify(const std::string& base, std::set<std::string>& used) {
    std::string candidate = base;
    int suffix = 1;
    while (!used.insert(candidate).second) {
      candidate = StrFormat("%s.%d", base.c_str(), suffix++);
    }
    return candidate;
  }

  std::map<const Value*, std::string> value_names_;
  std::map<const BasicBlock*, std::string> block_names_;
  std::set<std::string> used_value_names_;
  std::set<std::string> used_block_names_;
  unsigned next_temp_ = 0;
};

class FunctionPrinter {
 public:
  explicit FunctionPrinter(Function& fn) : fn_(fn), names_(fn) {}

  void Print(std::ostream& os) {
    os << "func @" << fn_.name() << "(";
    for (unsigned i = 0; i < fn_.NumArgs(); ++i) {
      if (i != 0) {
        os << ", ";
      }
      os << "%" << names_.ValueName(fn_.Arg(i)) << ": " << fn_.Arg(i)->type()->ToString();
    }
    os << ") -> " << fn_.return_type()->ToString() << " {\n";
    for (BasicBlock* block : PrintOrder(fn_)) {
      os << names_.BlockName(block) << ":\n";
      for (auto& inst : *block) {
        os << "  ";
        PrintInstruction(os, inst.get());
        os << "\n";
      }
    }
    os << "}\n";
  }

 private:
  std::string Ref(const Value* v) const {
    if (const auto* ci = DynCast<ConstantInt>(v)) {
      return StrFormat("%s %lld", ci->type()->ToString().c_str(),
                       static_cast<long long>(ci->SignedValue()));
    }
    if (Isa<UndefValue>(v)) {
      return v->type()->ToString() + " undef";
    }
    if (Isa<NullValue>(v)) {
      return v->type()->ToString() + " null";
    }
    if (const auto* g = DynCast<GlobalVariable>(v)) {
      return "@" + g->name();
    }
    return "%" + names_.ValueName(v);
  }

  void PrintInstruction(std::ostream& os, const Instruction* inst) {
    if (!inst->type()->IsVoid()) {
      os << "%" << names_.ValueName(inst) << " = ";
    }
    switch (inst->opcode()) {
      case Opcode::kAlloca:
        os << "alloca " << Cast<AllocaInst>(inst)->allocated_type()->ToString();
        return;
      case Opcode::kLoad:
        os << "load " << Ref(inst->Operand(0));
        return;
      case Opcode::kStore:
        os << "store " << Ref(inst->Operand(0)) << ", " << Ref(inst->Operand(1));
        return;
      case Opcode::kGep: {
        const auto* gep = Cast<GepInst>(inst);
        os << "gep " << gep->source_type()->ToString() << ", " << Ref(gep->base());
        for (unsigned i = 0; i < gep->NumIndices(); ++i) {
          os << ", " << Ref(gep->Index(i));
        }
        return;
      }
      case Opcode::kICmp: {
        const auto* cmp = Cast<ICmpInst>(inst);
        os << "icmp " << PredicateName(cmp->predicate()) << " " << Ref(cmp->lhs()) << ", "
           << Ref(cmp->rhs());
        return;
      }
      case Opcode::kSelect:
        os << "select " << Ref(inst->Operand(0)) << ", " << Ref(inst->Operand(1)) << ", "
           << Ref(inst->Operand(2));
        return;
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kTrunc:
        os << OpcodeName(inst->opcode()) << " " << Ref(inst->Operand(0)) << " to "
           << inst->type()->ToString();
        return;
      case Opcode::kCall: {
        const auto* call = Cast<CallInst>(inst);
        os << "call @" << call->callee()->name() << "(";
        for (unsigned i = 0; i < call->NumArgs(); ++i) {
          if (i != 0) {
            os << ", ";
          }
          os << Ref(call->Arg(i));
        }
        os << ")";
        return;
      }
      case Opcode::kPhi: {
        const auto* phi = Cast<PhiInst>(inst);
        os << "phi " << phi->type()->ToString();
        for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
          os << (i == 0 ? " " : ", ") << "[ " << Ref(phi->IncomingValue(i)) << ", %"
             << names_.BlockName(phi->IncomingBlock(i)) << " ]";
        }
        return;
      }
      case Opcode::kCheck: {
        const auto* check = Cast<CheckInst>(inst);
        os << "check " << Ref(check->condition()) << ", " << CheckKindName(check->check_kind())
           << ", \"" << EscapeString(check->message()) << "\"";
        return;
      }
      case Opcode::kBr: {
        const auto* br = Cast<BranchInst>(inst);
        if (br->IsConditional()) {
          os << "br " << Ref(br->condition()) << ", label %" << names_.BlockName(br->true_dest())
             << ", label %" << names_.BlockName(br->false_dest());
        } else {
          os << "br label %" << names_.BlockName(br->SingleDest());
        }
        return;
      }
      case Opcode::kRet: {
        const auto* ret = Cast<RetInst>(inst);
        if (ret->HasValue()) {
          os << "ret " << Ref(ret->value());
        } else {
          os << "ret";
        }
        return;
      }
      case Opcode::kUnreachable:
        os << "unreachable";
        return;
      default:
        // Binary operations.
        OVERIFY_ASSERT(inst->IsBinaryOp(), "unhandled opcode in printer");
        os << OpcodeName(inst->opcode()) << " " << Ref(inst->Operand(0)) << ", "
           << Ref(inst->Operand(1));
        return;
    }
  }

  Function& fn_;
  NameAssigner names_;
};

void PrintGlobal(std::ostream& os, const GlobalVariable& global) {
  os << "global @" << global.name() << " : " << global.value_type()->ToString();
  if (global.is_const()) {
    os << " const";
  }
  Type* vt = global.value_type();
  if (vt->IsArray() && vt->element()->IsInt(8)) {
    std::string text(global.initializer().begin(), global.initializer().end());
    os << " = \"" << EscapeString(text) << "\"";
  } else {
    os << " = [";
    const auto& bytes = global.initializer();
    for (size_t i = 0; i < bytes.size(); ++i) {
      if (i != 0) {
        os << ", ";
      }
      os << static_cast<unsigned>(bytes[i]);
    }
    os << "]";
  }
  os << "\n";
}

}  // namespace

std::string PrintFunction(Function& fn) {
  std::ostringstream os;
  if (fn.IsDeclaration()) {
    os << "declare @" << fn.name() << "(";
    const auto& params = fn.function_type()->params();
    for (size_t i = 0; i < params.size(); ++i) {
      if (i != 0) {
        os << ", ";
      }
      os << params[i]->ToString();
    }
    os << ") -> " << fn.return_type()->ToString() << "\n";
    return os.str();
  }
  FunctionPrinter(fn).Print(os);
  return os.str();
}

std::string PrintModule(Module& module) {
  std::ostringstream os;
  os << "module \"" << module.name() << "\"\n\n";
  for (const auto& global : module.globals()) {
    PrintGlobal(os, *global);
  }
  if (!module.globals().empty()) {
    os << "\n";
  }
  for (const auto& fn : module.functions()) {
    os << PrintFunction(*fn);
    os << "\n";
  }
  return os.str();
}

}  // namespace overify
