#include "src/ir/parser.h"

#include <cstdio>
#include <map>

#include "src/support/assert.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

enum class Tok {
  kEof,
  kIdent,    // bare identifier (keywords included)
  kLocal,    // %name
  kGlobal,   // @name
  kNumber,   // integer literal (possibly negative)
  kString,   // "..."
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kEquals,
  kStar,
  kArrow,    // ->
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  int64_t number = 0;
  SourceLoc loc;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text, DiagnosticEngine& diags)
      : text_(text), diags_(diags) {}

  Token Next() {
    SkipWhitespaceAndComments();
    Token tok;
    tok.loc = Loc();
    if (pos_ >= text_.size()) {
      tok.kind = Tok::kEof;
      return tok;
    }
    char c = text_[pos_];
    switch (c) {
      case '(':
        ++pos_;
        tok.kind = Tok::kLParen;
        return tok;
      case ')':
        ++pos_;
        tok.kind = Tok::kRParen;
        return tok;
      case '{':
        ++pos_;
        tok.kind = Tok::kLBrace;
        return tok;
      case '}':
        ++pos_;
        tok.kind = Tok::kRBrace;
        return tok;
      case '[':
        ++pos_;
        tok.kind = Tok::kLBracket;
        return tok;
      case ']':
        ++pos_;
        tok.kind = Tok::kRBracket;
        return tok;
      case ',':
        ++pos_;
        tok.kind = Tok::kComma;
        return tok;
      case ':':
        ++pos_;
        tok.kind = Tok::kColon;
        return tok;
      case '=':
        ++pos_;
        tok.kind = Tok::kEquals;
        return tok;
      case '*':
        ++pos_;
        tok.kind = Tok::kStar;
        return tok;
      default:
        break;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      tok.kind = Tok::kArrow;
      return tok;
    }
    if (c == '%' || c == '@') {
      ++pos_;
      tok.kind = (c == '%') ? Tok::kLocal : Tok::kGlobal;
      tok.text = LexIdentBody();
      if (tok.text.empty()) {
        diags_.Error(tok.loc, "expected name after sigil");
      }
      return tok;
    }
    if (c == '"') {
      tok.kind = Tok::kString;
      tok.text = LexString();
      return tok;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      tok.kind = Tok::kNumber;
      size_t start = pos_;
      if (c == '-') {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      tok.number = std::stoll(text_.substr(start, pos_ - start));
      return tok;
    }
    if (IsIdentChar(c)) {
      tok.kind = Tok::kIdent;
      tok.text = LexIdentBody();
      return tok;
    }
    diags_.Error(tok.loc, StrFormat("unexpected character '%c'", c));
    ++pos_;
    return Next();
  }

 private:
  static bool IsIdentChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '.';
  }

  std::string LexIdentBody() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  std::string LexString() {
    OVERIFY_ASSERT(text_[pos_] == '"', "not a string");
    ++pos_;
    std::string result;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        result += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case 'n':
          result += '\n';
          break;
        case 't':
          result += '\t';
          break;
        case 'r':
          result += '\r';
          break;
        case '0':
          result += '\0';
          break;
        case '\\':
          result += '\\';
          break;
        case '"':
          result += '"';
          break;
        case 'x': {
          int value = 0;
          for (int i = 0; i < 2 && pos_ < text_.size(); ++i) {
            char h = text_[pos_];
            int digit;
            if (h >= '0' && h <= '9') {
              digit = h - '0';
            } else if (h >= 'a' && h <= 'f') {
              digit = h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = h - 'A' + 10;
            } else {
              break;
            }
            value = value * 16 + digit;
            ++pos_;
          }
          result += static_cast<char>(value);
          break;
        }
        default:
          result += esc;
      }
    }
    if (pos_ < text_.size()) {
      ++pos_;  // closing quote
    }
    return result;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '\n') {
        ++pos_;
        ++line_;
        line_start_ = pos_;
      } else if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  SourceLoc Loc() const {
    return SourceLoc{static_cast<uint32_t>(line_),
                     static_cast<uint32_t>(pos_ - line_start_ + 1)};
  }

  const std::string& text_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;
};

class Parser {
 public:
  // Parsing runs in two passes over the same text: a prescan pass creates
  // all globals and function signatures (so calls may reference functions
  // defined later in the file), and the main pass fills in function bodies.
  Parser(const std::string& text, DiagnosticEngine& diags, Module* module, bool prescan)
      : lexer_(text, diags), diags_(diags), raw_module_(module), prescan_(prescan) {
    Advance();
  }

  std::unique_ptr<Module> RunPrescan() {
    std::string module_name = "module";
    if (IsIdent("module")) {
      Advance();
      if (tok_.kind == Tok::kString) {
        module_name = tok_.text;
        Advance();
      }
    }
    auto module = std::make_unique<Module>(module_name);
    raw_module_ = module.get();
    Loop();
    if (diags_.HasErrors()) {
      return nullptr;
    }
    return module;
  }

  bool RunMain() {
    if (IsIdent("module")) {
      Advance();
      if (tok_.kind == Tok::kString) {
        Advance();
      }
    }
    Loop();
    return !diags_.HasErrors();
  }

 private:
  void Loop() {
    while (tok_.kind != Tok::kEof && !diags_.HasErrors()) {
      if (IsIdent("global")) {
        ParseGlobal();
      } else if (IsIdent("declare")) {
        ParseDeclare();
      } else if (IsIdent("func")) {
        ParseFunction();
      } else {
        ErrorHere("expected 'global', 'declare' or 'func'");
        break;
      }
    }
  }

  Module& module() { return *raw_module_; }

  void Advance() { tok_ = lexer_.Next(); }

  bool IsIdent(const char* text) const {
    return tok_.kind == Tok::kIdent && tok_.text == text;
  }

  void ErrorHere(const std::string& message) {
    if (!diags_.HasErrors()) {
      diags_.Error(tok_.loc, message);
    }
  }

  bool Expect(Tok kind, const char* what) {
    if (tok_.kind != kind) {
      ErrorHere(StrFormat("expected %s", what));
      return false;
    }
    Advance();
    return true;
  }

  bool ExpectIdent(const char* text) {
    if (!IsIdent(text)) {
      ErrorHere(StrFormat("expected '%s'", text));
      return false;
    }
    Advance();
    return true;
  }

  // type := void | iN | [N x type] | {type, ...} | type '*'*
  Type* ParseType() {
    IRContext& ctx = module().context();
    Type* base = nullptr;
    if (tok_.kind == Tok::kIdent) {
      if (tok_.text == "void") {
        base = ctx.VoidTy();
        Advance();
      } else if (tok_.text.size() >= 2 && tok_.text[0] == 'i') {
        int bits = 0;
        bool ok = true;
        for (size_t i = 1; i < tok_.text.size(); ++i) {
          if (tok_.text[i] < '0' || tok_.text[i] > '9') {
            ok = false;
            break;
          }
          bits = bits * 10 + (tok_.text[i] - '0');
        }
        if (ok && (bits == 1 || bits == 8 || bits == 16 || bits == 32 || bits == 64)) {
          base = ctx.IntTy(static_cast<unsigned>(bits));
          Advance();
        }
      }
    } else if (tok_.kind == Tok::kLBracket) {
      Advance();
      if (tok_.kind != Tok::kNumber) {
        ErrorHere("expected array length");
        return ctx.I32();
      }
      uint64_t count = static_cast<uint64_t>(tok_.number);
      Advance();
      if (!ExpectIdent("x")) {
        return ctx.I32();
      }
      Type* element = ParseType();
      if (!Expect(Tok::kRBracket, "']'")) {
        return ctx.I32();
      }
      base = ctx.ArrayTy(element, count);
    } else if (tok_.kind == Tok::kLBrace) {
      Advance();
      std::vector<Type*> fields;
      if (tok_.kind != Tok::kRBrace) {
        fields.push_back(ParseType());
        while (tok_.kind == Tok::kComma) {
          Advance();
          fields.push_back(ParseType());
        }
      }
      if (!Expect(Tok::kRBrace, "'}'")) {
        return ctx.I32();
      }
      base = ctx.StructTy(std::move(fields));
    }
    if (base == nullptr) {
      ErrorHere("expected type");
      return ctx.I32();
    }
    while (tok_.kind == Tok::kStar) {
      Advance();
      base = ctx.PtrTy(base);
    }
    return base;
  }

  static bool LooksLikeTypeStart(const Token& tok) {
    if (tok.kind == Tok::kLBracket || tok.kind == Tok::kLBrace) {
      return true;
    }
    if (tok.kind != Tok::kIdent) {
      return false;
    }
    if (tok.text == "void") {
      return true;
    }
    if (tok.text.size() >= 2 && tok.text[0] == 'i') {
      for (size_t i = 1; i < tok.text.size(); ++i) {
        if (tok.text[i] < '0' || tok.text[i] > '9') {
          return false;
        }
      }
      return true;
    }
    return false;
  }

  void ParseGlobal() {
    ExpectIdent("global");
    if (tok_.kind != Tok::kGlobal) {
      ErrorHere("expected @name");
      return;
    }
    std::string name = tok_.text;
    Advance();
    if (!Expect(Tok::kColon, "':'")) {
      return;
    }
    Type* type = ParseType();
    bool is_const = false;
    if (IsIdent("const")) {
      is_const = true;
      Advance();
    }
    if (!Expect(Tok::kEquals, "'='")) {
      return;
    }
    std::vector<uint8_t> bytes;
    if (tok_.kind == Tok::kString) {
      bytes.assign(tok_.text.begin(), tok_.text.end());
      Advance();
    } else if (tok_.kind == Tok::kLBracket) {
      Advance();
      while (tok_.kind == Tok::kNumber) {
        bytes.push_back(static_cast<uint8_t>(tok_.number));
        Advance();
        if (tok_.kind == Tok::kComma) {
          Advance();
        }
      }
      if (!Expect(Tok::kRBracket, "']'")) {
        return;
      }
    } else {
      ErrorHere("expected global initializer");
      return;
    }
    if (bytes.size() != type->SizeInBytes()) {
      ErrorHere(StrFormat("global @%s initializer has %zu bytes, type needs %llu", name.c_str(),
                          bytes.size(), static_cast<unsigned long long>(type->SizeInBytes())));
      return;
    }
    if (!prescan_) {
      return;  // created during the prescan pass
    }
    if (module().GetGlobal(name) != nullptr) {
      ErrorHere(StrFormat("duplicate global @%s", name.c_str()));
      return;
    }
    module().CreateGlobal(name, type, is_const, std::move(bytes));
  }

  Function* GetOrCreateFunction(const std::string& name, Type* return_type,
                                std::vector<Type*> params) {
    Function* existing = module().GetFunction(name);
    if (existing != nullptr) {
      return existing;
    }
    return module().CreateFunction(name, return_type, std::move(params));
  }

  void ParseDeclare() {
    ExpectIdent("declare");
    if (tok_.kind != Tok::kGlobal) {
      ErrorHere("expected @name");
      return;
    }
    std::string name = tok_.text;
    Advance();
    if (!Expect(Tok::kLParen, "'('")) {
      return;
    }
    std::vector<Type*> params;
    if (tok_.kind != Tok::kRParen) {
      params.push_back(ParseType());
      while (tok_.kind == Tok::kComma) {
        Advance();
        params.push_back(ParseType());
      }
    }
    if (!Expect(Tok::kRParen, "')'") || !Expect(Tok::kArrow, "'->'")) {
      return;
    }
    Type* return_type = ParseType();
    if (!prescan_) {
      return;  // created during the prescan pass
    }
    if (module().GetFunction(name) != nullptr) {
      ErrorHere(StrFormat("duplicate function @%s", name.c_str()));
      return;
    }
    module().CreateFunction(name, return_type, std::move(params));
  }

  void ParseFunction() {
    ExpectIdent("func");
    if (tok_.kind != Tok::kGlobal) {
      ErrorHere("expected @name");
      return;
    }
    std::string name = tok_.text;
    Advance();
    if (!Expect(Tok::kLParen, "'('")) {
      return;
    }
    std::vector<std::string> arg_names;
    std::vector<Type*> params;
    if (tok_.kind != Tok::kRParen) {
      while (true) {
        if (tok_.kind != Tok::kLocal) {
          ErrorHere("expected %arg");
          return;
        }
        arg_names.push_back(tok_.text);
        Advance();
        if (!Expect(Tok::kColon, "':'")) {
          return;
        }
        params.push_back(ParseType());
        if (tok_.kind != Tok::kComma) {
          break;
        }
        Advance();
      }
    }
    if (!Expect(Tok::kRParen, "')'") || !Expect(Tok::kArrow, "'->'")) {
      return;
    }
    Type* return_type = ParseType();
    if (prescan_) {
      if (module().GetFunction(name) != nullptr) {
        ErrorHere(StrFormat("duplicate function @%s", name.c_str()));
        return;
      }
      module().CreateFunction(name, return_type, params);
      // Skip the body; the main pass parses it.
      if (!Expect(Tok::kLBrace, "'{'")) {
        return;
      }
      int depth = 1;
      while (depth > 0 && tok_.kind != Tok::kEof) {
        if (tok_.kind == Tok::kLBrace) {
          ++depth;
        } else if (tok_.kind == Tok::kRBrace) {
          --depth;
        }
        Advance();
      }
      return;
    }
    fn_ = module().GetFunction(name);
    OVERIFY_ASSERT(fn_ != nullptr, "function missing after prescan");
    values_.clear();
    blocks_.clear();
    pending_.clear();
    label_order_.clear();
    for (unsigned i = 0; i < fn_->NumArgs(); ++i) {
      fn_->Arg(i)->set_name(arg_names[i]);
      values_[arg_names[i]] = fn_->Arg(i);
    }
    if (!Expect(Tok::kLBrace, "'{'")) {
      return;
    }
    current_block_ = nullptr;
    while (tok_.kind != Tok::kRBrace && tok_.kind != Tok::kEof && !diags_.HasErrors()) {
      ParseBlockLine();
    }
    Expect(Tok::kRBrace, "'}'");
    if (!pending_.empty() && !diags_.HasErrors()) {
      ErrorHere(StrFormat("undefined value %%%s referenced in @%s",
                          pending_.begin()->first.c_str(), name.c_str()));
    }
    // On error paths the module outlives this parser; detach any leftover
    // placeholders so module teardown does not touch freed memory.
    for (auto& [pending_name, placeholder] : pending_) {
      placeholder->ReplaceAllUsesWith(module().context().GetUndef(placeholder->type()));
    }
    pending_.clear();
    if (!diags_.HasErrors()) {
      // Blocks were created at first reference; restore textual label order
      // so printing round-trips.
      for (const auto& [block_name, block] : blocks_) {
        if (block->empty()) {
          diags_.Error(SourceLoc{}, StrFormat("undefined label %%%s in @%s", block_name.c_str(),
                                              name.c_str()));
        }
      }
      if (!diags_.HasErrors()) {
        for (BasicBlock* block : label_order_) {
          fn_->MoveBlockToEnd(block);
        }
      }
    }
    fn_ = nullptr;
  }

  BasicBlock* GetOrCreateBlock(const std::string& name) {
    auto it = blocks_.find(name);
    if (it != blocks_.end()) {
      return it->second;
    }
    BasicBlock* block = fn_->CreateBlock(name);
    blocks_[name] = block;
    return block;
  }

  void DefineValue(const std::string& name, Value* value) {
    if (values_.count(name) != 0) {
      ErrorHere(StrFormat("redefinition of %%%s", name.c_str()));
      return;
    }
    value->set_name(name);
    values_[name] = value;
    auto it = pending_.find(name);
    if (it != pending_.end()) {
      if (it->second->type() != value->type()) {
        ErrorHere(StrFormat("type mismatch for forward reference %%%s", name.c_str()));
        return;
      }
      it->second->ReplaceAllUsesWith(value);
      pending_.erase(it);
    }
  }

  // Resolves a %name reference of known type; creates a placeholder when the
  // definition has not been seen yet (allowed only from phi operands).
  Value* ResolveLocal(const std::string& name, Type* type, bool allow_forward) {
    auto it = values_.find(name);
    if (it != values_.end()) {
      if (type != nullptr && it->second->type() != type) {
        ErrorHere(StrFormat("value %%%s has unexpected type", name.c_str()));
      }
      return it->second;
    }
    if (!allow_forward || type == nullptr) {
      ErrorHere(StrFormat("use of undefined value %%%s", name.c_str()));
      return module().context().GetUndef(type != nullptr ? type : module().context().I32());
    }
    auto pending_it = pending_.find(name);
    if (pending_it != pending_.end()) {
      return pending_it->second.get();
    }
    auto placeholder = std::make_unique<PhiInst>(type);
    Value* raw = placeholder.get();
    pending_[name] = std::move(placeholder);
    return raw;
  }

  // operand := %name | @name | TYPE (number | undef)
  // `expected` may be null when the operand's type is self-evident.
  Value* ParseOperand(Type* expected, bool allow_forward = false) {
    IRContext& ctx = module().context();
    if (tok_.kind == Tok::kLocal) {
      std::string name = tok_.text;
      Advance();
      return ResolveLocal(name, expected, allow_forward);
    }
    if (tok_.kind == Tok::kGlobal) {
      GlobalVariable* global = module().GetGlobal(tok_.text);
      if (global == nullptr) {
        ErrorHere(StrFormat("unknown global @%s", tok_.text.c_str()));
        Advance();
        return ctx.GetUndef(ctx.I32());
      }
      Advance();
      return global;
    }
    if (LooksLikeTypeStart(tok_)) {
      Type* type = ParseType();
      if (IsIdent("undef")) {
        Advance();
        return ctx.GetUndef(type);
      }
      if (IsIdent("null")) {
        Advance();
        if (!type->IsPointer()) {
          ErrorHere("null requires a pointer type");
          return ctx.GetUndef(type);
        }
        return ctx.GetNull(type);
      }
      if (tok_.kind == Tok::kNumber) {
        if (!type->IsInt()) {
          ErrorHere("integer literal requires integer type");
          return ctx.GetUndef(type);
        }
        ConstantInt* result = ctx.GetInt(type, static_cast<uint64_t>(tok_.number));
        Advance();
        return result;
      }
      ErrorHere("expected literal after type");
      return ctx.GetUndef(type);
    }
    ErrorHere("expected operand");
    return ctx.GetUndef(expected != nullptr ? expected : ctx.I32());
  }

  // Parses either a label line ("name:") or an instruction line.
  void ParseBlockLine() {
    if (tok_.kind == Tok::kIdent) {
      // Could be a label: IDENT ':'.
      // Distinguish from instructions: instruction mnemonics are also idents,
      // so we peek for ':'. Save state by using the fact that labels are the
      // only place IDENT is immediately followed by ':'.
      std::string text = tok_.text;
      if (IsLabelCandidate(text)) {
        Advance();
        if (tok_.kind == Tok::kColon) {
          Advance();
          current_block_ = GetOrCreateBlock(text);
          label_order_.push_back(current_block_);
          return;
        }
        // Not a label after all: it was an instruction mnemonic with no
        // result. Parse it with the mnemonic already consumed.
        ParseInstructionBody("", text);
        return;
      }
    }
    ParseInstruction();
  }

  static bool IsLabelCandidate(const std::string&) {
    // Any identifier might be a label; we resolve via lookahead for ':'.
    return true;
  }

  void ParseInstruction() {
    std::string result_name;
    if (tok_.kind == Tok::kLocal) {
      result_name = tok_.text;
      Advance();
      if (!Expect(Tok::kEquals, "'='")) {
        return;
      }
    }
    if (tok_.kind != Tok::kIdent) {
      ErrorHere("expected instruction mnemonic");
      return;
    }
    std::string mnemonic = tok_.text;
    Advance();
    ParseInstructionBody(result_name, mnemonic);
  }

  void ParseInstructionBody(const std::string& result_name, const std::string& mnemonic) {
    if (current_block_ == nullptr) {
      ErrorHere("instruction outside a block");
      return;
    }
    IRContext& ctx = module().context();
    std::unique_ptr<Instruction> inst;

    auto binary_op = [&](Opcode opcode) {
      Value* lhs = ParseOperand(nullptr);
      Expect(Tok::kComma, "','");
      Value* rhs = ParseOperand(lhs->type());
      if (!lhs->type()->IsInt() || lhs->type() != rhs->type()) {
        ErrorHere("binary operand type mismatch");
        return std::unique_ptr<Instruction>();
      }
      return std::unique_ptr<Instruction>(std::make_unique<BinaryInst>(opcode, lhs, rhs));
    };

    if (mnemonic == "alloca") {
      Type* type = ParseType();
      inst = std::make_unique<AllocaInst>(ctx, type);
    } else if (mnemonic == "load") {
      Value* ptr = ParseOperand(nullptr);
      if (!ptr->type()->IsPointer()) {
        ErrorHere("load requires pointer operand");
        return;
      }
      inst = std::make_unique<LoadInst>(ptr);
    } else if (mnemonic == "store") {
      Value* value = ParseOperand(nullptr);
      Expect(Tok::kComma, "','");
      Value* ptr = ParseOperand(nullptr);
      if (!ptr->type()->IsPointer() || ptr->type()->pointee() != value->type()) {
        ErrorHere("store type mismatch");
        return;
      }
      inst = std::make_unique<StoreInst>(ctx, value, ptr);
    } else if (mnemonic == "gep") {
      Type* source = ParseType();
      Expect(Tok::kComma, "','");
      Value* base = ParseOperand(nullptr);
      std::vector<Value*> indices;
      while (tok_.kind == Tok::kComma) {
        Advance();
        indices.push_back(ParseOperand(nullptr));
      }
      if (!base->type()->IsPointer() || indices.empty()) {
        ErrorHere("malformed gep");
        return;
      }
      inst = std::make_unique<GepInst>(ctx, source, base, std::move(indices));
    } else if (mnemonic == "icmp") {
      if (tok_.kind != Tok::kIdent) {
        ErrorHere("expected icmp predicate");
        return;
      }
      ICmpPredicate pred;
      if (!ParsePredicate(tok_.text, pred)) {
        ErrorHere(StrFormat("unknown predicate '%s'", tok_.text.c_str()));
        return;
      }
      Advance();
      Value* lhs = ParseOperand(nullptr);
      Expect(Tok::kComma, "','");
      Value* rhs = ParseOperand(lhs->type());
      if (lhs->type() != rhs->type()) {
        ErrorHere("icmp operand type mismatch");
        return;
      }
      inst = std::make_unique<ICmpInst>(ctx, pred, lhs, rhs);
    } else if (mnemonic == "select") {
      Value* cond = ParseOperand(ctx.I1());
      Expect(Tok::kComma, "','");
      Value* tv = ParseOperand(nullptr);
      Expect(Tok::kComma, "','");
      Value* fv = ParseOperand(tv->type());
      if (!cond->type()->IsBool() || tv->type() != fv->type()) {
        ErrorHere("malformed select");
        return;
      }
      inst = std::make_unique<SelectInst>(cond, tv, fv);
    } else if (mnemonic == "zext" || mnemonic == "sext" || mnemonic == "trunc") {
      Value* value = ParseOperand(nullptr);
      if (!ExpectIdent("to")) {
        return;
      }
      Type* dest = ParseType();
      Opcode opcode = mnemonic == "zext"   ? Opcode::kZExt
                      : mnemonic == "sext" ? Opcode::kSExt
                                           : Opcode::kTrunc;
      if (!value->type()->IsInt() || !dest->IsInt() ||
          (opcode == Opcode::kTrunc ? dest->bits() >= value->type()->bits()
                                    : dest->bits() <= value->type()->bits())) {
        ErrorHere("malformed cast");
        return;
      }
      inst = std::make_unique<CastInst>(opcode, value, dest);
    } else if (mnemonic == "call") {
      if (tok_.kind != Tok::kGlobal) {
        ErrorHere("expected callee");
        return;
      }
      Function* callee = module().GetFunction(tok_.text);
      if (callee == nullptr) {
        ErrorHere(StrFormat("unknown function @%s", tok_.text.c_str()));
        return;
      }
      Advance();
      Expect(Tok::kLParen, "'('");
      std::vector<Value*> args;
      if (tok_.kind != Tok::kRParen) {
        args.push_back(ParseOperand(nullptr));
        while (tok_.kind == Tok::kComma) {
          Advance();
          args.push_back(ParseOperand(nullptr));
        }
      }
      Expect(Tok::kRParen, "')'");
      const auto& params = callee->function_type()->params();
      if (params.size() != args.size()) {
        ErrorHere(StrFormat("wrong argument count for @%s", callee->name().c_str()));
        return;
      }
      for (size_t i = 0; i < args.size(); ++i) {
        if (args[i]->type() != params[i]) {
          ErrorHere(StrFormat("argument %zu type mismatch for @%s", i, callee->name().c_str()));
          return;
        }
      }
      inst = std::make_unique<CallInst>(callee, std::move(args));
    } else if (mnemonic == "phi") {
      Type* type = ParseType();
      auto phi = std::make_unique<PhiInst>(type);
      while (tok_.kind == Tok::kLBracket) {
        Advance();
        Value* value = ParseOperand(type, /*allow_forward=*/true);
        Expect(Tok::kComma, "','");
        if (tok_.kind != Tok::kLocal) {
          ErrorHere("expected %block in phi");
          return;
        }
        BasicBlock* block = GetOrCreateBlock(tok_.text);
        Advance();
        Expect(Tok::kRBracket, "']'");
        if (value->type() != type) {
          ErrorHere("phi incoming type mismatch");
          return;
        }
        phi->AddIncoming(value, block);
        if (tok_.kind == Tok::kComma) {
          Advance();
        } else {
          break;
        }
      }
      inst = std::move(phi);
    } else if (mnemonic == "check") {
      Value* cond = ParseOperand(ctx.I1());
      Expect(Tok::kComma, "','");
      if (tok_.kind != Tok::kIdent) {
        ErrorHere("expected check kind");
        return;
      }
      CheckKind kind;
      if (!ParseCheckKind(tok_.text, kind)) {
        ErrorHere(StrFormat("unknown check kind '%s'", tok_.text.c_str()));
        return;
      }
      Advance();
      Expect(Tok::kComma, "','");
      std::string message;
      if (tok_.kind == Tok::kString) {
        message = tok_.text;
        Advance();
      }
      if (!cond->type()->IsBool()) {
        ErrorHere("check condition must be i1");
        return;
      }
      inst = std::make_unique<CheckInst>(ctx, cond, kind, std::move(message));
    } else if (mnemonic == "br") {
      if (IsIdent("label")) {
        Advance();
        if (tok_.kind != Tok::kLocal) {
          ErrorHere("expected %block");
          return;
        }
        BasicBlock* dest = GetOrCreateBlock(tok_.text);
        Advance();
        inst = std::make_unique<BranchInst>(ctx, dest);
      } else {
        Value* cond = ParseOperand(ctx.I1());
        Expect(Tok::kComma, "','");
        if (!ExpectIdent("label") || tok_.kind != Tok::kLocal) {
          ErrorHere("expected label %block");
          return;
        }
        BasicBlock* true_dest = GetOrCreateBlock(tok_.text);
        Advance();
        Expect(Tok::kComma, "','");
        if (!ExpectIdent("label") || tok_.kind != Tok::kLocal) {
          ErrorHere("expected label %block");
          return;
        }
        BasicBlock* false_dest = GetOrCreateBlock(tok_.text);
        Advance();
        if (!cond->type()->IsBool()) {
          ErrorHere("branch condition must be i1");
          return;
        }
        inst = std::make_unique<BranchInst>(ctx, cond, true_dest, false_dest);
      }
    } else if (mnemonic == "ret") {
      if (tok_.kind == Tok::kLocal || tok_.kind == Tok::kGlobal || LooksLikeTypeStart(tok_)) {
        Value* value = ParseOperand(fn_->return_type()->IsVoid() ? nullptr : fn_->return_type());
        inst = std::make_unique<RetInst>(ctx, value);
      } else {
        inst = std::make_unique<RetInst>(ctx);
      }
    } else if (mnemonic == "unreachable") {
      inst = std::make_unique<UnreachableInst>(ctx);
    } else {
      Opcode opcode;
      if (!ParseBinaryOpcode(mnemonic, opcode)) {
        ErrorHere(StrFormat("unknown instruction '%s'", mnemonic.c_str()));
        return;
      }
      inst = binary_op(opcode);
    }

    if (inst == nullptr) {
      return;
    }
    Instruction* raw = inst.get();
    if (raw->opcode() == Opcode::kPhi) {
      current_block_->InsertBefore(current_block_->FirstNonPhi(), std::move(inst));
    } else {
      current_block_->Append(std::move(inst));
    }
    if (!result_name.empty()) {
      if (raw->type()->IsVoid()) {
        ErrorHere("void instruction cannot have a result name");
        return;
      }
      DefineValue(result_name, raw);
    }
  }

  static bool ParsePredicate(const std::string& text, ICmpPredicate& pred) {
    static const std::map<std::string, ICmpPredicate> kMap = {
        {"eq", ICmpPredicate::kEq},   {"ne", ICmpPredicate::kNe},
        {"ult", ICmpPredicate::kULT}, {"ule", ICmpPredicate::kULE},
        {"ugt", ICmpPredicate::kUGT}, {"uge", ICmpPredicate::kUGE},
        {"slt", ICmpPredicate::kSLT}, {"sle", ICmpPredicate::kSLE},
        {"sgt", ICmpPredicate::kSGT}, {"sge", ICmpPredicate::kSGE},
    };
    auto it = kMap.find(text);
    if (it == kMap.end()) {
      return false;
    }
    pred = it->second;
    return true;
  }

  static bool ParseCheckKind(const std::string& text, CheckKind& kind) {
    static const std::map<std::string, CheckKind> kMap = {
        {"assert", CheckKind::kAssert},         {"bounds", CheckKind::kBounds},
        {"div_by_zero", CheckKind::kDivByZero}, {"overflow", CheckKind::kOverflow},
        {"null_deref", CheckKind::kNullDeref},  {"shift", CheckKind::kShift},
    };
    auto it = kMap.find(text);
    if (it == kMap.end()) {
      return false;
    }
    kind = it->second;
    return true;
  }

  static bool ParseBinaryOpcode(const std::string& text, Opcode& opcode) {
    static const std::map<std::string, Opcode> kMap = {
        {"add", Opcode::kAdd},   {"sub", Opcode::kSub},   {"mul", Opcode::kMul},
        {"udiv", Opcode::kUDiv}, {"sdiv", Opcode::kSDiv}, {"urem", Opcode::kURem},
        {"srem", Opcode::kSRem}, {"and", Opcode::kAnd},   {"or", Opcode::kOr},
        {"xor", Opcode::kXor},   {"shl", Opcode::kShl},   {"lshr", Opcode::kLShr},
        {"ashr", Opcode::kAShr},
    };
    auto it = kMap.find(text);
    if (it == kMap.end()) {
      return false;
    }
    opcode = it->second;
    return true;
  }

  Lexer lexer_;
  DiagnosticEngine& diags_;
  Token tok_;
  // `pending_` placeholders may be referenced by instructions in `module_`,
  // so the module must be destroyed first (declared after -> destroyed
  // earlier) on error paths.
  std::map<std::string, std::unique_ptr<PhiInst>> pending_;
  Module* raw_module_ = nullptr;
  bool prescan_ = false;
  Function* fn_ = nullptr;
  BasicBlock* current_block_ = nullptr;
  std::map<std::string, Value*> values_;
  std::map<std::string, BasicBlock*> blocks_;
  std::vector<BasicBlock*> label_order_;
};

}  // namespace

std::unique_ptr<Module> ParseModule(const std::string& text, DiagnosticEngine& diags) {
  Parser prescan(text, diags, nullptr, /*prescan=*/true);
  std::unique_ptr<Module> module = prescan.RunPrescan();
  if (module == nullptr) {
    return nullptr;
  }
  Parser main_pass(text, diags, module.get(), /*prescan=*/false);
  if (!main_pass.RunMain()) {
    return nullptr;
  }
  return module;
}

std::unique_ptr<Module> ParseModuleOrDie(const std::string& text) {
  DiagnosticEngine diags;
  std::unique_ptr<Module> module = ParseModule(text, diags);
  if (module == nullptr) {
    std::fprintf(stderr, "IR parse failed:\n%s\n", diags.ToString().c_str());
    std::abort();
  }
  return module;
}

}  // namespace overify
