#include "src/ir/value.h"

#include "src/ir/instruction.h"

namespace overify {

void Value::AddUse(Instruction* user, unsigned operand_index) {
  uses_.push_back(Use{user, operand_index});
}

void Value::RemoveUse(Instruction* user, unsigned operand_index) {
  for (size_t i = 0; i < uses_.size(); ++i) {
    if (uses_[i].user == user && uses_[i].operand_index == operand_index) {
      uses_[i] = uses_.back();
      uses_.pop_back();
      return;
    }
  }
  OVERIFY_UNREACHABLE("RemoveUse: use not found");
}

void Value::ReplaceAllUsesWith(Value* replacement) {
  OVERIFY_ASSERT(replacement != this, "RAUW with self");
  // SetOperand mutates uses_, so drain from a copy.
  std::vector<Use> uses = uses_;
  for (const Use& use : uses) {
    use.user->SetOperand(use.operand_index, replacement);
  }
}

}  // namespace overify
