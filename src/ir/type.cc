#include "src/ir/type.h"

#include <algorithm>

#include "src/support/assert.h"
#include "src/support/string_utils.h"

namespace overify {

unsigned Type::bits() const {
  OVERIFY_ASSERT(IsInt(), "bits() on non-integer type");
  return bits_;
}

Type* Type::pointee() const {
  OVERIFY_ASSERT(IsPointer(), "pointee() on non-pointer type");
  return pointee_;
}

Type* Type::element() const {
  OVERIFY_ASSERT(IsArray(), "element() on non-array type");
  return pointee_;
}

uint64_t Type::array_count() const {
  OVERIFY_ASSERT(IsArray(), "array_count() on non-array type");
  return array_count_;
}

const std::vector<Type*>& Type::fields() const {
  OVERIFY_ASSERT(IsStruct(), "fields() on non-struct type");
  return contained_;
}

Type* Type::return_type() const {
  OVERIFY_ASSERT(IsFunction(), "return_type() on non-function type");
  return return_type_;
}

const std::vector<Type*>& Type::params() const {
  OVERIFY_ASSERT(IsFunction(), "params() on non-function type");
  return contained_;
}

uint64_t Type::SizeInBytes() const {
  switch (kind_) {
    case Kind::kInt:
      // i1 occupies one byte in memory, like a C bool.
      return bits_ <= 8 ? 1 : bits_ / 8;
    case Kind::kPointer:
      return 8;
    case Kind::kArray:
      return array_count_ * pointee_->SizeInBytes();
    case Kind::kStruct: {
      uint64_t size = 0;
      for (Type* field : contained_) {
        uint64_t align = field->AlignInBytes();
        size = (size + align - 1) / align * align;
        size += field->SizeInBytes();
      }
      uint64_t align = AlignInBytes();
      return (size + align - 1) / align * align;
    }
    case Kind::kVoid:
    case Kind::kFunction:
      OVERIFY_UNREACHABLE("SizeInBytes() on unsized type");
  }
  return 0;
}

uint64_t Type::AlignInBytes() const {
  switch (kind_) {
    case Kind::kInt:
      return bits_ <= 8 ? 1 : bits_ / 8;
    case Kind::kPointer:
      return 8;
    case Kind::kArray:
      return pointee_->AlignInBytes();
    case Kind::kStruct: {
      uint64_t align = 1;
      for (Type* field : contained_) {
        align = std::max(align, field->AlignInBytes());
      }
      return align;
    }
    case Kind::kVoid:
    case Kind::kFunction:
      OVERIFY_UNREACHABLE("AlignInBytes() on unsized type");
  }
  return 1;
}

uint64_t Type::FieldOffset(unsigned field_index) const {
  OVERIFY_ASSERT(IsStruct(), "FieldOffset() on non-struct type");
  OVERIFY_ASSERT(field_index < contained_.size(), "struct field index out of range");
  uint64_t offset = 0;
  for (unsigned i = 0; i <= field_index; ++i) {
    uint64_t align = contained_[i]->AlignInBytes();
    offset = (offset + align - 1) / align * align;
    if (i == field_index) {
      return offset;
    }
    offset += contained_[i]->SizeInBytes();
  }
  return offset;
}

std::string Type::ToString() const {
  switch (kind_) {
    case Kind::kVoid:
      return "void";
    case Kind::kInt:
      return StrFormat("i%u", bits_);
    case Kind::kPointer:
      return pointee_->ToString() + "*";
    case Kind::kArray:
      return StrFormat("[%llu x %s]", static_cast<unsigned long long>(array_count_),
                       pointee_->ToString().c_str());
    case Kind::kStruct: {
      std::string s = "{";
      for (size_t i = 0; i < contained_.size(); ++i) {
        if (i != 0) {
          s += ", ";
        }
        s += contained_[i]->ToString();
      }
      return s + "}";
    }
    case Kind::kFunction: {
      std::string s = return_type_->ToString() + " (";
      for (size_t i = 0; i < contained_.size(); ++i) {
        if (i != 0) {
          s += ", ";
        }
        s += contained_[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

}  // namespace overify
