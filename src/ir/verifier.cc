#include "src/ir/verifier.h"

#include <cstdio>
#include <set>

#include "src/ir/cfg.h"
#include "src/ir/dominators.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

class FunctionVerifier {
 public:
  explicit FunctionVerifier(Function& fn) : fn_(fn) {}

  std::vector<std::string> Run() {
    if (fn_.IsDeclaration()) {
      return {};
    }
    CheckBlocks();
    CheckPhis();
    CheckOperandScopes();
    if (errors_.empty()) {
      // Dominance checks require structurally sound IR.
      CheckDominance();
    }
    return std::move(errors_);
  }

 private:
  void Error(std::string message) {
    errors_.push_back(StrFormat("%s: %s", fn_.name().c_str(), message.c_str()));
  }

  static std::string Describe(const Instruction* inst) {
    return StrFormat("'%s'%s", OpcodeName(inst->opcode()),
                     inst->HasName() ? (" %" + inst->name()).c_str() : "");
  }

  void CheckBlocks() {
    for (BasicBlock& block : fn_) {
      if (block.empty()) {
        Error(StrFormat("block '%s' is empty", block.name().c_str()));
        continue;
      }
      size_t index = 0;
      bool seen_non_phi = false;
      for (auto& inst : block) {
        bool is_last = (index == block.size() - 1);
        if (inst->IsTerminator() && !is_last) {
          Error(StrFormat("block '%s' has a terminator before its end", block.name().c_str()));
        }
        if (is_last && !inst->IsTerminator()) {
          Error(StrFormat("block '%s' does not end with a terminator", block.name().c_str()));
        }
        if (inst->opcode() == Opcode::kPhi) {
          if (seen_non_phi) {
            Error(StrFormat("phi after non-phi in block '%s'", block.name().c_str()));
          }
        } else {
          seen_non_phi = true;
        }
        if (inst->parent() != &block) {
          Error(StrFormat("instruction %s has wrong parent link", Describe(inst.get()).c_str()));
        }
        CheckInstructionTypes(inst.get());
        ++index;
      }
    }
    // Entry block must have no predecessors.
    if (!fn_.entry()->Predecessors().empty()) {
      Error("entry block has predecessors");
    }
    // Return types must match the signature.
    for (BasicBlock& block : fn_) {
      if (const auto* ret = DynCast<RetInst>(block.Terminator())) {
        if (fn_.return_type()->IsVoid()) {
          if (ret->HasValue()) {
            Error("ret with value in void function");
          }
        } else if (!ret->HasValue()) {
          Error("ret without value in non-void function");
        } else if (ret->value()->type() != fn_.return_type()) {
          Error("ret value type does not match function return type");
        }
      }
    }
  }

  void CheckInstructionTypes(Instruction* inst) {
    switch (inst->opcode()) {
      case Opcode::kCall: {
        auto* call = Cast<CallInst>(inst);
        const auto& params = call->callee()->function_type()->params();
        if (params.size() != call->NumArgs()) {
          Error(StrFormat("call to @%s has %zu args, expected %zu",
                          call->callee()->name().c_str(), call->NumArgs(), params.size()));
          return;
        }
        for (unsigned i = 0; i < call->NumArgs(); ++i) {
          if (call->Arg(i)->type() != params[i]) {
            Error(StrFormat("call to @%s arg %u type mismatch", call->callee()->name().c_str(),
                            i));
          }
        }
        return;
      }
      case Opcode::kLoad:
        if (!inst->Operand(0)->type()->IsPointer() ||
            inst->Operand(0)->type()->pointee() != inst->type()) {
          Error("load type mismatch");
        }
        if (!inst->type()->IsFirstClass()) {
          Error("load of non-first-class type");
        }
        return;
      case Opcode::kStore: {
        Value* ptr = inst->Operand(1);
        if (!ptr->type()->IsPointer() || ptr->type()->pointee() != inst->Operand(0)->type()) {
          Error("store type mismatch");
        }
        if (!inst->Operand(0)->type()->IsFirstClass()) {
          Error("store of non-first-class type");
        }
        return;
      }
      default:
        return;  // remaining shapes are enforced by constructors
    }
  }

  void CheckPhis() {
    auto preds = PredecessorMap(fn_);
    for (BasicBlock& block : fn_) {
      const auto& block_preds = preds[&block];
      for (PhiInst* phi : block.Phis()) {
        std::set<BasicBlock*> incoming;
        for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
          BasicBlock* in = phi->IncomingBlock(i);
          if (!incoming.insert(in).second) {
            Error(StrFormat("phi in '%s' has duplicate incoming block '%s'",
                            block.name().c_str(), in->name().c_str()));
          }
        }
        for (BasicBlock* pred : block_preds) {
          if (incoming.count(pred) == 0) {
            Error(StrFormat("phi in '%s' missing incoming for predecessor '%s'",
                            block.name().c_str(), pred->name().c_str()));
          }
        }
        for (BasicBlock* in : incoming) {
          bool is_pred = false;
          for (BasicBlock* pred : block_preds) {
            if (pred == in) {
              is_pred = true;
              break;
            }
          }
          if (!is_pred) {
            Error(StrFormat("phi in '%s' has incoming from non-predecessor '%s'",
                            block.name().c_str(), in->name().c_str()));
          }
        }
      }
    }
  }

  // Every operand that is an instruction/argument must belong to this
  // function; branch targets must too.
  void CheckOperandScopes() {
    std::set<const Instruction*> owned;
    std::set<const BasicBlock*> blocks;
    for (BasicBlock& block : fn_) {
      blocks.insert(&block);
      for (auto& inst : block) {
        owned.insert(inst.get());
      }
    }
    for (BasicBlock& block : fn_) {
      for (auto& inst : block) {
        for (Value* op : inst->operands()) {
          if (const auto* op_inst = DynCast<Instruction>(op)) {
            if (owned.count(op_inst) == 0) {
              Error(StrFormat("instruction %s uses a value from another function",
                              Describe(inst.get()).c_str()));
            }
          } else if (const auto* arg = DynCast<Argument>(op)) {
            bool mine = false;
            for (unsigned i = 0; i < fn_.NumArgs(); ++i) {
              if (fn_.Arg(i) == arg) {
                mine = true;
                break;
              }
            }
            if (!mine) {
              Error(StrFormat("instruction %s uses an argument of another function",
                              Describe(inst.get()).c_str()));
            }
          }
        }
        if (const auto* br = DynCast<BranchInst>(inst.get())) {
          if (blocks.count(br->true_dest()) == 0 ||
              (br->IsConditional() && blocks.count(br->false_dest()) == 0)) {
            Error("branch to block outside this function");
          }
        }
        if (const auto* phi = DynCast<PhiInst>(inst.get())) {
          for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
            if (blocks.count(phi->IncomingBlock(i)) == 0) {
              Error("phi incoming block outside this function");
            }
          }
        }
      }
    }
  }

  void CheckDominance() {
    DominatorTree dom(fn_);
    for (BasicBlock& block : fn_) {
      if (!dom.IsReachable(&block)) {
        continue;  // values in unreachable code are exempt
      }
      for (auto& inst : block) {
        for (unsigned i = 0; i < inst->NumOperands(); ++i) {
          const auto* def = DynCast<Instruction>(inst->Operand(i));
          if (def == nullptr || !dom.IsReachable(def->parent())) {
            continue;
          }
          if (!dom.ValueDominatesUse(def, inst.get(), i)) {
            Error(StrFormat("use of %s in %s does not satisfy dominance",
                            Describe(def).c_str(), Describe(inst.get()).c_str()));
          }
        }
      }
    }
  }

  Function& fn_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> VerifyFunction(Function& fn) { return FunctionVerifier(fn).Run(); }

std::vector<std::string> VerifyModule(Module& module) {
  std::vector<std::string> errors;
  for (const auto& fn : module.functions()) {
    auto fn_errors = VerifyFunction(*fn);
    errors.insert(errors.end(), fn_errors.begin(), fn_errors.end());
  }
  return errors;
}

void VerifyModuleOrDie(Module& module, const char* when) {
  std::vector<std::string> errors = VerifyModule(module);
  if (errors.empty()) {
    return;
  }
  std::fprintf(stderr, "IR verification failed %s:\n", when);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "  %s\n", error.c_str());
  }
  std::abort();
}

}  // namespace overify
