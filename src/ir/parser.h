// Parser for the textual VIR format emitted by src/ir/printer.h.
//
// Used pervasively in tests: pass behaviour is specified on IR snippets
// written by hand, and printer/parser round-trip is itself a tested
// invariant. Forward references are allowed only as phi incoming values
// (which is where they occur in printed SSA).
#pragma once

#include <memory>
#include <string>

#include "src/ir/module.h"
#include "src/support/diagnostics.h"

namespace overify {

// Parses a module; returns null and fills `diags` on error.
std::unique_ptr<Module> ParseModule(const std::string& text, DiagnosticEngine& diags);

// Convenience for tests: parses and aborts with the diagnostics on error.
std::unique_ptr<Module> ParseModuleOrDie(const std::string& text);

}  // namespace overify
