#include "src/ir/dominators.h"

#include <algorithm>
#include <set>

#include "src/ir/cfg.h"

namespace overify {

DominatorTree::DominatorTree(Function& fn) : fn_(fn) {
  rpo_ = ReversePostOrder(fn);
  for (size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index_[rpo_[i]] = i;
  }

  auto preds = PredecessorMap(fn);

  BasicBlock* entry = fn.entry();
  idom_[entry] = entry;

  bool changed = true;
  while (changed) {
    changed = false;
    for (BasicBlock* block : rpo_) {
      if (block == entry) {
        continue;
      }
      BasicBlock* new_idom = nullptr;
      for (BasicBlock* pred : preds[block]) {
        if (idom_.count(pred) == 0) {
          continue;  // not yet processed or unreachable
        }
        new_idom = new_idom == nullptr ? pred : Intersect(pred, new_idom);
      }
      if (new_idom != nullptr && idom_[block] != new_idom) {
        idom_[block] = new_idom;
        changed = true;
      }
    }
  }

  for (BasicBlock* block : rpo_) {
    if (block != entry) {
      children_[idom_[block]].push_back(block);
    }
  }
}

BasicBlock* DominatorTree::Intersect(BasicBlock* a, BasicBlock* b) const {
  while (a != b) {
    while (rpo_index_.at(a) > rpo_index_.at(b)) {
      a = idom_.at(a);
    }
    while (rpo_index_.at(b) > rpo_index_.at(a)) {
      b = idom_.at(b);
    }
  }
  return a;
}

BasicBlock* DominatorTree::ImmediateDominator(BasicBlock* block) const {
  auto it = idom_.find(block);
  if (it == idom_.end() || it->second == block) {
    return nullptr;
  }
  return it->second;
}

bool DominatorTree::Dominates(BasicBlock* a, BasicBlock* b) const {
  if (!IsReachable(a) || !IsReachable(b)) {
    return false;
  }
  while (true) {
    if (a == b) {
      return true;
    }
    BasicBlock* up = idom_.at(b);
    if (up == b) {
      return false;  // reached the entry
    }
    b = up;
  }
}

bool DominatorTree::StrictlyDominates(BasicBlock* a, BasicBlock* b) const {
  return a != b && Dominates(a, b);
}

bool DominatorTree::ValueDominatesUse(const Instruction* def, const Instruction* user,
                                      unsigned operand_index) const {
  BasicBlock* def_block = def->parent();
  if (const auto* phi = DynCast<PhiInst>(user)) {
    // A phi use must dominate the end of the corresponding incoming block.
    BasicBlock* incoming = phi->IncomingBlock(operand_index);
    return Dominates(def_block, incoming);
  }
  BasicBlock* use_block = user->parent();
  if (def_block != use_block) {
    return Dominates(def_block, use_block);
  }
  // Same block: def must come first.
  for (const auto& inst : *def_block) {
    if (inst.get() == def) {
      return true;
    }
    if (inst.get() == user) {
      return false;
    }
  }
  return false;
}

const std::vector<BasicBlock*>& DominatorTree::Children(BasicBlock* block) const {
  auto it = children_.find(block);
  return it == children_.end() ? empty_ : it->second;
}

PostDominatorTree::PostDominatorTree(Function& fn) : fn_(fn) {
  // Forward-reachable blocks, in forward RPO: the node universe. The reverse
  // graph adds a virtual exit (nullptr) whose successors are the exit blocks.
  std::vector<BasicBlock*> forward_rpo = ReversePostOrder(fn);
  std::set<BasicBlock*> reachable(forward_rpo.begin(), forward_rpo.end());
  auto preds = PredecessorMap(fn);

  std::vector<BasicBlock*> exits;
  for (BasicBlock* block : forward_rpo) {
    if (block->Successors().empty()) {
      exits.push_back(block);
    }
  }

  // Reverse-graph successors: CFG predecessors (restricted to reachable
  // blocks); the virtual exit's successors are the exit blocks.
  auto rev_succs = [&](BasicBlock* node) {
    std::vector<BasicBlock*> out;
    if (node == nullptr) {
      return exits;
    }
    for (BasicBlock* pred : preds[node]) {
      if (reachable.count(pred)) {
        out.push_back(pred);
      }
    }
    return out;
  };

  // Iterative post-order DFS over the reverse graph from the virtual exit,
  // then reversed: reverse-graph RPO with the virtual exit first.
  std::vector<BasicBlock*> post_order;
  std::set<BasicBlock*> visited_blocks;
  bool visited_ve = false;
  struct Frame {
    BasicBlock* node;
    std::vector<BasicBlock*> succs;
    size_t next = 0;
  };
  std::vector<Frame> stack;
  visited_ve = true;
  stack.push_back({nullptr, rev_succs(nullptr)});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next < frame.succs.size()) {
      BasicBlock* succ = frame.succs[frame.next++];
      if (visited_blocks.insert(succ).second) {
        stack.push_back({succ, rev_succs(succ)});
      }
      continue;
    }
    post_order.push_back(frame.node);
    stack.pop_back();
  }
  (void)visited_ve;
  rpo_.assign(post_order.rbegin(), post_order.rend());
  for (size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index_[rpo_[i]] = i;
  }

  // Cooper–Harvey–Kennedy on the reverse graph. Reverse-graph predecessors
  // of a block are its CFG successors, plus the virtual exit for exit blocks.
  pdom_[nullptr] = nullptr;
  bool changed = true;
  while (changed) {
    changed = false;
    for (BasicBlock* block : rpo_) {
      if (block == nullptr) {
        continue;
      }
      BasicBlock* new_pdom = nullptr;
      bool have = false;
      auto consider = [&](BasicBlock* rev_pred) {
        if (rpo_index_.count(rev_pred) == 0 || pdom_.count(rev_pred) == 0) {
          return;
        }
        if (!have) {
          new_pdom = rev_pred;
          have = true;
        } else {
          new_pdom = Intersect(rev_pred, new_pdom);
        }
      };
      if (block->Successors().empty()) {
        consider(nullptr);  // virtual exit
      }
      for (BasicBlock* succ : block->Successors()) {
        consider(succ);
      }
      if (have && (pdom_.count(block) == 0 || pdom_[block] != new_pdom)) {
        pdom_[block] = new_pdom;
        changed = true;
      }
    }
  }
}

BasicBlock* PostDominatorTree::Intersect(BasicBlock* a, BasicBlock* b) const {
  while (a != b) {
    while (rpo_index_.at(a) > rpo_index_.at(b)) {
      a = pdom_.at(a);
    }
    while (rpo_index_.at(b) > rpo_index_.at(a)) {
      b = pdom_.at(b);
    }
  }
  return a;
}

BasicBlock* PostDominatorTree::ImmediatePostDominator(BasicBlock* block) const {
  auto it = pdom_.find(block);
  return it == pdom_.end() ? nullptr : it->second;
}

bool PostDominatorTree::HasInfo(BasicBlock* block) const {
  return block != nullptr && pdom_.count(block) != 0;
}

bool PostDominatorTree::PostDominates(BasicBlock* a, BasicBlock* b) const {
  if (!HasInfo(a) || !HasInfo(b)) {
    return false;
  }
  // Walk b's post-dominator chain up to the virtual exit.
  for (BasicBlock* node = b; node != nullptr; node = pdom_.at(node)) {
    if (node == a) {
      return true;
    }
  }
  return false;
}

const std::map<BasicBlock*, std::vector<BasicBlock*>>&
PostDominatorTree::ControlDependencies() {
  if (control_deps_computed_) {
    return control_deps_;
  }
  control_deps_computed_ = true;
  // Forward RPO for deterministic iteration and output order.
  std::vector<BasicBlock*> forward_rpo = ReversePostOrder(fn_);
  for (BasicBlock* u : forward_rpo) {
    const auto* term = u->Terminator();
    const auto* br = DynCast<BranchInst>(term);
    if (br == nullptr || !br->IsConditional() || !HasInfo(u)) {
      continue;
    }
    BasicBlock* stop = pdom_.at(u);  // may be the virtual exit (nullptr)
    for (BasicBlock* succ : u->Successors()) {
      // Every node on the pdom path from succ up to (excluding) pdom(u) is
      // control-dependent on u. Includes u itself for loop back-edges.
      BasicBlock* runner = succ;
      while (runner != stop) {
        if (!HasInfo(runner)) {
          break;  // cannot reach exit; no post-dominance info to walk
        }
        auto& deps = control_deps_[runner];
        if (std::find(deps.begin(), deps.end(), u) == deps.end()) {
          deps.push_back(u);
        }
        runner = pdom_.at(runner);
      }
    }
  }
  return control_deps_;
}

const std::map<BasicBlock*, std::vector<BasicBlock*>>& DominatorTree::DominanceFrontiers() {
  if (frontiers_computed_) {
    return frontiers_;
  }
  frontiers_computed_ = true;
  auto preds = PredecessorMap(fn_);
  for (BasicBlock* block : rpo_) {
    frontiers_[block];
    const auto& block_preds = preds[block];
    if (block_preds.size() < 2) {
      continue;
    }
    for (BasicBlock* pred : block_preds) {
      if (!IsReachable(pred)) {
        continue;
      }
      BasicBlock* runner = pred;
      while (runner != ImmediateDominator(block) && runner != nullptr) {
        auto& frontier = frontiers_[runner];
        if (std::find(frontier.begin(), frontier.end(), block) == frontier.end()) {
          frontier.push_back(block);
        }
        runner = ImmediateDominator(runner);
      }
    }
  }
  return frontiers_;
}

}  // namespace overify
