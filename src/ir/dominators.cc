#include "src/ir/dominators.h"

#include <algorithm>

#include "src/ir/cfg.h"

namespace overify {

DominatorTree::DominatorTree(Function& fn) : fn_(fn) {
  rpo_ = ReversePostOrder(fn);
  for (size_t i = 0; i < rpo_.size(); ++i) {
    rpo_index_[rpo_[i]] = i;
  }

  auto preds = PredecessorMap(fn);

  BasicBlock* entry = fn.entry();
  idom_[entry] = entry;

  bool changed = true;
  while (changed) {
    changed = false;
    for (BasicBlock* block : rpo_) {
      if (block == entry) {
        continue;
      }
      BasicBlock* new_idom = nullptr;
      for (BasicBlock* pred : preds[block]) {
        if (idom_.count(pred) == 0) {
          continue;  // not yet processed or unreachable
        }
        new_idom = new_idom == nullptr ? pred : Intersect(pred, new_idom);
      }
      if (new_idom != nullptr && idom_[block] != new_idom) {
        idom_[block] = new_idom;
        changed = true;
      }
    }
  }

  for (BasicBlock* block : rpo_) {
    if (block != entry) {
      children_[idom_[block]].push_back(block);
    }
  }
}

BasicBlock* DominatorTree::Intersect(BasicBlock* a, BasicBlock* b) const {
  while (a != b) {
    while (rpo_index_.at(a) > rpo_index_.at(b)) {
      a = idom_.at(a);
    }
    while (rpo_index_.at(b) > rpo_index_.at(a)) {
      b = idom_.at(b);
    }
  }
  return a;
}

BasicBlock* DominatorTree::ImmediateDominator(BasicBlock* block) const {
  auto it = idom_.find(block);
  if (it == idom_.end() || it->second == block) {
    return nullptr;
  }
  return it->second;
}

bool DominatorTree::Dominates(BasicBlock* a, BasicBlock* b) const {
  if (!IsReachable(a) || !IsReachable(b)) {
    return false;
  }
  while (true) {
    if (a == b) {
      return true;
    }
    BasicBlock* up = idom_.at(b);
    if (up == b) {
      return false;  // reached the entry
    }
    b = up;
  }
}

bool DominatorTree::StrictlyDominates(BasicBlock* a, BasicBlock* b) const {
  return a != b && Dominates(a, b);
}

bool DominatorTree::ValueDominatesUse(const Instruction* def, const Instruction* user,
                                      unsigned operand_index) const {
  BasicBlock* def_block = def->parent();
  if (const auto* phi = DynCast<PhiInst>(user)) {
    // A phi use must dominate the end of the corresponding incoming block.
    BasicBlock* incoming = phi->IncomingBlock(operand_index);
    return Dominates(def_block, incoming);
  }
  BasicBlock* use_block = user->parent();
  if (def_block != use_block) {
    return Dominates(def_block, use_block);
  }
  // Same block: def must come first.
  for (const auto& inst : *def_block) {
    if (inst.get() == def) {
      return true;
    }
    if (inst.get() == user) {
      return false;
    }
  }
  return false;
}

const std::vector<BasicBlock*>& DominatorTree::Children(BasicBlock* block) const {
  auto it = children_.find(block);
  return it == children_.end() ? empty_ : it->second;
}

const std::map<BasicBlock*, std::vector<BasicBlock*>>& DominatorTree::DominanceFrontiers() {
  if (frontiers_computed_) {
    return frontiers_;
  }
  frontiers_computed_ = true;
  auto preds = PredecessorMap(fn_);
  for (BasicBlock* block : rpo_) {
    frontiers_[block];
    const auto& block_preds = preds[block];
    if (block_preds.size() < 2) {
      continue;
    }
    for (BasicBlock* pred : block_preds) {
      if (!IsReachable(pred)) {
        continue;
      }
      BasicBlock* runner = pred;
      while (runner != ImmediateDominator(block) && runner != nullptr) {
        auto& frontier = frontiers_[runner];
        if (std::find(frontier.begin(), frontier.end(), block) == frontier.end()) {
          frontier.push_back(block);
        }
        runner = ImmediateDominator(runner);
      }
    }
  }
  return frontiers_;
}

}  // namespace overify
