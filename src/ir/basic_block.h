// BasicBlock: a straight-line instruction sequence ending in one terminator.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/instruction.h"

namespace overify {

class Function;

class BasicBlock {
 public:
  using InstList = std::list<std::unique_ptr<Instruction>>;
  using iterator = InstList::iterator;
  using const_iterator = InstList::const_iterator;

  explicit BasicBlock(std::string name) : name_(std::move(name)) {}

  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  Function* parent() const { return parent_; }

  iterator begin() { return insts_.begin(); }
  iterator end() { return insts_.end(); }
  const_iterator begin() const { return insts_.begin(); }
  const_iterator end() const { return insts_.end(); }
  bool empty() const { return insts_.empty(); }
  size_t size() const { return insts_.size(); }

  Instruction* front() { return insts_.front().get(); }
  Instruction* back() { return insts_.back().get(); }
  const Instruction* back() const { return insts_.back().get(); }

  // The block's terminator, or null if the block is still under construction.
  Instruction* Terminator();
  const Instruction* Terminator() const;

  // First instruction that is not a phi (end() if the block is all phis).
  iterator FirstNonPhi();

  // Ownership-taking insertion. Returns the raw pointer for convenience.
  Instruction* Append(std::unique_ptr<Instruction> inst);
  Instruction* InsertBefore(iterator pos, std::unique_ptr<Instruction> inst);
  Instruction* InsertBefore(Instruction* pos, std::unique_ptr<Instruction> inst);

  // Unlinks `inst` and returns ownership; uses are untouched.
  std::unique_ptr<Instruction> Remove(Instruction* inst);
  // Unlinks and destroys `inst` (must be use-free).
  void Erase(Instruction* inst);

  // Successor blocks per the terminator (empty for ret/unreachable).
  std::vector<BasicBlock*> Successors() const;
  // Predecessors, computed by scanning the parent function.
  std::vector<BasicBlock*> Predecessors() const;

  // All phi instructions at the head of the block.
  std::vector<PhiInst*> Phis();

  // Drops the operand uses of every instruction in the block. Used before
  // destroying a block so intra-block value cycles do not block destruction.
  void DropAllReferences();

 private:
  friend class Function;

  std::string name_;
  Function* parent_ = nullptr;
  InstList insts_;
  std::list<std::unique_ptr<BasicBlock>>::iterator self_;
};

}  // namespace overify
