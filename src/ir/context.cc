#include "src/ir/context.h"

#include "src/support/assert.h"

namespace overify {

IRContext::IRContext() {
  auto make_int = [this](unsigned bits) {
    Type* t = MakeType();
    t->kind_ = Type::Kind::kInt;
    t->bits_ = bits;
    return t;
  };
  void_ty_ = MakeType();
  void_ty_->kind_ = Type::Kind::kVoid;
  i1_ = make_int(1);
  i8_ = make_int(8);
  i16_ = make_int(16);
  i32_ = make_int(32);
  i64_ = make_int(64);
}

Type* IRContext::MakeType() {
  types_.push_back(std::unique_ptr<Type>(new Type()));
  return types_.back().get();
}

Type* IRContext::IntTy(unsigned bits) {
  switch (bits) {
    case 1:
      return i1_;
    case 8:
      return i8_;
    case 16:
      return i16_;
    case 32:
      return i32_;
    case 64:
      return i64_;
    default:
      OVERIFY_UNREACHABLE("unsupported integer width");
  }
}

Type* IRContext::PtrTy(Type* pointee) {
  auto it = pointer_types_.find(pointee);
  if (it != pointer_types_.end()) {
    return it->second;
  }
  Type* t = MakeType();
  t->kind_ = Type::Kind::kPointer;
  t->pointee_ = pointee;
  pointer_types_[pointee] = t;
  return t;
}

Type* IRContext::ArrayTy(Type* element, uint64_t count) {
  auto key = std::make_pair(element, count);
  auto it = array_types_.find(key);
  if (it != array_types_.end()) {
    return it->second;
  }
  Type* t = MakeType();
  t->kind_ = Type::Kind::kArray;
  t->pointee_ = element;
  t->array_count_ = count;
  array_types_[key] = t;
  return t;
}

Type* IRContext::StructTy(std::vector<Type*> fields) {
  auto it = struct_types_.find(fields);
  if (it != struct_types_.end()) {
    return it->second;
  }
  Type* t = MakeType();
  t->kind_ = Type::Kind::kStruct;
  t->contained_ = fields;
  struct_types_[std::move(fields)] = t;
  return t;
}

Type* IRContext::FnTy(Type* return_type, std::vector<Type*> params) {
  auto key = std::make_pair(return_type, params);
  auto it = function_types_.find(key);
  if (it != function_types_.end()) {
    return it->second;
  }
  Type* t = MakeType();
  t->kind_ = Type::Kind::kFunction;
  t->return_type_ = return_type;
  t->contained_ = std::move(params);
  function_types_[std::move(key)] = t;
  return t;
}

ConstantInt* IRContext::GetInt(Type* type, uint64_t value) {
  OVERIFY_ASSERT(type->IsInt(), "GetInt requires an integer type");
  value = TruncateToWidth(value, type->bits());
  auto key = std::make_pair(type, value);
  auto it = int_constants_.find(key);
  if (it != int_constants_.end()) {
    return it->second.get();
  }
  auto owned = std::unique_ptr<ConstantInt>(new ConstantInt(type, value));
  ConstantInt* result = owned.get();
  int_constants_[key] = std::move(owned);
  return result;
}

NullValue* IRContext::GetNull(Type* pointer_type) {
  OVERIFY_ASSERT(pointer_type->IsPointer(), "GetNull requires a pointer type");
  auto it = null_constants_.find(pointer_type);
  if (it != null_constants_.end()) {
    return it->second.get();
  }
  auto owned = std::unique_ptr<NullValue>(new NullValue(pointer_type));
  NullValue* result = owned.get();
  null_constants_[pointer_type] = std::move(owned);
  return result;
}

UndefValue* IRContext::GetUndef(Type* type) {
  auto it = undef_constants_.find(type);
  if (it != undef_constants_.end()) {
    return it->second.get();
  }
  auto owned = std::unique_ptr<UndefValue>(new UndefValue(type));
  UndefValue* result = owned.get();
  undef_constants_[type] = std::move(owned);
  return result;
}

}  // namespace overify
