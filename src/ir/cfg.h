// Control-flow graph utilities over Function blocks.
#pragma once

#include <map>
#include <vector>

#include "src/ir/function.h"

namespace overify {

// Blocks in reverse postorder of the CFG from the entry; unreachable blocks
// are omitted.
std::vector<BasicBlock*> ReversePostOrder(Function& fn);

// Predecessor lists for every block, computed in one function scan.
std::map<BasicBlock*, std::vector<BasicBlock*>> PredecessorMap(Function& fn);

// Removes blocks unreachable from the entry, fixing up phis in survivors.
// Returns the number of blocks removed.
size_t RemoveUnreachableBlocks(Function& fn);

// Replaces every use of `from` as a phi incoming block with `to` in `block`'s
// phi nodes.
void RedirectPhiIncoming(BasicBlock* block, BasicBlock* from, BasicBlock* to);

// Splits the edge pred -> succ by inserting a fresh block containing a single
// unconditional branch to succ. Phi incoming entries in succ are redirected.
// Returns the new block.
BasicBlock* SplitEdge(BasicBlock* pred, BasicBlock* succ);

}  // namespace overify
