#include "src/ir/basic_block.h"

#include "src/ir/function.h"

namespace overify {

Instruction* BasicBlock::Terminator() {
  if (insts_.empty() || !insts_.back()->IsTerminator()) {
    return nullptr;
  }
  return insts_.back().get();
}

const Instruction* BasicBlock::Terminator() const {
  if (insts_.empty() || !insts_.back()->IsTerminator()) {
    return nullptr;
  }
  return insts_.back().get();
}

BasicBlock::iterator BasicBlock::FirstNonPhi() {
  iterator it = insts_.begin();
  while (it != insts_.end() && (*it)->opcode() == Opcode::kPhi) {
    ++it;
  }
  return it;
}

Instruction* BasicBlock::Append(std::unique_ptr<Instruction> inst) {
  return InsertBefore(insts_.end(), std::move(inst));
}

Instruction* BasicBlock::InsertBefore(iterator pos, std::unique_ptr<Instruction> inst) {
  OVERIFY_ASSERT(inst != nullptr, "inserting null instruction");
  OVERIFY_ASSERT(inst->parent_ == nullptr, "instruction already has a parent");
  Instruction* raw = inst.get();
  auto it = insts_.insert(pos, std::move(inst));
  raw->parent_ = this;
  raw->self_ = it;
  return raw;
}

Instruction* BasicBlock::InsertBefore(Instruction* pos, std::unique_ptr<Instruction> inst) {
  OVERIFY_ASSERT(pos->parent_ == this, "insertion point not in this block");
  return InsertBefore(pos->self_, std::move(inst));
}

std::unique_ptr<Instruction> BasicBlock::Remove(Instruction* inst) {
  OVERIFY_ASSERT(inst->parent_ == this, "instruction not in this block");
  std::unique_ptr<Instruction> owned = std::move(*inst->self_);
  insts_.erase(inst->self_);
  inst->parent_ = nullptr;
  return owned;
}

void BasicBlock::Erase(Instruction* inst) {
  OVERIFY_ASSERT(!inst->HasUses(), "erasing instruction with uses");
  Remove(inst);  // destructor drops operand uses when `owned` goes out of scope
}

std::vector<BasicBlock*> BasicBlock::Successors() const {
  std::vector<BasicBlock*> result;
  const Instruction* term = Terminator();
  if (const auto* br = DynCast<BranchInst>(term)) {
    result.push_back(br->true_dest());
    if (br->IsConditional() && br->false_dest() != br->true_dest()) {
      result.push_back(br->false_dest());
    }
  }
  return result;
}

std::vector<BasicBlock*> BasicBlock::Predecessors() const {
  std::vector<BasicBlock*> result;
  OVERIFY_ASSERT(parent_ != nullptr, "block has no parent function");
  for (BasicBlock& bb : *parent_) {
    const Instruction* term = bb.Terminator();
    if (const auto* br = DynCast<BranchInst>(term)) {
      if (br->true_dest() == this || (br->IsConditional() && br->false_dest() == this)) {
        result.push_back(&bb);
      }
    }
  }
  return result;
}

void BasicBlock::DropAllReferences() {
  for (auto& inst : insts_) {
    inst->DropAllOperands();
  }
}

std::vector<PhiInst*> BasicBlock::Phis() {
  std::vector<PhiInst*> result;
  for (auto& inst : insts_) {
    if (auto* phi = DynCast<PhiInst>(inst.get())) {
      result.push_back(phi);
    } else {
      break;
    }
  }
  return result;
}

}  // namespace overify
