// Function: arguments plus an ordered list of basic blocks (entry first).
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/basic_block.h"
#include "src/ir/type.h"
#include "src/ir/value.h"

namespace overify {

class Module;

// Inlining preference recorded by the frontend or by passes.
enum class InlineHint {
  kDefault,
  kAlways,
  kNever,
};

class Function : public Value {
 public:
  // Iteration over blocks yields references, entry block first.
  class BlockIterator {
   public:
    using Inner = std::list<std::unique_ptr<BasicBlock>>::iterator;
    explicit BlockIterator(Inner it) : it_(it) {}
    BasicBlock& operator*() const { return **it_; }
    BasicBlock* operator->() const { return it_->get(); }
    BlockIterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const BlockIterator& o) const { return it_ == o.it_; }
    bool operator!=(const BlockIterator& o) const { return it_ != o.it_; }
    Inner inner() const { return it_; }

   private:
    Inner it_;
  };

  // Drops all inter-instruction references first so destruction order of
  // blocks/instructions does not matter.
  ~Function() override;

  Type* function_type() const { return function_type_; }
  Type* return_type() const { return function_type_->return_type(); }

  Module* parent() const { return parent_; }

  size_t NumArgs() const { return args_.size(); }
  Argument* Arg(unsigned i) const {
    OVERIFY_ASSERT(i < args_.size(), "argument index out of range");
    return args_[i].get();
  }

  bool IsDeclaration() const { return blocks_.empty(); }

  InlineHint inline_hint() const { return inline_hint_; }
  void set_inline_hint(InlineHint hint) { inline_hint_ = hint; }

  // True for functions that came from the linked C library; pass pipelines
  // may treat them differently (e.g. always-inline under -OVERIFY).
  bool is_libc() const { return is_libc_; }
  void set_is_libc(bool value) { is_libc_ = value; }

  BasicBlock* entry() {
    OVERIFY_ASSERT(!blocks_.empty(), "function has no blocks");
    return blocks_.front().get();
  }

  BlockIterator begin() { return BlockIterator(blocks_.begin()); }
  BlockIterator end() { return BlockIterator(blocks_.end()); }
  size_t NumBlocks() const { return blocks_.size(); }

  // Creates and appends a new block.
  BasicBlock* CreateBlock(std::string name);
  // Inserts an existing block after `after` (used by cloning passes to keep
  // related blocks adjacent).
  BasicBlock* InsertBlockAfter(BasicBlock* after, std::unique_ptr<BasicBlock> block);
  // Unlinks and destroys `block`. All its instructions must be use-free after
  // the block's own internal uses are dropped (callers run DropAllReferences
  // style cleanup first; see EraseBlock implementation).
  void EraseBlock(BasicBlock* block);
  // Moves `block` to the end of the block list (layout only).
  void MoveBlockToEnd(BasicBlock* block);

  std::vector<BasicBlock*> BlockList();

  // Total instruction count across all blocks.
  size_t InstructionCount() const;

  // Assigns a dense local-slot index to every argument and instruction
  // (arguments first, then instructions in block order) and returns the
  // slot count. The execution engines call this once per function per run
  // to size their flat frame-local vectors; re-running after the function
  // changed simply renumbers.
  uint32_t AssignLocalSlots();

  static bool ClassOf(const Value* v) { return v->value_kind() == ValueKind::kFunction; }

 private:
  friend class Module;
  Function(Type* pointer_to_fn, Type* function_type, std::string name, Module* parent);

  Type* function_type_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::list<std::unique_ptr<BasicBlock>> blocks_;
  InlineHint inline_hint_ = InlineHint::kDefault;
  bool is_libc_ = false;
};

// Per-run memo over Function::AssignLocalSlots, shared by the execution
// engines. Functions may be mutated by passes between runs, so each engine
// run starts from a Clear()ed cache and renumbers lazily on first use.
class LocalSlotCache {
 public:
  uint32_t Count(Function* fn) {
    auto it = counts_.find(fn);
    if (it != counts_.end()) {
      return it->second;
    }
    uint32_t count = fn->AssignLocalSlots();
    counts_[fn] = count;
    return count;
  }

  void Clear() { counts_.clear(); }

 private:
  std::unordered_map<Function*, uint32_t> counts_;
};

}  // namespace overify
