#include "src/ir/constant.h"

namespace overify {

uint64_t TruncateToWidth(uint64_t value, unsigned bits) {
  OVERIFY_ASSERT(bits >= 1 && bits <= 64, "invalid integer width");
  if (bits == 64) {
    return value;
  }
  return value & ((uint64_t{1} << bits) - 1);
}

int64_t SignExtend(uint64_t value, unsigned bits) {
  OVERIFY_ASSERT(bits >= 1 && bits <= 64, "invalid integer width");
  if (bits == 64) {
    return static_cast<int64_t>(value);
  }
  uint64_t sign_bit = uint64_t{1} << (bits - 1);
  uint64_t truncated = TruncateToWidth(value, bits);
  if ((truncated & sign_bit) != 0) {
    return static_cast<int64_t>(truncated | ~((uint64_t{1} << bits) - 1));
  }
  return static_cast<int64_t>(truncated);
}

int64_t ConstantInt::SignedValue() const { return SignExtend(value_, type()->bits()); }

bool ConstantInt::IsAllOnes() const {
  return value_ == TruncateToWidth(~uint64_t{0}, type()->bits());
}

}  // namespace overify
