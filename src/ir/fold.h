// Constant evaluation of VIR operations on raw bit patterns.
//
// One shared kernel keeps the optimizer, the concrete interpreter and the
// symbolic-execution expression builder bit-for-bit consistent — a mismatch
// between them would invalidate the paper's bug-preservation claim.
#pragma once

#include <cstdint>
#include <optional>

#include "src/ir/instruction.h"

namespace overify {

// Result of `opcode` on `bits`-wide operands, or nullopt when the operation
// traps (division/remainder by zero) or shifts by >= width.
std::optional<uint64_t> FoldBinary(Opcode opcode, unsigned bits, uint64_t lhs, uint64_t rhs);

bool FoldICmp(ICmpPredicate pred, unsigned bits, uint64_t lhs, uint64_t rhs);

// zext/sext/trunc of a `src_bits`-wide pattern to `dst_bits`.
uint64_t FoldCast(Opcode opcode, unsigned src_bits, unsigned dst_bits, uint64_t value);

}  // namespace overify
