#include "src/ir/instruction.h"

#include "src/ir/basic_block.h"
#include "src/ir/context.h"
#include "src/ir/function.h"

namespace overify {

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAlloca:
      return "alloca";
    case Opcode::kLoad:
      return "load";
    case Opcode::kStore:
      return "store";
    case Opcode::kGep:
      return "gep";
    case Opcode::kAdd:
      return "add";
    case Opcode::kSub:
      return "sub";
    case Opcode::kMul:
      return "mul";
    case Opcode::kUDiv:
      return "udiv";
    case Opcode::kSDiv:
      return "sdiv";
    case Opcode::kURem:
      return "urem";
    case Opcode::kSRem:
      return "srem";
    case Opcode::kAnd:
      return "and";
    case Opcode::kOr:
      return "or";
    case Opcode::kXor:
      return "xor";
    case Opcode::kShl:
      return "shl";
    case Opcode::kLShr:
      return "lshr";
    case Opcode::kAShr:
      return "ashr";
    case Opcode::kICmp:
      return "icmp";
    case Opcode::kSelect:
      return "select";
    case Opcode::kZExt:
      return "zext";
    case Opcode::kSExt:
      return "sext";
    case Opcode::kTrunc:
      return "trunc";
    case Opcode::kCall:
      return "call";
    case Opcode::kPhi:
      return "phi";
    case Opcode::kCheck:
      return "check";
    case Opcode::kBr:
      return "br";
    case Opcode::kRet:
      return "ret";
    case Opcode::kUnreachable:
      return "unreachable";
  }
  return "?";
}

const char* PredicateName(ICmpPredicate pred) {
  switch (pred) {
    case ICmpPredicate::kEq:
      return "eq";
    case ICmpPredicate::kNe:
      return "ne";
    case ICmpPredicate::kULT:
      return "ult";
    case ICmpPredicate::kULE:
      return "ule";
    case ICmpPredicate::kUGT:
      return "ugt";
    case ICmpPredicate::kUGE:
      return "uge";
    case ICmpPredicate::kSLT:
      return "slt";
    case ICmpPredicate::kSLE:
      return "sle";
    case ICmpPredicate::kSGT:
      return "sgt";
    case ICmpPredicate::kSGE:
      return "sge";
  }
  return "?";
}

ICmpPredicate SwapPredicate(ICmpPredicate pred) {
  switch (pred) {
    case ICmpPredicate::kEq:
    case ICmpPredicate::kNe:
      return pred;
    case ICmpPredicate::kULT:
      return ICmpPredicate::kUGT;
    case ICmpPredicate::kULE:
      return ICmpPredicate::kUGE;
    case ICmpPredicate::kUGT:
      return ICmpPredicate::kULT;
    case ICmpPredicate::kUGE:
      return ICmpPredicate::kULE;
    case ICmpPredicate::kSLT:
      return ICmpPredicate::kSGT;
    case ICmpPredicate::kSLE:
      return ICmpPredicate::kSGE;
    case ICmpPredicate::kSGT:
      return ICmpPredicate::kSLT;
    case ICmpPredicate::kSGE:
      return ICmpPredicate::kSLE;
  }
  OVERIFY_UNREACHABLE("bad predicate");
}

ICmpPredicate InvertPredicate(ICmpPredicate pred) {
  switch (pred) {
    case ICmpPredicate::kEq:
      return ICmpPredicate::kNe;
    case ICmpPredicate::kNe:
      return ICmpPredicate::kEq;
    case ICmpPredicate::kULT:
      return ICmpPredicate::kUGE;
    case ICmpPredicate::kULE:
      return ICmpPredicate::kUGT;
    case ICmpPredicate::kUGT:
      return ICmpPredicate::kULE;
    case ICmpPredicate::kUGE:
      return ICmpPredicate::kULT;
    case ICmpPredicate::kSLT:
      return ICmpPredicate::kSGE;
    case ICmpPredicate::kSLE:
      return ICmpPredicate::kSGT;
    case ICmpPredicate::kSGT:
      return ICmpPredicate::kSLE;
    case ICmpPredicate::kSGE:
      return ICmpPredicate::kSLT;
  }
  OVERIFY_UNREACHABLE("bad predicate");
}

bool IsSignedPredicate(ICmpPredicate pred) {
  return pred == ICmpPredicate::kSLT || pred == ICmpPredicate::kSLE ||
         pred == ICmpPredicate::kSGT || pred == ICmpPredicate::kSGE;
}

const char* CheckKindName(CheckKind kind) {
  switch (kind) {
    case CheckKind::kAssert:
      return "assert";
    case CheckKind::kBounds:
      return "bounds";
    case CheckKind::kDivByZero:
      return "div_by_zero";
    case CheckKind::kOverflow:
      return "overflow";
    case CheckKind::kNullDeref:
      return "null_deref";
    case CheckKind::kShift:
      return "shift";
  }
  return "?";
}

Instruction::Instruction(Opcode opcode, Type* type, std::vector<Value*> operands)
    : Value(ValueKind::kInstruction, type), opcode_(opcode), operands_(std::move(operands)) {
  for (unsigned i = 0; i < operands_.size(); ++i) {
    OVERIFY_ASSERT(operands_[i] != nullptr, "null operand");
    operands_[i]->AddUse(this, i);
  }
}

Instruction::~Instruction() { DropAllOperands(); }

void Instruction::DropAllOperands() {
  for (unsigned i = 0; i < operands_.size(); ++i) {
    if (operands_[i] != nullptr) {
      operands_[i]->RemoveUse(this, i);
      operands_[i] = nullptr;
    }
  }
}

void Instruction::SetOperand(unsigned i, Value* value) {
  OVERIFY_ASSERT(i < operands_.size(), "operand index out of range");
  OVERIFY_ASSERT(value != nullptr, "null operand");
  if (operands_[i] == value) {
    return;
  }
  if (operands_[i] != nullptr) {
    operands_[i]->RemoveUse(this, i);
  }
  operands_[i] = value;
  value->AddUse(this, i);
}

Function* Instruction::ParentFunction() const {
  return parent_ == nullptr ? nullptr : parent_->parent();
}

bool Instruction::HasSideEffects() const {
  switch (opcode_) {
    case Opcode::kStore:
    case Opcode::kCall:  // conservatively: callees may write memory or not return
    case Opcode::kCheck:
    case Opcode::kBr:
    case Opcode::kRet:
    case Opcode::kUnreachable:
      return true;
    case Opcode::kAlloca:
      // Allocas carry storage identity; dropping one with uses is handled via
      // use-lists, but an unused alloca is genuinely dead.
      return false;
    default:
      return false;
  }
}

bool Instruction::IsSafeToSpeculate() const {
  switch (opcode_) {
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kSRem: {
      // Division is speculatable only when the divisor is a non-zero constant.
      const auto* rhs = DynCast<ConstantInt>(Operand(1));
      return rhs != nullptr && !rhs->IsZero();
    }
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
    case Opcode::kICmp:
    case Opcode::kSelect:
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
    case Opcode::kGep:
      return true;
    default:
      return false;
  }
}

bool Instruction::IsSpeculatableOrLoad() const {
  return IsSafeToSpeculate() || opcode_ == Opcode::kLoad;
}

void Instruction::EraseFromParent() {
  OVERIFY_ASSERT(parent_ != nullptr, "instruction has no parent");
  OVERIFY_ASSERT(!HasUses(), "erasing an instruction that still has uses");
  parent_->Erase(this);
}

std::unique_ptr<Instruction> Instruction::RemoveFromParent() {
  OVERIFY_ASSERT(parent_ != nullptr, "instruction has no parent");
  return parent_->Remove(this);
}

AllocaInst::AllocaInst(IRContext& ctx, Type* allocated_type)
    : Instruction(Opcode::kAlloca, ctx.PtrTy(allocated_type), {}),
      allocated_type_(allocated_type) {}

LoadInst::LoadInst(Value* pointer)
    : Instruction(Opcode::kLoad, pointer->type()->pointee(), {pointer}) {
  OVERIFY_ASSERT(pointer->type()->IsPointer(), "load requires pointer operand");
}

StoreInst::StoreInst(IRContext& ctx, Value* value, Value* pointer)
    : Instruction(Opcode::kStore, ctx.VoidTy(), {value, pointer}) {
  OVERIFY_ASSERT(pointer->type()->IsPointer(), "store requires pointer operand");
  OVERIFY_ASSERT(pointer->type()->pointee() == value->type(), "store type mismatch");
}

GepInst::GepInst(IRContext& ctx, Type* source_type, Value* base, std::vector<Value*> indices)
    : Instruction(Opcode::kGep, ctx.PtrTy(ResolveType(source_type, indices)),
                  [&] {
                    std::vector<Value*> ops;
                    ops.reserve(indices.size() + 1);
                    ops.push_back(base);
                    ops.insert(ops.end(), indices.begin(), indices.end());
                    return ops;
                  }()),
      source_type_(source_type) {
  OVERIFY_ASSERT(base->type()->IsPointer(), "gep requires pointer base");
}

Type* GepInst::ResolveType(Type* source_type, const std::vector<Value*>& indices) {
  OVERIFY_ASSERT(!indices.empty(), "gep requires at least one index");
  Type* current = source_type;
  // The first index steps over whole source_type objects.
  for (size_t i = 1; i < indices.size(); ++i) {
    if (current->IsArray()) {
      current = current->element();
    } else if (current->IsStruct()) {
      const auto* index = DynCast<ConstantInt>(indices[i]);
      OVERIFY_ASSERT(index != nullptr, "struct gep index must be constant");
      OVERIFY_ASSERT(index->value() < current->fields().size(), "struct gep index out of range");
      current = current->fields()[static_cast<unsigned>(index->value())];
    } else {
      OVERIFY_UNREACHABLE("gep index into non-aggregate type");
    }
  }
  return current;
}

BinaryInst::BinaryInst(Opcode opcode, Value* lhs, Value* rhs)
    : Instruction(opcode, lhs->type(), {lhs, rhs}) {
  OVERIFY_ASSERT(lhs->type() == rhs->type(), "binary operand type mismatch");
  OVERIFY_ASSERT(lhs->type()->IsInt(), "binary op requires integer operands");
}

ICmpInst::ICmpInst(IRContext& ctx, ICmpPredicate pred, Value* lhs, Value* rhs)
    : Instruction(Opcode::kICmp, ctx.I1(), {lhs, rhs}), predicate_(pred) {
  OVERIFY_ASSERT(lhs->type() == rhs->type(), "icmp operand type mismatch");
}

SelectInst::SelectInst(Value* cond, Value* true_value, Value* false_value)
    : Instruction(Opcode::kSelect, true_value->type(), {cond, true_value, false_value}) {
  OVERIFY_ASSERT(cond->type()->IsBool(), "select condition must be i1");
  OVERIFY_ASSERT(true_value->type() == false_value->type(), "select arm type mismatch");
}

CastInst::CastInst(Opcode opcode, Value* value, Type* dest_type)
    : Instruction(opcode, dest_type, {value}) {
  OVERIFY_ASSERT(value->type()->IsInt() && dest_type->IsInt(), "cast requires integer types");
  if (opcode == Opcode::kTrunc) {
    OVERIFY_ASSERT(dest_type->bits() < value->type()->bits(), "trunc must narrow");
  } else {
    OVERIFY_ASSERT(dest_type->bits() > value->type()->bits(), "ext must widen");
  }
}

CallInst::CallInst(Function* callee, std::vector<Value*> args)
    : Instruction(Opcode::kCall, callee->return_type(), std::move(args)), callee_(callee) {}

PhiInst::PhiInst(Type* type) : Instruction(Opcode::kPhi, type, {}) {}

void PhiInst::AddIncoming(Value* value, BasicBlock* block) {
  OVERIFY_ASSERT(value->type() == type(), "phi incoming type mismatch");
  unsigned index = static_cast<unsigned>(NumOperands());
  // Grow the operand list manually to keep use bookkeeping consistent.
  operands_ref().push_back(nullptr);
  incoming_blocks_.push_back(block);
  SetOperand(index, value);
}

Value* PhiInst::IncomingValueFor(const BasicBlock* block) const {
  int index = IncomingIndexFor(block);
  OVERIFY_ASSERT(index >= 0, "phi has no incoming entry for block");
  return IncomingValue(static_cast<unsigned>(index));
}

int PhiInst::IncomingIndexFor(const BasicBlock* block) const {
  for (size_t i = 0; i < incoming_blocks_.size(); ++i) {
    if (incoming_blocks_[i] == block) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void PhiInst::RemoveIncoming(unsigned i) {
  OVERIFY_ASSERT(i < NumIncoming(), "phi incoming index out of range");
  // Shift operands down, maintaining use indices.
  for (unsigned j = i; j + 1 < NumIncoming(); ++j) {
    SetOperand(j, Operand(j + 1));
    incoming_blocks_[j] = incoming_blocks_[j + 1];
  }
  unsigned last = static_cast<unsigned>(NumIncoming()) - 1;
  UnregisterOperandUse(last);
  operands_ref().pop_back();
  incoming_blocks_.pop_back();
}

void PhiInst::ReplaceIncomingBlock(BasicBlock* from, BasicBlock* to) {
  for (auto& block : incoming_blocks_) {
    if (block == from) {
      block = to;
    }
  }
}

CheckInst::CheckInst(IRContext& ctx, Value* cond, CheckKind check_kind, std::string message)
    : Instruction(Opcode::kCheck, ctx.VoidTy(), {cond}),
      check_kind_(check_kind),
      message_(std::move(message)) {
  OVERIFY_ASSERT(cond->type()->IsBool(), "check condition must be i1");
}

BranchInst::BranchInst(IRContext& ctx, BasicBlock* dest)
    : Instruction(Opcode::kBr, ctx.VoidTy(), {}), true_dest_(dest), false_dest_(nullptr) {
  OVERIFY_ASSERT(dest != nullptr, "branch requires destination");
}

BranchInst::BranchInst(IRContext& ctx, Value* cond, BasicBlock* true_dest,
                       BasicBlock* false_dest)
    : Instruction(Opcode::kBr, ctx.VoidTy(), {cond}),
      true_dest_(true_dest),
      false_dest_(false_dest) {
  OVERIFY_ASSERT(cond->type()->IsBool(), "branch condition must be i1");
  OVERIFY_ASSERT(true_dest != nullptr && false_dest != nullptr, "branch requires destinations");
}

void BranchInst::SetDest(unsigned i, BasicBlock* dest) {
  OVERIFY_ASSERT(dest != nullptr, "null branch destination");
  if (i == 0) {
    true_dest_ = dest;
  } else {
    OVERIFY_ASSERT(i == 1 && IsConditional(), "bad branch destination index");
    false_dest_ = dest;
  }
}

void BranchInst::MakeUnconditional(BasicBlock* dest) {
  OVERIFY_ASSERT(IsConditional(), "branch is already unconditional");
  UnregisterOperandUse(0);
  operands_ref().clear();
  true_dest_ = dest;
  false_dest_ = nullptr;
}

RetInst::RetInst(IRContext& ctx) : Instruction(Opcode::kRet, ctx.VoidTy(), {}) {}

RetInst::RetInst(IRContext& ctx, Value* value)
    : Instruction(Opcode::kRet, ctx.VoidTy(), {value}) {}

UnreachableInst::UnreachableInst(IRContext& ctx)
    : Instruction(Opcode::kUnreachable, ctx.VoidTy(), {}) {}

std::unique_ptr<Instruction> Instruction::Clone(IRContext& ctx) const {
  switch (opcode_) {
    case Opcode::kAlloca:
      return std::make_unique<AllocaInst>(ctx, Cast<AllocaInst>(this)->allocated_type());
    case Opcode::kLoad:
      return std::make_unique<LoadInst>(Operand(0));
    case Opcode::kStore:
      return std::make_unique<StoreInst>(ctx, Operand(0), Operand(1));
    case Opcode::kGep: {
      const auto* gep = Cast<GepInst>(this);
      std::vector<Value*> indices;
      for (unsigned i = 0; i < gep->NumIndices(); ++i) {
        indices.push_back(gep->Index(i));
      }
      return std::make_unique<GepInst>(ctx, gep->source_type(), gep->base(), std::move(indices));
    }
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kSRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
      return std::make_unique<BinaryInst>(opcode_, Operand(0), Operand(1));
    case Opcode::kICmp:
      return std::make_unique<ICmpInst>(ctx, Cast<ICmpInst>(this)->predicate(), Operand(0),
                                        Operand(1));
    case Opcode::kSelect:
      return std::make_unique<SelectInst>(Operand(0), Operand(1), Operand(2));
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
      return std::make_unique<CastInst>(opcode_, Operand(0), type());
    case Opcode::kCall: {
      const auto* call = Cast<CallInst>(this);
      return std::make_unique<CallInst>(call->callee(), call->operands());
    }
    case Opcode::kPhi: {
      const auto* phi = Cast<PhiInst>(this);
      auto clone = std::make_unique<PhiInst>(type());
      for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
        clone->AddIncoming(phi->IncomingValue(i), phi->IncomingBlock(i));
      }
      return clone;
    }
    case Opcode::kCheck: {
      const auto* check = Cast<CheckInst>(this);
      return std::make_unique<CheckInst>(ctx, check->condition(), check->check_kind(),
                                         check->message());
    }
    case Opcode::kBr: {
      const auto* br = Cast<BranchInst>(this);
      if (br->IsConditional()) {
        return std::make_unique<BranchInst>(ctx, br->condition(), br->true_dest(),
                                            br->false_dest());
      }
      return std::make_unique<BranchInst>(ctx, br->SingleDest());
    }
    case Opcode::kRet:
      if (Cast<RetInst>(this)->HasValue()) {
        return std::make_unique<RetInst>(ctx, Operand(0));
      }
      return std::make_unique<RetInst>(ctx);
    case Opcode::kUnreachable:
      return std::make_unique<UnreachableInst>(ctx);
  }
  OVERIFY_UNREACHABLE("bad opcode in Clone");
}

}  // namespace overify
