// Constants and global variables.
//
// ConstantInt and UndefValue are interned by IRContext (pointer equality is
// value equality). GlobalVariable carries a byte-level initializer so the
// concrete interpreter and the symbolic memory model can materialize it
// without re-deriving layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/type.h"
#include "src/ir/value.h"

namespace overify {

class Constant : public Value {
 public:
  static bool ClassOf(const Value* v) {
    return v->value_kind() == ValueKind::kConstantInt || v->value_kind() == ValueKind::kUndef ||
           v->value_kind() == ValueKind::kNull || v->value_kind() == ValueKind::kGlobalVariable;
  }

 protected:
  using Value::Value;
};

class ConstantInt : public Constant {
 public:
  // Raw bit pattern, truncated to the type's width.
  uint64_t value() const { return value_; }
  // Sign-extended view of the bit pattern.
  int64_t SignedValue() const;
  bool IsZero() const { return value_ == 0; }
  bool IsOne() const { return value_ == 1; }
  // True if every bit of the type's width is set.
  bool IsAllOnes() const;

  static bool ClassOf(const Value* v) { return v->value_kind() == ValueKind::kConstantInt; }

 private:
  friend class IRContext;
  ConstantInt(Type* type, uint64_t value)
      : Constant(ValueKind::kConstantInt, type), value_(value) {}

  uint64_t value_;
};

// The null pointer of a given pointer type.
class NullValue : public Constant {
 public:
  static bool ClassOf(const Value* v) { return v->value_kind() == ValueKind::kNull; }

 private:
  friend class IRContext;
  explicit NullValue(Type* type) : Constant(ValueKind::kNull, type) {}
};

class UndefValue : public Constant {
 public:
  static bool ClassOf(const Value* v) { return v->value_kind() == ValueKind::kUndef; }

 private:
  friend class IRContext;
  explicit UndefValue(Type* type) : Constant(ValueKind::kUndef, type) {}
};

// A module-level variable. Its Value type is a pointer to `value_type`.
class GlobalVariable : public Constant {
 public:
  Type* value_type() const { return value_type_; }
  bool is_const() const { return is_const_; }

  // Initial contents, little-endian, exactly value_type()->SizeInBytes() long.
  const std::vector<uint8_t>& initializer() const { return initializer_; }

  static bool ClassOf(const Value* v) { return v->value_kind() == ValueKind::kGlobalVariable; }

 private:
  friend class Module;
  GlobalVariable(Type* pointer_type, Type* value_type, std::string name, bool is_const,
                 std::vector<uint8_t> initializer)
      : Constant(ValueKind::kGlobalVariable, pointer_type),
        value_type_(value_type),
        is_const_(is_const),
        initializer_(std::move(initializer)) {
    set_name(std::move(name));
  }

  Type* value_type_;
  bool is_const_;
  std::vector<uint8_t> initializer_;
};

// Truncates a raw 64-bit pattern to `bits` (bits in [1, 64]).
uint64_t TruncateToWidth(uint64_t value, unsigned bits);
// Sign-extends the low `bits` of `value` to 64 bits.
int64_t SignExtend(uint64_t value, unsigned bits);

}  // namespace overify
