// IRContext: owns and interns types and constants for one Module.
#pragma once

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/ir/constant.h"
#include "src/ir/type.h"

namespace overify {

class IRContext {
 public:
  IRContext();
  IRContext(const IRContext&) = delete;
  IRContext& operator=(const IRContext&) = delete;

  // Primitive types are pre-built.
  Type* VoidTy() { return void_ty_; }
  Type* I1() { return i1_; }
  Type* I8() { return i8_; }
  Type* I16() { return i16_; }
  Type* I32() { return i32_; }
  Type* I64() { return i64_; }
  Type* IntTy(unsigned bits);

  Type* PtrTy(Type* pointee);
  Type* ArrayTy(Type* element, uint64_t count);
  Type* StructTy(std::vector<Type*> fields);
  Type* FnTy(Type* return_type, std::vector<Type*> params);

  // Interned constants.
  ConstantInt* GetInt(Type* type, uint64_t value);
  ConstantInt* GetInt(unsigned bits, uint64_t value) { return GetInt(IntTy(bits), value); }
  ConstantInt* GetBool(bool value) { return GetInt(i1_, value ? 1 : 0); }
  ConstantInt* True() { return GetBool(true); }
  ConstantInt* False() { return GetBool(false); }
  UndefValue* GetUndef(Type* type);
  NullValue* GetNull(Type* pointer_type);

 private:
  Type* MakeType();

  std::vector<std::unique_ptr<Type>> types_;
  Type* void_ty_;
  Type* i1_;
  Type* i8_;
  Type* i16_;
  Type* i32_;
  Type* i64_;

  std::map<Type*, Type*> pointer_types_;
  std::map<std::pair<Type*, uint64_t>, Type*> array_types_;
  std::map<std::vector<Type*>, Type*> struct_types_;
  std::map<std::pair<Type*, std::vector<Type*>>, Type*> function_types_;

  std::map<std::pair<Type*, uint64_t>, std::unique_ptr<ConstantInt>> int_constants_;
  std::map<Type*, std::unique_ptr<UndefValue>> undef_constants_;
  std::map<Type*, std::unique_ptr<NullValue>> null_constants_;
};

}  // namespace overify
