// Module: a translation unit — functions plus global variables plus the
// IRContext that owns their types and constants.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ir/constant.h"
#include "src/ir/context.h"
#include "src/ir/function.h"

namespace overify {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  IRContext& context() { return ctx_; }

  // Creates a function with the given signature. A function body is added by
  // creating blocks; a body-less function is a declaration (external).
  Function* CreateFunction(const std::string& name, Type* return_type,
                           std::vector<Type*> param_types);
  Function* GetFunction(const std::string& name) const;
  // Unlinks and destroys a function. It must have no remaining call sites.
  void EraseFunction(Function* fn);

  GlobalVariable* CreateGlobal(const std::string& name, Type* value_type, bool is_const,
                               std::vector<uint8_t> initializer);
  // Convenience: a NUL-terminated constant i8 array from `text`.
  GlobalVariable* CreateStringGlobal(const std::string& name, const std::string& text);
  GlobalVariable* GetGlobal(const std::string& name) const;

  const std::vector<std::unique_ptr<Function>>& functions() const { return functions_; }
  const std::vector<std::unique_ptr<GlobalVariable>>& globals() const { return globals_; }

  // Total instruction count across all function bodies.
  size_t InstructionCount() const;

 private:
  std::string name_;
  IRContext ctx_;
  // Functions are declared last so they are destroyed first: instructions
  // drop their uses of globals and interned constants during teardown, so
  // globals_ and ctx_ must still be alive at that point.
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
};

}  // namespace overify
