// Natural-loop detection from back edges in the dominator tree.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/ir/dominators.h"
#include "src/ir/function.h"

namespace overify {

class Loop {
 public:
  BasicBlock* header() const { return header_; }
  // Member blocks in reverse postorder. The order is part of the contract:
  // transformation passes iterate it to pick hoist/clone order, so it must
  // not depend on allocation addresses (a pointer-ordered set here once made
  // compiled IR — and therefore module content hashes — vary run to run).
  const std::vector<BasicBlock*>& blocks() const { return blocks_; }
  bool Contains(BasicBlock* block) const { return block_set_.count(block) != 0; }
  bool Contains(const Loop* other) const;

  Loop* parent() const { return parent_; }
  const std::vector<Loop*>& subloops() const { return subloops_; }
  unsigned depth() const { return depth_; }

  // The unique pre-header (a block outside the loop whose only successor is
  // the header and which is the header's only outside predecessor), or null.
  BasicBlock* Preheader() const;
  // The unique in-loop predecessor of the header (the latch), or null if
  // there are several.
  BasicBlock* Latch() const;
  // Blocks inside the loop with a successor outside it.
  std::vector<BasicBlock*> ExitingBlocks() const;
  // Blocks outside the loop with a predecessor inside it.
  std::vector<BasicBlock*> ExitBlocks() const;

  // True if `value` is computed outside the loop (constants, arguments,
  // globals, and instructions in non-loop blocks).
  bool IsInvariant(const Value* value) const;

 private:
  friend class LoopInfo;
  BasicBlock* header_ = nullptr;
  std::vector<BasicBlock*> blocks_;   // reverse postorder
  std::set<BasicBlock*> block_set_;   // same blocks, for O(log n) Contains
  Loop* parent_ = nullptr;
  std::vector<Loop*> subloops_;
  unsigned depth_ = 1;
};

class LoopInfo {
 public:
  LoopInfo(Function& fn, DominatorTree& dom);

  // Outermost loops, in header reverse-postorder.
  const std::vector<Loop*>& TopLevelLoops() const { return top_level_; }
  // The innermost loop containing `block`, or null.
  Loop* LoopFor(BasicBlock* block) const;
  // All loops, innermost first (safe order for transformations).
  std::vector<Loop*> LoopsInnermostFirst() const;

  size_t NumLoops() const { return loops_.size(); }

 private:
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<Loop*> top_level_;
  std::map<BasicBlock*, Loop*> innermost_;
};

}  // namespace overify
