// Dominator tree (Cooper–Harvey–Kennedy) and dominance frontiers.
#pragma once

#include <map>
#include <vector>

#include "src/ir/function.h"

namespace overify {

class DominatorTree {
 public:
  explicit DominatorTree(Function& fn);

  // The immediate dominator of `block` (null for the entry block and for
  // unreachable blocks).
  BasicBlock* ImmediateDominator(BasicBlock* block) const;

  // True if `a` dominates `b` (reflexive).
  bool Dominates(BasicBlock* a, BasicBlock* b) const;
  // True if `a` strictly dominates `b`.
  bool StrictlyDominates(BasicBlock* a, BasicBlock* b) const;

  // True if the definition point of `def` dominates the use site
  // (instruction `user` at operand `operand_index`). Handles phi uses, which
  // must dominate the incoming edge rather than the phi itself.
  bool ValueDominatesUse(const Instruction* def, const Instruction* user,
                         unsigned operand_index) const;

  bool IsReachable(BasicBlock* block) const { return rpo_index_.count(block) != 0; }

  const std::vector<BasicBlock*>& Children(BasicBlock* block) const;

  // Dominance frontier of every reachable block (computed lazily, cached).
  const std::map<BasicBlock*, std::vector<BasicBlock*>>& DominanceFrontiers();

  const std::vector<BasicBlock*>& ReversePostOrderBlocks() const { return rpo_; }

 private:
  BasicBlock* Intersect(BasicBlock* a, BasicBlock* b) const;

  Function& fn_;
  std::vector<BasicBlock*> rpo_;
  std::map<BasicBlock*, size_t> rpo_index_;
  std::map<BasicBlock*, BasicBlock*> idom_;
  std::map<BasicBlock*, std::vector<BasicBlock*>> children_;
  std::map<BasicBlock*, std::vector<BasicBlock*>> frontiers_;
  bool frontiers_computed_ = false;
  std::vector<BasicBlock*> empty_;
};

}  // namespace overify
