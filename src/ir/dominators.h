// Dominator tree (Cooper–Harvey–Kennedy) and dominance frontiers.
#pragma once

#include <map>
#include <vector>

#include "src/ir/function.h"

namespace overify {

class DominatorTree {
 public:
  explicit DominatorTree(Function& fn);

  // The immediate dominator of `block` (null for the entry block and for
  // unreachable blocks).
  BasicBlock* ImmediateDominator(BasicBlock* block) const;

  // True if `a` dominates `b` (reflexive).
  bool Dominates(BasicBlock* a, BasicBlock* b) const;
  // True if `a` strictly dominates `b`.
  bool StrictlyDominates(BasicBlock* a, BasicBlock* b) const;

  // True if the definition point of `def` dominates the use site
  // (instruction `user` at operand `operand_index`). Handles phi uses, which
  // must dominate the incoming edge rather than the phi itself.
  bool ValueDominatesUse(const Instruction* def, const Instruction* user,
                         unsigned operand_index) const;

  bool IsReachable(BasicBlock* block) const { return rpo_index_.count(block) != 0; }

  const std::vector<BasicBlock*>& Children(BasicBlock* block) const;

  // Dominance frontier of every reachable block (computed lazily, cached).
  const std::map<BasicBlock*, std::vector<BasicBlock*>>& DominanceFrontiers();

  const std::vector<BasicBlock*>& ReversePostOrderBlocks() const { return rpo_; }

 private:
  BasicBlock* Intersect(BasicBlock* a, BasicBlock* b) const;

  Function& fn_;
  std::vector<BasicBlock*> rpo_;
  std::map<BasicBlock*, size_t> rpo_index_;
  std::map<BasicBlock*, BasicBlock*> idom_;
  std::map<BasicBlock*, std::vector<BasicBlock*>> children_;
  std::map<BasicBlock*, std::vector<BasicBlock*>> frontiers_;
  bool frontiers_computed_ = false;
  std::vector<BasicBlock*> empty_;
};

// Post-dominator tree over the reverse CFG, with a virtual exit node unifying
// every function exit (ret and unreachable terminators). Control dependence
// (Ferrante–Ottenstein–Warren) falls out of the post-dominance frontiers: B is
// control-dependent on branch block U iff U has a successor from which every
// path reaches B but U itself is not post-dominated by B.
//
// Blocks inside an infinite loop cannot reach the virtual exit; they carry no
// post-dominance information (HasInfo() is false) and clients that need total
// information (the slicer) must detect that and fall back.
class PostDominatorTree {
 public:
  explicit PostDominatorTree(Function& fn);

  // The immediate post-dominator of `block`. Null when the virtual exit is
  // the immediate post-dominator (every path from `block` leaves the function
  // without a common later block) or when `block` has no info.
  BasicBlock* ImmediatePostDominator(BasicBlock* block) const;

  // True if `a` post-dominates `b` (reflexive). False when either block
  // lacks post-dominance info.
  bool PostDominates(BasicBlock* a, BasicBlock* b) const;

  // True when `block` can reach a function exit (the post-dominance solution
  // covers it). Forward-unreachable blocks also report false.
  bool HasInfo(BasicBlock* block) const;

  // For each block B, the blocks whose conditional terminator B is
  // control-dependent on, in deterministic forward-RPO order. Computed
  // lazily, cached. Blocks without post-dominance info are absent.
  const std::map<BasicBlock*, std::vector<BasicBlock*>>& ControlDependencies();

 private:
  // Nodes are BasicBlock* with nullptr standing for the virtual exit.
  BasicBlock* Intersect(BasicBlock* a, BasicBlock* b) const;

  Function& fn_;
  std::vector<BasicBlock*> rpo_;                 // reverse-graph RPO (VE first)
  std::map<BasicBlock*, size_t> rpo_index_;      // includes nullptr == VE
  std::map<BasicBlock*, BasicBlock*> pdom_;      // node -> immediate pdom node
  std::map<BasicBlock*, std::vector<BasicBlock*>> control_deps_;
  bool control_deps_computed_ = false;
};

}  // namespace overify
