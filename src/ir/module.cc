#include "src/ir/module.h"

namespace overify {

Function* Module::CreateFunction(const std::string& name, Type* return_type,
                                 std::vector<Type*> param_types) {
  OVERIFY_ASSERT(GetFunction(name) == nullptr, "duplicate function name");
  Type* fn_type = ctx_.FnTy(return_type, std::move(param_types));
  auto fn = std::unique_ptr<Function>(new Function(ctx_.PtrTy(fn_type), fn_type, name, this));
  Function* raw = fn.get();
  functions_.push_back(std::move(fn));
  return raw;
}

Function* Module::GetFunction(const std::string& name) const {
  for (const auto& fn : functions_) {
    if (fn->name() == name) {
      return fn.get();
    }
  }
  return nullptr;
}

void Module::EraseFunction(Function* fn) {
  OVERIFY_ASSERT(!fn->HasUses(), "erasing function with remaining call sites");
  for (size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].get() == fn) {
      // Drop every inter-instruction reference first: values defined in one
      // block may be used from another, so per-block teardown alone would
      // trip the use-tracking assertions.
      std::vector<BasicBlock*> blocks = fn->BlockList();
      for (BasicBlock* block : blocks) {
        block->DropAllReferences();
      }
      for (BasicBlock* block : blocks) {
        fn->EraseBlock(block);
      }
      functions_.erase(functions_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
  OVERIFY_UNREACHABLE("function not in this module");
}

GlobalVariable* Module::CreateGlobal(const std::string& name, Type* value_type, bool is_const,
                                     std::vector<uint8_t> initializer) {
  OVERIFY_ASSERT(GetGlobal(name) == nullptr, "duplicate global name");
  if (initializer.empty()) {
    initializer.resize(value_type->SizeInBytes(), 0);
  }
  OVERIFY_ASSERT(initializer.size() == value_type->SizeInBytes(),
                 "global initializer size mismatch");
  auto global = std::unique_ptr<GlobalVariable>(new GlobalVariable(
      ctx_.PtrTy(value_type), value_type, name, is_const, std::move(initializer)));
  GlobalVariable* raw = global.get();
  globals_.push_back(std::move(global));
  return raw;
}

GlobalVariable* Module::CreateStringGlobal(const std::string& name, const std::string& text) {
  std::vector<uint8_t> bytes(text.begin(), text.end());
  bytes.push_back(0);
  Type* type = ctx_.ArrayTy(ctx_.I8(), bytes.size());
  return CreateGlobal(name, type, /*is_const=*/true, std::move(bytes));
}

GlobalVariable* Module::GetGlobal(const std::string& name) const {
  for (const auto& global : globals_) {
    if (global->name() == name) {
      return global.get();
    }
  }
  return nullptr;
}

size_t Module::InstructionCount() const {
  size_t count = 0;
  for (const auto& fn : functions_) {
    count += fn->InstructionCount();
  }
  return count;
}

}  // namespace overify
