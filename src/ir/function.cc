#include "src/ir/function.h"

#include "src/ir/module.h"
#include "src/support/string_utils.h"

namespace overify {

Function::Function(Type* pointer_to_fn, Type* function_type, std::string name, Module* parent)
    : Value(ValueKind::kFunction, pointer_to_fn), function_type_(function_type), parent_(parent) {
  set_name(std::move(name));
  const std::vector<Type*>& params = function_type->params();
  args_.reserve(params.size());
  for (unsigned i = 0; i < params.size(); ++i) {
    args_.push_back(std::make_unique<Argument>(params[i], i));
    args_.back()->set_name(StrFormat("arg%u", i));
  }
}

Function::~Function() {
  for (auto& block : blocks_) {
    block->DropAllReferences();
  }
}

BasicBlock* Function::CreateBlock(std::string name) {
  auto block = std::make_unique<BasicBlock>(std::move(name));
  BasicBlock* raw = block.get();
  blocks_.push_back(std::move(block));
  raw->parent_ = this;
  raw->self_ = std::prev(blocks_.end());
  return raw;
}

BasicBlock* Function::InsertBlockAfter(BasicBlock* after, std::unique_ptr<BasicBlock> block) {
  OVERIFY_ASSERT(after == nullptr || after->parent_ == this, "anchor block not in function");
  BasicBlock* raw = block.get();
  auto pos = after == nullptr ? blocks_.end() : std::next(after->self_);
  auto it = blocks_.insert(pos, std::move(block));
  raw->parent_ = this;
  raw->self_ = it;
  return raw;
}

void Function::EraseBlock(BasicBlock* block) {
  OVERIFY_ASSERT(block->parent_ == this, "block not in this function");
  // Drop operand uses of every instruction first so intra-block cycles
  // (e.g. a phi using itself) do not trip the use-free assertion.
  block->DropAllReferences();
  // Destroy instructions back-to-front so later instructions release their
  // uses of earlier ones before those are destroyed.
  while (!block->insts_.empty()) {
    OVERIFY_ASSERT(!block->insts_.back()->HasUses(),
                   "erasing block whose instructions still have external uses");
    block->insts_.pop_back();
  }
  blocks_.erase(block->self_);
}

void Function::MoveBlockToEnd(BasicBlock* block) {
  OVERIFY_ASSERT(block->parent_ == this, "block not in this function");
  blocks_.splice(blocks_.end(), blocks_, block->self_);
  block->self_ = std::prev(blocks_.end());
}

std::vector<BasicBlock*> Function::BlockList() {
  std::vector<BasicBlock*> result;
  result.reserve(blocks_.size());
  for (auto& block : blocks_) {
    result.push_back(block.get());
  }
  return result;
}

size_t Function::InstructionCount() const {
  size_t count = 0;
  for (const auto& block : blocks_) {
    count += block->size();
  }
  return count;
}

uint32_t Function::AssignLocalSlots() {
  uint32_t next = 0;
  for (auto& arg : args_) {
    arg->set_local_slot(next++);
  }
  for (auto& block : blocks_) {
    for (auto& inst : *block) {
      inst->set_local_slot(next++);
    }
  }
  return next;
}

}  // namespace overify
