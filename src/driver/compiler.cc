#include "src/driver/compiler.h"

#include "src/frontend/codegen.h"
#include "src/ir/verifier.h"
#include "src/support/statistics.h"
#include "src/support/stopwatch.h"
#include "src/vlibc/vlibc.h"

namespace overify {

CompileResult Compiler::CompileWithOptions(const std::string& program_source,
                                           const PipelineOptions& options,
                                           const std::string& module_name, bool link_libc) {
  CompileResult result;
  Stopwatch watch;

  std::vector<MiniCSource> sources;
  if (link_libc) {
    sources.push_back(MiniCSource{
        options.use_verify_libc ? VerifyLibcSource() : StandardLibcSource(), true});
  }
  sources.push_back(MiniCSource{program_source, false});

  DiagnosticEngine diags;
  result.module = CompileMiniC(sources, module_name, diags);
  if (result.module == nullptr) {
    result.errors = diags.ToString();
    return result;
  }

  result.annotations = std::make_unique<ProgramAnnotations>();
  auto stats_before = StatisticsRegistry::Global().Snapshot();

  PassManager pm(/*verify_after_each=*/true);
  BuildPipeline(pm, options, result.annotations.get());
  pm.Run(*result.module);

  result.pass_stats = SnapshotDelta(stats_before, StatisticsRegistry::Global().Snapshot());
  result.compile_seconds = watch.ElapsedSeconds();
  result.instruction_count = result.module->InstructionCount();
  result.ok = true;
  return result;
}

CompileResult Compiler::Compile(const std::string& program_source, OptLevel level,
                                const std::string& module_name, bool link_libc) {
  return CompileWithOptions(program_source, PipelineOptions::For(level), module_name,
                            link_libc);
}

SymexResult Analyze(CompileResult& compiled, const std::string& entry, unsigned input_bytes,
                    const SymexLimits& limits, unsigned jobs, SearchStrategy strategy) {
  SymexOptions options;
  options.jobs = jobs;
  options.strategy = strategy;
  return Analyze(compiled, entry, input_bytes, limits, options);
}

SymexResult Analyze(CompileResult& compiled, const std::string& entry, unsigned input_bytes,
                    const SymexLimits& limits, const SymexOptions& base_options) {
  if (!compiled.ok || compiled.module == nullptr) {
    // Malformed MiniC reaches the driver as a structured error, not an
    // assertion: the compile diagnostics ride along so callers can surface
    // them (docs/robustness.md).
    SymexResult invalid;
    invalid.ok = false;
    invalid.error = compiled.errors.empty()
                        ? "analyzing a failed compilation"
                        : "analyzing a failed compilation: " + compiled.errors;
    return invalid;
  }
  SymexOptions options = base_options;
  if (compiled.annotations != nullptr && compiled.annotations->size() > 0) {
    options.annotations = compiled.annotations.get();
  }
  SymbolicExecutor engine(*compiled.module, options);
  return engine.Run(entry, input_bytes, limits);
}

}  // namespace overify
