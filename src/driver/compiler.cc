#include "src/driver/compiler.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "src/analysis/slicer.h"
#include "src/exec/interpreter.h"
#include "src/frontend/codegen.h"
#include "src/ir/verifier.h"
#include "src/support/statistics.h"
#include "src/support/stopwatch.h"
#include "src/vlibc/vlibc.h"

namespace overify {

namespace {

// Per-check slice verification (docs/slicing.md): run the engine once per
// slice, merge the shards, re-attribute bug sites to the original module,
// and replay every bug input through the full-program concrete interpreter
// (the soundness oracle). The merged result is a pure function of
// (module, options, limits): slices are built in deterministic order and
// each per-slice run is itself deterministic.
SymexResult AnalyzeSliced(CompileResult& compiled, Function* entry_fn,
                          unsigned input_bytes, const SymexLimits& limits,
                          const SymexOptions& options) {
  Module& module = *compiled.module;
  Slicer slicer(module, entry_fn);
  SliceResult slices = slicer.Run();

  if (!slices.ok) {
    // Whole-program fallback, counted: slice mode must never lose bugs, so
    // an unsliceable module (infinite loop, verifier rejection) degrades to
    // the ordinary run.
    SymbolicExecutor engine(module, options);
    SymexResult result = engine.Run(entry_fn, input_bytes, limits);
    result.metrics.Inc(Counter::kSliceFallbacks);
    result.FinalizeFromMetrics();
    return result;
  }

  SymexResult merged;
  MetricsShard shard;
  shard.Set(Counter::kSliceChecksFound, slices.checks_found);
  shard.Set(Counter::kSlicesBuilt, slices.slices.size());
  shard.Set(Counter::kSliceEntryInstructions, slices.entry_instructions);
  merged.exhausted = true;

  std::set<std::tuple<const Instruction*, BugKind, std::string>> seen;
  unsigned index = 0;
  for (const Slice& slice : slices.slices) {
    shard.Add(Counter::kSliceConeInstructions, slice.instructions);
    if (slices.entry_instructions > 0) {
      shard.Record(Hist::kSliceConeRatioPct,
                   slice.instructions * 100 / slices.entry_instructions);
    }
    SymexOptions slice_options = options;
    if (!options.trace_path.empty()) {
      slice_options.trace_path =
          options.trace_path + ".slice" + std::to_string(index);
    }
    ++index;
    SymbolicExecutor engine(module, slice_options);
    SymexResult result = engine.Run(slice.fn, input_bytes, limits);
    if (!result.ok) {
      Slicer::EraseSlices(module, slices);
      return result;
    }
    merged.exhausted = merged.exhausted && result.exhausted;
    if (merged.stop_cause == StopCause::kNone) {
      merged.stop_cause = result.stop_cause;
    }
    merged.wall_seconds += result.wall_seconds;
    merged.workers = std::max(merged.workers, result.workers);
    shard.Merge(result.metrics);
    for (BugReport bug : result.bugs) {
      // Re-attribute the site to the original module: slices are erased
      // after the run, so a clone pointer must not escape. Sites inside
      // shared callees are already original instructions.
      auto it = slices.to_original.find(bug.site);
      if (it != slices.to_original.end()) {
        bug.site = it->second;
      }
      if (seen.emplace(bug.site, bug.kind, bug.message).second) {
        merged.bugs.push_back(std::move(bug));
      }
    }
  }

  // Soundness oracle: every slice bug's model must reproduce on the full
  // program. Bugs are kept either way (the caller's confirmation discipline
  // is the authority); the counters make a divergence loud.
  for (const BugReport& bug : merged.bugs) {
    Interpreter interp(module);
    InterpResult replay = interp.Run(entry_fn, bug.example_input);
    shard.Inc(!replay.ok ? Counter::kSliceReplayConfirmed
                         : Counter::kSliceReplayFailed);
  }

  Slicer::EraseSlices(module, slices);
  merged.metrics = shard;
  merged.FinalizeFromMetrics();
  return merged;
}

}  // namespace

CompileResult Compiler::CompileWithOptions(const std::string& program_source,
                                           const PipelineOptions& options,
                                           const std::string& module_name, bool link_libc) {
  CompileResult result;
  Stopwatch watch;

  std::vector<MiniCSource> sources;
  if (link_libc) {
    sources.push_back(MiniCSource{
        options.use_verify_libc ? VerifyLibcSource() : StandardLibcSource(), true});
  }
  sources.push_back(MiniCSource{program_source, false});

  DiagnosticEngine diags;
  result.module = CompileMiniC(sources, module_name, diags);
  if (result.module == nullptr) {
    result.errors = diags.ToString();
    return result;
  }

  result.annotations = std::make_unique<ProgramAnnotations>();
  auto stats_before = StatisticsRegistry::Global().Snapshot();

  // Inter-pass IR verification follows the build-level default
  // (kVerifyIRAfterEachPass: debug builds and -DOVERIFY_VERIFY_IR=ON).
  PassManager pm;
  BuildPipeline(pm, options, result.annotations.get());
  pm.Run(*result.module);

  result.pass_stats = SnapshotDelta(stats_before, StatisticsRegistry::Global().Snapshot());
  result.compile_seconds = watch.ElapsedSeconds();
  result.instruction_count = result.module->InstructionCount();
  result.ok = true;
  return result;
}

CompileResult Compiler::Compile(const std::string& program_source, OptLevel level,
                                const std::string& module_name, bool link_libc) {
  return CompileWithOptions(program_source, PipelineOptions::For(level), module_name,
                            link_libc);
}

SymexResult Analyze(CompileResult& compiled, const std::string& entry, unsigned input_bytes,
                    const SymexLimits& limits, unsigned jobs, SearchStrategy strategy) {
  SymexOptions options;
  options.jobs = jobs;
  options.strategy = strategy;
  return Analyze(compiled, entry, input_bytes, limits, options);
}

SymexResult Analyze(CompileResult& compiled, const std::string& entry, unsigned input_bytes,
                    const SymexLimits& limits, const SymexOptions& base_options) {
  if (!compiled.ok || compiled.module == nullptr) {
    // Malformed MiniC reaches the driver as a structured error, not an
    // assertion: the compile diagnostics ride along so callers can surface
    // them (docs/robustness.md).
    SymexResult invalid;
    invalid.ok = false;
    invalid.error = compiled.errors.empty()
                        ? "analyzing a failed compilation"
                        : "analyzing a failed compilation: " + compiled.errors;
    return invalid;
  }
  SymexOptions options = base_options;
  if (compiled.annotations != nullptr && compiled.annotations->size() > 0) {
    options.annotations = compiled.annotations.get();
  }
  if (options.slice_checks) {
    Function* entry_fn = compiled.module->GetFunction(entry);
    if (entry_fn != nullptr && !entry_fn->IsDeclaration()) {
      return AnalyzeSliced(compiled, entry_fn, input_bytes, limits, options);
    }
    // Missing entry: fall through so the engine produces its structured
    // entry-contract error.
  }
  SymbolicExecutor engine(*compiled.module, options);
  return engine.Run(entry, input_bytes, limits);
}

}  // namespace overify
