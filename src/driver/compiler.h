// The compiler driver: MiniC source + a C library flavor + an optimization
// level -> an optimized module with pass statistics, timing, and (under
// -OVERIFY) the annotation side table.
//
// This is the toolkit's equivalent of invoking `clang -O<level>`; Figure 3 of
// the paper shows -OVERIFY as a third build configuration next to the debug
// and release ones, which is exactly how the benchmarks drive this class.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/ir/module.h"
#include "src/passes/pipeline.h"
#include "src/symex/executor.h"

namespace overify {

struct CompileResult {
  bool ok = false;
  std::string errors;
  std::unique_ptr<Module> module;
  // Annotation side table (populated when the pipeline annotates). Must stay
  // alive while the module is analyzed.
  std::unique_ptr<ProgramAnnotations> annotations;
  // Per-pass statistic deltas for this compilation (Table 3's rows).
  std::map<std::string, int64_t> pass_stats;
  double compile_seconds = 0;
  size_t instruction_count = 0;  // static size after optimization
};

class Compiler {
 public:
  // When `link_libc` is set, the level's library flavor (standard for
  // -O0..-O3, verification-tailored for -OVERIFY) is compiled in front of
  // the program.
  CompileResult Compile(const std::string& program_source, OptLevel level,
                        const std::string& module_name = "program", bool link_libc = true);

  // Full control over pipeline parameters (ablation benchmarks).
  CompileResult CompileWithOptions(const std::string& program_source,
                                   const PipelineOptions& options,
                                   const std::string& module_name = "program",
                                   bool link_libc = true);
};

// Convenience: symbolic analysis of a compiled module, consuming the
// annotations when present. `jobs` worker threads explore in parallel
// (0 = one per hardware thread) ordered by `strategy`; results are
// identical across worker counts on exhausted runs (docs/scheduler.md).
SymexResult Analyze(CompileResult& compiled, const std::string& entry, unsigned input_bytes,
                    const SymexLimits& limits, unsigned jobs = 1,
                    SearchStrategy strategy = SearchStrategy::kDfs);

// Full-options overload (scheduler A/B configurations: shared_interner,
// validate_steals, solver_preprocess, ...). The compiled module's
// annotations are still injected when present.
SymexResult Analyze(CompileResult& compiled, const std::string& entry, unsigned input_bytes,
                    const SymexLimits& limits, const SymexOptions& base_options);

}  // namespace overify
