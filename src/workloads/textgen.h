// Deterministic text generation for t_run measurements (the paper times the
// -O0/-O3/-OVERIFY wc builds on a text with 10^8 words; we generate scaled
// corpora with the same word/separator statistics).
#pragma once

#include <cstdint>
#include <string>

namespace overify {

struct TextGenOptions {
  uint64_t seed = 2013;
  size_t approx_words = 1000;
  size_t min_word_len = 2;
  size_t max_word_len = 9;
  double newline_probability = 0.12;  // separator is '\n' instead of ' '
  double digit_word_probability = 0.1;
};

// English-like filler text: lowercase words separated by spaces/newlines.
std::string GenerateText(const TextGenOptions& options);

// Randomized MiniC utility kernels for fuzz-style differential runs through
// the harness in src/testing/diff_harness.h.
//
// Every generated program defines `int umain(unsigned char *in, int n)`
// built from the suite's coreutils idioms — a byte loop (NUL-terminated or
// full-block), ctype classification chains, separator counters, a
// word-boundary state machine, checksum folds, putchar filters — combined
// at random. Generation is a pure function of the seed, and the statement
// pool is total by construction: no symbolic divisors, no buffer writes, no
// unbounded loops, so a generated kernel never traps and its differential
// signature is clean (bug set empty) at every optimization level. A kernel
// that DID diverge across lattice cells is therefore always an engine or
// pipeline defect, never an artifact of the generator.
struct KernelGenOptions {
  uint64_t seed = 1;
  unsigned min_statements = 2;  // loop-body statements
  unsigned max_statements = 5;
  unsigned accumulators = 3;    // a0..aK-1, xor-folded into the return value
};

std::string GenerateMiniCKernel(const KernelGenOptions& options);

}  // namespace overify
