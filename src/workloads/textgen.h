// Deterministic text generation for t_run measurements (the paper times the
// -O0/-O3/-OVERIFY wc builds on a text with 10^8 words; we generate scaled
// corpora with the same word/separator statistics).
#pragma once

#include <cstdint>
#include <string>

namespace overify {

struct TextGenOptions {
  uint64_t seed = 2013;
  size_t approx_words = 1000;
  size_t min_word_len = 2;
  size_t max_word_len = 9;
  double newline_probability = 0.12;  // separator is '\n' instead of ' '
  double digit_word_probability = 0.1;
};

// English-like filler text: lowercase words separated by spaces/newlines.
std::string GenerateText(const TextGenOptions& options);

}  // namespace overify
