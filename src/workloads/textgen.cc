#include "src/workloads/textgen.h"

#include "src/support/rng.h"

namespace overify {

std::string GenerateText(const TextGenOptions& options) {
  Rng rng(options.seed);
  std::string text;
  text.reserve(options.approx_words * (options.max_word_len + 1));
  for (size_t w = 0; w < options.approx_words; ++w) {
    size_t len = static_cast<size_t>(
        rng.NextInRange(static_cast<int64_t>(options.min_word_len),
                        static_cast<int64_t>(options.max_word_len)));
    bool digits = rng.NextDouble() < options.digit_word_probability;
    for (size_t i = 0; i < len; ++i) {
      if (digits) {
        text += static_cast<char>('0' + rng.NextBelow(10));
      } else {
        text += static_cast<char>('a' + rng.NextBelow(26));
      }
    }
    if (w + 1 != options.approx_words) {
      text += rng.NextDouble() < options.newline_probability ? '\n' : ' ';
    }
  }
  return text;
}

}  // namespace overify
