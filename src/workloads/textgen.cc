#include "src/workloads/textgen.h"

#include <sstream>
#include <string>

#include "src/support/rng.h"

namespace overify {

std::string GenerateText(const TextGenOptions& options) {
  Rng rng(options.seed);
  std::string text;
  text.reserve(options.approx_words * (options.max_word_len + 1));
  for (size_t w = 0; w < options.approx_words; ++w) {
    size_t len = static_cast<size_t>(
        rng.NextInRange(static_cast<int64_t>(options.min_word_len),
                        static_cast<int64_t>(options.max_word_len)));
    bool digits = rng.NextDouble() < options.digit_word_probability;
    for (size_t i = 0; i < len; ++i) {
      if (digits) {
        text += static_cast<char>('0' + rng.NextBelow(10));
      } else {
        text += static_cast<char>('a' + rng.NextBelow(26));
      }
    }
    if (w + 1 != options.approx_words) {
      text += rng.NextDouble() < options.newline_probability ? '\n' : ' ';
    }
  }
  return text;
}

namespace {

// A printable, escape-free character for embedding in generated source.
char PickChar(Rng& rng) {
  const char pool[] = "abcxyz,;: .#/+-0129AZ";
  return pool[rng.NextBelow(sizeof(pool) - 1)];
}

const char* PickCtype(Rng& rng) {
  const char* pool[] = {"isalpha", "isdigit", "isspace", "isprint", "islower", "isupper"};
  return pool[rng.NextBelow(6)];
}

std::string Acc(Rng& rng, unsigned accumulators) {
  return "a" + std::to_string(rng.NextBelow(accumulators));
}

// One loop-body statement over `in[i]`. Everything in the pool is total:
// no symbolic divisors, no stores through pointers, no inner loops.
std::string PickStatement(Rng& rng, unsigned accumulators) {
  std::ostringstream s;
  switch (rng.NextBelow(7)) {
    case 0:  // separator counter
      s << "if (in[i] == '" << PickChar(rng) << "') { " << Acc(rng, accumulators)
        << "++; }";
      break;
    case 1:  // ctype classification chain
      s << "if (" << PickCtype(rng) << "(in[i])) { " << Acc(rng, accumulators) << " += "
        << rng.NextInRange(1, 3) << "; } else { " << Acc(rng, accumulators) << "++; }";
      break;
    case 2:  // checksum fold
      s << Acc(rng, accumulators) << " = (" << Acc(rng, accumulators)
        << " + in[i]) & 0xFFFF;";
      break;
    case 3:  // range test
      s << "if (in[i] >= '" << static_cast<char>('a' + rng.NextBelow(4)) << "' && in[i] <= '"
        << static_cast<char>('m' + rng.NextBelow(6)) << "') { " << Acc(rng, accumulators)
        << " += 2; }";
      break;
    case 4:  // branch-free indicator accumulation
      s << Acc(rng, accumulators) << " = " << Acc(rng, accumulators) << " + (in[i] == '"
        << PickChar(rng) << "');";
      break;
    case 5:  // word-boundary state machine (wc's inner idiom); a0 is the flag
      s << "if (isspace(in[i])) { a0 = 0; } else { if (a0 == 0) { "
        << Acc(rng, accumulators) << "++; } a0 = 1; }";
      break;
    default:  // putchar filter
      s << "putchar(" << (rng.NextBool() ? "tolower" : "toupper") << "(in[i]));";
      break;
  }
  return s.str();
}

}  // namespace

std::string GenerateMiniCKernel(const KernelGenOptions& options) {
  Rng rng(options.seed);
  unsigned accumulators = options.accumulators > 0 ? options.accumulators : 1;
  unsigned statements = static_cast<unsigned>(
      rng.NextInRange(options.min_statements, options.max_statements));

  std::ostringstream src;
  src << "int umain(unsigned char *in, int n) {\n";
  for (unsigned a = 0; a < accumulators; ++a) {
    src << "  int a" << a << " = " << rng.NextBelow(3) << ";\n";
  }
  // Two loop shapes, matching the suite's two idioms: the NUL-terminated
  // byte loop (forks once per byte) and the full-block loop over the
  // concrete length (fork-free body position).
  bool nul_loop = rng.NextBool();
  if (nul_loop) {
    src << "  for (long i = 0; in[i]; i++) {\n";
  } else {
    src << "  for (long i = 0; i < n; i++) {\n";
  }
  for (unsigned s = 0; s < statements; ++s) {
    src << "    " << PickStatement(rng, accumulators) << "\n";
  }
  src << "  }\n";
  src << "  return a0";
  for (unsigned a = 1; a < accumulators; ++a) {
    src << " ^ (a" << a << " << " << a << ")";
  }
  src << ";\n}\n";
  return src.str();
}

}  // namespace overify
