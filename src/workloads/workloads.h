// The Coreutils-style workload suite.
//
// The paper's evaluation (§4) re-runs KLEE's Coreutils case study: 93
// experiments over UNIX text utilities with 2-10 bytes of symbolic input.
// GNU sources are not reproducible here (build system, POSIX environment),
// so the suite consists of utility kernels written in MiniC that exercise
// the same idioms the originals do — byte loops over NUL-terminated input,
// ctype classification chains, fixed-size line buffers, small parsers —
// because those idioms, not GNU's option parsing, are what drive symbolic
// execution cost.
//
// Every program defines `int umain(unsigned char *in, int n)`: `in` holds n
// symbolic bytes plus a guaranteed NUL, standing in for the utility's stdin
// or argument (exactly how the paper models symbolic input).
#pragma once

#include <string>
#include <vector>

namespace overify {

struct Workload {
  std::string name;
  std::string source;         // MiniC source defining umain
  unsigned default_sym_bytes; // symbolic-input size for headline runs
  std::string sample_input;   // realistic concrete input for t_run
};

// All workloads, alphabetical.
const std::vector<Workload>& CoreutilsSuite();

// Lookup by name; null when absent.
const Workload* FindWorkload(const std::string& name);

}  // namespace overify
