#include "src/workloads/workloads.h"

#include <map>

namespace overify {

namespace {

std::vector<Workload> BuildSuite() {
  std::vector<Workload> suite;
  auto add = [&suite](const char* name, unsigned bytes, const char* sample,
                      const char* source) {
    suite.push_back(Workload{name, source, bytes, sample});
  };

  // ---- basename: path component after the last '/'.
  add("basename", 6, "usr/bin/cc", R"(
int umain(unsigned char *in, int n) {
  char *s = (char*)in;
  char *slash = strrchr(s, '/');
  char *base = slash ? slash + 1 : s;
  long i = 0;
  while (base[i]) { putchar((int)(unsigned char)base[i]); i++; }
  return (int)i;
}
)");

  // ---- caesar: rotate letters by 13 (tr-style filter).
  add("caesar", 5, "Attack at dawn!", R"(
int umain(unsigned char *in, int n) {
  int count = 0;
  for (long i = 0; in[i]; i++) {
    int c = in[i];
    if (c >= 'a' && c <= 'z') { c = 'a' + (c - 'a' + 13) % 26; count++; }
    else if (c >= 'A' && c <= 'Z') { c = 'A' + (c - 'A' + 13) % 26; count++; }
    putchar(c);
  }
  return count;
}
)");

  // ---- cat: copy input to output.
  add("cat", 6, "some text\nmore\n", R"(
int umain(unsigned char *in, int n) {
  long i = 0;
  while (in[i]) { putchar(in[i]); i++; }
  return (int)i;
}
)");

  // ---- cksum: BSD 16-bit rotating checksum.
  add("cksum", 5, "checksum me please", R"(
int umain(unsigned char *in, int n) {
  unsigned sum = 0;
  for (long i = 0; in[i]; i++) {
    sum = (sum >> 1) + ((sum & 1u) << 15);
    sum = sum + in[i];
    sum = sum & 0xFFFFu;
  }
  return (int)sum;
}
)");

  // ---- cksum_wide: a 16-bit additive checksum at suite-scale input — 72
  // symbolic bytes, so path constraints and expression supports reach past
  // symbol 64 into the SupportSet overflow vector, and multi-worker runs
  // have enough queued states for batch stealing to engage. The NUL loop
  // keeps the path count linear in the input size; the parity branch at
  // each path's end poses one wide-support query per path that stays
  // satisfiable in both directions (the last byte flips the sum's parity),
  // so the backtracking solver settles it in O(path length) candidates.
  add("cksum_wide", 72, "The quick brown fox jumps over the lazy dog 0123456789 etaoin",
      R"(
int umain(unsigned char *in, int n) {
  unsigned sum = 0;
  long i = 0;
  while (in[i]) {
    sum = (sum + in[i]) & 0xFFFFu;
    i++;
  }
  if ((sum & 1u) == 0u) { putchar('e'); } else { putchar('o'); }
  return (int)sum;
}
)");

  // ---- cmp_bufs: byte-wise compare of two inputs (cmp(1)); the first
  // two-buffer workload — umain takes two NUL-terminated symbolic buffers.
  add("cmp_bufs", 6, "abcabc", R"(
int umain(unsigned char *a, int na, unsigned char *b, int nb) {
  long i = 0;
  while (a[i] && b[i]) {
    if (a[i] != b[i]) { return (int)i + 1; }
    i++;
  }
  if (a[i] != b[i]) { return (int)i + 1; }
  return 0;
}
)");

  // ---- comm_bufs: bytes of the first input that occur anywhere in the
  // second (comm(1) on characters); two-buffer umain + symbolic strchr.
  add("comm_bufs", 4, "abxb", R"(
int umain(unsigned char *a, int na, unsigned char *b, int nb) {
  int common = 0;
  for (long i = 0; a[i]; i++) {
    if (strchr((char*)b, (int)a[i])) { common++; }
  }
  return common;
}
)");

  // ---- comm_lite: count lines common to two ';'-separated word lists
  // (adjacent equal words, both sorted single-word case).
  add("comm_lite", 6, "apple;apple", R"(
int umain(unsigned char *in, int n) {
  char *s = (char*)in;
  char *sep = strchr(s, ';');
  if (!sep) { return -1; }
  long first_len = 0;
  while (s + first_len != sep) { first_len++; }
  char *second = sep + 1;
  if (strncmp(s, second, first_len) == 0 && second[first_len] == 0) {
    return 1;  /* identical */
  }
  return 0;
}
)");

  // ---- count_mode: count letters or digits, chosen by a runtime flag.
  // The mode test inside the loop is loop-invariant but symbolic: the
  // unswitching showcase (specialization cannot fold it away).
  add("count_mode", 5, "lab12", R"(
int umain(unsigned char *in, int n) {
  int alpha_mode = in[0] == 'l';
  int count = 0;
  for (long i = 1; in[i]; i++) {
    if (alpha_mode && isalpha(in[i])) { count++; }
    else if (!alpha_mode && isdigit(in[i])) { count++; }
  }
  return count;
}
)");

  // ---- csv_count: count comma-separated fields.
  add("csv_count", 6, "a,bb,ccc,d", R"(
int umain(unsigned char *in, int n) {
  if (!in[0]) { return 0; }
  int fields = 1;
  for (long i = 0; in[i]; i++) {
    if (in[i] == ',') { fields++; }
  }
  return fields;
}
)");

  // ---- cut_c: print characters 2-4 of each line (cut -c2-4).
  add("cut_c", 6, "abcdef\nxy\n", R"(
int umain(unsigned char *in, int n) {
  int col = 0;
  int printed = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == '\n') { col = 0; putchar('\n'); continue; }
    col++;
    if (col >= 2 && col <= 4) { putchar(in[i]); printed++; }
  }
  return printed;
}
)");

  // ---- cut_f: the second ':'-separated field (cut -f2 -d:).
  add("cut_f", 6, "ab:cd:e", R"(
int umain(unsigned char *in, int n) {
  char *sep = strchr((char*)in, ':');
  if (!sep) { return 0; }
  char *field = sep + 1;
  long len = 0;
  while (field[len] && field[len] != ':') {
    putchar((int)(unsigned char)field[len]);
    len++;
  }
  return (int)len;
}
)");

  // ---- dirname: path up to the last '/'.
  add("dirname", 6, "usr/bin/cc", R"(
int umain(unsigned char *in, int n) {
  char *s = (char*)in;
  char *slash = strrchr(s, '/');
  if (!slash) { putchar('.'); return 1; }
  long len = 0;
  while (s + len != slash) { putchar((int)(unsigned char)s[len]); len++; }
  return (int)len;
}
)");

  // ---- dos2unix: drop '\r' before '\n'.
  add("dos2unix", 5, "one\r\ntwo\r\n", R"(
int umain(unsigned char *in, int n) {
  int dropped = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == '\r' && in[i + 1] == '\n') { dropped++; continue; }
    putchar(in[i]);
  }
  return dropped;
}
)");

  // ---- echo: print the argument and a newline.
  add("echo", 5, "hello", R"(
int umain(unsigned char *in, int n) {
  long i = 0;
  while (in[i]) { putchar(in[i]); i++; }
  putchar('\n');
  return (int)i;
}
)");

  // ---- expand: tabs to four spaces.
  add("expand", 5, "a\tb\tc", R"(
int umain(unsigned char *in, int n) {
  int expanded = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == '\t') {
      putchar(' '); putchar(' '); putchar(' '); putchar(' ');
      expanded++;
    } else {
      putchar(in[i]);
    }
  }
  return expanded;
}
)");

  // ---- expand_stops: tabs advance to the next 4-column stop (real tab
  // stops, unlike `expand`'s fixed four spaces).
  add("expand_stops", 5, "a\tbc\td", R"(
int umain(unsigned char *in, int n) {
  int col = 0;
  int emitted = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == '\t') {
      putchar(' '); col++; emitted++;
      while (col % 4 != 0) { putchar(' '); col++; emitted++; }
    } else if (in[i] == '\n') {
      putchar('\n'); col = 0;
    } else {
      putchar(in[i]); col++;
    }
  }
  return emitted;
}
)");

  // ---- expr_add: evaluate "<digits>+<digits>".
  add("expr_add", 5, "12+34", R"(
int umain(unsigned char *in, int n) {
  char *s = (char*)in;
  int a = atoi(s);
  char *plus = strchr(s, '+');
  if (!plus) { return -1; }
  int b = atoi(plus + 1);
  return a + b;
}
)");

  // ---- factor: smallest prime factor of the input number.
  add("factor", 4, "91", R"(
int umain(unsigned char *in, int n) {
  int v = atoi((char*)in);
  if (v < 2) { return 0; }
  for (int d = 2; d * d <= v; d++) {
    if (v % d == 0) { return d; }
  }
  return v;
}
)");

  // ---- false: exit status 1, no input examined.
  add("false", 2, "", R"(
int umain(unsigned char *in, int n) { return 1; }
)");

  // ---- fold: wrap lines at 8 columns.
  add("fold", 5, "abcdefghijklmno", R"(
int umain(unsigned char *in, int n) {
  int col = 0;
  int breaks = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == '\n') { col = 0; putchar('\n'); continue; }
    if (col == 8) { putchar('\n'); col = 0; breaks++; }
    putchar(in[i]);
    col++;
  }
  return breaks;
}
)");

  // ---- fold_sp: fold -s flavored wrapping at 6 columns — a break resumes
  // the column count from the last space, not from zero.
  add("fold_sp", 5, "abc def ghij", R"(
int umain(unsigned char *in, int n) {
  int col = 0;
  int since_space = 0;
  int breaks = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == '\n') { col = 0; since_space = 0; putchar('\n'); continue; }
    if (in[i] == ' ') { since_space = 0; } else { since_space++; }
    if (col >= 6) {
      putchar('\n');
      breaks++;
      col = since_space;
    }
    putchar(in[i]);
    col++;
  }
  return breaks;
}
)");

  // ---- grep_i: find 'k', case-insensitively when the flag byte is 'i'.
  add("grep_i", 5, "iOK", R"(
int umain(unsigned char *in, int n) {
  int fold_case = in[0] == 'i';
  for (long i = 1; in[i]; i++) {
    int c = in[i];
    if (fold_case) { c = tolower(c); }
    if (c == 'k') { return (int)i; }
  }
  return 0;
}
)");

  // ---- grep_lite: does the fixed pattern "ab" occur?
  add("grep_lite", 5, "xxabyy", R"(
int umain(unsigned char *in, int n) {
  for (long i = 0; in[i]; i++) {
    if (in[i] == 'a' && in[i + 1] == 'b') { return 1; }
  }
  return 0;
}
)");

  // ---- head_lines: print the first two lines.
  add("head_lines", 6, "one\ntwo\nthree\n", R"(
int umain(unsigned char *in, int n) {
  int lines = 0;
  for (long i = 0; in[i]; i++) {
    putchar(in[i]);
    if (in[i] == '\n') {
      lines++;
      if (lines == 2) { break; }
    }
  }
  return lines;
}
)");

  // ---- hexdump: two hex digits per byte (od -x flavored).
  add("hexdump", 4, "Hi!", R"(
const char digits[17] = "0123456789abcdef";
int umain(unsigned char *in, int n) {
  long count = 0;
  for (long i = 0; in[i]; i++) {
    putchar((int)(unsigned char)digits[(in[i] >> 4) & 15]);
    putchar((int)(unsigned char)digits[in[i] & 15]);
    count++;
  }
  return (int)count;
}
)");

  // ---- nl: number lines.
  add("nl", 5, "a\nbb\n", R"(
int umain(unsigned char *in, int n) {
  int line = 1;
  int at_start = 1;
  for (long i = 0; in[i]; i++) {
    if (at_start) {
      putchar('0' + line % 10);
      putchar(' ');
      at_start = 0;
    }
    putchar(in[i]);
    if (in[i] == '\n') { line++; at_start = 1; }
  }
  return line - 1;
}
)");

  // ---- od_lite: sum of printable representation decisions (od -c flavored).
  add("od_lite", 5, "a\tb", R"(
int umain(unsigned char *in, int n) {
  int specials = 0;
  for (long i = 0; in[i]; i++) {
    if (isprint(in[i])) { putchar(in[i]); }
    else { putchar('\\'); specials++; }
  }
  return specials;
}
)");

  // ---- paste_lite: interleave the two halves of the input.
  add("paste_lite", 6, "abcdef", R"(
int umain(unsigned char *in, int n) {
  long len = strlen((char*)in);
  long half = len / 2;
  for (long i = 0; i < half; i++) {
    putchar(in[i]);
    putchar(in[half + i]);
  }
  return (int)half;
}
)");

  // ---- printf_d: substitute the parsed number into "v=%d".
  add("printf_d", 4, "57", R"(
int umain(unsigned char *in, int n) {
  int v = atoi((char*)in);
  putchar('v'); putchar('=');
  if (v < 0) { putchar('-'); v = -v; }
  if (v >= 100) { putchar('0' + (v / 100) % 10); }
  if (v >= 10) { putchar('0' + (v / 10) % 10); }
  putchar('0' + v % 10);
  return v;
}
)");

  // ---- rev: reverse the input string in place, then emit.
  add("rev", 5, "hello", R"(
int umain(unsigned char *in, int n) {
  char buf[64];
  long len = strlen((char*)in);
  if (len > 63) { len = 63; }
  for (long i = 0; i < len; i++) { buf[i] = (char)in[len - 1 - i]; }
  buf[len] = 0;
  for (long i = 0; buf[i]; i++) { putchar((int)(unsigned char)buf[i]); }
  return (int)len;
}
)");

  // ---- palindrome filter (rev | cmp): is input its own reverse?
  add("rev_cmp", 5, "level", R"(
int umain(unsigned char *in, int n) {
  long len = strlen((char*)in);
  for (long i = 0; i < len / 2; i++) {
    if (in[i] != in[len - 1 - i]) { return 0; }
  }
  return 1;
}
)");

  // ---- seq: print 1..n for a single-digit n.
  add("seq", 3, "5", R"(
int umain(unsigned char *in, int n) {
  int limit = atoi((char*)in);
  if (limit > 9) { limit = 9; }
  int sum = 0;
  for (int i = 1; i <= limit; i++) {
    putchar('0' + i);
    putchar('\n');
    sum += i;
  }
  return sum;
}
)");

  // ---- seq_range: parse "<lo>:<hi>" and print the sequence (seq-style
  // numeric parsing: two atoi calls over symbolic digits, sign handling).
  add("seq_range", 5, "2:5", R"(
int umain(unsigned char *in, int n) {
  char *sep = strchr((char*)in, ':');
  if (!sep) { return -1; }
  int lo = atoi((char*)in);
  int hi = atoi(sep + 1);
  if (hi - lo > 9) { hi = lo + 9; }
  int sum = 0;
  for (int v = lo; v <= hi; v++) {
    putchar('0' + ((v % 10) + 10) % 10);
    putchar('\n');
    sum += v;
  }
  return sum;
}
)");

  // ---- sort_chars: insertion-sort the input bytes (sort(1) on characters).
  add("sort_chars", 5, "dcba", R"(
int umain(unsigned char *in, int n) {
  unsigned char buf[64];
  long len = 0;
  while (in[len] && len < 63) { buf[len] = in[len]; len++; }
  for (long i = 1; i < len; i++) {
    unsigned char key = buf[i];
    long j = i - 1;
    while (j >= 0 && buf[j] > key) {
      buf[j + 1] = buf[j];
      j--;
    }
    buf[j + 1] = key;
  }
  for (long i = 0; i < len; i++) { putchar(buf[i]); }
  return (int)len;
}
)");

  // ---- split_half: emit the first half of the input.
  add("split_half", 6, "abcdef", R"(
int umain(unsigned char *in, int n) {
  long len = strlen((char*)in);
  for (long i = 0; i < len / 2; i++) { putchar(in[i]); }
  return (int)(len / 2);
}
)");

  // ---- strings_lite: count printable runs of length >= 2.
  add("strings_lite", 5, "ab\x01zz\x02", R"(
int umain(unsigned char *in, int n) {
  int runs = 0;
  int run_len = 0;
  for (long i = 0; in[i]; i++) {
    if (isprint(in[i])) {
      run_len++;
    } else {
      if (run_len >= 2) { runs++; }
      run_len = 0;
    }
  }
  if (run_len >= 2) { runs++; }
  return runs;
}
)");

  // ---- sum_block: branch-free accumulation over a full fixed-size block
  // (sum(1) over a record) — the second suite-scale workload: 48 symbolic
  // bytes, no per-byte forks (the loop bound is the concrete n), and two
  // trailing branches whose conditions carry the whole block's support.
  // Both conditions read low bits of the plain sum, which the last byte of
  // the block can always set — satisfiable in both directions without
  // blowing the core solver's candidate budget (see docs/workloads.md on
  // writing solver-friendly wide workloads).
  add("sum_block", 48, "the fat cat sat on the mat, twice, then left,,,,", R"(
int umain(unsigned char *in, int n) {
  unsigned total = 0;
  for (long i = 0; i < n; i++) {
    total = (total + in[i]) & 0xFFFFu;
  }
  if ((total & 1u) == 1u) { putchar('x'); }
  if ((total & 2u) == 2u) { putchar('y'); }
  return (int)(total % 1009u);
}
)");

  // ---- sum_bytes: System V checksum.
  add("sum_bytes", 5, "posix sum", R"(
int umain(unsigned char *in, int n) {
  unsigned total = 0;
  for (long i = 0; in[i]; i++) { total += in[i]; }
  return (int)(total % 0xFFFFu);
}
)");

  // ---- tac_lite: print the lines in reverse order (two-line buffer).
  add("tac_lite", 6, "aa\nbb\n", R"(
int umain(unsigned char *in, int n) {
  char line1[32];
  char line2[32];
  long p1 = 0;
  long p2 = 0;
  int current = 1;
  for (long i = 0; in[i]; i++) {
    if (in[i] == '\n') { current = 2; continue; }
    if (current == 1 && p1 < 31) { line1[p1] = (char)in[i]; p1++; }
    else if (current == 2 && p2 < 31) { line2[p2] = (char)in[i]; p2++; }
  }
  for (long i = 0; i < p2; i++) { putchar((int)(unsigned char)line2[i]); }
  putchar('\n');
  for (long i = 0; i < p1; i++) { putchar((int)(unsigned char)line1[i]); }
  putchar('\n');
  return (int)(p1 + p2);
}
)");

  // ---- tail_line: print everything after the last newline.
  add("tail_line", 6, "x\ny\nzz", R"(
int umain(unsigned char *in, int n) {
  char *s = (char*)in;
  char *last = strrchr(s, '\n');
  char *start = last ? last + 1 : s;
  long i = 0;
  while (start[i]) { putchar((int)(unsigned char)start[i]); i++; }
  return (int)i;
}
)");

  // ---- test_eq: `test s1 = s2` over ';'-separated operands.
  add("test_eq", 6, "ab;ab", R"(
int umain(unsigned char *in, int n) {
  char *s = (char*)in;
  char *sep = strchr(s, ';');
  if (!sep) { return 2; }
  char lhs[32];
  long len = 0;
  while (s + len != sep && len < 31) { lhs[len] = s[len]; len++; }
  lhs[len] = 0;
  return strcmp(lhs, sep + 1) == 0 ? 0 : 1;
}
)");

  // ---- tolower_filter / toupper_filter: tr A-Z a-z and back.
  add("tolower_filter", 5, "MiXeD", R"(
int umain(unsigned char *in, int n) {
  int changed = 0;
  for (long i = 0; in[i]; i++) {
    int c = tolower(in[i]);
    if (c != in[i]) { changed++; }
    putchar(c);
  }
  return changed;
}
)");

  add("toupper_filter", 5, "MiXeD", R"(
int umain(unsigned char *in, int n) {
  int changed = 0;
  for (long i = 0; in[i]; i++) {
    int c = toupper(in[i]);
    if (c != in[i]) { changed++; }
    putchar(c);
  }
  return changed;
}
)");

  // ---- tr_ab: tr 'a' 'b'.
  add("tr_ab", 5, "banana", R"(
int umain(unsigned char *in, int n) {
  int replaced = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == 'a') { putchar('b'); replaced++; }
    else { putchar(in[i]); }
  }
  return replaced;
}
)");

  // ---- tr_flex: upcase or downcase, chosen by the first byte.
  add("tr_flex", 5, "uab", R"(
int umain(unsigned char *in, int n) {
  int up = in[0] == 'u';
  int changed = 0;
  for (long i = 1; in[i]; i++) {
    int c = up ? toupper(in[i]) : tolower(in[i]);
    if (c != in[i]) { changed++; }
    putchar(c);
  }
  return changed;
}
)");

  // ---- tr_squeeze: squeeze runs of spaces to one (tr -s ' ').
  add("tr_squeeze", 5, "a  b   c", R"(
int umain(unsigned char *in, int n) {
  int squeezed = 0;
  int prev_space = 0;
  for (long i = 0; in[i]; i++) {
    if (in[i] == ' ') {
      if (prev_space) { squeezed++; continue; }
      prev_space = 1;
    } else {
      prev_space = 0;
    }
    putchar(in[i]);
  }
  return squeezed;
}
)");

  // ---- trim: strip leading/trailing whitespace.
  add("trim", 6, "  hi  ", R"(
int umain(unsigned char *in, int n) {
  long len = strlen((char*)in);
  long start = 0;
  while (in[start] && isspace(in[start])) { start++; }
  long end = len;
  while (end > start && isspace(in[end - 1])) { end--; }
  for (long i = start; i < end; i++) { putchar(in[i]); }
  return (int)(end - start);
}
)");

  // ---- true: exit 0.
  add("true", 2, "", R"(
int umain(unsigned char *in, int n) { return 0; }
)");

  // ---- unexpand: four spaces to a tab.
  add("unexpand", 5, "a    b", R"(
int umain(unsigned char *in, int n) {
  int packed = 0;
  long i = 0;
  while (in[i]) {
    if (in[i] == ' ' && in[i+1] == ' ' && in[i+2] == ' ' && in[i+3] == ' ') {
      putchar('\t');
      packed++;
      i += 4;
    } else {
      putchar(in[i]);
      i++;
    }
  }
  return packed;
}
)");

  // ---- uniq_chars: drop repeated adjacent characters (uniq on bytes).
  add("uniq_chars", 5, "aabbc", R"(
int umain(unsigned char *in, int n) {
  int kept = 0;
  int prev = -1;
  for (long i = 0; in[i]; i++) {
    if (in[i] != prev) {
      putchar(in[i]);
      kept++;
      prev = in[i];
    }
  }
  return kept;
}
)");

  // ---- uniq_count: run-length per adjacent byte run (uniq -c), digit-capped.
  add("uniq_count", 5, "aabbbc", R"(
int umain(unsigned char *in, int n) {
  int runs = 0;
  long i = 0;
  while (in[i]) {
    unsigned char prev = in[i];
    int count = 0;
    while (in[i] == prev) { count++; i++; }
    if (count > 9) { count = 9; }
    putchar('0' + count);
    putchar((int)prev);
    runs++;
  }
  return runs;
}
)");

  // ---- vis: escape non-printable bytes as octal (vis/cat -v).
  add("vis", 4, "a\x03b", R"(
int umain(unsigned char *in, int n) {
  int escaped = 0;
  for (long i = 0; in[i]; i++) {
    if (isprint(in[i])) {
      putchar(in[i]);
    } else {
      putchar('\\');
      putchar('0' + ((in[i] >> 6) & 7));
      putchar('0' + ((in[i] >> 3) & 7));
      putchar('0' + (in[i] & 7));
      escaped++;
    }
  }
  return escaped;
}
)");

  // ---- wc: the paper's flagship — lines, words, chars packed into an int.
  add("wc", 6, "two words\nand more\n", R"(
int words(unsigned char *str, int any) {
  int res = 0;
  int new_word = 1;
  for (unsigned char *p = str; *p; ++p) {
    if (isspace((int)*p) || (any && !isalpha((int)*p))) {
      new_word = 1;
    } else {
      if (new_word) { ++res; new_word = 0; }
    }
  }
  return res;
}
int umain(unsigned char *in, int n) {
  int lines = 0;
  int chars = 0;
  for (long i = 0; in[i]; i++) {
    chars++;
    if (in[i] == '\n') { lines++; }
  }
  return lines * 10000 + words(in, 0) * 100 + chars % 100;
}
)");

  // ---- wc_any: Listing 1 verbatim, with `any` supplied at run time — the
  // exact unswitching scenario of the paper's Section 1.
  add("wc_any", 5, "ado be", R"(
int wc(unsigned char *str, int any) {
  int res = 0;
  int new_word = 1;
  for (unsigned char *p = str; *p; ++p) {
    if (isspace((int)*p) || (any && !isalpha((int)*p))) {
      new_word = 1;
    } else {
      if (new_word) { ++res; new_word = 0; }
    }
  }
  return res;
}
int umain(unsigned char *in, int n) {
  return wc(in + 1, in[0] == 'a');
}
)");

  // ---- word_freq: count occurrences of the most frequent letter.
  add("word_freq", 5, "abbccc", R"(
int umain(unsigned char *in, int n) {
  int counts[26];
  for (int i = 0; i < 26; i++) { counts[i] = 0; }
  for (long i = 0; in[i]; i++) {
    int c = tolower(in[i]);
    if (c >= 'a' && c <= 'z') { counts[c - 'a']++; }
  }
  int best = 0;
  for (int i = 0; i < 26; i++) {
    if (counts[i] > best) { best = counts[i]; }
  }
  return best;
}
)");

  // ---- yes_lite: fixed output, input-independent.
  add("yes_lite", 2, "", R"(
int umain(unsigned char *in, int n) {
  for (int i = 0; i < 4; i++) { putchar('y'); putchar('\n'); }
  return 0;
}
)");

  return suite;
}

}  // namespace

const std::vector<Workload>& CoreutilsSuite() {
  static const std::vector<Workload>* kSuite = new std::vector<Workload>(BuildSuite());
  return *kSuite;
}

const Workload* FindWorkload(const std::string& name) {
  // Name index built once alongside the suite; lookups are O(log n) instead
  // of a linear scan over every program source.
  static const std::map<std::string, const Workload*>* kByName = [] {
    auto* index = new std::map<std::string, const Workload*>();
    for (const Workload& workload : CoreutilsSuite()) {
      (*index)[workload.name] = &workload;
    }
    return index;
  }();
  auto it = kByName->find(name);
  return it == kByName->end() ? nullptr : it->second;
}

}  // namespace overify
