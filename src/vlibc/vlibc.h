// Two flavors of the C library subset, both written in MiniC.
//
// The paper (§3, "Library-level changes") ships a verification-tailored libC
// alongside the compiler: KLEE did the same with uClibc, KLOVER rewrote C++
// library functions. Here:
//
//  - The STANDARD flavor is written the way a performance-oriented libc is:
//    short-circuit range-check chains in the ctype predicates, early-exit
//    loops. Under symbolic execution each predicate contributes multiple
//    branch alternatives per input byte (the O(3^n) of Table 1 at -O0).
//
//  - The VERIFY flavor computes the same functions branch-free (bitwise
//    range tricks) and adds precondition checks (`__check`) so that misuse
//    is caught "closer to the root cause" (§3).
//
// Both flavors are linked as MiniC source ahead of the program; functions
// are marked Function::is_libc so -OVERIFY always inlines them.
#pragma once

#include <string>

namespace overify {

// The performance-oriented flavor.
const std::string& StandardLibcSource();

// The verification-oriented flavor (same observable behaviour on all
// well-defined inputs; extra precondition checks on misuse).
const std::string& VerifyLibcSource();

}  // namespace overify
