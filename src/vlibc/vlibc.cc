#include "src/vlibc/vlibc.h"

namespace overify {

namespace {

// ---------------------------------------------------------------------------
// Standard flavor: idiomatic early-exit C, branchy predicates.
// ---------------------------------------------------------------------------
const char kStandardLibc[] = R"MINIC(
/* ---- ctype.h ---- */

int isspace(int c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r';
}

int isdigit(int c) { return c >= '0' && c <= '9'; }

int isalpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

int isalnum(int c) { return isalpha(c) || isdigit(c); }

int isupper(int c) { return c >= 'A' && c <= 'Z'; }

int islower(int c) { return c >= 'a' && c <= 'z'; }

int isprint(int c) { return c >= 32 && c < 127; }

int ispunct(int c) { return isprint(c) && c != ' ' && !isalnum(c); }

int isxdigit(int c) {
  return isdigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

int toupper(int c) {
  if (c >= 'a' && c <= 'z') { return c - 32; }
  return c;
}

int tolower(int c) {
  if (c >= 'A' && c <= 'Z') { return c + 32; }
  return c;
}

/* ---- string.h ---- */

long strlen(char *s) {
  long n = 0;
  while (s[n]) { n++; }
  return n;
}

int strcmp(char *a, char *b) {
  long i = 0;
  while (a[i] && a[i] == b[i]) { i++; }
  return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

int strncmp(char *a, char *b, long n) {
  long i = 0;
  while (i < n && a[i] && a[i] == b[i]) { i++; }
  if (i == n) { return 0; }
  return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

char *strchr(char *s, int c) {
  long i = 0;
  while (s[i]) {
    if ((int)(unsigned char)s[i] == c) { return s + i; }
    i++;
  }
  if (c == 0) { return s + i; }
  return 0;
}

char *strrchr(char *s, int c) {
  long i = 0;
  char *last = 0;
  while (s[i]) {
    if ((int)(unsigned char)s[i] == c) { last = s + i; }
    i++;
  }
  if (c == 0) { return s + i; }
  return last;
}

char *strcpy(char *dst, char *src) {
  long i = 0;
  while (src[i]) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return dst;
}

char *strncpy(char *dst, char *src, long n) {
  long i = 0;
  while (i < n && src[i]) { dst[i] = src[i]; i++; }
  while (i < n) { dst[i] = 0; i++; }
  return dst;
}

char *strcat(char *dst, char *src) {
  long d = strlen(dst);
  long i = 0;
  while (src[i]) { dst[d + i] = src[i]; i++; }
  dst[d + i] = 0;
  return dst;
}

unsigned char *memcpy(unsigned char *dst, unsigned char *src, long n) {
  for (long i = 0; i < n; i++) { dst[i] = src[i]; }
  return dst;
}

unsigned char *memset(unsigned char *dst, int c, long n) {
  for (long i = 0; i < n; i++) { dst[i] = (unsigned char)c; }
  return dst;
}

int memcmp(unsigned char *a, unsigned char *b, long n) {
  for (long i = 0; i < n; i++) {
    if (a[i] != b[i]) { return (int)a[i] - (int)b[i]; }
  }
  return 0;
}

/* ---- stdlib.h ---- */

int abs(int x) {
  if (x < 0) { return -x; }
  return x;
}

int atoi(char *s) {
  long i = 0;
  int sign = 1;
  int value = 0;
  while (s[i] == ' ' || s[i] == '\t') { i++; }
  if (s[i] == '-') { sign = -1; i++; }
  else if (s[i] == '+') { i++; }
  while (isdigit((int)(unsigned char)s[i])) {
    value = value * 10 + ((int)(unsigned char)s[i] - '0');
    i++;
  }
  return sign * value;
}
)MINIC";

// ---------------------------------------------------------------------------
// Verify flavor: branch-free predicates, precondition checks.
// ---------------------------------------------------------------------------
const char kVerifyLibc[] = R"MINIC(
/* ---- ctype.h (branch-free) ---- */

int isspace(int c) {
  unsigned u = (unsigned)c;
  return (int)(((unsigned)(u == 32u)) | (unsigned)((u - 9u) < 5u));
}

int isdigit(int c) {
  return (int)(unsigned)(((unsigned)c - 48u) < 10u);
}

int isalpha(int c) {
  unsigned l = ((unsigned)c) | 32u;
  return (int)(unsigned)((l - 97u) < 26u);
}

int isalnum(int c) {
  unsigned l = ((unsigned)c) | 32u;
  unsigned alpha = (unsigned)((l - 97u) < 26u);
  unsigned digit = (unsigned)(((unsigned)c - 48u) < 10u);
  return (int)(alpha | digit);
}

int isupper(int c) {
  return (int)(unsigned)(((unsigned)c - 65u) < 26u);
}

int islower(int c) {
  return (int)(unsigned)(((unsigned)c - 97u) < 26u);
}

int isprint(int c) {
  return (int)(unsigned)(((unsigned)c - 32u) < 95u);
}

int ispunct(int c) {
  unsigned p = (unsigned)(((unsigned)c - 33u) < 94u);  /* printable, not space */
  unsigned l = ((unsigned)c) | 32u;
  unsigned alpha = (unsigned)((l - 97u) < 26u);
  unsigned digit = (unsigned)(((unsigned)c - 48u) < 10u);
  return (int)(p & (1u - (alpha | digit)));
}

int isxdigit(int c) {
  unsigned digit = (unsigned)(((unsigned)c - 48u) < 10u);
  unsigned l = ((unsigned)c) | 32u;
  unsigned af = (unsigned)((l - 97u) < 6u);
  return (int)(digit | af);
}

int toupper(int c) {
  unsigned low = (unsigned)(((unsigned)c - 97u) < 26u);
  return c - (int)(low << 5);
}

int tolower(int c) {
  unsigned up = (unsigned)(((unsigned)c - 65u) < 26u);
  return c + (int)(up << 5);
}

/* ---- string.h (checked preconditions; loops remain input-bounded) ---- */

long strlen(char *s) {
  __check(s != 0, "strlen: null argument");
  long n = 0;
  while (s[n]) { n++; }
  return n;
}

int strcmp(char *a, char *b) {
  __check(a != 0, "strcmp: null argument");
  __check(b != 0, "strcmp: null argument");
  long i = 0;
  while (a[i] && a[i] == b[i]) { i++; }
  return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

int strncmp(char *a, char *b, long n) {
  __check(a != 0, "strncmp: null argument");
  __check(b != 0, "strncmp: null argument");
  __check(n >= 0, "strncmp: negative length");
  long i = 0;
  while (i < n && a[i] && a[i] == b[i]) { i++; }
  if (i == n) { return 0; }
  return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

char *strchr(char *s, int c) {
  __check(s != 0, "strchr: null argument");
  long i = 0;
  while (s[i]) {
    if ((int)(unsigned char)s[i] == c) { return s + i; }
    i++;
  }
  if (c == 0) { return s + i; }
  return 0;
}

char *strrchr(char *s, int c) {
  __check(s != 0, "strrchr: null argument");
  long i = 0;
  char *last = 0;
  while (s[i]) {
    if ((int)(unsigned char)s[i] == c) { last = s + i; }
    i++;
  }
  if (c == 0) { return s + i; }
  return last;
}

char *strcpy(char *dst, char *src) {
  __check(dst != 0, "strcpy: null destination");
  __check(src != 0, "strcpy: null source");
  long i = 0;
  while (src[i]) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return dst;
}

char *strncpy(char *dst, char *src, long n) {
  __check(dst != 0, "strncpy: null destination");
  __check(src != 0, "strncpy: null source");
  __check(n >= 0, "strncpy: negative length");
  long i = 0;
  while (i < n && src[i]) { dst[i] = src[i]; i++; }
  while (i < n) { dst[i] = 0; i++; }
  return dst;
}

char *strcat(char *dst, char *src) {
  __check(dst != 0, "strcat: null destination");
  __check(src != 0, "strcat: null source");
  long d = strlen(dst);
  long i = 0;
  while (src[i]) { dst[d + i] = src[i]; i++; }
  dst[d + i] = 0;
  return dst;
}

unsigned char *memcpy(unsigned char *dst, unsigned char *src, long n) {
  __check(dst != 0, "memcpy: null destination");
  __check(src != 0, "memcpy: null source");
  __check(n >= 0, "memcpy: negative length");
  for (long i = 0; i < n; i++) { dst[i] = src[i]; }
  return dst;
}

unsigned char *memset(unsigned char *dst, int c, long n) {
  __check(dst != 0, "memset: null destination");
  __check(n >= 0, "memset: negative length");
  for (long i = 0; i < n; i++) { dst[i] = (unsigned char)c; }
  return dst;
}

int memcmp(unsigned char *a, unsigned char *b, long n) {
  __check(a != 0, "memcmp: null argument");
  __check(b != 0, "memcmp: null argument");
  __check(n >= 0, "memcmp: negative length");
  int result = 0;
  for (long i = 0; i < n; i++) {
    int diff = (int)a[i] - (int)b[i];
    result = result ? result : diff;  /* keep the first difference */
  }
  return result;
}

/* ---- stdlib.h ---- */

int abs(int x) {
  int mask = x >> 31;
  return (x ^ mask) - mask;
}

int atoi(char *s) {
  __check(s != 0, "atoi: null argument");
  long i = 0;
  int sign = 1;
  int value = 0;
  while (s[i] == ' ' || s[i] == '\t') { i++; }
  if (s[i] == '-') { sign = -1; i++; }
  else if (s[i] == '+') { i++; }
  while (isdigit((int)(unsigned char)s[i])) {
    value = value * 10 + ((int)(unsigned char)s[i] - '0');
    i++;
  }
  return sign * value;
}
)MINIC";

}  // namespace

const std::string& StandardLibcSource() {
  static const std::string* kSource = new std::string(kStandardLibc);
  return *kSource;
}

const std::string& VerifyLibcSource() {
  static const std::string* kSource = new std::string(kVerifyLibc);
  return *kSource;
}

}  // namespace overify
