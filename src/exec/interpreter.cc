#include "src/exec/interpreter.h"

#include <map>
#include <unordered_map>

#include "src/ir/constant.h"
#include "src/ir/fold.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

// A concrete runtime value: either an integer bit pattern or a pointer
// (object id + byte offset), mirroring the symbolic engine's model so the
// two stay comparable.
struct CVal {
  bool is_pointer = false;
  bool bound = false;     // set once a frame slot is written
  uint64_t bits = 0;      // integer payload
  uint64_t object = 0;    // pointer payload: object id (0 = null)
  uint64_t offset = 0;

  static CVal Int(uint64_t v) {
    CVal c;
    c.bound = true;
    c.bits = v;
    return c;
  }
  static CVal Ptr(uint64_t object, uint64_t offset) {
    CVal c;
    c.is_pointer = true;
    c.bound = true;
    c.object = object;
    c.offset = offset;
    return c;
  }
};

struct ConcreteObject {
  std::vector<uint8_t> bytes;
  bool read_only = false;
  std::string name;
};

struct Frame {
  Function* fn = nullptr;
  BasicBlock* block = nullptr;
  BasicBlock* prev_block = nullptr;
  BasicBlock::iterator pc;
  // Indexed by each value's dense local slot (Function::AssignLocalSlots).
  std::vector<CVal> locals;
  std::vector<uint64_t> allocas;
  const CallInst* call_site = nullptr;
};

}  // namespace

class Interpreter::Impl {
 public:
  Impl(Module& module, CostModel costs) : module_(module), costs_(costs) {}

  InterpResult Run(Function* entry, const std::vector<uint8_t>& input,
                   const InterpLimits& limits) {
    result_ = InterpResult();
    objects_.clear();
    pointer_slots_.clear();
    stack_.clear();
    slot_cache_.Clear();
    next_object_ = 1;

    for (const auto& global : module_.globals()) {
      uint64_t id = next_object_++;
      objects_[id] =
          ConcreteObject{global->initializer(), global->is_const(), global->name()};
      global_objects_[global.get()] = id;
    }

    Frame frame;
    frame.fn = entry;
    frame.block = entry->entry();
    frame.pc = frame.block->begin();
    frame.locals.resize(slot_cache_.Count(entry));
    if (entry->NumArgs() >= 1) {
      OVERIFY_ASSERT(entry->NumArgs() == 2 || entry->NumArgs() == 4,
                     "entry must be (u8* buf, i32 len), (u8* a, i32 na, u8* b, i32 nb), or ()");
      // A 4-arg entry models two-input utilities: the input splits
      // first-buffer-gets-the-ceiling, mirroring the symbolic engine's
      // symbol-index split exactly (docs/workloads.md).
      size_t first = entry->NumArgs() == 4 ? input.size() - input.size() / 2 : input.size();
      for (size_t arg = 0; arg + 1 < entry->NumArgs(); arg += 2) {
        size_t begin = arg == 0 ? 0 : first;
        size_t end = arg == 0 ? first : input.size();
        uint64_t id = next_object_++;
        std::vector<uint8_t> buffer(input.begin() + begin, input.begin() + end);
        buffer.push_back(0);
        objects_[id] = ConcreteObject{std::move(buffer), false,
                                      arg == 0 ? "input" : "input2"};
        frame.locals[entry->Arg(arg)->local_slot()] = CVal::Ptr(id, 0);
        frame.locals[entry->Arg(arg + 1)->local_slot()] =
            CVal::Int(TruncateToWidth(end - begin, entry->Arg(arg + 1)->type()->bits()));
      }
    }
    stack_.push_back(std::move(frame));

    while (!stack_.empty()) {
      if (result_.instructions >= limits.max_instructions) {
        return Trap("instruction limit exceeded");
      }
      if (!StepOne()) {
        return result_;  // trapped or finished
      }
    }
    return result_;
  }

 private:
  InterpResult Trap(std::string message) {
    result_.ok = false;
    result_.error = std::move(message);
    stack_.clear();
    return result_;
  }

  Frame& Top() { return stack_.back(); }

  CVal Resolve(const Value* v) {
    if (const auto* ci = DynCast<ConstantInt>(v)) {
      return CVal::Int(ci->value());
    }
    if (Isa<NullValue>(v)) {
      return CVal::Ptr(0, 0);
    }
    if (Isa<UndefValue>(v)) {
      return v->type()->IsPointer() ? CVal::Ptr(0, 0) : CVal::Int(0);
    }
    if (const auto* global = DynCast<GlobalVariable>(v)) {
      return CVal::Ptr(global_objects_.at(global), 0);
    }
    Frame& frame = Top();
    uint32_t slot = v->local_slot();
    OVERIFY_ASSERT(slot < frame.locals.size() && frame.locals[slot].bound,
                   "use of unbound value");
    return frame.locals[slot];
  }

  void Set(const Value* v, CVal value) {
    Frame& frame = Top();
    uint32_t slot = v->local_slot();
    OVERIFY_ASSERT(slot < frame.locals.size(), "value has no slot in this frame");
    frame.locals[slot] = value;
  }

  void Charge(uint64_t units) { result_.cost_units += units; }

  // Returns false when execution stops (trap or final return); the result_
  // is already filled in that case... except for normal instruction steps,
  // where it returns true to continue.
  bool StepOne() {
    Instruction* inst = Top().pc->get();
    ++result_.instructions;

    switch (inst->opcode()) {
      case Opcode::kAlloca: {
        const auto* alloca = Cast<AllocaInst>(inst);
        uint64_t id = next_object_++;
        objects_[id] = ConcreteObject{
            std::vector<uint8_t>(alloca->allocated_type()->SizeInBytes(), 0), false,
            alloca->HasName() ? alloca->name() : "alloca"};
        Top().allocas.push_back(id);
        Set(inst, CVal::Ptr(id, 0));
        Charge(costs_.arith);
        break;
      }
      case Opcode::kLoad: {
        CVal ptr = Resolve(inst->Operand(0));
        Charge(costs_.memory);
        Type* type = inst->type();
        if (type->IsPointer()) {
          if (!CheckAccess(ptr, 8)) {
            return false;
          }
          auto it = pointer_slots_.find({ptr.object, ptr.offset});
          Set(inst, it == pointer_slots_.end() ? CVal::Ptr(0, 0) : it->second);
          break;
        }
        uint64_t width = type->SizeInBytes();
        if (!CheckAccess(ptr, width)) {
          return false;
        }
        const auto& bytes = objects_.at(ptr.object).bytes;
        uint64_t value = 0;
        for (uint64_t i = 0; i < width; ++i) {
          value |= static_cast<uint64_t>(bytes[ptr.offset + i]) << (8 * i);
        }
        if (type->IsBool()) {
          value = value != 0 ? 1 : 0;
        }
        Set(inst, CVal::Int(TruncateToWidth(value, type->IsBool() ? 1 : type->bits())));
        break;
      }
      case Opcode::kStore: {
        CVal value = Resolve(inst->Operand(0));
        CVal ptr = Resolve(inst->Operand(1));
        Charge(costs_.memory);
        Type* type = inst->Operand(0)->type();
        if (type->IsPointer()) {
          if (!CheckAccess(ptr, 8)) {
            return false;
          }
          pointer_slots_[{ptr.object, ptr.offset}] = value;
          break;
        }
        uint64_t width = type->SizeInBytes();
        if (!CheckAccess(ptr, width)) {
          return false;
        }
        ConcreteObject& object = objects_.at(ptr.object);
        if (object.read_only) {
          Trap(StrFormat("write to read-only object '%s'", object.name.c_str()));
          return false;
        }
        uint64_t bits = type->IsBool() ? (value.bits & 1) : value.bits;
        for (uint64_t i = 0; i < width; ++i) {
          object.bytes[ptr.offset + i] = static_cast<uint8_t>(bits >> (8 * i));
        }
        break;
      }
      case Opcode::kGep: {
        const auto* gep = Cast<GepInst>(inst);
        CVal base = Resolve(gep->base());
        int64_t offset = 0;
        Type* current = gep->source_type();
        for (unsigned i = 0; i < gep->NumIndices(); ++i) {
          CVal index = Resolve(gep->Index(i));
          int64_t idx = SignExtend(index.bits, gep->Index(i)->type()->bits());
          if (i == 0) {
            offset += idx * static_cast<int64_t>(current->SizeInBytes());
          } else if (current->IsArray()) {
            current = current->element();
            offset += idx * static_cast<int64_t>(current->SizeInBytes());
          } else {
            offset += static_cast<int64_t>(current->FieldOffset(static_cast<unsigned>(idx)));
            current = current->fields()[static_cast<unsigned>(idx)];
          }
        }
        Set(inst, CVal::Ptr(base.object, base.offset + static_cast<uint64_t>(offset)));
        Charge(costs_.arith);
        break;
      }
      case Opcode::kICmp: {
        const auto* cmp = Cast<ICmpInst>(inst);
        CVal lhs = Resolve(cmp->lhs());
        CVal rhs = Resolve(cmp->rhs());
        bool result;
        if (lhs.is_pointer || rhs.is_pointer) {
          // Compare (object, offset) lexicographically; equality requires
          // same object and offset.
          uint64_t l = lhs.is_pointer ? lhs.object * (1ull << 32) + lhs.offset : lhs.bits;
          uint64_t r = rhs.is_pointer ? rhs.object * (1ull << 32) + rhs.offset : rhs.bits;
          result = FoldICmp(cmp->predicate(), 64, l, r);
        } else {
          unsigned bits = cmp->lhs()->type()->bits();
          result = FoldICmp(cmp->predicate(), bits, lhs.bits, rhs.bits);
        }
        Set(inst, CVal::Int(result ? 1 : 0));
        Charge(costs_.arith);
        break;
      }
      case Opcode::kSelect: {
        CVal cond = Resolve(inst->Operand(0));
        Set(inst, cond.bits != 0 ? Resolve(inst->Operand(1)) : Resolve(inst->Operand(2)));
        Charge(costs_.select);
        break;
      }
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kTrunc: {
        CVal v = Resolve(inst->Operand(0));
        unsigned src = inst->Operand(0)->type()->bits();
        unsigned dst = inst->type()->bits();
        Set(inst, CVal::Int(FoldCast(inst->opcode(), src, dst, v.bits)));
        Charge(costs_.arith);
        break;
      }
      case Opcode::kPhi: {
        BasicBlock* from = Top().prev_block;
        std::vector<std::pair<Instruction*, CVal>> values;
        for (auto& phi_inst : *Top().block) {
          auto* phi = DynCast<PhiInst>(phi_inst.get());
          if (phi == nullptr) {
            break;
          }
          values.push_back({phi, Resolve(phi->IncomingValueFor(from))});
        }
        result_.instructions += values.size() - 1;
        for (auto& [phi, value] : values) {
          Set(phi, value);
        }
        Top().pc = Top().block->FirstNonPhi();
        return true;
      }
      case Opcode::kCheck: {
        const auto* check = Cast<CheckInst>(inst);
        CVal cond = Resolve(check->condition());
        Charge(costs_.arith);
        if (cond.bits == 0) {
          Trap(StrFormat("check failed (%s): %s", CheckKindName(check->check_kind()),
                         check->message().c_str()));
          return false;
        }
        break;
      }
      case Opcode::kCall: {
        const auto* call = Cast<CallInst>(inst);
        Function* callee = call->callee();
        Charge(costs_.call);
        if (callee->IsDeclaration()) {
          if (!ExecExternal(call)) {
            return false;
          }
          break;
        }
        if (stack_.size() >= 1024) {
          Trap("stack overflow");
          return false;
        }
        Frame frame;
        frame.fn = callee;
        frame.block = callee->entry();
        frame.pc = frame.block->begin();
        frame.call_site = call;
        frame.locals.resize(slot_cache_.Count(callee));
        for (unsigned i = 0; i < call->NumArgs(); ++i) {
          frame.locals[callee->Arg(i)->local_slot()] = Resolve(call->Arg(i));
        }
        stack_.push_back(std::move(frame));
        return true;
      }
      case Opcode::kBr: {
        const auto* br = Cast<BranchInst>(inst);
        BasicBlock* dest;
        if (br->IsConditional()) {
          Charge(costs_.branch);
          dest = Resolve(br->condition()).bits != 0 ? br->true_dest() : br->false_dest();
        } else {
          Charge(costs_.jump);
          dest = br->SingleDest();
        }
        Frame& frame = Top();
        frame.prev_block = frame.block;
        frame.block = dest;
        frame.pc = dest->begin();
        return true;
      }
      case Opcode::kRet: {
        const auto* ret = Cast<RetInst>(inst);
        CVal result;
        if (ret->HasValue()) {
          result = Resolve(ret->value());
        }
        for (uint64_t id : Top().allocas) {
          objects_.erase(id);
        }
        const CallInst* call_site = Top().call_site;
        Function* fn = Top().fn;
        stack_.pop_back();
        if (stack_.empty()) {
          result_.ok = true;
          if (ret->HasValue()) {
            result_.return_value = result.is_pointer
                                       ? static_cast<int64_t>(result.offset)
                                       : SignExtend(result.bits, fn->return_type()->bits());
          }
          return false;
        }
        if (call_site != nullptr && !call_site->type()->IsVoid()) {
          Set(call_site, result);
        }
        ++Top().pc;
        return true;
      }
      case Opcode::kUnreachable:
        Trap("executed 'unreachable'");
        return false;
      default: {
        // Binary arithmetic.
        OVERIFY_ASSERT(inst->IsBinaryOp(), "unhandled opcode");
        CVal lhs = Resolve(inst->Operand(0));
        CVal rhs = Resolve(inst->Operand(1));
        unsigned bits = inst->type()->bits();
        switch (inst->opcode()) {
          case Opcode::kMul:
            Charge(costs_.mul);
            break;
          case Opcode::kUDiv:
          case Opcode::kSDiv:
          case Opcode::kURem:
          case Opcode::kSRem:
            Charge(costs_.div);
            break;
          default:
            Charge(costs_.arith);
            break;
        }
        // Pointer arithmetic can reach binary ops only via optimizer
        // transforms we do not perform; integers only here.
        auto folded = FoldBinary(inst->opcode(), bits, lhs.bits, rhs.bits);
        if (!folded.has_value()) {
          switch (inst->opcode()) {
            case Opcode::kUDiv:
            case Opcode::kSDiv:
            case Opcode::kURem:
            case Opcode::kSRem:
              Trap(rhs.bits == 0 ? "division by zero" : "signed division overflow");
              return false;
            default:
              // Oversized shifts are defined as zero (consistent with the
              // symbolic engine).
              folded = 0;
              break;
          }
        }
        Set(inst, CVal::Int(*folded));
        break;
      }
    }
    ++Top().pc;
    return true;
  }

  bool CheckAccess(const CVal& ptr, uint64_t width) {
    if (!ptr.is_pointer || ptr.object == 0) {
      Trap("null pointer dereference");
      return false;
    }
    auto it = objects_.find(ptr.object);
    if (it == objects_.end()) {
      Trap("use of a dead object");
      return false;
    }
    if (ptr.offset + width > it->second.bytes.size()) {
      Trap(StrFormat("out-of-bounds access to '%s' (offset %llu, size %zu)",
                     it->second.name.c_str(), static_cast<unsigned long long>(ptr.offset),
                     it->second.bytes.size()));
      return false;
    }
    return true;
  }

  bool ExecExternal(const CallInst* call) {
    const std::string& name = call->callee()->name();
    if (name == "putchar") {
      CVal c = Resolve(call->Arg(0));
      result_.output += static_cast<char>(c.bits & 0xFF);
      Set(call, c);
      return true;  // the caller advances the pc
    }
    if (name == "getchar") {
      Set(call, CVal::Int(TruncateToWidth(static_cast<uint64_t>(-1), 32)));
      return true;
    }
    if (name == "abort") {
      Trap("abort() called");
      return false;
    }
    Trap(StrFormat("call to unmodeled external '%s'", name.c_str()));
    return false;
  }

  Module& module_;
  CostModel costs_;
  InterpResult result_;
  std::vector<Frame> stack_;
  std::map<uint64_t, ConcreteObject> objects_;
  std::map<const GlobalVariable*, uint64_t> global_objects_;
  std::map<std::pair<uint64_t, uint64_t>, CVal> pointer_slots_;
  LocalSlotCache slot_cache_;
  uint64_t next_object_ = 1;
};

Interpreter::Interpreter(Module& module, CostModel costs)
    : impl_(std::make_unique<Impl>(module, costs)), module_(module) {}

Interpreter::~Interpreter() = default;

InterpResult Interpreter::Run(Function* entry, const std::vector<uint8_t>& input,
                              const InterpLimits& limits) {
  return impl_->Run(entry, input, limits);
}

InterpResult Interpreter::Run(const std::string& entry_name, const std::string& input,
                              const InterpLimits& limits) {
  Function* entry = module_.GetFunction(entry_name);
  OVERIFY_ASSERT(entry != nullptr && !entry->IsDeclaration(), "missing entry function");
  return impl_->Run(entry, std::vector<uint8_t>(input.begin(), input.end()), limits);
}

}  // namespace overify
