// Concrete VIR interpreter with a CPU-oriented cost model.
//
// Used to measure "execution time" the way Table 1 of the paper does: the
// branch-free -OVERIFY code must come out *slower* here than the branching
// -O3 code (the paper reports 2.5x), because a CPU executes a skipped branch
// for almost nothing while -OVERIFY's speculation executes everything.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/module.h"

namespace overify {

// Abstract execution costs, loosely modeled on a modern out-of-order core.
// Conditional branches are cheap (predictors hide them almost entirely);
// conditional selects (cmov) sit on the data dependency chain and cost more
// in practice — this asymmetry is exactly why a CPU-oriented compiler
// refuses the aggressive if-conversion that -OVERIFY wants (§1 of the
// paper: the branch-free wc runs 2.5x slower than the -O3 version).
struct CostModel {
  uint64_t arith = 1;
  uint64_t mul = 3;
  uint64_t div = 20;
  uint64_t memory = 4;   // load/store (L1 hit)
  uint64_t branch = 1;   // conditional branch (predicted)
  uint64_t jump = 1;     // unconditional
  uint64_t call = 10;    // call/ret pair amortized
  uint64_t select = 3;   // cmov: serializes the dependency chain
};

struct InterpResult {
  bool ok = false;
  std::string error;      // trap description when !ok
  int64_t return_value = 0;
  uint64_t instructions = 0;
  uint64_t cost_units = 0;
  std::string output;     // bytes written via putchar
};

struct InterpLimits {
  uint64_t max_instructions = 1ull << 32;
};

class Interpreter {
 public:
  explicit Interpreter(Module& module, CostModel costs = {});
  ~Interpreter();

  // Runs `entry` with `input` as the buffer argument (NUL terminator added),
  // matching the symbolic engine's convention: entry(u8* buf, i32 n) or ().
  // A 4-arg entry (u8* a, i32 na, u8* b, i32 nb) models two-input utilities;
  // the input splits first-buffer-gets-the-ceiling, exactly as the engine
  // splits its symbolic bytes (docs/workloads.md).
  InterpResult Run(Function* entry, const std::vector<uint8_t>& input,
                   const InterpLimits& limits = {});
  InterpResult Run(const std::string& entry_name, const std::string& input,
                   const InterpLimits& limits = {});

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  Module& module_;
};

}  // namespace overify
