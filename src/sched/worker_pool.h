// Work-stealing scheduler for parallel path exploration.
//
// N workers each own a searcher-ordered queue of pending states, a private
// ExprContext, and a private solver chain (src/symex/engine_core.h). Forked
// siblings stay on the forking worker's queue; an idle worker steals from
// the coldest end of a victim's queue and re-interns the stolen state into
// its own context (src/sched/translate.h). Global limits live in lock-free
// shared counters enforced cooperatively.
//
// Results are aggregated deterministically: exact per-worker tallies are
// summed, and bug reports are merged by (site, kind) keeping the smallest
// path_id representative, ordered by the site's position in the module —
// so bug sets and verdicts are identical for 1..N workers on exhausted
// runs (docs/scheduler.md spells out the guarantee and its limits).
#pragma once

#include "src/ir/module.h"
#include "src/symex/executor.h"

namespace overify {
namespace sched {

class WorkerPool {
 public:
  // `options.jobs` workers (0 = one per hardware thread). The pool reads
  // the module only; it must not be mutated while Run executes.
  WorkerPool(Module& module, const SymexOptions& options);

  SymexResult Run(Function* entry, unsigned num_input_bytes, const SymexLimits& limits);

 private:
  Module& module_;
  SymexOptions options_;
};

}  // namespace sched
}  // namespace overify
