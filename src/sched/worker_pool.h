// Work-stealing scheduler for parallel path exploration.
//
// N workers each own a searcher-ordered queue of pending states and a
// private solver chain; in the default configuration all of them build
// expressions into one shared, lock-striped interner
// (src/symex/engine_core.h, src/symex/expr.h). Forked siblings stay on the
// forking worker's queue; an idle worker steals a batch — half the coldest
// end of a victim's queue — and, because the interner is shared, runs the
// stolen states as-is with no re-intern pass (SymexOptions::shared_interner
// = false restores the legacy per-worker interners + ExprTranslator path).
// Global limits live in lock-free shared counters enforced cooperatively.
//
// Results are aggregated deterministically: exact per-worker metrics
// shards merge element-wise (src/support/metrics.h), and bug reports are
// merged by (site, kind) keeping the smallest
// path_id representative, ordered by the site's position in the module —
// so bug sets and verdicts are identical for 1..N workers on exhausted
// runs (docs/scheduler.md spells out the guarantee and its limits).
//
// A pool may Run() more than once: the worker queues (and their searchers'
// coverage feedback) persist across runs and are reset at each run's
// boundaries, so a reused pool starts every exploration from a clean
// search state.
#pragma once

#include <memory>
#include <vector>

#include "src/ir/module.h"
#include "src/symex/executor.h"

namespace overify {
namespace sched {

class WorkerQueue;

class WorkerPool {
 public:
  // `options.jobs` workers (0 = one per hardware thread). The pool reads
  // the module only; it must not be mutated while Run executes.
  WorkerPool(Module& module, const SymexOptions& options);
  ~WorkerPool();

  SymexResult Run(Function* entry, unsigned num_input_bytes, const SymexLimits& limits);

 private:
  Module& module_;
  SymexOptions options_;
  // One queue per worker, created on first Run and reused (reset) by later
  // runs on the same pool.
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
};

}  // namespace sched
}  // namespace overify
