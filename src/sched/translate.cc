#include "src/sched/translate.h"

#include <vector>

namespace overify {
namespace sched {

const Expr* ExprTranslator::Translate(const Expr* src) {
  if (src == nullptr) {
    return nullptr;
  }
  auto hit = memo_.find(src);
  if (hit != memo_.end()) {
    return hit->second;
  }
  // Iterative post-order: select chains over large objects make the DAG too
  // deep for recursion.
  std::vector<const Expr*> stack{src};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    if (memo_.count(e) != 0) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const Expr* child : {e->a(), e->b(), e->c()}) {
      if (child != nullptr && memo_.count(child) == 0) {
        stack.push_back(child);
        ready = false;
      }
    }
    if (!ready) {
      continue;
    }
    const Expr* a = e->a() != nullptr ? memo_.at(e->a()) : nullptr;
    const Expr* b = e->b() != nullptr ? memo_.at(e->b()) : nullptr;
    const Expr* c = e->c() != nullptr ? memo_.at(e->c()) : nullptr;
    memo_[e] = dst_.ImportNode(e, a, b, c);
    stack.pop_back();
  }
  return memo_.at(src);
}

void TranslateState(ExecState& state, ExprTranslator& translator) {
  for (StackFrame& frame : state.stack) {
    for (RuntimeValue& local : frame.locals) {
      switch (local.kind) {
        case RuntimeValue::Kind::kNone:
          break;
        case RuntimeValue::Kind::kInt:
          local.expr = translator.Translate(local.expr);
          break;
        case RuntimeValue::Kind::kPointer:
          local.pointer.offset = translator.Translate(local.pointer.offset);
          break;
      }
    }
  }
  state.memory.RewriteContents(
      [&translator](const Expr* e) { return translator.Translate(e); });
  for (const Expr*& constraint : state.constraints) {
    constraint = translator.Translate(constraint);
  }
  // The preprocessing summary holds pointers into the source context; it is
  // a pure cache over `constraints`, so drop it and let the thief's solver
  // rebuild it (the rebuild is deterministic — docs/scheduler.md).
  state.solver_prefix.Clear();
  for (const Expr*& byte : state.output) {
    byte = translator.Translate(byte);
  }
  for (auto& [key, pointer] : state.pointer_slots) {
    pointer.offset = translator.Translate(pointer.offset);
  }
}

namespace {

void ValidateExpr(const Expr* e, const ExprInterner& interner) {
  if (e == nullptr) {
    return;
  }
  // Owns() probes the node's home shard, which transitively vouches for the
  // children too (an interned node's children are interned), so the walk
  // stays shallow: one probe per reachable root.
  OVERIFY_ASSERT(interner.Owns(e),
                 "stolen state references an expression outside the shared interner");
}

}  // namespace

void ValidateStateInterned(const ExecState& state, const ExprInterner& interner) {
  for (const StackFrame& frame : state.stack) {
    for (const RuntimeValue& local : frame.locals) {
      switch (local.kind) {
        case RuntimeValue::Kind::kNone:
          break;
        case RuntimeValue::Kind::kInt:
          ValidateExpr(local.expr, interner);
          break;
        case RuntimeValue::Kind::kPointer:
          ValidateExpr(local.pointer.offset, interner);
          break;
      }
    }
  }
  state.memory.ForEachByte([&interner](const Expr* e) { ValidateExpr(e, interner); });
  for (const Expr* constraint : state.constraints) {
    ValidateExpr(constraint, interner);
  }
  // The preprocessing summary is the one structure a shared-interner steal
  // keeps holding pre-steal expression pointers — exactly what this mode
  // exists to vouch for, so walk it too.
  for (const Expr* definition : state.solver_prefix.definitions) {
    ValidateExpr(definition, interner);
  }
  for (const Expr* simplified : state.solver_prefix.simplified) {
    ValidateExpr(simplified, interner);
  }
  for (const Expr* byte : state.output) {
    ValidateExpr(byte, interner);
  }
  for (const auto& [key, pointer] : state.pointer_slots) {
    ValidateExpr(pointer.offset, interner);
  }
}

}  // namespace sched
}  // namespace overify
