// Pluggable path-exploration order for the symbolic engine.
//
// A Searcher owns a worker's set of pending ExecStates and decides which
// one runs next. The hot end (`Next`) implements the strategy; the cold
// end (`Steal`) hands a state to an idle worker, picking the state the
// owner would reach last so the two ends disturb each other as little as
// possible. Search order changes *when* paths run, never *which* paths
// exist: an exhausted exploration visits the same path set under every
// strategy (tested in tests/sched_test.cc).
//
// Thread discipline: Add/Next/Steal/Size are called under the worker
// queue's lock (src/sched/worker_pool.cc). NotifyBlockEntered is
// owner-thread-only and must not be touched by thieves; in exchange it
// needs no lock and can sit on the engine's per-jump path.
#pragma once

#include <cstdint>
#include <memory>

#include "src/symex/state.h"

namespace overify {

// Search-order strategy for pending states (SymexOptions::strategy).
enum class SearchStrategy {
  kDfs,             // newest state first: minimal live-state footprint
  kBfs,             // oldest state first: shortest counterexamples first
  kRandomPath,      // uniform over pending states (deterministic seed)
  kCoverageGuided,  // least-visited-block first, DFS tie-break
};

const char* SearchStrategyName(SearchStrategy strategy);

namespace sched {

class Searcher {
 public:
  virtual ~Searcher() = default;

  virtual void Add(std::unique_ptr<ExecState> state) = 0;
  // The strategy's next state to run; null when empty.
  virtual std::unique_ptr<ExecState> Next() = 0;
  // The state the owner would run last (for work stealing); null when empty.
  virtual std::unique_ptr<ExecState> Steal() = 0;
  virtual size_t Size() const = 0;
  bool Empty() const { return Size() == 0; }

  // Coverage feedback: the owning worker's engine entered `block`. Only the
  // coverage-guided searcher keeps counts; the default is a no-op.
  virtual void NotifyBlockEntered(const BasicBlock* block) { (void)block; }
};

// `seed` feeds the random-path strategy; the others ignore it.
std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, uint64_t seed);

}  // namespace sched
}  // namespace overify
