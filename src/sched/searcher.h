// Pluggable path-exploration order for the symbolic engine.
//
// A Searcher owns a worker's set of pending ExecStates and decides which
// one runs next. The hot end (`Next`) implements the strategy; the cold
// end (`Steal`/`StealBatch`) hands states to an idle worker, picking the
// states the owner would reach last so the two ends disturb each other as
// little as possible. Search order changes *when* paths run, never *which*
// paths exist: an exhausted exploration visits the same path set under
// every strategy (tested in tests/sched_test.cc).
//
// Thread discipline: Add/Next/Steal/StealBatch/Size/Reset are called under
// the worker queue's lock (src/sched/worker_pool.cc). NotifyBlockEntered is
// owner-thread-only and must not be touched by thieves; in exchange it
// needs no lock and can sit on the engine's per-jump path. The contract
// this forces on implementations: Steal/StealBatch may be called by a
// thief concurrently with the owner's (lock-free) NotifyBlockEntered, so
// they must not read any state NotifyBlockEntered writes — the bucketed
// coverage searcher steals purely positionally for exactly this reason.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/symex/state.h"

namespace overify {

// Search-order strategy for pending states (SymexOptions::strategy).
enum class SearchStrategy {
  kDfs,             // newest state first: minimal live-state footprint
  kBfs,             // oldest state first: shortest counterexamples first
  kRandomPath,      // uniform over pending states (deterministic seed)
  kCoverageGuided,  // least-visited-block first, DFS tie-break
};

const char* SearchStrategyName(SearchStrategy strategy);

namespace sched {

class Searcher {
 public:
  virtual ~Searcher() = default;

  virtual void Add(std::unique_ptr<ExecState> state) = 0;
  // The strategy's next state to run; null when empty.
  virtual std::unique_ptr<ExecState> Next() = 0;
  // The state the owner would run last (for work stealing); null when empty.
  virtual std::unique_ptr<ExecState> Steal() = 0;
  // Batch stealing: appends up to `max_n` states to `out`, taken coldest
  // first, amortizing the queue lock over the whole batch. The default
  // drains the single-state cold end repeatedly; implementations may
  // override for a cheaper bulk pop.
  virtual void StealBatch(std::vector<std::unique_ptr<ExecState>>& out, size_t max_n) {
    for (size_t i = 0; i < max_n; ++i) {
      std::unique_ptr<ExecState> state = Steal();
      if (state == nullptr) {
        break;
      }
      out.push_back(std::move(state));
    }
  }
  virtual size_t Size() const = 0;
  bool Empty() const { return Size() == 0; }

  // Drops all pending states and any accumulated search feedback (the
  // coverage searcher's visit counts). Called by the worker pool between
  // Run()s — searchers outlive a single exploration, and stale coverage
  // from a previous run must not skew the next one's order or grow
  // without bound.
  virtual void Reset() = 0;

  // Coverage feedback: the owning worker's engine entered `block`. Only the
  // coverage-guided searcher keeps counts; the default is a no-op.
  virtual void NotifyBlockEntered(const BasicBlock* block) { (void)block; }
};

// `seed` feeds the random-path strategy; the others ignore it.
std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, uint64_t seed);

}  // namespace sched
}  // namespace overify
