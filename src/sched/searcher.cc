#include "src/sched/searcher.h"

#include <array>
#include <deque>
#include <unordered_map>

#include "src/support/rng.h"

namespace overify {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kDfs:
      return "dfs";
    case SearchStrategy::kBfs:
      return "bfs";
    case SearchStrategy::kRandomPath:
      return "random-path";
    case SearchStrategy::kCoverageGuided:
      return "coverage-guided";
  }
  return "?";
}

namespace sched {
namespace {

class DfsSearcher : public Searcher {
 public:
  void Add(std::unique_ptr<ExecState> state) override {
    states_.push_back(std::move(state));
  }
  std::unique_ptr<ExecState> Next() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.back());
    states_.pop_back();
    return state;
  }
  std::unique_ptr<ExecState> Steal() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.front());
    states_.pop_front();
    return state;
  }
  size_t Size() const override { return states_.size(); }
  void Reset() override { states_.clear(); }

 private:
  std::deque<std::unique_ptr<ExecState>> states_;
};

class BfsSearcher : public Searcher {
 public:
  void Add(std::unique_ptr<ExecState> state) override {
    states_.push_back(std::move(state));
  }
  std::unique_ptr<ExecState> Next() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.front());
    states_.pop_front();
    return state;
  }
  std::unique_ptr<ExecState> Steal() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.back());
    states_.pop_back();
    return state;
  }
  size_t Size() const override { return states_.size(); }
  void Reset() override { states_.clear(); }

 private:
  std::deque<std::unique_ptr<ExecState>> states_;
};

class RandomPathSearcher : public Searcher {
 public:
  explicit RandomPathSearcher(uint64_t seed) : rng_(seed) {}

  void Add(std::unique_ptr<ExecState> state) override {
    states_.push_back(std::move(state));
  }
  std::unique_ptr<ExecState> Next() override {
    if (states_.empty()) {
      return nullptr;
    }
    size_t index = static_cast<size_t>(rng_.NextBelow(states_.size()));
    std::swap(states_[index], states_.back());
    auto state = std::move(states_.back());
    states_.pop_back();
    return state;
  }
  std::unique_ptr<ExecState> Steal() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.front());
    states_.pop_front();
    return state;
  }
  size_t Size() const override { return states_.size(); }
  void Reset() override { states_.clear(); }

 private:
  Rng rng_;
  // deque: random access for Next, O(1) pop_front for thieves.
  std::deque<std::unique_ptr<ExecState>> states_;
};

// Least-visited-block first: prioritizes states about to execute code the
// worker has seen least, the classic coverage-seeking order (KLEE's
// coverage-optimized searcher is the reference point). Ties go to the
// newest state for DFS-like locality. Visit counts are per-worker: a thief
// builds its own picture of coverage, which keeps the feedback path
// lock-free.
//
// The frontier is a bucket queue: bucket k holds states whose current
// block had (clamped) k visits when they were last (re)bucketed. Next()
// pops from the lowest non-empty bucket — O(#buckets + amortized
// rebuckets) instead of the old O(frontier) linear scan — and rebuckets
// lazily: NotifyBlockEntered only bumps the count, and a state whose
// bucket went stale is moved to its true bucket when Next() meets it.
// Counts only grow, so every rebucket moves a state strictly toward the
// hot end's far side and each state rebuckets at most kNumBuckets times.
//
// Steal()/StealBatch() take from the explicitly cold end of the bucket
// structure — the *oldest* state of the *highest* non-empty bucket (most
// visits, least recently bucketed) — purely positionally, never touching
// visits_: thieves may race with the owner's lock-free
// NotifyBlockEntered. (The pre-bucket version stole the frontier's
// positional front, which after a rebucket could be the owner's hottest,
// most-recently-bucketed state — exactly what batch stealing must not
// drain.)
class CoverageGuidedSearcher : public Searcher {
 public:
  void Add(std::unique_ptr<ExecState> state) override {
    size_t bucket = BucketFor(*state);
    buckets_[bucket].push_back(std::move(state));
    ++size_;
  }

  std::unique_ptr<ExecState> Next() override {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      std::deque<std::unique_ptr<ExecState>>& bucket = buckets_[b];
      while (!bucket.empty()) {
        size_t actual = BucketFor(*bucket.back());
        if (actual == b) {
          auto state = std::move(bucket.back());
          bucket.pop_back();
          --size_;
          return state;
        }
        // Stale: the block gained visits since this state was bucketed
        // (counts only grow, so actual > b). Move it up and keep looking.
        buckets_[actual].push_back(std::move(bucket.back()));
        bucket.pop_back();
      }
    }
    return nullptr;
  }

  std::unique_ptr<ExecState> Steal() override {
    for (size_t b = kNumBuckets; b-- > 0;) {
      std::deque<std::unique_ptr<ExecState>>& bucket = buckets_[b];
      if (!bucket.empty()) {
        auto state = std::move(bucket.front());
        bucket.pop_front();
        --size_;
        return state;
      }
    }
    return nullptr;
  }

  size_t Size() const override { return size_; }

  void Reset() override {
    for (auto& bucket : buckets_) {
      bucket.clear();
    }
    visits_.clear();
    size_ = 0;
  }

  void NotifyBlockEntered(const BasicBlock* block) override { ++visits_[block]; }

 private:
  // Visit counts clamp into the last bucket: beyond ~63 visits the exact
  // count no longer meaningfully ranks "cold", and a fixed bucket array
  // keeps Next() allocation-free.
  static constexpr size_t kNumBuckets = 64;

  size_t BucketFor(ExecState& state) const {
    auto it = visits_.find(state.Frame().block);
    uint64_t visits = it == visits_.end() ? 0 : it->second;
    return visits < kNumBuckets ? static_cast<size_t>(visits) : kNumBuckets - 1;
  }

  std::array<std::deque<std::unique_ptr<ExecState>>, kNumBuckets> buckets_;
  std::unordered_map<const BasicBlock*, uint64_t> visits_;
  size_t size_ = 0;
};

}  // namespace

std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, uint64_t seed) {
  switch (strategy) {
    case SearchStrategy::kDfs:
      return std::make_unique<DfsSearcher>();
    case SearchStrategy::kBfs:
      return std::make_unique<BfsSearcher>();
    case SearchStrategy::kRandomPath:
      return std::make_unique<RandomPathSearcher>(seed);
    case SearchStrategy::kCoverageGuided:
      return std::make_unique<CoverageGuidedSearcher>();
  }
  OVERIFY_UNREACHABLE("unknown search strategy");
}

}  // namespace sched
}  // namespace overify
