#include "src/sched/searcher.h"

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/support/rng.h"

namespace overify {

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kDfs:
      return "dfs";
    case SearchStrategy::kBfs:
      return "bfs";
    case SearchStrategy::kRandomPath:
      return "random-path";
    case SearchStrategy::kCoverageGuided:
      return "coverage-guided";
  }
  return "?";
}

namespace sched {
namespace {

class DfsSearcher : public Searcher {
 public:
  void Add(std::unique_ptr<ExecState> state) override {
    states_.push_back(std::move(state));
  }
  std::unique_ptr<ExecState> Next() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.back());
    states_.pop_back();
    return state;
  }
  std::unique_ptr<ExecState> Steal() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.front());
    states_.pop_front();
    return state;
  }
  size_t Size() const override { return states_.size(); }

 private:
  std::deque<std::unique_ptr<ExecState>> states_;
};

class BfsSearcher : public Searcher {
 public:
  void Add(std::unique_ptr<ExecState> state) override {
    states_.push_back(std::move(state));
  }
  std::unique_ptr<ExecState> Next() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.front());
    states_.pop_front();
    return state;
  }
  std::unique_ptr<ExecState> Steal() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.back());
    states_.pop_back();
    return state;
  }
  size_t Size() const override { return states_.size(); }

 private:
  std::deque<std::unique_ptr<ExecState>> states_;
};

class RandomPathSearcher : public Searcher {
 public:
  explicit RandomPathSearcher(uint64_t seed) : rng_(seed) {}

  void Add(std::unique_ptr<ExecState> state) override {
    states_.push_back(std::move(state));
  }
  std::unique_ptr<ExecState> Next() override {
    if (states_.empty()) {
      return nullptr;
    }
    size_t index = static_cast<size_t>(rng_.NextBelow(states_.size()));
    std::swap(states_[index], states_.back());
    auto state = std::move(states_.back());
    states_.pop_back();
    return state;
  }
  std::unique_ptr<ExecState> Steal() override {
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.front());
    states_.pop_front();
    return state;
  }
  size_t Size() const override { return states_.size(); }

 private:
  Rng rng_;
  // deque: random access for Next, O(1) pop_front for thieves.
  std::deque<std::unique_ptr<ExecState>> states_;
};

// Least-visited-block first: prioritizes states about to execute code the
// worker has seen least, the classic coverage-seeking order (KLEE's
// coverage-optimized searcher is the reference point). Ties go to the
// newest state for DFS-like locality. Visit counts are per-worker: a thief
// builds its own picture of coverage, which keeps the feedback path
// lock-free.
//
// Next() is a linear scan — O(frontier) per pop, fine for the suite's
// frontiers (tens to hundreds of states) but quadratic if the frontier
// approaches max_live_states; a visit-count-bucketed queue is the known
// fix if that ever matters (ROADMAP scheduler follow-ups).
class CoverageGuidedSearcher : public Searcher {
 public:
  void Add(std::unique_ptr<ExecState> state) override {
    states_.push_back(std::move(state));
  }
  std::unique_ptr<ExecState> Next() override {
    if (states_.empty()) {
      return nullptr;
    }
    size_t best = states_.size() - 1;
    uint64_t best_visits = Visits(*states_[best]);
    for (size_t i = states_.size() - 1; i-- > 0;) {
      uint64_t visits = Visits(*states_[i]);
      if (visits < best_visits) {
        best = i;
        best_visits = visits;
      }
    }
    std::swap(states_[best], states_.back());
    auto state = std::move(states_.back());
    states_.pop_back();
    return state;
  }
  std::unique_ptr<ExecState> Steal() override {
    // Deliberately ignores visit counts: Steal may race with the owner's
    // NotifyBlockEntered, so it takes the oldest state positionally.
    if (states_.empty()) {
      return nullptr;
    }
    auto state = std::move(states_.front());
    states_.pop_front();
    return state;
  }
  size_t Size() const override { return states_.size(); }

  void NotifyBlockEntered(const BasicBlock* block) override { ++visits_[block]; }

 private:
  uint64_t Visits(ExecState& state) {
    auto it = visits_.find(state.Frame().block);
    return it == visits_.end() ? 0 : it->second;
  }

  // deque: random access for the Next scan, O(1) pop_front for thieves.
  std::deque<std::unique_ptr<ExecState>> states_;
  std::unordered_map<const BasicBlock*, uint64_t> visits_;
};

}  // namespace

std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, uint64_t seed) {
  switch (strategy) {
    case SearchStrategy::kDfs:
      return std::make_unique<DfsSearcher>();
    case SearchStrategy::kBfs:
      return std::make_unique<BfsSearcher>();
    case SearchStrategy::kRandomPath:
      return std::make_unique<RandomPathSearcher>(seed);
    case SearchStrategy::kCoverageGuided:
      return std::make_unique<CoverageGuidedSearcher>();
  }
  OVERIFY_UNREACHABLE("unknown search strategy");
}

}  // namespace sched
}  // namespace overify
