// Cross-context state migration for work stealing.
//
// Expressions are hash-consed per ExprContext, and each scheduler worker
// owns one context so interning never takes a lock. A stolen ExecState
// therefore has to be re-interned into the thief's context before it can
// run there. Because builder canonicalization is structural-hash-based
// (context-independent; see src/symex/expr.cc), a node-by-node copy of the
// already-canonical source DAG is exactly what the thief's builder would
// have produced — no re-simplification, and pointer identity is restored
// for nodes the thief already has.
//
// Reading the victim's expressions concurrently with the victim running is
// safe: Exprs are immutable after interning, owned by stable unique_ptrs,
// and the translator never calls into the victim's context (the mutable
// memo slots are written only by their owning context's Evaluate).
#pragma once

#include <unordered_map>

#include "src/symex/expr.h"
#include "src/symex/state.h"

namespace overify {
namespace sched {

// Memoized re-interning of expression DAGs into `dst`. One translator is
// used per stolen state, so shared subgraphs are rebuilt once.
class ExprTranslator {
 public:
  explicit ExprTranslator(ExprContext& dst) : dst_(dst) {}

  // Returns the equivalent expression owned by `dst`; null maps to null.
  const Expr* Translate(const Expr* src);

 private:
  ExprContext& dst_;
  std::unordered_map<const Expr*, const Expr*> memo_;
};

// Rewrites every expression reference in `state` (frame locals, memory
// contents, path constraints, captured output, pointer slots) through
// `translator`. Memory contents are replaced with fresh unshared copies —
// the originals may be copy-on-write-shared with sibling states still
// owned by the victim.
void TranslateState(ExecState& state, ExprTranslator& translator);

}  // namespace sched
}  // namespace overify
