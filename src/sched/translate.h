// Cross-context state migration for work stealing — the legacy path.
//
// In the default configuration every worker builds into one shared,
// lock-striped ExprInterner (src/symex/expr.h), so a stolen state's
// expression pointers are valid on the thief as-is and no translation
// happens at all; `ValidateStateInterned` below is the validation-only
// residue of this file, run on stolen states when
// SymexOptions::validate_steals is set.
//
// With SymexOptions::shared_interner off (A/B comparisons, the translation
// tests), expressions are hash-consed per worker-private ExprContext and a
// stolen ExecState has to be re-interned into the thief's context before it
// can run there. Because builder canonicalization is structural-hash-based
// (context-independent; see src/symex/expr.cc), a node-by-node copy of the
// already-canonical source DAG is exactly what the thief's builder would
// have produced — no re-simplification, and pointer identity is restored
// for nodes the thief already has.
//
// Reading the victim's expressions concurrently with the victim running is
// safe in both configurations: Exprs' structural fields are immutable
// after interning and owned by stable unique_ptrs, and the translator
// never calls into the victim's context. In the legacy configuration the
// victim's Evaluate/EvalInterval DO keep writing the mutable inline memo
// slots on its nodes while a thief translates them — that is safe only
// because the translator (and the validation walk) read exclusively the
// immutable structural members, never the memo fields, which are written
// by their owning context alone. Shared-interner contexts never touch the
// inline slots at all (they memoize into worker-private tables).
#pragma once

#include <unordered_map>

#include "src/symex/expr.h"
#include "src/symex/state.h"

namespace overify {
namespace sched {

// Memoized re-interning of expression DAGs into `dst`. One translator may
// serve a whole stolen batch from the same victim, so shared subgraphs are
// rebuilt once per steal.
class ExprTranslator {
 public:
  explicit ExprTranslator(ExprContext& dst) : dst_(dst) {}

  // Returns the equivalent expression owned by `dst`; null maps to null.
  const Expr* Translate(const Expr* src);

 private:
  ExprContext& dst_;
  std::unordered_map<const Expr*, const Expr*> memo_;
};

// Rewrites every expression reference in `state` (frame locals, memory
// contents, path constraints, captured output, pointer slots) through
// `translator`. Memory contents are replaced with fresh unshared copies —
// the originals may be copy-on-write-shared with sibling states still
// owned by the victim.
void TranslateState(ExecState& state, ExprTranslator& translator);

// Validation-only mode: walks every expression reference in `state` and
// asserts it is owned by `interner` — what a steal must guarantee under the
// shared-interner configuration. Debug aid (SymexOptions::validate_steals);
// aborts via OVERIFY_ASSERT on the first foreign node.
void ValidateStateInterned(const ExecState& state, const ExprInterner& interner);

}  // namespace sched
}  // namespace overify
