#include "src/sched/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "src/cache/persist.h"
#include "src/sched/translate.h"
#include "src/support/string_utils.h"
#include "src/support/trace.h"
#include "src/symex/engine_core.h"

namespace overify {
namespace sched {

// One worker's queue: a strategy-ordered searcher behind a mutex. In the
// shared-interner configuration states flow between queues freely; in the
// legacy configuration states in queue i always reference worker i's
// ExprContext — a stolen state is re-interned by the thief before it is
// pushed anywhere else.
//
// Queues persist across Run()s on the same pool; BeginRun rebinds the
// run's shared counters and resets the searcher, which is what clears the
// coverage searcher's visit table between runs (stale coverage must not
// skew — or leak into — the next exploration).
class WorkerQueue : public ForkSink {
 public:
  // The largest batch one steal may take. Bounds both the time a thief
  // holds the victim's lock and how much colder-than-necessary work a
  // single thief can hoard.
  static constexpr size_t kMaxStealBatch = 32;

  WorkerQueue(SearchStrategy strategy, uint64_t seed)
      : searcher_(MakeSearcher(strategy, seed)) {}

  void BeginRun(SharedCounters& shared) {
    std::lock_guard<std::mutex> lock(mutex_);
    shared_ = &shared;
    searcher_->Reset();
  }

  // Frees any states a limit stop left queued and drops accumulated search
  // feedback. Call Remaining() first: this zeroes it.
  void EndRun() {
    std::lock_guard<std::mutex> lock(mutex_);
    searcher_->Reset();
  }

  void PushFork(std::unique_ptr<ExecState> state) override {
    shared_->live_states.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(mutex_);
    searcher_->Add(std::move(state));
  }

  // Enqueues a stolen state the thief keeps for itself. Unlike PushFork this
  // does not touch live_states: the state was already counted when it was
  // forked and stays live throughout the migration.
  void AddStolen(std::unique_ptr<ExecState> state) {
    std::lock_guard<std::mutex> lock(mutex_);
    searcher_->Add(std::move(state));
  }

  std::unique_ptr<ExecState> PopOwn() {
    std::lock_guard<std::mutex> lock(mutex_);
    return searcher_->Next();
  }

  // Takes up to half of this queue's pending states (capped) from the cold
  // end, appended to `out` coldest first. One lock acquisition per batch.
  void StealBatch(std::vector<std::unique_ptr<ExecState>>& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t size = searcher_->Size();
    if (size == 0) {
      return;
    }
    size_t take = std::min((size + 1) / 2, kMaxStealBatch);
    searcher_->StealBatch(out, take);
  }

  // How many states are still queued (called after the workers joined).
  uint64_t Remaining() {
    std::lock_guard<std::mutex> lock(mutex_);
    return searcher_->Size();
  }

  Searcher* searcher() { return searcher_.get(); }

 private:
  std::mutex mutex_;
  std::unique_ptr<Searcher> searcher_;
  SharedCounters* shared_ = nullptr;
};

namespace {

// Positions of every instruction in module order — the canonical sort key
// for merged bug reports (instruction pointers vary run to run; module
// order does not).
std::unordered_map<const Instruction*, uint64_t> SiteOrder(Module& module) {
  std::unordered_map<const Instruction*, uint64_t> order;
  uint64_t index = 0;
  for (const auto& fn : module.functions()) {
    for (BasicBlock& block : *fn) {
      for (const auto& inst : block) {
        order[inst.get()] = index++;
      }
    }
  }
  return order;
}

}  // namespace

WorkerPool::WorkerPool(Module& module, const SymexOptions& options)
    : module_(module), options_(options) {}

WorkerPool::~WorkerPool() = default;

SymexResult WorkerPool::Run(Function* entry, unsigned num_input_bytes,
                            const SymexLimits& limits) {
  // Malformed driver input is a structured error, not an assertion: the
  // engine's own SetupEntry preconditions are validated here, before any
  // worker launches (docs/robustness.md).
  {
    SymexResult invalid;
    invalid.ok = false;
    if (entry == nullptr || entry->IsDeclaration()) {
      invalid.error = "entry function is missing or has no body";
      return invalid;
    }
    if (entry->NumArgs() != 0 && entry->NumArgs() != 2 && entry->NumArgs() != 4) {
      invalid.error = StrFormat(
          "entry '%s' takes %u arguments; supported signatures are (), "
          "(u8* buf, i32 len), and (u8* a, i32 na, u8* b, i32 nb)",
          entry->name().c_str(), entry->NumArgs());
      return invalid;
    }
    if (entry->NumArgs() >= 2 && num_input_bytes == 0) {
      invalid.error = StrFormat(
          "zero-width symbolic buffer: entry '%s' takes an input buffer but "
          "0 symbolic bytes were requested",
          entry->name().c_str());
      return invalid;
    }
    if (entry->NumArgs() == 4 && num_input_bytes < 2) {
      invalid.error = StrFormat(
          "entry '%s' takes two input buffers but only %u symbolic byte(s) "
          "were requested (need at least one per buffer)",
          entry->name().c_str(), num_input_bytes);
      return invalid;
    }
  }

  unsigned jobs = options_.jobs;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  SearchStrategy strategy = EffectiveStrategy(options_);

  // Pre-stamp every defined function's local-slot numbering so no engine
  // writes to the (otherwise immutable, shared) IR once workers run.
  LocalSlotCache slots;
  for (const auto& fn : module_.functions()) {
    if (!fn->IsDeclaration()) {
      slots.Count(fn.get());
    }
  }

  SharedCounters shared;
  shared.limits = limits;
  shared.watch.Restart();
  // The run deadline as a monotonic time point, threaded into every solver
  // query's QueryControl so max_seconds interrupts a pathological query
  // mid-search instead of waiting for it to return. Clamped so an
  // effectively-unbounded max_seconds cannot overflow the duration cast.
  shared.deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::min(limits.max_seconds, 86400.0 * 365)));

  // One shared, lock-striped interner per multi-worker run: every worker's
  // ExprContext builds into it, so stolen states run anywhere without a
  // re-intern pass. A single worker (or the legacy A/B configuration)
  // keeps private per-worker interners, which elide the shard locks. A warm
  // interner from a long-lived host (the daemon) takes precedence over
  // both: the run interns into it, so repeated runs of the same module skip
  // rebuilding the expression DAG.
  ExprInterner* run_interner = options_.warm_interner;
  const bool share_interner =
      run_interner != nullptr || (options_.shared_interner && jobs > 1);
  std::unique_ptr<ExprInterner> interner;
  if (run_interner == nullptr && share_interner) {
    interner = std::make_unique<ExprInterner>(/*concurrent=*/true);
    run_interner = interner.get();
  }

  // Engines (contexts, solver caches, metrics shards) are per-run; queues
  // persist across runs and are reset at the run boundaries.
  std::vector<std::unique_ptr<EngineCore>> engines;
  engines.reserve(jobs);
  if (queues_.empty()) {
    queues_.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
      queues_.push_back(std::make_unique<WorkerQueue>(
          strategy, HashMix64(options_.search_seed ^ (uint64_t{w} + 1))));
    }
  }
  OVERIFY_ASSERT(queues_.size() == jobs, "worker count changed across Run()s");

  // Structured tracing: one lock-free buffer per worker, flushed into a
  // single Chrome-trace-event JSON file after the join. Off (the default)
  // costs one null-pointer branch per instrumented site
  // (docs/observability.md).
  std::string trace_path = options_.trace_path;
  if (trace_path.empty()) {
    const char* env = std::getenv("OVERIFY_TRACE");
    if (env != nullptr) {
      trace_path = env;
    }
  }
  std::unique_ptr<TraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<TraceSink>(trace_path, jobs);
  }

  for (unsigned w = 0; w < jobs; ++w) {
    engines.push_back(std::make_unique<EngineCore>(module_, options_, shared, slots,
                                                   num_input_bytes, w, run_interner));
    engines[w]->set_trace(trace_sink != nullptr ? trace_sink->buffer(w) : nullptr);
    queues_[w]->BeginRun(shared);
  }

  // Cross-run persistence (src/cache/persist.h): seed every worker's
  // counterexample cache from the store's blob for this exact (module
  // content, options) pair before the first query. Entries are addressed by
  // portable content hashes, so a blob harvested by another process (or the
  // daemon's previous run) resolves here; persisted SAT models arrive
  // unvalidated and are re-checked against live constraints at first use.
  uint64_t persist_module_hash = 0;
  uint64_t persist_options_fp = 0;
  if (options_.cache_store != nullptr) {
    persist_module_hash = ModuleContentHash(module_);
    persist_options_fp = OptionsFingerprint(options_);
    if (RunBlob* blob =
            options_.cache_store->FindRun(persist_module_hash, persist_options_fp)) {
      for (const auto& engine : engines) {
        SeedChain(*blob, engine->solver());
      }
    }
  }

  queues_[0]->PushFork(engines[0]->MakeInitialState(entry));

  // Batch stealing: scan victims round-robin; the first queue with work
  // yields up to half its cold end in one lock acquisition. The thief runs
  // the coldest state immediately and queues the rest for itself.
  auto try_steal = [&](unsigned thief) -> std::unique_ptr<ExecState> {
    std::vector<std::unique_ptr<ExecState>> batch;
    EngineCore& thief_engine = *engines[thief];
    FaultInjector& injector = thief_engine.faults();
    // Steal accounting lands in the thief's own shard — the thief's thread
    // is the only writer, same single-writer rule as the engine counters.
    MetricsShard& tm = thief_engine.metrics_shard();
    TraceBuffer* tb = thief_engine.trace();
    for (unsigned k = 1; k < jobs; ++k) {
      unsigned victim = (thief + k) % jobs;
      // Injected steal failure: this victim yields nothing this round, as if
      // a thief raced us to its queue. The thief just moves on; states are
      // never lost, only delayed.
      if (injector.enabled() && injector.Fire(FaultSite::kStealBatch)) {
        if (tb != nullptr) {
          tb->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                      static_cast<uint64_t>(FaultSite::kStealBatch));
        }
        continue;
      }
      const bool timed = tm.timing || tb != nullptr;
      const uint64_t t0 = timed ? MetricsNowNs() : 0;
      queues_[victim]->StealBatch(batch);
      if (batch.empty()) {
        continue;
      }
      tm.Inc(Counter::kStealBatches);
      tm.Add(Counter::kSteals, batch.size());
      if (share_interner) {
        for (auto& state : batch) {
          // Every expression the state references lives in the shared
          // interner — nothing to translate. The preprocessing summary's
          // contents stay valid too; only its interval-memo handle is tied
          // to the victim context's generation counter, so detach that.
          state->solver_prefix.interval_memo_generation = 0;
          if (options_.validate_steals) {
            ValidateStateInterned(*state, *run_interner);
          }
        }
      } else {
        // Legacy per-worker interners: re-intern the whole batch into the
        // thief's context. One translator for the batch — all states came
        // from the same victim context, so shared subgraphs translate once.
        ExprTranslator translator(thief_engine.ctx());
        for (auto& state : batch) {
          TranslateState(*state, translator);
          tm.Inc(Counter::kStealReintern);
        }
      }
      if (timed) {
        const uint64_t t1 = MetricsNowNs();
        tm.Record(Hist::kStealBatchNs, t1 - t0);
        if (tb != nullptr) {
          tb->Span(TraceKind::kStealBatch, t0, t1, batch.size(), victim);
        }
      }
      std::unique_ptr<ExecState> first = std::move(batch.front());
      for (size_t i = 1; i < batch.size(); ++i) {
        queues_[thief]->AddStolen(std::move(batch[i]));
      }
      return first;
    }
    return nullptr;
  };

  auto worker_loop = [&](unsigned w) {
    EngineCore& engine = *engines[w];
    WorkerQueue& queue = *queues_[w];
    TraceBuffer* tb = engine.trace();
    const uint64_t run_t0 = tb != nullptr ? MetricsNowNs() : 0;
    unsigned idle_rounds = 0;
    for (;;) {
      if (shared.StopRequested()) {
        break;
      }
      std::unique_ptr<ExecState> state = queue.PopOwn();
      if (state == nullptr && jobs > 1) {
        state = try_steal(w);
      }
      if (state == nullptr) {
        if (shared.live_states.load(std::memory_order_acquire) == 0) {
          break;
        }
        // Back off after a while: during serial phases (one deep path
        // left) a pure yield loop would pin every idle core and hammer the
        // victims' queue mutexes.
        if (++idle_rounds < 64) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        continue;
      }
      idle_rounds = 0;
      FaultInjector& injector = engine.faults();
      if (injector.enabled() && injector.Fire(FaultSite::kWorkerStall)) {
        // Injected stall: hold the state while the rest of the pool makes
        // progress (models a descheduled or swapping worker).
        if (tb != nullptr) {
          tb->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                      static_cast<uint64_t>(FaultSite::kWorkerStall));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      PathOutcome outcome = engine.RunState(*state, queue, queue.searcher());
      if (outcome == PathOutcome::kDied) {
        // Injected worker death mid-state: the state is untouched and still
        // counted live. Requeue it on this worker's queue — survivors steal
        // it from there — and run nothing further on this thread. With no
        // survivors (or jobs == 1) the requeued states surface as
        // paths_unexplored at aggregation, attributed to kWorkerDeath.
        queue.AddStolen(std::move(state));
        break;
      }
      state.reset();
      shared.live_states.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (tb != nullptr) {
      tb->Span(TraceKind::kWorkerRun, run_t0, MetricsNowNs(), w);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs > 0 ? jobs - 1 : 0);
  for (unsigned w = 1; w < jobs; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) {
    t.join();
  }

  if (trace_sink != nullptr) {
    trace_sink->Write();
  }

  // ---- Deterministic aggregation ----

  SymexResult result;
  result.workers = jobs;
  result.wall_seconds = shared.watch.ElapsedSeconds();

  // One merge replaces the old per-family hand-written sums: each worker's
  // shard (engine, solver, steal, and fault counters plus the latency
  // histograms) folds into the run's registry element-wise, in worker
  // order. Shard merge is associative and commutative, so the totals are
  // independent of worker count for the deterministic counter families
  // (docs/observability.md).
  for (const auto& queue : queues_) {
    result.metrics.Add(Counter::kPathsUnexplored, queue->Remaining());
  }
  for (const auto& engine : engines) {
    engine->SyncMetrics();
    result.metrics.Merge(engine->metrics_shard());
  }
  // Harvest the run's counterexample caches back into the store: append
  // (deduplicated by set hash) into the existing blob so entries the warm
  // run never touched survive, creating the blob on a first cold run. The
  // run signature on the blob is maintained by the store's host (daemon or
  // driver), which computes it from the aggregated result.
  if (options_.cache_store != nullptr) {
    RunBlob* blob =
        options_.cache_store->FindRun(persist_module_hash, persist_options_fp);
    if (blob == nullptr) {
      blob = &options_.cache_store->PutRun(persist_module_hash, persist_options_fp);
    }
    for (const auto& engine : engines) {
      HarvestChain(engine->solver(), *blob);
    }
  }
  // Worker deaths are the claimed count (bounded by max_worker_deaths), not
  // the raw draw fires accumulated from the per-worker injector stats.
  result.metrics.Set(Counter::kFaultWorkerDeaths,
                     shared.worker_deaths.load(std::memory_order_relaxed));
  // Fills every legacy counter field from the registry and asserts the
  // unknown-cause and terminated-cause sum invariants in one place.
  result.FinalizeFromMetrics();
  // Exhausted means every path actually ran to its end — not merely "no
  // limit tripped": a run that completes its last path exactly at a limit
  // (paths_completed == max_paths with nothing queued) latches the stop
  // flag yet explored everything. A path the solver gave up on is a path
  // that did not run to its end, so unknowns also forfeit exhaustion.
  result.exhausted = result.paths_limit == 0 && result.paths_unexplored == 0 &&
                     result.paths_unknown == 0;
  result.stop_cause = static_cast<StopCause>(shared.stop_cause.load(std::memory_order_relaxed));
  if (!result.exhausted && result.stop_cause == StopCause::kNone &&
      result.faults.worker_deaths > 0) {
    // No limit latched the stop, but injected deaths left states behind.
    result.stop_cause = StopCause::kWorkerDeath;
  }

  // Merge bug candidates: smallest path_id wins a (site, kind) pair, final
  // order follows the site's position in the module.
  std::map<std::pair<const Instruction*, BugKind>, const BugCandidate*> merged;
  for (const auto& engine : engines) {
    for (const auto& [key, bug] : engine->bugs()) {
      auto it = merged.find(key);
      if (it == merged.end() || bug.path_id < it->second->path_id) {
        merged[key] = &bug;
      }
    }
  }
  std::vector<const BugCandidate*> ordered;
  ordered.reserve(merged.size());
  for (const auto& [key, bug] : merged) {
    ordered.push_back(bug);
  }
  std::unordered_map<const Instruction*, uint64_t> site_order = SiteOrder(module_);
  std::sort(ordered.begin(), ordered.end(),
            [&site_order](const BugCandidate* a, const BugCandidate* b) {
              uint64_t sa = site_order.at(a->site);
              uint64_t sb = site_order.at(b->site);
              if (sa != sb) {
                return sa < sb;
              }
              return static_cast<int>(a->kind) < static_cast<int>(b->kind);
            });
  for (const BugCandidate* bug : ordered) {
    BugReport report;
    report.kind = bug->kind;
    report.message = bug->message;
    report.site = bug->site;
    report.example_input = bug->example_input;
    result.bugs.push_back(std::move(report));
  }

  // Free anything a limit stop left queued (and reset search feedback) so a
  // reused pool starts clean; Remaining() above already tallied it.
  for (const auto& queue : queues_) {
    queue->EndRun();
  }
  return result;
}

}  // namespace sched
}  // namespace overify
