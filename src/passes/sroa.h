// Scalar replacement of aggregates: splits array/struct allocas that are
// only accessed through constant indices into independent scalar allocas.
//
// Paper §3, "Instruction simplification": splitting large objects into
// independent smaller objects reduces the opportunities for memory-access
// aliasing that verification tools must otherwise reason about.
#pragma once

#include "src/passes/pass.h"

namespace overify {

class SroaPass : public FunctionPass {
 public:
  const char* name() const override { return "sroa"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
