// Global dead-function elimination: removes functions unreachable from the
// module's entry points ("umain"/"main"). Programs link the whole C library;
// without this, every module drags along two dozen unused libc bodies that
// dominate pass statistics and compile time.
#pragma once

#include "src/passes/pass.h"

namespace overify {

class GlobalDcePass : public Pass {
 public:
  const char* name() const override { return "globaldce"; }
  bool Run(Module& module) override;
};

}  // namespace overify
