#include "src/passes/runtime_checks.h"

#include <vector>

#include "src/analysis/range_analysis.h"
#include "src/support/statistics.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

Statistic g_inserted("checks.inserted");

}  // namespace

bool RuntimeCheckPass::RunOnFunction(Function& fn) {
  IRContext& ctx = fn.parent()->context();
  RangeAnalysis ranges(fn);
  bool changed = false;

  std::vector<Instruction*> worklist;
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      worklist.push_back(inst.get());
    }
  }

  for (Instruction* inst : worklist) {
    switch (inst->opcode()) {
      case Opcode::kUDiv:
      case Opcode::kSDiv:
      case Opcode::kURem:
      case Opcode::kSRem: {
        if (!options_.division) {
          break;
        }
        Value* divisor = inst->Operand(1);
        if (const auto* c = DynCast<ConstantInt>(divisor)) {
          if (!c->IsZero()) {
            break;  // statically safe
          }
        }
        // Elide when range analysis proves the divisor non-zero.
        ValueRange r = ranges.RangeOf(divisor);
        if (r.lo > 0 || r.hi < 0) {
          break;
        }
        BasicBlock* block = inst->parent();
        auto cmp = std::make_unique<ICmpInst>(ctx, ICmpPredicate::kNe, divisor,
                                              ctx.GetInt(divisor->type(), 0));
        Value* cond = block->InsertBefore(inst, std::move(cmp));
        block->InsertBefore(inst, std::make_unique<CheckInst>(ctx, cond, CheckKind::kDivByZero,
                                                              "division by zero"));
        ++g_inserted;
        changed = true;
        break;
      }
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kAShr: {
        if (!options_.shifts) {
          break;
        }
        Value* amount = inst->Operand(1);
        unsigned bits = inst->type()->bits();
        if (const auto* c = DynCast<ConstantInt>(amount)) {
          if (c->value() < bits) {
            break;
          }
        }
        ValueRange r = ranges.RangeOf(amount);
        if (r.lo >= 0 && r.hi < static_cast<int64_t>(bits)) {
          break;
        }
        BasicBlock* block = inst->parent();
        auto cmp = std::make_unique<ICmpInst>(ctx, ICmpPredicate::kULT, amount,
                                              ctx.GetInt(amount->type(), bits));
        Value* cond = block->InsertBefore(inst, std::move(cmp));
        block->InsertBefore(inst, std::make_unique<CheckInst>(ctx, cond, CheckKind::kShift,
                                                              "oversized shift amount"));
        ++g_inserted;
        changed = true;
        break;
      }
      case Opcode::kGep: {
        if (!options_.array_bounds) {
          break;
        }
        auto* gep = Cast<GepInst>(inst);
        // Guard variable indices stepping inside a sized array.
        Type* current = gep->source_type();
        for (unsigned i = 1; i < gep->NumIndices(); ++i) {
          if (current->IsArray()) {
            Value* index = gep->Index(i);
            uint64_t count = current->array_count();
            current = current->element();
            if (Isa<ConstantInt>(index)) {
              continue;
            }
            ValueRange r = ranges.RangeOf(index);
            if (r.lo >= 0 && r.hi < static_cast<int64_t>(count)) {
              continue;  // provably in range
            }
            BasicBlock* block = gep->parent();
            auto cmp = std::make_unique<ICmpInst>(ctx, ICmpPredicate::kULT, index,
                                                  ctx.GetInt(index->type(), count));
            Value* cond = block->InsertBefore(gep, std::move(cmp));
            block->InsertBefore(
                gep, std::make_unique<CheckInst>(
                         ctx, cond, CheckKind::kBounds,
                         StrFormat("array index out of bounds (size %llu)",
                                   static_cast<unsigned long long>(count))));
            ++g_inserted;
            changed = true;
          } else if (current->IsStruct()) {
            uint64_t field = Cast<ConstantInt>(gep->Index(i))->value();
            current = current->fields()[static_cast<unsigned>(field)];
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return changed;
}

}  // namespace overify
