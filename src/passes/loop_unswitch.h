// Loop unswitching: hoists a loop-invariant conditional out of a loop by
// duplicating the loop body for each branch direction.
//
// Section 1 of the paper shows this is what takes `wc` from O(3^n) to
// O(2^n) symbolic-execution paths at -O3; -OSYMBEX applies it far more
// aggressively (Table 3: 377 loops at -O3 vs 3,022 at -OSYMBEX).
#pragma once

#include "src/passes/pass.h"

namespace overify {

struct UnswitchOptions {
  // Only loops with at most this many instructions are cloned.
  size_t loop_size_limit = 64;
  // Upper bound on unswitches per function (cloning is exponential).
  size_t max_per_function = 4;
};

class LoopUnswitchPass : public FunctionPass {
 public:
  explicit LoopUnswitchPass(UnswitchOptions options) : options_(options) {}

  const char* name() const override { return "unswitch"; }
  bool RunOnFunction(Function& fn) override;

 private:
  UnswitchOptions options_;
};

}  // namespace overify
