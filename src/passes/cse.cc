#include "src/passes/cse.h"

#include <map>
#include <tuple>
#include <vector>

#include "src/analysis/alias_analysis.h"
#include "src/ir/dominators.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_eliminated("cse.eliminated");

// Structural key for pure instructions. Extras fold predicate/type variation.
struct ExprKey {
  Opcode opcode;
  int extra;  // icmp predicate, or 0
  const Type* type;
  std::vector<const Value*> operands;

  bool operator<(const ExprKey& other) const {
    return std::tie(opcode, extra, type, operands) <
           std::tie(other.opcode, other.extra, other.type, other.operands);
  }
};

std::optional<ExprKey> KeyFor(Instruction* inst) {
  switch (inst->opcode()) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUDiv:
    case Opcode::kSDiv:
    case Opcode::kURem:
    case Opcode::kSRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
    case Opcode::kSelect:
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
    case Opcode::kGep: {
      ExprKey key;
      key.opcode = inst->opcode();
      key.extra = 0;
      key.type = inst->type();
      if (auto* gep = DynCast<GepInst>(inst)) {
        // Distinguish geps by source type as well.
        key.extra = static_cast<int>(gep->source_type()->SizeInBytes());
      }
      for (const Value* op : inst->operands()) {
        key.operands.push_back(op);
      }
      // Canonical order for commutative binaries.
      if (inst->opcode() == Opcode::kAdd || inst->opcode() == Opcode::kMul ||
          inst->opcode() == Opcode::kAnd || inst->opcode() == Opcode::kOr ||
          inst->opcode() == Opcode::kXor) {
        if (key.operands[1] < key.operands[0]) {
          std::swap(key.operands[0], key.operands[1]);
        }
      }
      return key;
    }
    case Opcode::kICmp: {
      ExprKey key;
      key.opcode = Opcode::kICmp;
      key.extra = static_cast<int>(Cast<ICmpInst>(inst)->predicate());
      key.type = inst->Operand(0)->type();
      key.operands = {inst->Operand(0), inst->Operand(1)};
      return key;
    }
    default:
      return std::nullopt;
  }
}

class ScopedCse {
 public:
  explicit ScopedCse(Function& fn) : fn_(fn), dom_(fn) {}

  bool Run() {
    Visit(fn_.entry());
    return changed_;
  }

 private:
  // Pre-order dominator tree walk; available expressions accumulate down the
  // tree (a map snapshot per recursion level).
  void Visit(BasicBlock* block) {
    std::vector<std::pair<ExprKey, Value*>> added;
    std::map<const Value*, Value*> block_loads;  // pointer -> last value in this block

    std::vector<Instruction*> insts;
    for (auto& inst : *block) {
      insts.push_back(inst.get());
    }
    for (Instruction* inst : insts) {
      // Redundant load elimination, block-local.
      if (auto* load = DynCast<LoadInst>(inst)) {
        auto it = block_loads.find(load->pointer());
        if (it != block_loads.end() && it->second->type() == load->type()) {
          load->ReplaceAllUsesWith(it->second);
          load->EraseFromParent();
          ++g_eliminated;
          changed_ = true;
          continue;
        }
        block_loads[load->pointer()] = load;
        continue;
      }
      if (auto* store = DynCast<StoreInst>(inst)) {
        // Forward the stored value to later loads of the same pointer and
        // invalidate anything the store may alias.
        uint64_t size = store->value()->type()->SizeInBytes();
        for (auto it = block_loads.begin(); it != block_loads.end();) {
          if (Alias(const_cast<Value*>(it->first), it->second->type()->SizeInBytes(),
                    store->pointer(), size) != AliasResult::kNoAlias) {
            it = block_loads.erase(it);
          } else {
            ++it;
          }
        }
        block_loads[store->pointer()] = store->value();
        continue;
      }
      if (Isa<CallInst>(inst)) {
        block_loads.clear();
        continue;
      }
      auto key = KeyFor(inst);
      if (!key.has_value()) {
        continue;
      }
      auto it = available_.find(*key);
      if (it != available_.end()) {
        inst->ReplaceAllUsesWith(it->second);
        inst->EraseFromParent();
        ++g_eliminated;
        changed_ = true;
        continue;
      }
      available_[*key] = inst;
      added.push_back({*key, inst});
    }

    for (BasicBlock* child : dom_.Children(block)) {
      Visit(child);
    }
    for (auto& [key, value] : added) {
      available_.erase(key);
    }
  }

  Function& fn_;
  DominatorTree dom_;
  std::map<ExprKey, Value*> available_;
  bool changed_ = false;
};

}  // namespace

bool CsePass::RunOnFunction(Function& fn) { return ScopedCse(fn).Run(); }

}  // namespace overify
