#include "src/passes/mem2reg.h"

#include <map>
#include <set>
#include <vector>

#include "src/ir/cfg.h"
#include "src/ir/dominators.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_promoted("mem2reg.promoted_allocas");

// An alloca is promotable if it is a first-class scalar and only ever used
// directly by loads and stores (no GEPs, no address escapes).
bool IsPromotable(const AllocaInst* alloca) {
  if (!alloca->allocated_type()->IsFirstClass()) {
    return false;
  }
  for (const Use& use : alloca->uses()) {
    const Instruction* user = use.user;
    if (user->opcode() == Opcode::kLoad) {
      continue;
    }
    if (user->opcode() == Opcode::kStore && use.operand_index == 1) {
      continue;
    }
    return false;
  }
  return true;
}

class Promoter {
 public:
  Promoter(Function& fn, const std::vector<AllocaInst*>& allocas, DominatorTree& dom)
      : fn_(fn), allocas_(allocas), dom_(dom), ctx_(fn.parent()->context()) {}

  void Run() {
    for (size_t i = 0; i < allocas_.size(); ++i) {
      index_of_[allocas_[i]] = i;
    }
    PlacePhis();
    RenameRecursive();
    Cleanup();
  }

 private:
  // Inserts empty phis at the iterated dominance frontier of each alloca's
  // store blocks (pruned: only where the variable is live-in, approximated
  // by "has any load").
  void PlacePhis() {
    auto& frontiers = dom_.DominanceFrontiers();
    for (AllocaInst* alloca : allocas_) {
      std::set<BasicBlock*> store_blocks;
      bool has_load = false;
      for (const Use& use : alloca->uses()) {
        if (use.user->opcode() == Opcode::kStore) {
          store_blocks.insert(use.user->parent());
        } else {
          has_load = true;
        }
      }
      if (!has_load) {
        continue;  // stores only: phis unnecessary, loads never happen
      }
      std::vector<BasicBlock*> worklist(store_blocks.begin(), store_blocks.end());
      std::set<BasicBlock*> has_phi;
      while (!worklist.empty()) {
        BasicBlock* block = worklist.back();
        worklist.pop_back();
        auto it = frontiers.find(block);
        if (it == frontiers.end()) {
          continue;
        }
        for (BasicBlock* frontier : it->second) {
          if (!has_phi.insert(frontier).second) {
            continue;
          }
          auto phi = std::make_unique<PhiInst>(alloca->allocated_type());
          phi->set_name(alloca->HasName() ? alloca->name() + ".phi" : "m2r.phi");
          PhiInst* raw = phi.get();
          frontier->InsertBefore(frontier->begin(), std::move(phi));
          phi_alloca_[raw] = index_of_[alloca];
          worklist.push_back(frontier);
        }
      }
    }
  }

  // Depth-first walk of the dominator tree carrying the current SSA value of
  // each alloca; rewrites loads, removes stores, fills phi operands.
  void RenameRecursive() {
    std::vector<Value*> initial(allocas_.size(), nullptr);
    struct WorkItem {
      BasicBlock* block;
      std::vector<Value*> values;
    };
    std::vector<WorkItem> worklist;
    worklist.push_back(WorkItem{fn_.entry(), std::move(initial)});
    std::set<BasicBlock*> visited;

    while (!worklist.empty()) {
      WorkItem item = std::move(worklist.back());
      worklist.pop_back();
      BasicBlock* block = item.block;
      if (!visited.insert(block).second) {
        continue;
      }
      std::vector<Value*>& values = item.values;

      std::vector<Instruction*> to_erase;
      for (auto& inst : *block) {
        if (auto* phi = DynCast<PhiInst>(inst.get())) {
          auto it = phi_alloca_.find(phi);
          if (it != phi_alloca_.end()) {
            values[it->second] = phi;
          }
          continue;
        }
        if (auto* load = DynCast<LoadInst>(inst.get())) {
          auto* alloca = DynCast<AllocaInst>(load->pointer());
          if (alloca == nullptr || index_of_.count(alloca) == 0) {
            continue;
          }
          size_t index = index_of_[alloca];
          Value* current = values[index];
          if (current == nullptr) {
            // Load before any store: undefined value.
            current = ctx_.GetUndef(alloca->allocated_type());
          }
          load->ReplaceAllUsesWith(current);
          to_erase.push_back(load);
          continue;
        }
        if (auto* store = DynCast<StoreInst>(inst.get())) {
          auto* alloca = DynCast<AllocaInst>(store->pointer());
          if (alloca == nullptr || index_of_.count(alloca) == 0) {
            continue;
          }
          values[index_of_[alloca]] = store->value();
          to_erase.push_back(store);
          continue;
        }
      }
      for (Instruction* inst : to_erase) {
        inst->EraseFromParent();
      }

      // Fill phi incomings of successors.
      for (BasicBlock* succ : block->Successors()) {
        for (PhiInst* phi : succ->Phis()) {
          auto it = phi_alloca_.find(phi);
          if (it == phi_alloca_.end()) {
            continue;
          }
          Value* incoming = values[it->second];
          if (incoming == nullptr) {
            incoming = ctx_.GetUndef(phi->type());
          }
          if (phi->IncomingIndexFor(block) < 0) {
            phi->AddIncoming(incoming, block);
          }
        }
      }

      // Recurse into dominator-tree children with a copy of the value state.
      // Note: the CFG walk must follow successors for phi filling (done
      // above); renaming state propagates along the dominator tree.
      for (BasicBlock* child : dom_.Children(block)) {
        worklist.push_back(WorkItem{child, values});
      }
    }
  }

  void Cleanup() {
    for (AllocaInst* alloca : allocas_) {
      OVERIFY_ASSERT(!alloca->HasUses(), "promoted alloca still has uses");
      alloca->EraseFromParent();
      ++g_promoted;
    }
    // Remove placed phis that ended up dead. Liveness must be computed as a
    // closure because loop-carried phis can form use cycles among
    // themselves (phi A feeding phi B feeding phi A) with no real consumer.
    std::set<PhiInst*> placed;
    for (const auto& [phi, index] : phi_alloca_) {
      placed.insert(const_cast<PhiInst*>(phi));
    }
    std::set<PhiInst*> live;
    std::vector<PhiInst*> worklist;
    for (PhiInst* phi : placed) {
      for (const Use& use : phi->uses()) {
        auto* user_phi = DynCast<PhiInst>(use.user);
        if (user_phi == nullptr || placed.count(user_phi) == 0) {
          if (live.insert(phi).second) {
            worklist.push_back(phi);
          }
          break;
        }
      }
    }
    while (!worklist.empty()) {
      PhiInst* phi = worklist.back();
      worklist.pop_back();
      for (Value* op : phi->operands()) {
        auto* op_phi = DynCast<PhiInst>(op);
        if (op_phi != nullptr && placed.count(op_phi) != 0 && live.insert(op_phi).second) {
          worklist.push_back(op_phi);
        }
      }
    }
    std::vector<PhiInst*> dead;
    for (PhiInst* phi : placed) {
      if (live.count(phi) == 0) {
        dead.push_back(phi);
      }
    }
    for (PhiInst* phi : dead) {
      while (phi->NumIncoming() > 0) {
        phi->RemoveIncoming(0);
      }
    }
    for (PhiInst* phi : dead) {
      phi->EraseFromParent();
    }
  }

  Function& fn_;
  const std::vector<AllocaInst*>& allocas_;
  DominatorTree& dom_;
  IRContext& ctx_;
  std::map<const AllocaInst*, size_t> index_of_;
  std::map<const PhiInst*, size_t> phi_alloca_;
};

}  // namespace

bool Mem2RegPass::RunOnFunction(Function& fn) {
  // Unreachable blocks would never be renamed; drop them first so promoted
  // allocas cannot retain uses there.
  RemoveUnreachableBlocks(fn);
  std::vector<AllocaInst*> promotable;
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (auto* alloca = DynCast<AllocaInst>(inst.get())) {
        if (IsPromotable(alloca)) {
          promotable.push_back(alloca);
        }
      }
    }
  }
  if (promotable.empty()) {
    return false;
  }
  DominatorTree dom(fn);
  Promoter(fn, promotable, dom).Run();
  return true;
}

}  // namespace overify
