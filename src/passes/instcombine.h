// Instruction combining: constant folding plus algebraic simplification.
//
// The paper's "Constant propagation/folding, arithmetic simplifications" row:
// marked "+" for both execution and verification — e.g. `x = input(); y = x;
// x -= y;` must become `x = 0` so a range-reasoning verifier does not lose
// precision (§3, "Instruction simplification").
#pragma once

#include "src/passes/pass.h"

namespace overify {

class InstCombinePass : public FunctionPass {
 public:
  const char* name() const override { return "instcombine"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
