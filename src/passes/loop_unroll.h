// Full loop unrolling for loops with compile-time-computable trip counts.
//
// -OSYMBEX "removes loops from the program whenever possible, even if this
// increases the program size" (§4): every removed loop eliminates a
// symbolic-execution fork point per iteration. The CPU-oriented levels use a
// small size budget instead.
#pragma once

#include "src/passes/pass.h"

namespace overify {

struct UnrollOptions {
  // Maximum trip count eligible for full unrolling.
  uint64_t max_trip_count = 8;
  // Maximum (trip count x loop size) growth allowed, in instructions.
  size_t size_limit = 256;
};

class LoopUnrollPass : public FunctionPass {
 public:
  explicit LoopUnrollPass(UnrollOptions options) : options_(options) {}

  const char* name() const override { return "unroll"; }
  bool RunOnFunction(Function& fn) override;

 private:
  UnrollOptions options_;
};

}  // namespace overify
