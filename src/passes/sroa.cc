#include "src/passes/sroa.h"

#include <map>
#include <tuple>
#include <vector>

#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_split("sroa.split_allocas");

// Byte offset of a fully-constant gep from its base (declared early for the
// overlap check below).
uint64_t GepByteOffsetOf(const GepInst* gep);

// An aggregate alloca is splittable when every use is a GEP with all-constant
// indices whose first index is 0, resolving to a first-class element, each
// such GEP is used only by loads and stores, and no two access paths
// partially overlap (identical paths are fine; they share one scalar).
bool IsSplittable(const AllocaInst* alloca) {
  Type* type = alloca->allocated_type();
  if (!type->IsArray() && !type->IsStruct()) {
    return false;
  }
  for (const Use& use : alloca->uses()) {
    const auto* gep = DynCast<GepInst>(use.user);
    if (gep == nullptr || gep->base() != alloca) {
      return false;
    }
    const auto* first = DynCast<ConstantInt>(gep->Index(0));
    if (first == nullptr || !first->IsZero()) {
      return false;
    }
    for (unsigned i = 1; i < gep->NumIndices(); ++i) {
      if (!Isa<ConstantInt>(gep->Index(i))) {
        return false;
      }
    }
    if (!gep->type()->pointee()->IsFirstClass()) {
      return false;
    }
    for (const Use& gep_use : gep->uses()) {
      const Instruction* user = gep_use.user;
      bool ok = user->opcode() == Opcode::kLoad ||
                (user->opcode() == Opcode::kStore && gep_use.operand_index == 1);
      if (!ok) {
        return false;
      }
    }
  }
  // Overlap check: distinct access paths must be byte-disjoint.
  std::vector<std::tuple<uint64_t, uint64_t, Type*>> accesses;  // offset, size, type
  for (const Use& use : alloca->uses()) {
    const auto* gep = Cast<GepInst>(use.user);
    Type* elem = gep->type()->pointee();
    accesses.push_back({GepByteOffsetOf(gep), elem->SizeInBytes(), elem});
  }
  for (size_t i = 0; i < accesses.size(); ++i) {
    for (size_t j = i + 1; j < accesses.size(); ++j) {
      auto& [ao, asz, at] = accesses[i];
      auto& [bo, bsz, bt] = accesses[j];
      bool identical = ao == bo && at == bt;
      bool disjoint = ao + asz <= bo || bo + bsz <= ao;
      if (!identical && !disjoint) {
        return false;
      }
    }
  }
  return true;
}

// Byte offset of a fully-constant gep from its base.
uint64_t GepByteOffsetOf(const GepInst* gep) {
  uint64_t offset = 0;
  Type* current = gep->source_type();
  for (unsigned i = 1; i < gep->NumIndices(); ++i) {
    uint64_t index = Cast<ConstantInt>(gep->Index(i))->value();
    if (current->IsArray()) {
      current = current->element();
      offset += index * current->SizeInBytes();
    } else {
      offset += current->FieldOffset(static_cast<unsigned>(index));
      current = current->fields()[static_cast<unsigned>(index)];
    }
  }
  return offset;
}

void Split(Function& fn, AllocaInst* alloca) {
  IRContext& ctx = fn.parent()->context();
  // One scalar alloca per distinct (offset, element type) access path.
  std::map<std::pair<uint64_t, Type*>, Value*> elements;
  std::vector<GepInst*> geps;
  for (const Use& use : alloca->uses()) {
    geps.push_back(Cast<GepInst>(use.user));
  }
  for (GepInst* gep : geps) {
    Type* elem_type = gep->type()->pointee();
    uint64_t offset = GepByteOffsetOf(gep);
    auto key = std::make_pair(offset, elem_type);
    auto it = elements.find(key);
    Value* scalar;
    if (it != elements.end()) {
      scalar = it->second;
    } else {
      auto fresh = std::make_unique<AllocaInst>(ctx, elem_type);
      fresh->set_name(alloca->HasName()
                          ? alloca->name() + "." + std::to_string(offset)
                          : "sroa." + std::to_string(offset));
      scalar = alloca->parent()->InsertBefore(alloca, std::move(fresh));
      elements[key] = scalar;
    }
    gep->ReplaceAllUsesWith(scalar);
    gep->EraseFromParent();
  }
  alloca->EraseFromParent();
  ++g_split;
}

}  // namespace

bool SroaPass::RunOnFunction(Function& fn) {
  std::vector<AllocaInst*> candidates;
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (auto* alloca = DynCast<AllocaInst>(inst.get())) {
        if (IsSplittable(alloca)) {
          candidates.push_back(alloca);
        }
      }
    }
  }
  for (AllocaInst* alloca : candidates) {
    Split(fn, alloca);
  }
  return !candidates.empty();
}

}  // namespace overify
