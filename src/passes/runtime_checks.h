// Runtime check insertion ("Generate runtime checks" row of Table 2).
//
// Emits `check` instructions in front of trapping operations so that every
// kind of illegal behaviour becomes one uniform failure the verifier looks
// for (§3: "tools now only need to check for one type of failure").
#pragma once

#include "src/passes/pass.h"

namespace overify {

struct RuntimeCheckOptions {
  bool division = true;       // divisor != 0
  bool shifts = true;         // shift amount < width
  bool array_bounds = true;   // variable gep index within the array
};

class RuntimeCheckPass : public FunctionPass {
 public:
  explicit RuntimeCheckPass(RuntimeCheckOptions options) : options_(options) {}

  const char* name() const override { return "checks"; }
  bool RunOnFunction(Function& fn) override;

 private:
  RuntimeCheckOptions options_;
};

}  // namespace overify
