#include "src/passes/inliner.h"

#include <vector>

#include "src/analysis/call_graph.h"
#include "src/ir/cfg.h"
#include "src/ir/cloning.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_inlined("inline.functions_inlined");

}  // namespace

bool InlineCallSite(CallInst* call) {
  Function* callee = call->callee();
  if (callee->IsDeclaration()) {
    return false;
  }
  BasicBlock* block = call->parent();
  Function* caller = block->parent();
  Module& module = *caller->parent();
  IRContext& ctx = module.context();

  // 1. Split the containing block after the call.
  BasicBlock* cont = caller->CreateBlock(block->name() + ".cont");
  {
    // Move everything after the call (including the terminator) into cont.
    std::vector<Instruction*> tail;
    bool after = false;
    for (auto& inst : *block) {
      if (after) {
        tail.push_back(inst.get());
      }
      if (inst.get() == call) {
        after = true;
      }
    }
    for (Instruction* inst : tail) {
      cont->Append(block->Remove(inst));
    }
  }
  // Successor phis now flow from cont.
  for (BasicBlock* succ : cont->Successors()) {
    RedirectPhiIncoming(succ, block, cont);
  }

  // 2. Clone the callee body, mapping its arguments to the call operands.
  CloneMapping mapping;
  for (unsigned i = 0; i < callee->NumArgs(); ++i) {
    mapping.values[callee->Arg(i)] = call->Arg(i);
  }
  std::vector<BasicBlock*> callee_blocks;
  for (BasicBlock& bb : *callee) {
    callee_blocks.push_back(&bb);
  }
  CloneBlocksInto(callee_blocks, caller, ".i", mapping);

  // 3. Branch from the call block into the cloned entry.
  BasicBlock* cloned_entry = mapping.Lookup(callee->entry());
  block->Append(std::make_unique<BranchInst>(ctx, cloned_entry));

  // 4. Rewrite cloned returns into branches to cont, collecting return
  // values for the result phi.
  std::vector<std::pair<Value*, BasicBlock*>> returns;
  for (BasicBlock* bb : callee_blocks) {
    BasicBlock* clone = mapping.Lookup(bb);
    auto* ret = DynCast<RetInst>(clone->Terminator());
    if (ret == nullptr) {
      continue;
    }
    Value* result = ret->HasValue() ? ret->value() : nullptr;
    ret->EraseFromParent();
    clone->Append(std::make_unique<BranchInst>(ctx, cont));
    returns.push_back({result, clone});
  }

  // 5. Wire up the call's result.
  if (!call->type()->IsVoid() && call->HasUses()) {
    Value* replacement = nullptr;
    if (returns.size() == 1) {
      replacement = returns[0].first;
    } else if (returns.empty()) {
      // The callee never returns; the continuation is unreachable.
      replacement = ctx.GetUndef(call->type());
    } else {
      auto phi = std::make_unique<PhiInst>(call->type());
      phi->set_name(callee->name() + ".ret");
      for (auto& [value, from] : returns) {
        phi->AddIncoming(value, from);
      }
      PhiInst* raw = phi.get();
      cont->InsertBefore(cont->begin(), std::move(phi));
      replacement = raw;
    }
    call->ReplaceAllUsesWith(replacement);
  }

  // 6. If the callee never returns, terminate cont as unreachable... cont
  // still needs to hold the moved tail; mark entry edge instead: with no
  // returns, cont has no predecessors and later CFG cleanup removes it.
  call->EraseFromParent();
  ++g_inlined;
  return true;
}

bool InlinerPass::Run(Module& module) {
  CallGraph call_graph(module);
  bool changed = false;

  for (Function* fn : call_graph.BottomUpOrder()) {
    if (fn->IsDeclaration()) {
      continue;
    }
    // Iterate: inlining may expose further call sites (from inlined bodies).
    bool local_changed = true;
    while (local_changed) {
      local_changed = false;
      if (fn->InstructionCount() > options_.caller_size_cap) {
        break;
      }
      std::vector<CallInst*> sites;
      for (BasicBlock& block : *fn) {
        for (auto& inst : block) {
          if (auto* call = DynCast<CallInst>(inst.get())) {
            sites.push_back(call);
          }
        }
      }
      for (CallInst* call : sites) {
        Function* callee = call->callee();
        if (callee->IsDeclaration() || callee == fn || call_graph.IsRecursive(callee)) {
          continue;
        }
        if (callee->inline_hint() == InlineHint::kNever) {
          continue;
        }
        bool must_inline = callee->inline_hint() == InlineHint::kAlways ||
                           (options_.always_inline_libc && callee->is_libc());
        if (!must_inline && callee->InstructionCount() > options_.callee_size_threshold) {
          continue;
        }
        if (fn->InstructionCount() + callee->InstructionCount() > options_.caller_size_cap) {
          continue;
        }
        if (InlineCallSite(call)) {
          local_changed = true;
          changed = true;
          break;  // block structure changed; rescan
        }
      }
    }
  }
  return changed;
}

}  // namespace overify
