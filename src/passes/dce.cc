#include "src/passes/dce.h"

#include <set>
#include <vector>

#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_removed("dce.removed");

// Liveness seed: instructions whose effects are observable.
bool IsTriviallyLive(const Instruction* inst) {
  return inst->HasSideEffects();
}

}  // namespace

bool DcePass::RunOnFunction(Function& fn) {
  // Mark-and-sweep over the whole function so dead phi cycles collapse too.
  std::set<const Instruction*> live;
  std::vector<const Instruction*> worklist;

  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (IsTriviallyLive(inst.get())) {
        live.insert(inst.get());
        worklist.push_back(inst.get());
      }
    }
  }
  while (!worklist.empty()) {
    const Instruction* inst = worklist.back();
    worklist.pop_back();
    for (const Value* op : inst->operands()) {
      const auto* def = DynCast<Instruction>(op);
      if (def != nullptr && live.insert(def).second) {
        worklist.push_back(def);
      }
    }
  }

  std::vector<Instruction*> dead;
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (live.count(inst.get()) == 0) {
        dead.push_back(inst.get());
      }
    }
  }
  if (dead.empty()) {
    return false;
  }
  // Break references first: dead instructions may use each other in cycles.
  for (Instruction* inst : dead) {
    if (auto* phi = DynCast<PhiInst>(inst)) {
      while (phi->NumIncoming() > 0) {
        phi->RemoveIncoming(0);
      }
    } else {
      for (unsigned i = 0; i < inst->NumOperands(); ++i) {
        Value* undef = fn.parent()->context().GetUndef(inst->Operand(i)->type());
        if (inst->Operand(i) != undef) {
          inst->SetOperand(i, undef);
        }
      }
    }
  }
  for (Instruction* inst : dead) {
    OVERIFY_ASSERT(!inst->HasUses(), "dead instruction still used by live code");
    inst->EraseFromParent();
    ++g_removed;
  }
  return true;
}

}  // namespace overify
