// Loop-invariant code motion: hoists side-effect-free loop-invariant
// computations (and provably safe invariant loads) into the preheader.
#pragma once

#include "src/passes/pass.h"

namespace overify {

class LicmPass : public FunctionPass {
 public:
  const char* name() const override { return "licm"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
