#include "src/passes/loop_unroll.h"

#include <vector>

#include "src/ir/cfg.h"
#include "src/ir/cloning.h"
#include "src/passes/loop_utils.h"
#include "src/support/statistics.h"
#include "src/support/string_utils.h"

namespace overify {

namespace {

Statistic g_unrolled("unroll.loops_unrolled");

size_t LoopSize(const Loop* loop) {
  size_t size = 0;
  for (BasicBlock* block : loop->blocks()) {
    size += block->size();
  }
  return size;
}

// Peels one iteration of `loop` in front of it. The peeled copy runs first;
// the original loop's header phis are rewired to start from the peeled
// latch values. Returns false if preconditions fail.
bool PeelIteration(Function& fn, Loop* loop) {
  IRContext& ctx = fn.parent()->context();
  BasicBlock* latch = loop->Latch();
  BasicBlock* header = loop->header();
  if (latch == nullptr) {
    return false;
  }
  // The unique entry edge into the loop. After the first peel this is the
  // previous peeled copy's latch (which may end in a conditional branch), so
  // a full preheader cannot be required here.
  BasicBlock* preheader = nullptr;
  for (BasicBlock* pred : header->Predecessors()) {
    if (loop->Contains(pred)) {
      continue;
    }
    if (preheader != nullptr) {
      return false;
    }
    preheader = pred;
  }
  if (preheader == nullptr) {
    return false;
  }

  std::vector<BasicBlock*> region(loop->blocks().begin(), loop->blocks().end());
  CloneMapping mapping;
  CloneBlocksInto(region, &fn, ".p", mapping);
  BasicBlock* header_peel = mapping.Lookup(header);
  BasicBlock* latch_peel = mapping.Lookup(latch);

  // Exit blocks gain edges from peeled exiting blocks.
  for (BasicBlock* exit : loop->ExitBlocks()) {
    for (PhiInst* phi : exit->Phis()) {
      std::vector<std::pair<Value*, BasicBlock*>> incoming;
      for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
        incoming.push_back({phi->IncomingValue(i), phi->IncomingBlock(i)});
      }
      for (auto& [value, pred] : incoming) {
        if (loop->Contains(pred)) {
          phi->AddIncoming(mapping.Lookup(value), mapping.Lookup(pred));
        }
      }
    }
  }

  // Peeled header phis: keep only the preheader entry (resolve to the value).
  for (PhiInst* phi : header_peel->Phis()) {
    int latch_index = phi->IncomingIndexFor(latch_peel);
    if (latch_index >= 0) {
      phi->RemoveIncoming(static_cast<unsigned>(latch_index));
    }
  }
  // (Trivial single-incoming phis are resolved below after rewiring.)

  // Original header phis: the entry value now comes from the peeled latch,
  // carrying the peeled copy's "next" value.
  for (PhiInst* phi : header->Phis()) {
    int pre_index = phi->IncomingIndexFor(preheader);
    if (pre_index < 0) {
      continue;
    }
    int latch_index = phi->IncomingIndexFor(latch);
    OVERIFY_ASSERT(latch_index >= 0, "header phi missing latch entry");
    Value* next_value = phi->IncomingValue(static_cast<unsigned>(latch_index));
    phi->RemoveIncoming(static_cast<unsigned>(pre_index));
    phi->AddIncoming(mapping.Lookup(next_value), latch_peel);
  }

  // Redirect: the entry edge enters the peeled copy; the peeled latch's back
  // edge goes to the original header.
  auto* pre_br = Cast<BranchInst>(preheader->Terminator());
  if (pre_br->true_dest() == header) {
    pre_br->SetDest(0, header_peel);
  }
  if (pre_br->IsConditional() && pre_br->false_dest() == header) {
    pre_br->SetDest(1, header_peel);
  }
  auto* latch_peel_br = Cast<BranchInst>(latch_peel->Terminator());
  if (latch_peel_br->true_dest() == header_peel) {
    latch_peel_br->SetDest(0, header);
  }
  if (latch_peel_br->IsConditional() && latch_peel_br->false_dest() == header_peel) {
    latch_peel_br->SetDest(1, header);
  }

  // Resolve the peeled header's now-single-incoming phis.
  for (PhiInst* phi : header_peel->Phis()) {
    if (phi->NumIncoming() == 1) {
      Value* value = phi->IncomingValue(0);
      phi->ReplaceAllUsesWith(value == phi ? static_cast<Value*>(ctx.GetUndef(phi->type()))
                                           : value);
      phi->EraseFromParent();
    }
  }
  return true;
}

}  // namespace

bool LoopUnrollPass::RunOnFunction(Function& fn) {
  bool changed = false;
  // Unroll one loop per outer iteration; each full unroll changes loop
  // structure fundamentally, so analyses are recomputed.
  bool progress = true;
  while (progress) {
    progress = false;
    DominatorTree dom(fn);
    LoopInfo loops(fn, dom);
    for (Loop* loop : loops.LoopsInnermostFirst()) {
      EnsurePreheader(loop);
      EnsureDedicatedExits(loop);
      auto trip = ComputeTripCount(loop, options_.max_trip_count);
      if (!trip.has_value() || trip->trip_count > options_.max_trip_count) {
        continue;
      }
      if (trip->trip_count * LoopSize(loop) > options_.size_limit) {
        continue;
      }
      if (!FormLCSSA(fn, loop)) {
        continue;
      }
      BasicBlock* latch = loop->Latch();
      BasicBlock* header = loop->header();
      bool ok = true;
      for (uint64_t i = 0; i < trip->trip_count; ++i) {
        if (!PeelIteration(fn, loop)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        // The residual copy's back edge is now dead: with an exact trip
        // count, a header-exit loop evaluates its condition once more and
        // leaves. Break the edge so the residual is no longer a loop (a
        // latch-exit residual is never even entered and needs no surgery;
        // its entry edge constant-folds away).
        if (trip->exiting == header && header != latch && latch != nullptr) {
          auto* latch_br = DynCast<BranchInst>(latch->Terminator());
          if (latch_br != nullptr && !latch_br->IsConditional() &&
              latch_br->SingleDest() == header) {
            for (PhiInst* phi : header->Phis()) {
              int index = phi->IncomingIndexFor(latch);
              if (index >= 0) {
                phi->RemoveIncoming(static_cast<unsigned>(index));
              }
            }
            latch_br->EraseFromParent();
            latch->Append(
                std::make_unique<UnreachableInst>(fn.parent()->context()));
          }
        }
        ++g_unrolled;
        changed = true;
        progress = true;
        break;  // loop structures changed; recompute analyses
      }
    }
  }
  return changed;
}

}  // namespace overify
