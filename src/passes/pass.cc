#include "src/passes/pass.h"

#include "src/ir/verifier.h"
#include "src/support/stopwatch.h"

namespace overify {

bool FunctionPass::Run(Module& module) {
  bool changed = false;
  for (const auto& fn : module.functions()) {
    if (fn->IsDeclaration()) {
      continue;
    }
    changed |= RunOnFunction(*fn);
  }
  return changed;
}

bool PassManager::Run(Module& module) {
  bool any_changed = false;
  timings_.clear();
  for (const auto& pass : passes_) {
    Stopwatch watch;
    bool changed = pass->Run(module);
    timings_.push_back(Timing{pass->name(), watch.ElapsedSeconds(), changed});
    any_changed |= changed;
    if (verify_after_each_) {
      VerifyModuleOrDie(module, pass->name());
    }
  }
  return any_changed;
}

}  // namespace overify
