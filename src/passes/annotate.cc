#include "src/passes/annotate.h"

#include "src/ir/loop_info.h"
#include "src/passes/loop_utils.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_annotated("annotate.values_annotated");

}  // namespace

bool AnnotatePass::RunOnFunction(Function& fn) {
  RangeAnalysis ranges(fn);
  for (BasicBlock& block : fn) {
    for (auto& inst : block) {
      if (!inst->type()->IsInt()) {
        continue;
      }
      ValueRange r = ranges.RangeOf(inst.get());
      if (!r.IsFull(inst->type()->bits())) {
        out_->value_ranges[inst.get()] = r;
        ++g_annotated;
      }
    }
  }

  DominatorTree dom(fn);
  LoopInfo loops(fn, dom);
  for (Loop* loop : loops.LoopsInnermostFirst()) {
    auto trip = ComputeTripCount(loop, 1u << 16);
    if (trip.has_value()) {
      out_->trip_counts[loop->header()] = trip->trip_count;
      ++g_annotated;
    }
  }
  // Annotation never mutates the IR.
  return false;
}

}  // namespace overify
