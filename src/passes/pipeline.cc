#include "src/passes/pipeline.h"

#include "src/passes/cse.h"
#include "src/passes/global_dce.h"
#include "src/passes/dce.h"
#include "src/passes/instcombine.h"
#include "src/passes/jump_threading.h"
#include "src/passes/licm.h"
#include "src/passes/mem2reg.h"
#include "src/passes/simplify_cfg.h"
#include "src/passes/sroa.h"

namespace overify {

const char* OptLevelName(OptLevel level) {
  switch (level) {
    case OptLevel::kO0:
      return "-O0";
    case OptLevel::kO1:
      return "-O1";
    case OptLevel::kO2:
      return "-O2";
    case OptLevel::kO3:
      return "-O3";
    case OptLevel::kOverify:
      return "-OVERIFY";
  }
  return "?";
}

PipelineOptions PipelineOptions::For(OptLevel level) {
  PipelineOptions o;
  o.level = level;
  switch (level) {
    case OptLevel::kO0:
      return o;
    case OptLevel::kO1:
      o.mem2reg = true;
      o.instcombine = true;
      o.simplify_cfg = true;
      return o;
    case OptLevel::kO2:
      o.mem2reg = true;
      o.sroa = true;
      o.instcombine = true;
      o.cse = true;
      o.licm = true;
      o.inline_functions = true;
      o.inliner.callee_size_threshold = 40;
      o.simplify_cfg = true;
      // Per the paper's Table 1, -O2 "does not fundamentally change the
      // program's structure": no if-conversion, unswitching or threading.
      return o;
    case OptLevel::kO3:
      o = For(OptLevel::kO2);
      o.level = level;
      o.inliner.callee_size_threshold = 120;
      o.jump_threading = true;
      o.unswitch = true;
      o.unswitcher.loop_size_limit = 48;
      o.unswitcher.max_per_function = 2;
      o.unroll = true;
      o.unroller.max_trip_count = 4;
      o.unroller.size_limit = 128;
      // CPU-style if-conversion: only truly tiny speculation beats a
      // predicted branch (the GCC `if (test) x = 0;` example from §3).
      o.if_convert = true;
      o.if_converter.branch_cost = 3;
      o.if_converter.speculate_loads = false;
      return o;
    case OptLevel::kOverify:
      o.mem2reg = true;
      o.sroa = true;
      o.instcombine = true;
      o.cse = true;
      o.licm = true;
      o.inline_functions = true;
      // (2) adjusted cost values: inline almost everything, especially libc.
      o.inliner.callee_size_threshold = 500;
      o.inliner.caller_size_cap = 20000;
      o.inliner.always_inline_libc = true;
      o.simplify_cfg = true;
      o.jump_threading = true;
      // Branches are what the verifier pays for: unswitch aggressively...
      o.unswitch = true;
      o.unswitcher.loop_size_limit = 512;
      o.unswitcher.max_per_function = 12;
      // ...remove loops whenever possible, even if the program grows...
      o.unroll = true;
      o.unroller.max_trip_count = 64;
      o.unroller.size_limit = 8192;
      // ...and convert every safely-speculatable branch into selects.
      o.if_convert = true;
      o.if_converter.branch_cost = 1 << 20;
      o.if_converter.max_speculated = 256;
      o.if_converter.speculate_loads = true;
      // (3) metadata and (4) library flavor.
      o.runtime_checks = true;
      o.annotate = true;
      o.use_verify_libc = true;
      return o;
  }
  return o;
}

void BuildPipeline(PassManager& pm, const PipelineOptions& options,
                   ProgramAnnotations* annotations) {
  const PipelineOptions& o = options;
  auto add_cleanup_round = [&] {
    if (o.instcombine) {
      pm.Add(std::make_unique<InstCombinePass>());
    }
    if (o.simplify_cfg) {
      pm.Add(std::make_unique<SimplifyCfgPass>());
    }
    pm.Add(std::make_unique<DcePass>());
  };

  if (o.level == OptLevel::kO0) {
    return;  // a non-optimizing build: exactly what the frontend emitted
  }

  // Strip unused library code first so later passes (and their statistics)
  // see only what the program actually links.
  pm.Add(std::make_unique<GlobalDcePass>());

  if (o.sroa) {
    pm.Add(std::make_unique<SroaPass>());
  }
  if (o.mem2reg) {
    pm.Add(std::make_unique<Mem2RegPass>());
  }
  add_cleanup_round();

  if (o.inline_functions) {
    pm.Add(std::make_unique<InlinerPass>(o.inliner));
    // Inlining exposes allocas (from inlined bodies) and constants.
    if (o.sroa) {
      pm.Add(std::make_unique<SroaPass>());
    }
    if (o.mem2reg) {
      pm.Add(std::make_unique<Mem2RegPass>());
    }
    add_cleanup_round();
  }

  if (o.cse) {
    pm.Add(std::make_unique<CsePass>());
  }
  if (o.licm) {
    pm.Add(std::make_unique<LicmPass>());
  }
  if (o.cse || o.licm) {
    add_cleanup_round();
  }

  if (o.unswitch) {
    pm.Add(std::make_unique<LoopUnswitchPass>(o.unswitcher));
    add_cleanup_round();
  }
  if (o.unroll) {
    pm.Add(std::make_unique<LoopUnrollPass>(o.unroller));
    add_cleanup_round();
    if (o.cse) {
      pm.Add(std::make_unique<CsePass>());
      pm.Add(std::make_unique<DcePass>());
    }
  }

  if (o.if_convert) {
    // CSE first so duplicate loads merge, enabling the dominating-access
    // speculation rule; then convert, then clean up.
    if (o.cse) {
      pm.Add(std::make_unique<CsePass>());
    }
    pm.Add(std::make_unique<IfConvertPass>(o.if_converter));
    add_cleanup_round();
    pm.Add(std::make_unique<IfConvertPass>(o.if_converter));
    add_cleanup_round();
  }

  // Jump threading runs after if-conversion: threading rewires the very
  // short-circuit diamonds if-conversion wants to collapse, so the order
  // matters (it picks off the branches speculation could not remove).
  if (o.jump_threading) {
    pm.Add(std::make_unique<JumpThreadingPass>());
    add_cleanup_round();
  }

  if (o.runtime_checks) {
    pm.Add(std::make_unique<RuntimeCheckPass>(o.checker));
  }
  if (o.annotate && annotations != nullptr) {
    pm.Add(std::make_unique<AnnotatePass>(annotations));
  }
}

}  // namespace overify
