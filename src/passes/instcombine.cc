#include "src/passes/instcombine.h"

#include <deque>
#include <set>

#include "src/ir/fold.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_simplified("instcombine.simplified");

bool IsCommutative(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAdd:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
      return true;
    default:
      return false;
  }
}

class Combiner {
 public:
  explicit Combiner(Function& fn) : fn_(fn), ctx_(fn.parent()->context()) {}

  bool Run() {
    for (BasicBlock& block : fn_) {
      for (auto& inst : block) {
        Enqueue(inst.get());
      }
    }
    bool changed = false;
    while (!worklist_.empty()) {
      Instruction* inst = worklist_.front();
      worklist_.pop_front();
      in_worklist_.erase(inst);
      if (erased_.count(inst) != 0) {
        continue;
      }
      changed |= Visit(inst);
    }
    return changed;
  }

 private:
  void Enqueue(Instruction* inst) {
    if (erased_.count(inst) == 0 && in_worklist_.insert(inst).second) {
      worklist_.push_back(inst);
    }
  }

  void EnqueueUsers(Value* v) {
    for (const Use& use : v->uses()) {
      Enqueue(use.user);
    }
  }

  // Replaces `inst` with `replacement` everywhere and erases it.
  bool ReplaceWith(Instruction* inst, Value* replacement) {
    EnqueueUsers(inst);
    inst->ReplaceAllUsesWith(replacement);
    if (auto* rep_inst = DynCast<Instruction>(replacement)) {
      Enqueue(rep_inst);
    }
    erased_.insert(inst);
    inst->EraseFromParent();
    ++g_simplified;
    return true;
  }

  bool Visit(Instruction* inst) {
    switch (inst->opcode()) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kUDiv:
      case Opcode::kSDiv:
      case Opcode::kURem:
      case Opcode::kSRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kAShr:
        return VisitBinary(inst);
      case Opcode::kICmp:
        return VisitICmp(Cast<ICmpInst>(inst));
      case Opcode::kSelect:
        return VisitSelect(Cast<SelectInst>(inst));
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kTrunc:
        return VisitCast(inst);
      case Opcode::kPhi:
        return VisitPhi(Cast<PhiInst>(inst));
      default:
        return false;
    }
  }

  bool VisitBinary(Instruction* inst) {
    Opcode opcode = inst->opcode();
    unsigned bits = inst->type()->bits();

    // Canonicalize: constant operand to the right for commutative ops.
    if (IsCommutative(opcode) && Isa<ConstantInt>(inst->Operand(0)) &&
        !Isa<ConstantInt>(inst->Operand(1))) {
      Value* lhs = inst->Operand(0);
      inst->SetOperand(0, inst->Operand(1));
      inst->SetOperand(1, lhs);
    }

    const auto* lhs_const = DynCast<ConstantInt>(inst->Operand(0));
    const auto* rhs_const = DynCast<ConstantInt>(inst->Operand(1));

    // Full constant fold.
    if (lhs_const != nullptr && rhs_const != nullptr) {
      if (auto folded = FoldBinary(opcode, bits, lhs_const->value(), rhs_const->value())) {
        return ReplaceWith(inst, ctx_.GetInt(inst->type(), *folded));
      }
      return false;  // trapping constant op (e.g. div by zero): leave for checks
    }

    Value* lhs = inst->Operand(0);
    Value* rhs = inst->Operand(1);

    // Identities with a constant RHS.
    if (rhs_const != nullptr) {
      uint64_t c = rhs_const->value();
      switch (opcode) {
        case Opcode::kAdd:
        case Opcode::kSub:
        case Opcode::kOr:
        case Opcode::kXor:
        case Opcode::kShl:
        case Opcode::kLShr:
        case Opcode::kAShr:
          if (c == 0) {
            return ReplaceWith(inst, lhs);
          }
          break;
        case Opcode::kMul:
          if (c == 1) {
            return ReplaceWith(inst, lhs);
          }
          if (c == 0) {
            return ReplaceWith(inst, ctx_.GetInt(inst->type(), 0));
          }
          break;
        case Opcode::kUDiv:
        case Opcode::kSDiv:
          if (c == 1) {
            return ReplaceWith(inst, lhs);
          }
          break;
        case Opcode::kURem:
          if (c == 1) {
            return ReplaceWith(inst, ctx_.GetInt(inst->type(), 0));
          }
          break;
        case Opcode::kSRem:
          if (c == 1) {
            return ReplaceWith(inst, ctx_.GetInt(inst->type(), 0));
          }
          break;
        case Opcode::kAnd:
          if (c == 0) {
            return ReplaceWith(inst, ctx_.GetInt(inst->type(), 0));
          }
          if (rhs_const->IsAllOnes()) {
            return ReplaceWith(inst, lhs);
          }
          break;
        default:
          break;
      }

      // Reassociation: (x op c1) op c2 -> x op (c1 op c2) for associative ops.
      if (opcode == Opcode::kAdd || opcode == Opcode::kAnd || opcode == Opcode::kOr ||
          opcode == Opcode::kXor || opcode == Opcode::kMul) {
        if (auto* lhs_inst = DynCast<BinaryInst>(lhs)) {
          if (lhs_inst->opcode() == opcode) {
            if (const auto* inner_const = DynCast<ConstantInt>(lhs_inst->rhs())) {
              auto folded = FoldBinary(opcode, bits, inner_const->value(), c);
              if (folded.has_value()) {
                inst->SetOperand(0, lhs_inst->lhs());
                inst->SetOperand(1, ctx_.GetInt(inst->type(), *folded));
                Enqueue(inst);
                ++g_simplified;
                return true;
              }
            }
          }
        }
      }

      // add x, negative-c stays as-is (no sub canonicalization needed).
    }

    // Operand-identical identities.
    if (lhs == rhs) {
      switch (opcode) {
        case Opcode::kSub:
        case Opcode::kXor:
          return ReplaceWith(inst, ctx_.GetInt(inst->type(), 0));
        case Opcode::kAnd:
        case Opcode::kOr:
          return ReplaceWith(inst, lhs);
        default:
          break;
      }
    }

    // or/and of i1 with constant handled above; no further rules.
    return false;
  }

  bool VisitICmp(ICmpInst* cmp) {
    unsigned bits = cmp->lhs()->type()->IsInt() ? cmp->lhs()->type()->bits() : 64;
    const auto* lhs_const = DynCast<ConstantInt>(cmp->lhs());
    const auto* rhs_const = DynCast<ConstantInt>(cmp->rhs());

    if (lhs_const != nullptr && rhs_const != nullptr) {
      bool result = FoldICmp(cmp->predicate(), bits, lhs_const->value(), rhs_const->value());
      return ReplaceWith(cmp, ctx_.GetBool(result));
    }
    // Canonicalize constant to the RHS.
    if (lhs_const != nullptr && rhs_const == nullptr) {
      Value* lhs = cmp->lhs();
      cmp->SetOperand(0, cmp->rhs());
      cmp->SetOperand(1, lhs);
      cmp->set_predicate(SwapPredicate(cmp->predicate()));
      Enqueue(cmp);
      return true;
    }
    if (cmp->lhs() == cmp->rhs()) {
      bool result = FoldICmp(cmp->predicate(), bits, 0, 0);  // reflexive outcome
      return ReplaceWith(cmp, ctx_.GetBool(result));
    }
    // icmp on i1 against constants: eq/ne to 0/1 reduce to the value or its
    // negation.
    if (cmp->lhs()->type()->IsBool() && rhs_const != nullptr) {
      bool is_one = rhs_const->IsOne();
      bool want_value = (cmp->predicate() == ICmpPredicate::kEq && is_one) ||
                        (cmp->predicate() == ICmpPredicate::kNe && !is_one);
      bool want_not = (cmp->predicate() == ICmpPredicate::kEq && !is_one) ||
                      (cmp->predicate() == ICmpPredicate::kNe && is_one);
      if (want_value) {
        return ReplaceWith(cmp, cmp->lhs());
      }
      if (want_not) {
        auto not_inst = std::make_unique<BinaryInst>(Opcode::kXor, cmp->lhs(), ctx_.True());
        Instruction* raw = not_inst.get();
        cmp->parent()->InsertBefore(cmp, std::move(not_inst));
        return ReplaceWith(cmp, raw);
      }
    }
    // icmp (zext x), C -> icmp x, C' when C fits the source width (compare in
    // the narrow domain; valid for equality and unsigned orderings).
    if (rhs_const != nullptr) {
      if (auto* cast = DynCast<CastInst>(cmp->lhs())) {
        if (cast->opcode() == Opcode::kZExt && !IsSignedPredicate(cmp->predicate())) {
          unsigned src_bits = cast->value()->type()->bits();
          if (TruncateToWidth(rhs_const->value(), src_bits) == rhs_const->value()) {
            auto narrow = std::make_unique<ICmpInst>(
                ctx_, cmp->predicate(), cast->value(),
                ctx_.GetInt(cast->value()->type(), rhs_const->value()));
            Instruction* raw = narrow.get();
            cmp->parent()->InsertBefore(cmp, std::move(narrow));
            return ReplaceWith(cmp, raw);
          }
        }
      }
    }
    return false;
  }

  bool VisitSelect(SelectInst* select) {
    if (const auto* cond = DynCast<ConstantInt>(select->condition())) {
      return ReplaceWith(select, cond->IsZero() ? select->false_value() : select->true_value());
    }
    if (select->true_value() == select->false_value()) {
      return ReplaceWith(select, select->true_value());
    }
    // Boolean selects reduce to logical operations (what a code generator
    // would emit; also far cheaper than a cmov in the execution cost model):
    //   select c, 1, x  -> or c, x        select c, x, 0 -> and c, x
    //   select c, 0, x  -> and !c, x      select c, x, 1 -> or !c, x
    // and the constant-pair forms select c,1,0 -> c; select c,0,1 -> !c.
    if (select->type()->IsBool()) {
      Value* cond = select->condition();
      Value* tv = select->true_value();
      Value* fv = select->false_value();
      const auto* tc = DynCast<ConstantInt>(tv);
      const auto* fc = DynCast<ConstantInt>(fv);
      auto emit_not = [&](Value* v) -> Value* {
        auto not_inst = std::make_unique<BinaryInst>(Opcode::kXor, v, ctx_.True());
        Instruction* raw = not_inst.get();
        select->parent()->InsertBefore(select, std::move(not_inst));
        return raw;
      };
      auto emit_binary = [&](Opcode op, Value* a, Value* b) {
        auto inst = std::make_unique<BinaryInst>(op, a, b);
        Instruction* raw = inst.get();
        select->parent()->InsertBefore(select, std::move(inst));
        return ReplaceWith(select, raw);
      };
      if (tc != nullptr && fc != nullptr) {
        if (tc->IsOne() && fc->IsZero()) {
          return ReplaceWith(select, cond);
        }
        if (tc->IsZero() && fc->IsOne()) {
          return ReplaceWith(select, emit_not(cond));
        }
      }
      if (tc != nullptr) {
        return tc->IsOne() ? emit_binary(Opcode::kOr, cond, fv)
                           : emit_binary(Opcode::kAnd, emit_not(cond), fv);
      }
      if (fc != nullptr) {
        return fc->IsZero() ? emit_binary(Opcode::kAnd, cond, tv)
                            : emit_binary(Opcode::kOr, emit_not(cond), tv);
      }
    }
    return false;
  }

  bool VisitCast(Instruction* inst) {
    if (const auto* src = DynCast<ConstantInt>(inst->Operand(0))) {
      uint64_t folded = FoldCast(inst->opcode(), src->type()->bits(), inst->type()->bits(),
                                 src->value());
      return ReplaceWith(inst, ctx_.GetInt(inst->type(), folded));
    }
    // Collapse double-extensions of the same signedness.
    if (auto* inner = DynCast<CastInst>(inst->Operand(0))) {
      if (inner->opcode() == inst->opcode() &&
          (inst->opcode() == Opcode::kZExt || inst->opcode() == Opcode::kSExt)) {
        auto merged =
            std::make_unique<CastInst>(inst->opcode(), inner->value(), inst->type());
        Instruction* raw = merged.get();
        inst->parent()->InsertBefore(inst, std::move(merged));
        return ReplaceWith(inst, raw);
      }
      // trunc(ext(x)) back to the original width is x.
      if (inst->opcode() == Opcode::kTrunc &&
          (inner->opcode() == Opcode::kZExt || inner->opcode() == Opcode::kSExt) &&
          inner->value()->type() == inst->type()) {
        return ReplaceWith(inst, inner->value());
      }
    }
    return false;
  }

  bool VisitPhi(PhiInst* phi) {
    // All incoming values identical (ignoring self-references) -> that value.
    Value* common = nullptr;
    for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
      Value* incoming = phi->IncomingValue(i);
      if (incoming == phi) {
        continue;
      }
      if (common == nullptr) {
        common = incoming;
      } else if (common != incoming) {
        return false;
      }
    }
    if (common == nullptr) {
      return false;
    }
    if (phi->NumIncoming() > 0 && common != nullptr) {
      bool all_same = true;
      for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
        if (phi->IncomingValue(i) != common && phi->IncomingValue(i) != phi) {
          all_same = false;
          break;
        }
      }
      if (all_same) {
        // Detach incoming edges before replacement to avoid self-use issues.
        EnqueueUsers(phi);
        phi->ReplaceAllUsesWith(common);
        while (phi->NumIncoming() > 0) {
          phi->RemoveIncoming(0);
        }
        erased_.insert(phi);
        phi->EraseFromParent();
        ++g_simplified;
        return true;
      }
    }
    return false;
  }

  Function& fn_;
  IRContext& ctx_;
  std::deque<Instruction*> worklist_;
  std::set<Instruction*> in_worklist_;
  std::set<Instruction*> erased_;
};

}  // namespace

bool InstCombinePass::RunOnFunction(Function& fn) { return Combiner(fn).Run(); }

}  // namespace overify
