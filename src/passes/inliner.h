// Function inlining with a tunable cost threshold.
//
// -OSYMBEX "aggressively inlines functions in order to benefit from
// simplifications due to function specialization" (§4). The same pass serves
// -O2/-O3 with a CPU-oriented threshold and -OVERIFY with a much larger one
// plus always-inline treatment of the linked C library.
#pragma once

#include "src/passes/pass.h"

namespace overify {

struct InlinerOptions {
  // Callees with at most this many instructions are inlined.
  size_t callee_size_threshold = 40;
  // Stop growing a caller beyond this many instructions.
  size_t caller_size_cap = 6000;
  // Treat functions marked is_libc() as always-inline regardless of size.
  bool always_inline_libc = false;
};

class InlinerPass : public Pass {
 public:
  explicit InlinerPass(InlinerOptions options) : options_(options) {}

  const char* name() const override { return "inline"; }
  bool Run(Module& module) override;

 private:
  InlinerOptions options_;
};

// Inlines one call site unconditionally (used by the pass and by tests).
// The callee must have a body. Returns false if the site cannot be inlined
// (recursive callee is the caller itself is still allowed here; policy lives
// in the pass).
bool InlineCallSite(CallInst* call);

}  // namespace overify
