// Promotes scalar allocas whose address does not escape into SSA registers
// (pruned SSA construction via dominance frontiers).
//
// This is the paper's "Remove/split memory accesses" row: every promoted
// alloca removes loads/stores the verifier would otherwise have to reason
// about through its memory model.
#pragma once

#include "src/passes/pass.h"

namespace overify {

class Mem2RegPass : public FunctionPass {
 public:
  const char* name() const override { return "mem2reg"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
