#include "src/passes/licm.h"

#include <vector>

#include "src/analysis/alias_analysis.h"
#include "src/ir/loop_info.h"
#include "src/passes/loop_utils.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_hoisted("licm.hoisted");

// All operands available outside the loop?
bool OperandsInvariant(const Instruction* inst, const Loop* loop,
                       const std::set<const Instruction*>& hoisted) {
  for (const Value* op : inst->operands()) {
    const auto* def = DynCast<Instruction>(op);
    if (def == nullptr) {
      continue;
    }
    if (loop->Contains(def->parent()) && hoisted.count(def) == 0) {
      return false;
    }
  }
  return true;
}

// A loop-invariant load is hoistable when (a) its address is invariant,
// (b) no store or call in the loop may touch that address, and (c) the load
// executes on every iteration (its block dominates the latch) so hoisting
// cannot introduce a new fault.
bool IsHoistableLoad(LoadInst* load, Loop* loop, DominatorTree& dom, BasicBlock* latch) {
  uint64_t size = load->type()->SizeInBytes();
  for (BasicBlock* block : loop->blocks()) {
    for (auto& inst : *block) {
      if (auto* store = DynCast<StoreInst>(inst.get())) {
        uint64_t store_size = store->value()->type()->SizeInBytes();
        if (Alias(load->pointer(), size, store->pointer(), store_size) !=
            AliasResult::kNoAlias) {
          return false;
        }
      } else if (Isa<CallInst>(inst.get())) {
        return false;  // callee may write anything
      }
    }
  }
  if (latch == nullptr || !dom.Dominates(load->parent(), latch)) {
    return false;
  }
  return true;
}

bool RunOnLoop(Loop* loop, DominatorTree& dom) {
  BasicBlock* preheader = EnsurePreheader(loop);
  BasicBlock* latch = loop->Latch();
  Instruction* anchor = preheader->Terminator();
  std::set<const Instruction*> hoisted;
  bool changed = false;

  // Iterate to a fixpoint: hoisting one instruction can make its users
  // hoistable.
  bool progress = true;
  while (progress) {
    progress = false;
    for (BasicBlock* block : loop->blocks()) {
      std::vector<Instruction*> candidates;
      for (auto& inst : *block) {
        candidates.push_back(inst.get());
      }
      for (Instruction* inst : candidates) {
        if (hoisted.count(inst) != 0) {
          continue;
        }
        if (!OperandsInvariant(inst, loop, hoisted)) {
          continue;
        }
        bool safe = false;
        if (inst->IsSafeToSpeculate()) {
          safe = true;
        } else if (auto* load = DynCast<LoadInst>(inst)) {
          safe = IsHoistableLoad(load, loop, dom, latch);
        }
        if (!safe) {
          continue;
        }
        preheader->InsertBefore(anchor, block->Remove(inst));
        hoisted.insert(inst);
        ++g_hoisted;
        progress = true;
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

bool LicmPass::RunOnFunction(Function& fn) {
  bool changed = false;
  // EnsurePreheader mutates the CFG, which invalidates LoopInfo; process one
  // loop per analysis round.
  std::set<BasicBlock*> processed_headers;
  while (true) {
    DominatorTree dom(fn);
    LoopInfo loops(fn, dom);
    Loop* next = nullptr;
    for (Loop* loop : loops.LoopsInnermostFirst()) {
      if (processed_headers.count(loop->header()) == 0) {
        next = loop;
        break;
      }
    }
    if (next == nullptr) {
      break;
    }
    processed_headers.insert(next->header());
    changed |= RunOnLoop(next, dom);
  }
  return changed;
}

}  // namespace overify
