#include "src/passes/jump_threading.h"

#include <map>
#include <optional>
#include <vector>

#include "src/ir/cfg.h"
#include "src/ir/dominators.h"
#include "src/ir/fold.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_threaded("jumpthread.threaded");

// Knowledge about a value along one CFG edge: either "the i1 value is K" or
// "icmp(pred, x, C) evaluated to K".
struct EdgeFact {
  Value* subject = nullptr;  // the i1 condition value of the source branch
  bool value = false;        // what it is on this edge
};

// Decides `cmp` given that `fact` holds. Handles (a) identical condition
// values and (b) subsumption between integer compares on the same operand
// against constants, e.g. (x < 10) == true implies (x < 20) == true.
std::optional<bool> DecideUnderFact(Value* cond, const EdgeFact& fact) {
  if (cond == fact.subject) {
    return fact.value;
  }
  auto* cmp = DynCast<ICmpInst>(cond);
  auto* known = DynCast<ICmpInst>(fact.subject);
  if (cmp == nullptr || known == nullptr) {
    return std::nullopt;
  }
  if (cmp->lhs() != known->lhs()) {
    return std::nullopt;
  }
  const auto* cmp_const = DynCast<ConstantInt>(cmp->rhs());
  const auto* known_const = DynCast<ConstantInt>(known->rhs());
  if (cmp_const == nullptr || known_const == nullptr) {
    return std::nullopt;
  }
  unsigned bits = cmp->lhs()->type()->bits();

  // Check whether cmp's outcome is the same for every x satisfying
  // (known == fact.value). Sample-based reasoning is unsound; instead use
  // implication via exhaustive predicate casework on the two constants.
  ICmpPredicate kp = fact.value ? known->predicate() : InvertPredicate(known->predicate());
  // Domain of x: {x : kp(x, kc)}. Question: is cp(x, cc) constant over it?
  // We answer for the four order-predicate families by interval reasoning,
  // and for eq/ne via direct substitution.
  uint64_t kc = known_const->value();
  uint64_t cc = cmp_const->value();

  if (kp == ICmpPredicate::kEq) {
    return FoldICmp(cmp->predicate(), bits, kc, cc);
  }

  // Represent the domain as a closed interval in the appropriate
  // (signed/unsigned) number line; mixed-signedness pairs are skipped.
  bool known_signed = IsSignedPredicate(kp);
  bool cmp_signed = IsSignedPredicate(cmp->predicate());
  bool cmp_is_order = cmp->predicate() != ICmpPredicate::kEq &&
                      cmp->predicate() != ICmpPredicate::kNe;
  if (cmp_is_order && known_signed != cmp_signed) {
    return std::nullopt;
  }

  auto to_line = [&](uint64_t raw) -> int64_t {
    return known_signed ? SignExtend(raw, bits) : static_cast<int64_t>(TruncateToWidth(raw, bits));
  };
  int64_t type_min = known_signed ? (bits >= 64 ? INT64_MIN : -(int64_t{1} << (bits - 1))) : 0;
  int64_t type_max;
  if (known_signed) {
    type_max = bits >= 64 ? INT64_MAX : (int64_t{1} << (bits - 1)) - 1;
  } else {
    // For unsigned domains use the value line [0, 2^bits - 1]; at 64 bits
    // the upper bound overflows int64, so skip.
    if (bits >= 64) {
      return std::nullopt;
    }
    type_max = (int64_t{1} << bits) - 1;
  }

  int64_t k = to_line(kc);
  int64_t lo = type_min;
  int64_t hi = type_max;
  switch (kp) {
    case ICmpPredicate::kNe:
      return std::nullopt;  // punctured domain: not an interval
    case ICmpPredicate::kULT:
    case ICmpPredicate::kSLT:
      hi = k - 1;
      break;
    case ICmpPredicate::kULE:
    case ICmpPredicate::kSLE:
      hi = k;
      break;
    case ICmpPredicate::kUGT:
    case ICmpPredicate::kSGT:
      lo = k + 1;
      break;
    case ICmpPredicate::kUGE:
    case ICmpPredicate::kSGE:
      lo = k;
      break;
    default:
      return std::nullopt;
  }
  if (lo > hi) {
    return std::nullopt;  // empty domain: edge is dead; let simplifycfg act
  }

  int64_t c = cmp_signed || !cmp_is_order
                  ? (known_signed ? SignExtend(cc, bits)
                                  : static_cast<int64_t>(TruncateToWidth(cc, bits)))
                  : static_cast<int64_t>(TruncateToWidth(cc, bits));

  auto eval = [&](int64_t x) -> bool {
    switch (cmp->predicate()) {
      case ICmpPredicate::kEq:
        return x == c;
      case ICmpPredicate::kNe:
        return x != c;
      case ICmpPredicate::kULT:
      case ICmpPredicate::kSLT:
        return x < c;
      case ICmpPredicate::kULE:
      case ICmpPredicate::kSLE:
        return x <= c;
      case ICmpPredicate::kUGT:
      case ICmpPredicate::kSGT:
        return x > c;
      case ICmpPredicate::kUGE:
      case ICmpPredicate::kSGE:
        return x >= c;
    }
    return false;
  };

  if (cmp->predicate() == ICmpPredicate::kEq) {
    // Constant over the interval only if the interval misses c entirely
    // (then false) or is the single point c (then true).
    if (c < lo || c > hi) {
      return false;
    }
    if (lo == hi && lo == c) {
      return true;
    }
    return std::nullopt;
  }
  if (cmp->predicate() == ICmpPredicate::kNe) {
    if (c < lo || c > hi) {
      return true;
    }
    if (lo == hi && lo == c) {
      return false;
    }
    return std::nullopt;
  }
  bool at_lo = eval(lo);
  bool at_hi = eval(hi);
  if (at_lo == at_hi) {
    // Order predicates are monotone in x, so equal endpoint outcomes decide
    // the whole interval.
    return at_lo;
  }
  return std::nullopt;
}

struct ThreadAction {
  BasicBlock* pred = nullptr;    // block whose branch gets retargeted
  BasicBlock* via = nullptr;     // the threaded-through block
  BasicBlock* target = nullptr;  // where the edge goes instead
};

std::optional<ThreadAction> FindThread(Function& fn, DominatorTree& dom) {
  auto preds = PredecessorMap(fn);
  for (BasicBlock& via : fn) {
    auto* via_br = DynCast<BranchInst>(via.Terminator());
    if (via_br == nullptr || !via_br->IsConditional()) {
      continue;
    }
    // Threading skips `via` entirely, so it must contain no effectful or
    // value-defining instructions other than phis and its terminator (phi
    // values are resolvable per incoming edge).
    bool only_phis = true;
    for (auto& inst : via) {
      if (inst->opcode() != Opcode::kPhi && !inst->IsTerminator()) {
        only_phis = false;
        break;
      }
    }
    if (!only_phis) {
      continue;
    }
    if (&via == fn.entry()) {
      continue;
    }
    for (BasicBlock* pred : preds[&via]) {
      auto* pred_br = DynCast<BranchInst>(pred->Terminator());
      if (pred_br == nullptr || !pred_br->IsConditional()) {
        continue;
      }
      if (pred_br->true_dest() == pred_br->false_dest()) {
        continue;
      }
      // Resolve via's condition on this edge (through via's phis if needed).
      Value* cond = via_br->condition();
      if (auto* phi = DynCast<PhiInst>(cond)) {
        if (phi->parent() == &via) {
          int index = phi->IncomingIndexFor(pred);
          if (index < 0) {
            continue;
          }
          cond = phi->IncomingValue(static_cast<unsigned>(index));
        }
      }
      // Constant condition on this edge?
      std::optional<bool> decided;
      if (const auto* c = DynCast<ConstantInt>(cond)) {
        decided = !c->IsZero();
      }
      for (int edge = 0; edge < 2 && !decided.has_value(); ++edge) {
        bool via_on_true = (edge == 0);
        BasicBlock* edge_dest = via_on_true ? pred_br->true_dest() : pred_br->false_dest();
        if (edge_dest != &via) {
          continue;
        }
        EdgeFact fact{pred_br->condition(), via_on_true};
        decided = DecideUnderFact(cond, fact);
        if (decided.has_value()) {
          // Only this one edge is decided; remember which by returning now.
          BasicBlock* target = *decided ? via_br->true_dest() : via_br->false_dest();
          // Safety: target's phi values for the via edge must be computable
          // at pred.
          bool safe = true;
          for (PhiInst* phi : target->Phis()) {
            int index = phi->IncomingIndexFor(&via);
            if (index < 0) {
              safe = false;
              break;
            }
            Value* v = phi->IncomingValue(static_cast<unsigned>(index));
            if (auto* via_phi = DynCast<PhiInst>(v)) {
              if (via_phi->parent() == &via) {
                continue;  // resolvable through via's phi
              }
            }
            if (const auto* def = DynCast<Instruction>(v)) {
              if (!dom.IsReachable(def->parent()) || !dom.Dominates(def->parent(), pred)) {
                safe = false;
                break;
              }
            }
          }
          if (!safe) {
            decided.reset();
            continue;
          }
          if (target == &via) {
            decided.reset();
            continue;
          }
          return ThreadAction{pred, &via, target};
        }
      }
      if (decided.has_value()) {
        // Condition constant on all edges from this pred (via phi/constant).
        BasicBlock* target = *decided ? via_br->true_dest() : via_br->false_dest();
        bool safe = true;
        for (PhiInst* phi : target->Phis()) {
          int index = phi->IncomingIndexFor(&via);
          if (index < 0) {
            safe = false;
            break;
          }
          Value* v = phi->IncomingValue(static_cast<unsigned>(index));
          if (auto* via_phi = DynCast<PhiInst>(v)) {
            if (via_phi->parent() == &via) {
              continue;
            }
          }
          if (const auto* def = DynCast<Instruction>(v)) {
            if (!dom.IsReachable(def->parent()) || !dom.Dominates(def->parent(), pred)) {
              safe = false;
              break;
            }
          }
        }
        if (safe && target != &via) {
          return ThreadAction{pred, &via, target};
        }
      }
    }
  }
  return std::nullopt;
}

void ApplyThread(const ThreadAction& action) {
  BasicBlock* pred = action.pred;
  BasicBlock* via = action.via;
  BasicBlock* target = action.target;

  // Fix target phis first: add the new pred edge with the value resolved
  // through via's phis where applicable.
  for (PhiInst* phi : target->Phis()) {
    int via_index = phi->IncomingIndexFor(via);
    OVERIFY_ASSERT(via_index >= 0, "threading target phi lost via entry");
    Value* v = phi->IncomingValue(static_cast<unsigned>(via_index));
    if (auto* via_phi = DynCast<PhiInst>(v)) {
      if (via_phi->parent() == via) {
        int pred_index = via_phi->IncomingIndexFor(pred);
        OVERIFY_ASSERT(pred_index >= 0, "via phi missing pred entry");
        v = via_phi->IncomingValue(static_cast<unsigned>(pred_index));
      }
    }
    if (phi->IncomingIndexFor(pred) < 0) {
      phi->AddIncoming(v, pred);
    }
  }

  // Retarget pred's edge(s) that pointed at via.
  auto* pred_br = Cast<BranchInst>(pred->Terminator());
  if (pred_br->true_dest() == via) {
    pred_br->SetDest(0, target);
  }
  if (pred_br->IsConditional() && pred_br->false_dest() == via) {
    pred_br->SetDest(1, target);
  }

  // via lost pred as predecessor: update its phis.
  for (PhiInst* phi : via->Phis()) {
    int index = phi->IncomingIndexFor(pred);
    if (index >= 0) {
      phi->RemoveIncoming(static_cast<unsigned>(index));
    }
  }
  ++g_threaded;
}

}  // namespace

bool JumpThreadingPass::RunOnFunction(Function& fn) {
  bool changed = false;
  // Bounded iteration: each thread removes one edge through `via`.
  for (int round = 0; round < 64; ++round) {
    DominatorTree dom(fn);
    auto action = FindThread(fn, dom);
    if (!action.has_value()) {
      break;
    }
    ApplyThread(*action);
    RemoveUnreachableBlocks(fn);
    changed = true;
  }
  return changed;
}

}  // namespace overify
