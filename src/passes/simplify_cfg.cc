#include "src/passes/simplify_cfg.h"

#include <set>

#include "src/ir/cfg.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_folded("simplifycfg.branches_folded");
Statistic g_merged("simplifycfg.blocks_merged");
Statistic g_forwarded("simplifycfg.blocks_forwarded");

// br (const) -> unconditional; br %c, X, X -> br X.
bool FoldBranch(BasicBlock* block) {
  auto* br = DynCast<BranchInst>(block->Terminator());
  if (br == nullptr || !br->IsConditional()) {
    return false;
  }
  BasicBlock* keep = nullptr;
  BasicBlock* drop = nullptr;
  if (const auto* cond = DynCast<ConstantInt>(br->condition())) {
    keep = cond->IsZero() ? br->false_dest() : br->true_dest();
    drop = cond->IsZero() ? br->true_dest() : br->false_dest();
  } else if (br->true_dest() == br->false_dest()) {
    keep = br->true_dest();
    drop = nullptr;
  } else {
    return false;
  }
  br->MakeUnconditional(keep);
  if (drop != nullptr && drop != keep) {
    // `block` is no longer a predecessor of `drop`.
    for (PhiInst* phi : drop->Phis()) {
      int index = phi->IncomingIndexFor(block);
      if (index >= 0) {
        phi->RemoveIncoming(static_cast<unsigned>(index));
      }
    }
  }
  ++g_folded;
  return true;
}

// Replaces phis that have exactly one incoming entry with that value.
bool SimplifyTrivialPhis(BasicBlock* block) {
  bool changed = false;
  for (PhiInst* phi : block->Phis()) {
    if (phi->NumIncoming() == 1) {
      Value* incoming = phi->IncomingValue(0);
      phi->ReplaceAllUsesWith(incoming == phi
                                  ? static_cast<Value*>(block->parent()->parent()->context()
                                                            .GetUndef(phi->type()))
                                  : incoming);
      phi->EraseFromParent();
      changed = true;
    }
  }
  return changed;
}

// Merges `succ` into `pred` when pred's only successor is succ and succ's
// only predecessor is pred.
bool MergeChain(Function& fn) {
  auto preds = PredecessorMap(fn);
  for (BasicBlock& block : fn) {
    auto* br = DynCast<BranchInst>(block.Terminator());
    if (br == nullptr || br->IsConditional()) {
      continue;
    }
    BasicBlock* succ = br->SingleDest();
    if (succ == &block || preds[succ].size() != 1) {
      continue;
    }
    // Phis in succ have a single incoming; resolve them first.
    SimplifyTrivialPhis(succ);
    // Move instructions.
    br->EraseFromParent();
    while (!succ->empty()) {
      std::unique_ptr<Instruction> inst = succ->Remove(succ->front());
      block.Append(std::move(inst));
    }
    // succ's successors now see `block` as predecessor.
    for (BasicBlock* after : block.Successors()) {
      RedirectPhiIncoming(after, succ, &block);
    }
    fn.EraseBlock(succ);
    ++g_merged;
    return true;  // predecessor map invalidated; caller loops
  }
  return false;
}

// Redirects predecessors of empty forwarding blocks (single unconditional
// branch, no phis) directly to their target when phi-safe.
bool ForwardEmptyBlocks(Function& fn) {
  auto preds = PredecessorMap(fn);
  for (BasicBlock& block : fn) {
    if (&block == fn.entry() || block.size() != 1) {
      continue;
    }
    auto* br = DynCast<BranchInst>(block.Terminator());
    if (br == nullptr || br->IsConditional()) {
      continue;
    }
    BasicBlock* target = br->SingleDest();
    if (target == &block) {
      continue;
    }
    const auto& block_preds = preds[&block];
    if (block_preds.empty()) {
      continue;  // unreachable; handled elsewhere
    }
    // Safety: for each pred P, if P already branches to target, then target's
    // phis would need two different values for P; require either no phis in
    // target or P not already a predecessor of target.
    std::vector<PhiInst*> target_phis = target->Phis();
    bool safe = true;
    std::set<BasicBlock*> target_preds(preds[target].begin(), preds[target].end());
    for (BasicBlock* p : block_preds) {
      if (!target_phis.empty() && target_preds.count(p) != 0) {
        safe = false;
        break;
      }
    }
    if (!safe) {
      continue;
    }
    // Rewrite each predecessor's branch and fix target's phis: the value that
    // flowed (block -> target) now flows (pred -> target) for every pred.
    for (PhiInst* phi : target_phis) {
      int index = phi->IncomingIndexFor(&block);
      OVERIFY_ASSERT(index >= 0, "forwarding block missing phi entry");
      Value* value = phi->IncomingValue(static_cast<unsigned>(index));
      phi->RemoveIncoming(static_cast<unsigned>(index));
      for (BasicBlock* p : block_preds) {
        phi->AddIncoming(value, p);
      }
    }
    for (BasicBlock* p : block_preds) {
      auto* pred_br = Cast<BranchInst>(p->Terminator());
      if (pred_br->true_dest() == &block) {
        pred_br->SetDest(0, target);
      }
      if (pred_br->IsConditional() && pred_br->false_dest() == &block) {
        pred_br->SetDest(1, target);
      }
    }
    fn.EraseBlock(&block);
    ++g_forwarded;
    return true;
  }
  return false;
}

}  // namespace

bool SimplifyCfgPass::RunOnFunction(Function& fn) {
  bool changed = false;
  bool local_change = true;
  while (local_change) {
    local_change = false;
    local_change |= RemoveUnreachableBlocks(fn) > 0;
    for (BasicBlock& block : fn) {
      local_change |= FoldBranch(&block);
    }
    local_change |= RemoveUnreachableBlocks(fn) > 0;
    for (BasicBlock& block : fn) {
      local_change |= SimplifyTrivialPhis(&block);
    }
    local_change |= MergeChain(fn);
    local_change |= ForwardEmptyBlocks(fn);
    changed |= local_change;
  }
  return changed;
}

}  // namespace overify
