// Jump threading: when a conditional branch jumps to a block whose own
// condition is subsumed by the first one, the first branch is redirected
// past the second ("turning two jumps into one", §3 of the paper).
#pragma once

#include "src/passes/pass.h"

namespace overify {

class JumpThreadingPass : public FunctionPass {
 public:
  const char* name() const override { return "jumpthread"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
