// Dead code elimination: removes side-effect-free instructions with no uses,
// including cyclic dead phi webs.
#pragma once

#include "src/passes/pass.h"

namespace overify {

class DcePass : public FunctionPass {
 public:
  const char* name() const override { return "dce"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
