// Program annotations ("Program annotations" row of Table 2).
//
// The paper argues compilers should preserve facts they compute — variable
// ranges, loop trip counts — as metadata that verification tools consume for
// free. This pass materializes such a side table; the symbolic-execution
// engine uses it to answer branch-feasibility queries without invoking the
// constraint solver.
#pragma once

#include <cstdint>
#include <map>

#include "src/analysis/range_analysis.h"
#include "src/passes/pass.h"

namespace overify {

struct ProgramAnnotations {
  // Non-trivial value ranges (only entries narrower than the type's range).
  std::map<const Value*, ValueRange> value_ranges;
  // Compile-time trip counts, keyed by loop header block.
  std::map<const BasicBlock*, uint64_t> trip_counts;

  size_t size() const { return value_ranges.size() + trip_counts.size(); }
};

class AnnotatePass : public FunctionPass {
 public:
  explicit AnnotatePass(ProgramAnnotations* out) : out_(out) {}

  const char* name() const override { return "annotate"; }
  bool RunOnFunction(Function& fn) override;

 private:
  ProgramAnnotations* out_;
};

}  // namespace overify
