#include "src/passes/loop_utils.h"

#include <map>
#include <vector>

#include "src/ir/cfg.h"
#include "src/ir/fold.h"
#include "src/ir/module.h"

namespace overify {

namespace {

// Moves the phi entries of `block` that flow from `preds` into a fresh
// merge block `merge` (which must already branch to `block`), leaving the
// phis with a single combined entry from `merge`.
void MergePhiEntriesThrough(BasicBlock* block, const std::vector<BasicBlock*>& preds,
                            BasicBlock* merge) {
  for (PhiInst* phi : block->Phis()) {
    auto merged = std::make_unique<PhiInst>(phi->type());
    merged->set_name(phi->HasName() ? phi->name() + ".merge" : "merge");
    for (BasicBlock* pred : preds) {
      int index = phi->IncomingIndexFor(pred);
      OVERIFY_ASSERT(index >= 0, "predecessor missing from phi");
      merged->AddIncoming(phi->IncomingValue(static_cast<unsigned>(index)), pred);
      phi->RemoveIncoming(static_cast<unsigned>(index));
    }
    Value* incoming;
    if (merged->NumIncoming() == 1) {
      incoming = merged->IncomingValue(0);
      merged.reset();
    } else {
      PhiInst* raw = merged.get();
      merge->InsertBefore(merge->begin(), std::move(merged));
      incoming = raw;
    }
    phi->AddIncoming(incoming, merge);
  }
}

// Redirects every edge pred -> target (for pred in preds) to `replacement`.
void RedirectEdges(const std::vector<BasicBlock*>& preds, BasicBlock* target,
                   BasicBlock* replacement) {
  for (BasicBlock* pred : preds) {
    auto* br = Cast<BranchInst>(pred->Terminator());
    if (br->true_dest() == target) {
      br->SetDest(0, replacement);
    }
    if (br->IsConditional() && br->false_dest() == target) {
      br->SetDest(1, replacement);
    }
  }
}

}  // namespace

BasicBlock* EnsurePreheader(Loop* loop) {
  BasicBlock* existing = loop->Preheader();
  if (existing != nullptr) {
    return existing;
  }
  BasicBlock* header = loop->header();
  Function* fn = header->parent();
  IRContext& ctx = fn->parent()->context();

  std::vector<BasicBlock*> outside_preds;
  for (BasicBlock* pred : header->Predecessors()) {
    if (!loop->Contains(pred)) {
      outside_preds.push_back(pred);
    }
  }
  OVERIFY_ASSERT(!outside_preds.empty(), "loop header with no entry edge");

  BasicBlock* preheader = fn->CreateBlock(header->name() + ".ph");
  preheader->Append(std::make_unique<BranchInst>(ctx, header));
  MergePhiEntriesThrough(header, outside_preds, preheader);
  RedirectEdges(outside_preds, header, preheader);
  return preheader;
}

bool EnsureDedicatedExits(Loop* loop) {
  bool changed = false;
  for (BasicBlock* exit : loop->ExitBlocks()) {
    std::vector<BasicBlock*> in_loop_preds;
    bool has_outside_pred = false;
    for (BasicBlock* pred : exit->Predecessors()) {
      if (loop->Contains(pred)) {
        in_loop_preds.push_back(pred);
      } else {
        has_outside_pred = true;
      }
    }
    if (!has_outside_pred) {
      continue;
    }
    Function* fn = exit->parent();
    IRContext& ctx = fn->parent()->context();
    BasicBlock* dedicated = fn->CreateBlock(exit->name() + ".dx");
    dedicated->Append(std::make_unique<BranchInst>(ctx, exit));
    MergePhiEntriesThrough(exit, in_loop_preds, dedicated);
    RedirectEdges(in_loop_preds, exit, dedicated);
    changed = true;
  }
  return changed;
}

bool FormLCSSA(Function& fn, Loop* loop) {
  DominatorTree dom(fn);
  std::vector<BasicBlock*> exits = loop->ExitBlocks();
  // Dedicated exits required: every exit pred must be in-loop.
  for (BasicBlock* exit : exits) {
    for (BasicBlock* pred : exit->Predecessors()) {
      if (!loop->Contains(pred)) {
        return false;
      }
    }
  }

  // Collect loop instructions with outside uses.
  struct OutsideUse {
    Instruction* user;
    unsigned index;
    BasicBlock* use_block;  // for phis: the incoming block
  };

  for (BasicBlock* block : std::vector<BasicBlock*>(loop->blocks().begin(),
                                                    loop->blocks().end())) {
    for (auto& inst : *block) {
      std::vector<OutsideUse> outside;
      for (const Use& use : inst->uses()) {
        BasicBlock* use_block = use.user->parent();
        if (auto* phi = DynCast<PhiInst>(use.user)) {
          use_block = phi->IncomingBlock(use.operand_index);
        }
        if (!loop->Contains(use_block)) {
          outside.push_back(OutsideUse{use.user, use.operand_index, use_block});
        }
      }
      if (outside.empty()) {
        continue;
      }
      // Insert an LCSSA phi in every exit block the def dominates.
      std::map<BasicBlock*, PhiInst*> exit_phis;
      for (BasicBlock* exit : exits) {
        if (!dom.Dominates(block, exit)) {
          continue;
        }
        auto phi = std::make_unique<PhiInst>(inst->type());
        phi->set_name(inst->HasName() ? inst->name() + ".lcssa" : "lcssa");
        for (BasicBlock* pred : exit->Predecessors()) {
          phi->AddIncoming(inst.get(), pred);
        }
        PhiInst* raw = phi.get();
        exit->InsertBefore(exit->begin(), std::move(phi));
        exit_phis[exit] = raw;
      }
      if (exit_phis.empty()) {
        return false;
      }
      // Rewrite each outside use through the unique dominating exit phi.
      for (const OutsideUse& use : outside) {
        PhiInst* replacement = nullptr;
        for (auto& [exit, phi] : exit_phis) {
          if (phi->parent() == use.use_block && use.user == phi) {
            replacement = nullptr;  // the LCSSA phi itself; skip
            break;
          }
          if (dom.Dominates(exit, use.use_block)) {
            if (replacement != nullptr) {
              return false;  // ambiguous: multiple exits reach this use
            }
            replacement = phi;
          }
        }
        bool is_lcssa_phi_itself = false;
        for (auto& [exit, phi] : exit_phis) {
          if (use.user == phi) {
            is_lcssa_phi_itself = true;
            break;
          }
        }
        if (is_lcssa_phi_itself) {
          continue;
        }
        if (replacement == nullptr) {
          return false;
        }
        use.user->SetOperand(use.index, replacement);
      }
    }
  }
  return true;
}

std::optional<TripCountInfo> ComputeTripCount(Loop* loop, uint64_t max_iterations) {
  BasicBlock* header = loop->header();
  BasicBlock* latch = loop->Latch();
  BasicBlock* preheader = loop->Preheader();
  if (latch == nullptr || preheader == nullptr) {
    return std::nullopt;
  }
  std::vector<BasicBlock*> exiting = loop->ExitingBlocks();
  if (exiting.size() != 1) {
    return std::nullopt;
  }
  BasicBlock* exit_block = exiting[0];
  if (exit_block != header && exit_block != latch) {
    return std::nullopt;
  }
  auto* exit_br = DynCast<BranchInst>(exit_block->Terminator());
  if (exit_br == nullptr || !exit_br->IsConditional()) {
    return std::nullopt;
  }
  auto* cond = DynCast<ICmpInst>(exit_br->condition());
  if (cond == nullptr) {
    return std::nullopt;
  }
  const auto* bound = DynCast<ConstantInt>(cond->rhs());
  if (bound == nullptr) {
    return std::nullopt;
  }

  // Find the induction phi: the condition's LHS must be the phi itself or
  // phi + constant step (the "next" value).
  Value* lhs = cond->lhs();
  PhiInst* induction = DynCast<PhiInst>(lhs);
  bool cond_on_next = false;
  const ConstantInt* step = nullptr;
  Value* next = nullptr;

  auto analyze_next = [&](Value* candidate, PhiInst* phi) -> const ConstantInt* {
    auto* bin = DynCast<BinaryInst>(candidate);
    if (bin == nullptr || (bin->opcode() != Opcode::kAdd && bin->opcode() != Opcode::kSub)) {
      return nullptr;
    }
    if (bin->lhs() != phi) {
      return nullptr;
    }
    return DynCast<ConstantInt>(bin->rhs());
  };

  if (induction != nullptr && induction->parent() == header) {
    // Condition on the phi: find its latch increment.
    int latch_index = induction->IncomingIndexFor(latch);
    if (latch_index < 0) {
      return std::nullopt;
    }
    next = induction->IncomingValue(static_cast<unsigned>(latch_index));
    step = analyze_next(next, induction);
  } else if (auto* bin = DynCast<BinaryInst>(lhs)) {
    // Condition on phi+step.
    induction = DynCast<PhiInst>(bin->lhs());
    if (induction == nullptr || induction->parent() != header) {
      return std::nullopt;
    }
    int latch_index = induction->IncomingIndexFor(latch);
    if (latch_index < 0 ||
        induction->IncomingValue(static_cast<unsigned>(latch_index)) != bin) {
      return std::nullopt;
    }
    next = bin;
    step = DynCast<ConstantInt>(bin->rhs());
    cond_on_next = true;
  } else {
    return std::nullopt;
  }
  if (step == nullptr || induction == nullptr) {
    return std::nullopt;
  }
  int phi_pre_index = induction->IncomingIndexFor(preheader);
  if (phi_pre_index < 0) {
    return std::nullopt;
  }
  const auto* start = DynCast<ConstantInt>(induction->IncomingValue(
      static_cast<unsigned>(phi_pre_index)));
  if (start == nullptr) {
    return std::nullopt;
  }
  auto* next_bin = Cast<BinaryInst>(next);
  bool is_sub = next_bin->opcode() == Opcode::kSub;

  // Which branch direction leaves the loop?
  bool exit_on_true = !loop->Contains(exit_br->true_dest());
  unsigned bits = induction->type()->bits();

  // Simulate.
  uint64_t value = start->value();
  uint64_t trips = 0;
  for (uint64_t iter = 0; iter <= max_iterations; ++iter) {
    uint64_t next_value_raw;
    {
      auto folded = FoldBinary(is_sub ? Opcode::kSub : Opcode::kAdd, bits, value, step->value());
      if (!folded.has_value()) {
        return std::nullopt;
      }
      next_value_raw = *folded;
    }
    uint64_t cond_input = cond_on_next ? next_value_raw : value;
    bool cond_result = FoldICmp(cond->predicate(), bits, cond_input, bound->value());
    bool exits = (cond_result == exit_on_true);
    // A single-block loop (header == latch) evaluates its condition after the
    // body, i.e. with do-while semantics, so the latch branch handles it.
    if (exit_block == header && header != latch) {
      if (exits) {
        TripCountInfo info;
        info.trip_count = trips;  // header executed trips+1 times, body trips
        info.induction = induction;
        info.exiting = exit_block;
        return info;
      }
      ++trips;
      value = next_value_raw;
    } else {
      // Latch-exit (do-while): body executes, then the condition decides.
      ++trips;
      value = next_value_raw;
      if (exits) {
        TripCountInfo info;
        info.trip_count = trips;
        info.induction = induction;
        info.exiting = exit_block;
        return info;
      }
    }
  }
  return std::nullopt;  // did not terminate within the budget
}

}  // namespace overify
