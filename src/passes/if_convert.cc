#include "src/passes/if_convert.h"

#include <map>
#include <optional>
#include <vector>

#include "src/ir/cfg.h"
#include "src/ir/dominators.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_converted("ifconvert.branches_converted");

// True if a load/store to exactly `pointer` appears in `head` or one of its
// dominators before the branch: speculating another load of the same address
// then cannot introduce a memory fault that the original program lacked
// (bug preservation).
bool HasDominatingAccess(Value* pointer, BasicBlock* head, DominatorTree& dom) {
  BasicBlock* block = head;
  while (block != nullptr) {
    for (auto& inst : *block) {
      if (auto* load = DynCast<LoadInst>(inst.get())) {
        if (load->pointer() == pointer) {
          return true;
        }
      } else if (auto* store = DynCast<StoreInst>(inst.get())) {
        if (store->pointer() == pointer) {
          return true;
        }
      }
    }
    block = dom.ImmediateDominator(block);
  }
  return false;
}

// A block is speculatable if all its non-terminator instructions can run
// unconditionally.
bool IsSpeculatableBlock(BasicBlock* block, BasicBlock* head, DominatorTree& dom,
                         const IfConvertOptions& options, size_t& cost) {
  cost = 0;
  for (auto& inst : *block) {
    if (inst->IsTerminator()) {
      auto* br = DynCast<BranchInst>(inst.get());
      if (br == nullptr || br->IsConditional()) {
        return false;
      }
      continue;
    }
    if (inst->opcode() == Opcode::kPhi) {
      return false;
    }
    bool ok = inst->IsSafeToSpeculate();
    if (!ok && inst->opcode() == Opcode::kLoad && options.speculate_loads) {
      // Loads in the speculated side must be provably non-faulting: require
      // an identical-address access on every path to the branch. Note the
      // pointer operand must also be defined outside `block`, which holds
      // because any address computation inside the block is itself
      // speculatable and checked separately.
      ok = HasDominatingAccess(Cast<LoadInst>(inst.get())->pointer(), head, dom);
    }
    if (!ok) {
      return false;
    }
    ++cost;
    if (cost > options.max_speculated) {
      return false;
    }
  }
  return true;
}

// Moves all non-terminator instructions of `from` into `to` before `before`.
void HoistInstructions(BasicBlock* from, BasicBlock* to, Instruction* before) {
  std::vector<Instruction*> insts;
  for (auto& inst : *from) {
    if (!inst->IsTerminator()) {
      insts.push_back(inst.get());
    }
  }
  for (Instruction* inst : insts) {
    to->InsertBefore(before, from->Remove(inst));
  }
}

struct Shape {
  BasicBlock* head = nullptr;
  BasicBlock* true_side = nullptr;   // null when the true edge goes straight to join
  BasicBlock* false_side = nullptr;  // null when the false edge goes straight to join
  BasicBlock* join = nullptr;
};

// Recognizes diamonds (head -> A, B -> join) and triangles
// (head -> A -> join, head -> join).
std::optional<Shape> MatchShape(BasicBlock* head,
                                std::map<BasicBlock*, std::vector<BasicBlock*>>& preds) {
  auto* br = DynCast<BranchInst>(head->Terminator());
  if (br == nullptr || !br->IsConditional()) {
    return std::nullopt;
  }
  BasicBlock* t = br->true_dest();
  BasicBlock* f = br->false_dest();
  if (t == f) {
    return std::nullopt;
  }

  auto single_exit = [&](BasicBlock* block) -> BasicBlock* {
    auto* term = DynCast<BranchInst>(block->Terminator());
    if (term == nullptr || term->IsConditional()) {
      return nullptr;
    }
    return term->SingleDest();
  };
  auto is_simple_side = [&](BasicBlock* side) {
    return side != head && preds[side].size() == 1;
  };

  // Diamond: t and f are single-pred blocks both exiting to the same join.
  if (is_simple_side(t) && is_simple_side(f)) {
    BasicBlock* jt = single_exit(t);
    BasicBlock* jf = single_exit(f);
    if (jt != nullptr && jt == jf && jt != head && jt != t && jt != f) {
      return Shape{head, t, f, jt};
    }
  }
  // Triangle with the true side: head -> t -> f (join).
  if (is_simple_side(t)) {
    BasicBlock* jt = single_exit(t);
    if (jt == f && jt != head) {
      return Shape{head, t, nullptr, f};
    }
  }
  // Triangle with the false side: head -> f -> t (join).
  if (is_simple_side(f)) {
    BasicBlock* jf = single_exit(f);
    if (jf == t && jf != head) {
      return Shape{head, nullptr, f, t};
    }
  }
  return std::nullopt;
}

bool ConvertShape(Function& fn, const Shape& shape, DominatorTree& dom,
                  const IfConvertOptions& options) {
  size_t true_cost = 0;
  size_t false_cost = 0;
  if (shape.true_side != nullptr &&
      !IsSpeculatableBlock(shape.true_side, shape.head, dom, options, true_cost)) {
    return false;
  }
  if (shape.false_side != nullptr &&
      !IsSpeculatableBlock(shape.false_side, shape.head, dom, options, false_cost)) {
    return false;
  }

  auto* br = Cast<BranchInst>(shape.head->Terminator());
  BasicBlock* true_pred = shape.true_side != nullptr ? shape.true_side : shape.head;
  BasicBlock* false_pred = shape.false_side != nullptr ? shape.false_side : shape.head;
  std::vector<PhiInst*> phis = shape.join->Phis();
  for (PhiInst* phi : phis) {
    if (phi->IncomingIndexFor(true_pred) < 0 || phi->IncomingIndexFor(false_pred) < 0) {
      return false;
    }
  }

  // Cost model: speculation executes both sides plus one select per phi,
  // instead of one branch. Under -OVERIFY the branch cost dominates always.
  int speculation_cost = static_cast<int>(true_cost + false_cost + phis.size()) *
                         options.instruction_cost;
  if (speculation_cost > options.branch_cost) {
    return false;
  }

  // Hoist both sides into head, before its terminator.
  if (shape.true_side != nullptr) {
    HoistInstructions(shape.true_side, shape.head, br);
  }
  if (shape.false_side != nullptr) {
    HoistInstructions(shape.false_side, shape.head, br);
  }

  // Turn join phis into selects in head.
  Value* cond = br->condition();
  for (PhiInst* phi : phis) {
    Value* tv = phi->IncomingValueFor(true_pred);
    Value* fv = phi->IncomingValueFor(false_pred);
    Value* replacement;
    if (tv == fv) {
      replacement = tv;
    } else {
      auto select = std::make_unique<SelectInst>(cond, tv, fv);
      if (phi->HasName()) {
        select->set_name(phi->name() + ".sel");
      }
      replacement = shape.head->InsertBefore(br, std::move(select));
    }
    phi->RemoveIncoming(static_cast<unsigned>(phi->IncomingIndexFor(true_pred)));
    phi->RemoveIncoming(static_cast<unsigned>(phi->IncomingIndexFor(false_pred)));
    if (phi->NumIncoming() == 0) {
      phi->ReplaceAllUsesWith(replacement);
      phi->EraseFromParent();
    } else {
      phi->AddIncoming(replacement, shape.head);
    }
  }

  // Fall through to join; the emptied side blocks are erased.
  br->MakeUnconditional(shape.join);
  if (shape.true_side != nullptr) {
    fn.EraseBlock(shape.true_side);
  }
  if (shape.false_side != nullptr) {
    fn.EraseBlock(shape.false_side);
  }
  ++g_converted;
  return true;
}

}  // namespace

bool IfConvertPass::RunOnFunction(Function& fn) {
  bool changed = false;
  bool progress = true;
  while (progress) {
    progress = false;
    auto preds = PredecessorMap(fn);
    DominatorTree dom(fn);
    for (BasicBlock& block : fn) {
      auto shape = MatchShape(&block, preds);
      if (!shape.has_value()) {
        continue;
      }
      if (ConvertShape(fn, *shape, dom, options_)) {
        changed = true;
        progress = true;
        break;  // CFG changed; recompute analyses
      }
    }
  }
  return changed;
}

}  // namespace overify
