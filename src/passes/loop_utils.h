// Loop canonicalization utilities shared by unswitch, unroll and LICM:
// preheader insertion, dedicated exits, and LCSSA formation.
#pragma once

#include <optional>

#include "src/ir/dominators.h"
#include "src/ir/loop_info.h"

namespace overify {

// Ensures the loop has a preheader: a dedicated block outside the loop whose
// single successor is the header and which is the header's only outside
// predecessor. Returns it (creating one if needed). Invalidates analyses
// when it mutates the CFG.
BasicBlock* EnsurePreheader(Loop* loop);

// Ensures every exit block of the loop has only in-loop predecessors, by
// interposing fresh exit blocks where needed. Returns true if the CFG
// changed.
bool EnsureDedicatedExits(Loop* loop);

// Rewrites uses of loop-defined values outside the loop to flow through phis
// in the loop's exit blocks (LCSSA form). Requires dedicated exits. Returns
// false if a use could not be rewritten (caller must then skip its
// transformation); returns true on success (even if nothing needed fixing).
bool FormLCSSA(Function& fn, Loop* loop);

// A loop whose trip count the unroller can compute: a single-latch loop with
// one exiting block (the header or the latch) conditioned on an induction
// phi with constant start/step against a constant bound.
struct TripCountInfo {
  uint64_t trip_count = 0;       // number of body executions
  PhiInst* induction = nullptr;  // the induction phi in the header
  BasicBlock* exiting = nullptr;
};

// Computes the trip count by direct simulation of the exit condition,
// bounded by `max_iterations`. Returns nullopt if the loop shape is not
// recognized or the count exceeds the bound.
std::optional<TripCountInfo> ComputeTripCount(Loop* loop, uint64_t max_iterations);

}  // namespace overify
