// Pass interfaces and the pass manager.
//
// -OVERIFY (§3 of the paper) is "a set of compiler passes suitable for
// verification tools" plus adjusted cost parameters; the pass manager is the
// machinery that lets pipelines express exactly that.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ir/module.h"

namespace overify {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  // Returns true if the IR was modified.
  virtual bool Run(Module& module) = 0;
};

// A pass that processes each function body independently.
class FunctionPass : public Pass {
 public:
  bool Run(Module& module) final;
  virtual bool RunOnFunction(Function& fn) = 0;
};

// Whether the pass manager verifies the IR between pipeline passes by
// default: on in debug builds and whenever the build defines
// OVERIFY_VERIFY_IR (the CMake option of the same name; the sanitizer CI
// job turns it on), off in plain release builds where the per-pass
// verification cost buys nothing the test suite's explicit verifier checks
// do not already cover.
#if defined(OVERIFY_VERIFY_IR) || !defined(NDEBUG)
inline constexpr bool kVerifyIRAfterEachPass = true;
#else
inline constexpr bool kVerifyIRAfterEachPass = false;
#endif

class PassManager {
 public:
  struct Timing {
    std::string pass_name;
    double seconds = 0;
    bool changed = false;
  };

  // When true, the IR verifier runs after every pass and aborts on breakage.
  explicit PassManager(bool verify_after_each = kVerifyIRAfterEachPass)
      : verify_after_each_(verify_after_each) {}

  void Add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }

  // Runs all passes in order; returns true if any changed the module.
  bool Run(Module& module);

  const std::vector<Timing>& timings() const { return timings_; }
  bool verify_after_each() const { return verify_after_each_; }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<Timing> timings_;
  bool verify_after_each_;
};

}  // namespace overify
