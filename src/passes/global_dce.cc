#include "src/passes/global_dce.h"

#include <set>
#include <vector>

#include "src/analysis/call_graph.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_removed("globaldce.functions_removed");

}  // namespace

bool GlobalDcePass::Run(Module& module) {
  // Entry points anchor reachability. Without one, the module is a library
  // (as in unit tests that compile libc alone): keep everything.
  std::vector<Function*> roots;
  for (const auto& fn : module.functions()) {
    if (fn->name() == "umain" || fn->name() == "main") {
      roots.push_back(fn.get());
    }
  }
  if (roots.empty()) {
    return false;
  }

  CallGraph call_graph(module);
  std::set<Function*> reachable;
  std::vector<Function*> worklist = roots;
  while (!worklist.empty()) {
    Function* fn = worklist.back();
    worklist.pop_back();
    if (!reachable.insert(fn).second) {
      continue;
    }
    for (Function* callee : call_graph.Callees(fn)) {
      worklist.push_back(callee);
    }
  }

  std::vector<Function*> dead;
  for (const auto& fn : module.functions()) {
    if (reachable.count(fn.get()) == 0) {
      dead.push_back(fn.get());
    }
  }
  for (Function* fn : dead) {
    module.EraseFunction(fn);
    ++g_removed;
  }
  return !dead.empty();
}

}  // namespace overify
