#include "src/passes/loop_unswitch.h"

#include <vector>

#include "src/ir/cfg.h"
#include "src/ir/cloning.h"
#include "src/passes/loop_utils.h"
#include "src/support/statistics.h"

namespace overify {

namespace {

Statistic g_unswitched("unswitch.loops_unswitched");

struct Candidate {
  Loop* loop = nullptr;
  BasicBlock* branch_block = nullptr;
};

size_t LoopSize(const Loop* loop) {
  size_t size = 0;
  for (BasicBlock* block : loop->blocks()) {
    size += block->size();
  }
  return size;
}

// Finds a loop containing a conditional branch on a loop-invariant,
// non-constant condition.
std::optional<Candidate> FindCandidate(DominatorTree& dom, LoopInfo& loops,
                                       size_t size_limit) {
  for (Loop* loop : loops.LoopsInnermostFirst()) {
    if (LoopSize(loop) > size_limit) {
      continue;
    }
    for (BasicBlock* block : loop->blocks()) {
      auto* br = DynCast<BranchInst>(block->Terminator());
      if (br == nullptr || !br->IsConditional()) {
        continue;
      }
      Value* cond = br->condition();
      if (Isa<ConstantInt>(cond) || !loop->IsInvariant(cond)) {
        continue;
      }
      if (br->true_dest() == br->false_dest()) {
        continue;
      }
      // The condition must be available at the preheader's branch point.
      if (const auto* cond_inst = DynCast<Instruction>(cond)) {
        BasicBlock* preheader = loop->Preheader();
        BasicBlock* anchor = preheader != nullptr
                                 ? preheader
                                 : loop->header()->Predecessors().empty()
                                       ? nullptr
                                       : loop->header()->Predecessors()[0];
        if (anchor == nullptr || !dom.IsReachable(anchor) ||
            !dom.Dominates(cond_inst->parent(), anchor)) {
          continue;
        }
      }
      return Candidate{loop, block};
    }
  }
  return std::nullopt;
}

bool UnswitchOne(Function& fn, const Candidate& candidate) {
  Loop* loop = candidate.loop;
  IRContext& ctx = fn.parent()->context();

  BasicBlock* preheader = EnsurePreheader(loop);
  EnsureDedicatedExits(loop);
  if (!FormLCSSA(fn, loop)) {
    return false;
  }

  auto* br = Cast<BranchInst>(candidate.branch_block->Terminator());
  Value* cond = br->condition();
  // Canonicalization may have restructured entry edges; re-verify that the
  // condition is actually available at the (possibly new) preheader.
  if (const auto* cond_inst = DynCast<Instruction>(cond)) {
    DominatorTree dom(fn);
    if (!dom.Dominates(cond_inst->parent(), preheader)) {
      return false;
    }
  }
  BasicBlock* true_dest = br->true_dest();
  BasicBlock* false_dest = br->false_dest();

  // Clone the loop body.
  std::vector<BasicBlock*> region(loop->blocks().begin(), loop->blocks().end());
  CloneMapping mapping;
  CloneBlocksInto(region, &fn, ".us", mapping);
  BasicBlock* header_clone = mapping.Lookup(loop->header());

  // Exit blocks now also receive edges from the cloned loop: extend their
  // phis with the mapped values.
  for (BasicBlock* exit : loop->ExitBlocks()) {
    for (PhiInst* phi : exit->Phis()) {
      // Snapshot original incoming entries before extending.
      std::vector<std::pair<Value*, BasicBlock*>> incoming;
      for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
        incoming.push_back({phi->IncomingValue(i), phi->IncomingBlock(i)});
      }
      for (auto& [value, pred] : incoming) {
        if (loop->Contains(pred)) {
          phi->AddIncoming(mapping.Lookup(value), mapping.Lookup(pred));
        }
      }
    }
  }

  // The preheader now chooses between the two specialized copies.
  auto* pre_br = Cast<BranchInst>(preheader->Terminator());
  OVERIFY_ASSERT(!pre_br->IsConditional(), "preheader must branch unconditionally");
  pre_br->EraseFromParent();
  preheader->Append(std::make_unique<BranchInst>(ctx, cond, loop->header(), header_clone));

  // Specialize: original copy assumes the condition is true.
  {
    auto* orig_br = Cast<BranchInst>(candidate.branch_block->Terminator());
    orig_br->MakeUnconditional(true_dest);
    if (false_dest != true_dest) {
      for (PhiInst* phi : false_dest->Phis()) {
        int index = phi->IncomingIndexFor(candidate.branch_block);
        if (index >= 0) {
          phi->RemoveIncoming(static_cast<unsigned>(index));
        }
      }
    }
  }
  // Cloned copy assumes the condition is false.
  {
    BasicBlock* block_clone = mapping.Lookup(candidate.branch_block);
    auto* clone_br = Cast<BranchInst>(block_clone->Terminator());
    BasicBlock* true_clone = clone_br->true_dest();
    clone_br->MakeUnconditional(clone_br->false_dest());
    if (true_clone != clone_br->SingleDest()) {
      for (PhiInst* phi : true_clone->Phis()) {
        int index = phi->IncomingIndexFor(block_clone);
        if (index >= 0) {
          phi->RemoveIncoming(static_cast<unsigned>(index));
        }
      }
    }
  }

  // Dead edges may leave whole regions unreachable; clean them up now so the
  // verifier (and later passes) see consistent phis.
  RemoveUnreachableBlocks(fn);
  ++g_unswitched;
  return true;
}

}  // namespace

bool LoopUnswitchPass::RunOnFunction(Function& fn) {
  bool changed = false;
  size_t budget = options_.max_per_function;
  while (budget > 0) {
    DominatorTree dom(fn);
    LoopInfo loops(fn, dom);
    auto candidate = FindCandidate(dom, loops, options_.loop_size_limit);
    if (!candidate.has_value()) {
      break;
    }
    if (!UnswitchOne(fn, *candidate)) {
      break;
    }
    changed = true;
    --budget;
  }
  return changed;
}

}  // namespace overify
