// If-conversion: rewrites side-effect-free conditional diamonds/triangles
// into straight-line code with selects (speculative execution).
//
// This is the transformation that turns Listing 1's loop body into
// Listing 2's branch-free form. A CPU-oriented compiler applies it only when
// a branch costs more than the speculated instructions (GCC's
// `x &= -(test == 0)` example in §3); under -OVERIFY the branch cost is set
// so high that every safe opportunity is taken, because each removed branch
// halves the symbolic-execution path count at that point.
#pragma once

#include "src/passes/pass.h"

namespace overify {

struct IfConvertOptions {
  // Cost of a conditional branch. CPU-like: ~4; -OVERIFY: effectively
  // infinite (paths are what a verifier pays for).
  int branch_cost = 4;
  // Cost charged per speculated instruction.
  int instruction_cost = 1;
  // Never speculate more than this many instructions per side.
  size_t max_speculated = 64;
  // Allow speculating loads (safe under the dominating-access discipline the
  // frontend guarantees for locals/globals; disabled for CPU levels).
  bool speculate_loads = false;
};

class IfConvertPass : public FunctionPass {
 public:
  explicit IfConvertPass(IfConvertOptions options) : options_(options) {}

  const char* name() const override { return "ifconvert"; }
  bool RunOnFunction(Function& fn) override;

 private:
  IfConvertOptions options_;
};

}  // namespace overify
