// Optimization pipelines: the concrete meaning of -O0/-O1/-O2/-O3 and
// -OVERIFY in this toolkit.
//
// Per §3 of the paper, -OVERIFY differs from -O3 in four ways, all visible
// below: (1) pass selection (adds if-conversion, runtime checks,
// annotations; drops nothing that helps verification), (2) cost parameters
// (branch cost treated as enormous, inline threshold and unroll budget
// enlarged), (3) preserved metadata (the annotations side table), and
// (4) the C library flavor (chosen by the driver via `use_verify_libc`).
#pragma once

#include "src/passes/annotate.h"
#include "src/passes/if_convert.h"
#include "src/passes/inliner.h"
#include "src/passes/loop_unroll.h"
#include "src/passes/loop_unswitch.h"
#include "src/passes/pass.h"
#include "src/passes/runtime_checks.h"

namespace overify {

enum class OptLevel {
  kO0,
  kO1,
  kO2,
  kO3,
  kOverify,  // the paper's -OVERIFY / -OSYMBEX prototype
};

const char* OptLevelName(OptLevel level);

struct PipelineOptions {
  OptLevel level = OptLevel::kO0;

  // Component toggles (derived from the level, overridable for ablations).
  bool mem2reg = false;
  bool sroa = false;
  bool instcombine = false;
  bool cse = false;
  bool licm = false;
  bool inline_functions = false;
  bool simplify_cfg = false;
  bool jump_threading = false;
  bool unswitch = false;
  bool unroll = false;
  bool if_convert = false;
  bool runtime_checks = false;
  bool annotate = false;

  InlinerOptions inliner;
  UnswitchOptions unswitcher;
  UnrollOptions unroller;
  IfConvertOptions if_converter;
  RuntimeCheckOptions checker;

  // Which C library flavor the driver links before optimizing.
  bool use_verify_libc = false;

  // Canonical settings for a level.
  static PipelineOptions For(OptLevel level);
};

// Populates `pm` with the passes for `options`. `annotations` receives the
// annotation side table when options.annotate is set (it must then outlive
// the module's use; pass null to skip).
void BuildPipeline(PassManager& pm, const PipelineOptions& options,
                   ProgramAnnotations* annotations);

}  // namespace overify
