// CFG cleanup: folds constant branches, merges straight-line block chains,
// forwards empty blocks, removes unreachable code, and simplifies
// single-incoming phis. Runs after most structural passes.
#pragma once

#include "src/passes/pass.h"

namespace overify {

class SimplifyCfgPass : public FunctionPass {
 public:
  const char* name() const override { return "simplifycfg"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
