// Common subexpression elimination: a dominator-tree-scoped value-numbering
// pass for pure operations, plus redundant-load elimination within basic
// blocks (alias-checked).
//
// For verification this is more than a speed tweak: every eliminated
// duplicate expression is one fewer symbolic term the constraint solver
// sees, and duplicate loads of the same address are what make the
// speculation discipline of if-conversion fire (§3).
#pragma once

#include "src/passes/pass.h"

namespace overify {

class CsePass : public FunctionPass {
 public:
  const char* name() const override { return "cse"; }
  bool RunOnFunction(Function& fn) override;
};

}  // namespace overify
