#include "src/analysis/dependence_graph.h"

#include <algorithm>

#include "src/ir/cfg.h"

namespace overify {

namespace {

// Access location of a load or store (size from the accessed type).
MemoryLocation AccessLocation(const Instruction* inst) {
  if (inst->opcode() == Opcode::kStore) {
    return ResolvePointer(inst->Operand(1), inst->Operand(0)->type()->SizeInBytes());
  }
  return ResolvePointer(inst->Operand(0), inst->type()->SizeInBytes());
}

}  // namespace

DependenceGraph::DependenceGraph(Function& fn, const CallGraph& call_graph,
                                 const ModRefSummaries& summaries)
    : fn_(fn), call_graph_(call_graph), summaries_(summaries), pdt_(fn) {
  // Number instructions in reachable blocks, in block layout order (the
  // layout is itself deterministic, so the numbering is too).
  std::vector<BasicBlock*> rpo = ReversePostOrder(fn);
  std::set<BasicBlock*> reachable(rpo.begin(), rpo.end());
  for (BasicBlock& block : fn) {
    if (reachable.count(&block) == 0) {
      continue;
    }
    unsigned id = static_cast<unsigned>(block_id_.size());
    block_id_[&block] = id;
    for (auto& inst : block) {
      index_[inst.get()] = static_cast<unsigned>(instructions_.size());
      instructions_.push_back(inst.get());
    }
  }

  // Post-dominance must cover every reachable block, or control dependence
  // is incomplete (infinite loops).
  for (const auto& [block, id] : block_id_) {
    (void)id;
    if (!pdt_.HasInfo(block)) {
      ok_ = false;
      error_ = "block '" + block->name() + "' cannot reach a function exit";
      return;
    }
  }
  // Warm the lazy control-dependence cache so const accessors can use it.
  const_cast<PostDominatorTree&>(static_cast<const PostDominatorTree&>(pdt_))
      .ControlDependencies();

  // Block-level reachability via >= 1 edge: transitive closure over block
  // successors. Quadratic in blocks, which are small per function.
  const size_t n = block_id_.size();
  block_reaches_.assign(n, std::vector<bool>(n, false));
  for (const auto& [block, id] : block_id_) {
    std::vector<BasicBlock*> worklist;
    for (BasicBlock* succ : block->Successors()) {
      if (block_id_.count(succ) != 0) {
        worklist.push_back(succ);
      }
    }
    while (!worklist.empty()) {
      BasicBlock* cur = worklist.back();
      worklist.pop_back();
      unsigned cur_id = block_id_.at(cur);
      if (block_reaches_[id][cur_id]) {
        continue;
      }
      block_reaches_[id][cur_id] = true;
      for (BasicBlock* succ : cur->Successors()) {
        if (block_id_.count(succ) != 0) {
          worklist.push_back(succ);
        }
      }
    }
  }

  // Trap sites, stores and calls, in index order.
  for (Instruction* inst : instructions_) {
    if (inst->opcode() == Opcode::kStore) {
      stores_.push_back(inst);
    } else if (inst->opcode() == Opcode::kCall) {
      calls_.push_back(inst);
    }
    bool traps = false;
    if (const auto* call = DynCast<CallInst>(inst)) {
      traps = summaries_.Of(call->callee()).may_trap;
    } else {
      traps = InstructionMayTrapLocally(*inst);
    }
    if (traps) {
      trap_sites_.push_back(inst);
      trap_site_set_.insert(inst);
    }
  }
}

bool DependenceGraph::BlockReaches(BasicBlock* from, BasicBlock* to) const {
  auto from_it = block_id_.find(from);
  auto to_it = block_id_.find(to);
  if (from_it == block_id_.end() || to_it == block_id_.end()) {
    return false;
  }
  return block_reaches_[from_it->second][to_it->second];
}

bool DependenceGraph::CanExecuteBefore(const Instruction* a,
                                       const Instruction* b) const {
  BasicBlock* ba = a->parent();
  BasicBlock* bb = b->parent();
  if (ba == bb) {
    // Program order within the block, or the block repeats via a cycle.
    if (IndexOf(a) < IndexOf(b)) {
      return true;
    }
    return BlockReaches(ba, bb);
  }
  return BlockReaches(ba, bb);
}

std::vector<Instruction*> DependenceGraph::ControllingBranches(
    const Instruction* inst) const {
  std::vector<Instruction*> branches;
  const auto& deps =
      const_cast<PostDominatorTree&>(pdt_).ControlDependencies();
  auto it = deps.find(inst->parent());
  if (it == deps.end()) {
    return branches;
  }
  for (BasicBlock* controller : it->second) {
    branches.push_back(controller->Terminator());
  }
  return branches;
}

void DependenceGraph::CalleeBases(const CallInst* call, bool write,
                                  std::set<Value*>* bases, bool* any) const {
  const ModRefSummary& summary = summaries_.Of(call->callee());
  if (write ? summary.writes_unknown : summary.reads_unknown) {
    *any = true;
  }
  for (const GlobalVariable* global : write ? summary.mod_globals : summary.ref_globals) {
    bases->insert(const_cast<GlobalVariable*>(global));
  }
  for (unsigned param : write ? summary.mod_params : summary.ref_params) {
    if (param >= call->NumArgs()) {
      *any = true;
      continue;
    }
    MemoryLocation loc = ResolvePointer(call->Arg(param), 0);
    if (loc.base == nullptr) {
      *any = true;
    } else {
      bases->insert(loc.base);
    }
  }
}

bool DependenceGraph::LocTouchesBases(const MemoryLocation& loc,
                                      const std::set<Value*>& bases,
                                      bool any) const {
  if (any || loc.base == nullptr) {
    return any || !bases.empty();
  }
  for (Value* base : bases) {
    MemoryLocation other;
    other.base = base;
    if (Alias(loc, other) != AliasResult::kNoAlias) {
      return true;
    }
  }
  return false;
}

bool DependenceGraph::CalleeMayRead(const CallInst* call,
                                    const MemoryLocation& loc) const {
  std::set<Value*> bases;
  bool any = false;
  CalleeBases(call, /*write=*/false, &bases, &any);
  return any || LocTouchesBases(loc, bases, any);
}

bool DependenceGraph::CalleeMayWrite(const CallInst* call,
                                     const MemoryLocation& loc) const {
  std::set<Value*> bases;
  bool any = false;
  CalleeBases(call, /*write=*/true, &bases, &any);
  return any || LocTouchesBases(loc, bases, any);
}

std::vector<Instruction*> DependenceGraph::MemoryDepsOfLoad(
    const Instruction* load) const {
  std::vector<Instruction*> deps;
  MemoryLocation loc = AccessLocation(load);
  for (Instruction* store : stores_) {
    if (!CanExecuteBefore(store, load)) {
      continue;
    }
    if (Alias(AccessLocation(store), loc) != AliasResult::kNoAlias) {
      deps.push_back(store);
    }
  }
  for (Instruction* call : calls_) {
    if (!CanExecuteBefore(call, load)) {
      continue;
    }
    if (CalleeMayWrite(Cast<CallInst>(call), loc)) {
      deps.push_back(call);
    }
  }
  std::sort(deps.begin(), deps.end(), [&](Instruction* a, Instruction* b) {
    return IndexOf(a) < IndexOf(b);
  });
  return deps;
}

std::vector<Instruction*> DependenceGraph::MemoryDepsOfCall(
    const Instruction* call) const {
  std::vector<Instruction*> deps;
  const auto* site = Cast<CallInst>(call);
  const ModRefSummary& summary = summaries_.Of(site->callee());
  if (!summary.MayReadAnything()) {
    return deps;
  }
  for (Instruction* store : stores_) {
    if (!CanExecuteBefore(store, call)) {
      continue;
    }
    if (CalleeMayRead(site, AccessLocation(store))) {
      deps.push_back(store);
    }
  }
  return deps;
}

}  // namespace overify
