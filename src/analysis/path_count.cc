#include "src/analysis/path_count.h"

#include <map>

#include "src/ir/cfg.h"
#include "src/ir/dominators.h"

namespace overify {

uint64_t CountAcyclicPaths(Function& fn) {
  if (fn.IsDeclaration()) {
    return 0;
  }
  DominatorTree dom(fn);
  const std::vector<BasicBlock*>& rpo = dom.ReversePostOrderBlocks();
  std::map<BasicBlock*, size_t> order;
  for (size_t i = 0; i < rpo.size(); ++i) {
    order[rpo[i]] = i;
  }

  // Process blocks in reverse RPO: paths(b) = sum over forward successors,
  // 1 if b has no forward successors (exit or all-back-edge).
  std::map<BasicBlock*, uint64_t> paths;
  for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
    BasicBlock* block = *it;
    uint64_t total = 0;
    bool has_forward_succ = false;
    for (BasicBlock* succ : block->Successors()) {
      auto succ_order = order.find(succ);
      if (succ_order == order.end() || succ_order->second <= order[block]) {
        continue;  // back edge (or unreachable): cut
      }
      has_forward_succ = true;
      uint64_t succ_paths = paths[succ];
      if (total > UINT64_MAX - succ_paths) {
        total = UINT64_MAX;
      } else {
        total += succ_paths;
      }
    }
    paths[block] = has_forward_succ ? total : 1;
  }
  return paths[fn.entry()];
}

uint64_t CountConditionalBranches(Function& fn) {
  uint64_t count = 0;
  for (BasicBlock& block : fn) {
    if (const auto* br = DynCast<BranchInst>(block.Terminator())) {
      if (br->IsConditional()) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace overify
