#include "src/analysis/alias_analysis.h"

#include <vector>

namespace overify {

namespace {

// Byte offset contribution of one GEP, or nullopt if any index is dynamic.
std::optional<int64_t> ConstantGepOffset(const GepInst* gep) {
  int64_t offset = 0;
  Type* current = gep->source_type();
  for (unsigned i = 0; i < gep->NumIndices(); ++i) {
    const auto* index = DynCast<ConstantInt>(gep->Index(i));
    if (index == nullptr) {
      return std::nullopt;
    }
    int64_t idx = index->SignedValue();
    if (i == 0) {
      offset += idx * static_cast<int64_t>(current->SizeInBytes());
      continue;
    }
    if (current->IsArray()) {
      current = current->element();
      offset += idx * static_cast<int64_t>(current->SizeInBytes());
    } else if (current->IsStruct()) {
      offset += static_cast<int64_t>(current->FieldOffset(static_cast<unsigned>(idx)));
      current = current->fields()[static_cast<unsigned>(idx)];
    } else {
      return std::nullopt;
    }
  }
  return offset;
}

}  // namespace

bool MemoryLocation::HasIdentifiableBase() const {
  return base != nullptr && (Isa<AllocaInst>(base) || Isa<GlobalVariable>(base));
}

MemoryLocation ResolvePointer(Value* pointer, uint64_t access_size) {
  MemoryLocation loc;
  loc.size = access_size;
  int64_t offset = 0;
  bool offset_known = true;

  Value* current = pointer;
  while (true) {
    if (auto* gep = DynCast<GepInst>(current)) {
      if (offset_known) {
        if (auto gep_offset = ConstantGepOffset(gep)) {
          offset += *gep_offset;
        } else {
          offset_known = false;
        }
      }
      current = gep->base();
      continue;
    }
    break;
  }

  loc.base = current;
  if (offset_known) {
    loc.offset = offset;
  }
  return loc;
}

AliasResult Alias(const MemoryLocation& a, const MemoryLocation& b) {
  if (a.base == nullptr || b.base == nullptr) {
    return AliasResult::kMayAlias;
  }
  if (a.base != b.base) {
    // Two distinct identified objects never overlap. An identified object
    // and an unrelated pointer (e.g. an argument) may alias only if the
    // object's address could have escaped; we stay conservative for
    // non-identified bases.
    if (a.HasIdentifiableBase() && b.HasIdentifiableBase()) {
      return AliasResult::kNoAlias;
    }
    // A non-escaping alloca cannot alias a pointer that is not derived
    // from it.
    const auto* alloca_a = DynCast<AllocaInst>(a.base);
    const auto* alloca_b = DynCast<AllocaInst>(b.base);
    if ((alloca_a != nullptr && IsNonEscapingAlloca(alloca_a)) ||
        (alloca_b != nullptr && IsNonEscapingAlloca(alloca_b))) {
      return AliasResult::kNoAlias;
    }
    return AliasResult::kMayAlias;
  }
  // Same base: compare offsets when both are constant.
  if (!a.offset.has_value() || !b.offset.has_value()) {
    return AliasResult::kMayAlias;
  }
  int64_t ao = *a.offset;
  int64_t bo = *b.offset;
  if (ao == bo && a.size == b.size && a.size != 0) {
    return AliasResult::kMustAlias;
  }
  if (a.size == 0 || b.size == 0) {
    return AliasResult::kMayAlias;
  }
  bool disjoint = ao + static_cast<int64_t>(a.size) <= bo ||
                  bo + static_cast<int64_t>(b.size) <= ao;
  return disjoint ? AliasResult::kNoAlias : AliasResult::kMayAlias;
}

AliasResult Alias(Value* pointer_a, uint64_t size_a, Value* pointer_b, uint64_t size_b) {
  return Alias(ResolvePointer(pointer_a, size_a), ResolvePointer(pointer_b, size_b));
}

bool IsNonEscapingAlloca(const AllocaInst* alloca) {
  // Track the alloca and all pointers derived from it through GEPs. The
  // address escapes if it is stored somewhere, passed to a call, or compared.
  std::vector<const Value*> worklist = {alloca};
  while (!worklist.empty()) {
    const Value* v = worklist.back();
    worklist.pop_back();
    for (const Use& use : v->uses()) {
      const Instruction* user = use.user;
      switch (user->opcode()) {
        case Opcode::kLoad:
          break;
        case Opcode::kStore:
          if (use.operand_index == 0) {
            return false;  // the address itself is stored
          }
          break;
        case Opcode::kGep:
          worklist.push_back(user);
          break;
        default:
          return false;  // calls, compares, phis, selects: treat as escape
      }
    }
  }
  return true;
}

}  // namespace overify
