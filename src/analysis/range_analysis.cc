#include "src/analysis/range_analysis.h"

#include <algorithm>

#include "src/ir/cfg.h"
#include "src/ir/constant.h"

namespace overify {

namespace {

int64_t WidthMin(unsigned bits) {
  if (bits >= 64) {
    return INT64_MIN;
  }
  return -(int64_t{1} << (bits - 1));
}

int64_t WidthMax(unsigned bits) {
  if (bits >= 64) {
    return INT64_MAX;
  }
  return (int64_t{1} << (bits - 1)) - 1;
}

bool AddOverflows(int64_t a, int64_t b, int64_t& out) {
  return __builtin_add_overflow(a, b, &out);
}

bool MulOverflows(int64_t a, int64_t b, int64_t& out) {
  return __builtin_mul_overflow(a, b, &out);
}

ValueRange ClampToWidth(ValueRange r, unsigned bits) {
  int64_t lo = WidthMin(bits);
  int64_t hi = WidthMax(bits);
  if (r.lo < lo || r.hi > hi || r.lo > r.hi) {
    return ValueRange{lo, hi};
  }
  return r;
}

}  // namespace

bool ValueRange::IsFull(unsigned bits) const {
  return lo <= WidthMin(bits) && hi >= WidthMax(bits);
}

ValueRange ValueRange::Full(unsigned bits) { return ValueRange{WidthMin(bits), WidthMax(bits)}; }

ValueRange RangeAdd(ValueRange a, ValueRange b, unsigned bits) {
  int64_t lo;
  int64_t hi;
  if (AddOverflows(a.lo, b.lo, lo) || AddOverflows(a.hi, b.hi, hi)) {
    return ValueRange::Full(bits);
  }
  return ClampToWidth(ValueRange{lo, hi}, bits);
}

ValueRange RangeSub(ValueRange a, ValueRange b, unsigned bits) {
  int64_t lo;
  int64_t hi;
  if (AddOverflows(a.lo, -b.hi, lo) || AddOverflows(a.hi, -b.lo, hi) || b.hi == INT64_MIN ||
      b.lo == INT64_MIN) {
    return ValueRange::Full(bits);
  }
  return ClampToWidth(ValueRange{lo, hi}, bits);
}

ValueRange RangeMul(ValueRange a, ValueRange b, unsigned bits) {
  int64_t candidates[4];
  if (MulOverflows(a.lo, b.lo, candidates[0]) || MulOverflows(a.lo, b.hi, candidates[1]) ||
      MulOverflows(a.hi, b.lo, candidates[2]) || MulOverflows(a.hi, b.hi, candidates[3])) {
    return ValueRange::Full(bits);
  }
  int64_t lo = *std::min_element(candidates, candidates + 4);
  int64_t hi = *std::max_element(candidates, candidates + 4);
  return ClampToWidth(ValueRange{lo, hi}, bits);
}

ValueRange RangeUnion(ValueRange a, ValueRange b) {
  return ValueRange{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

RangeAnalysis::RangeAnalysis(Function& fn) {
  if (fn.IsDeclaration()) {
    return;
  }
  std::vector<BasicBlock*> rpo = ReversePostOrder(fn);

  // Iterate to fixpoint with a bounded number of rounds; after the bound,
  // any still-changing value is widened to full range by Evaluate's
  // monotonic growth hitting the clamp.
  const int kMaxRounds = 8;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (BasicBlock* block : rpo) {
      for (auto& inst : *block) {
        if (!inst->type()->IsInt()) {
          continue;
        }
        ValueRange next = Evaluate(inst.get());
        auto it = ranges_.find(inst.get());
        if (it == ranges_.end()) {
          ranges_[inst.get()] = next;
          changed = true;
        } else if (!(it->second == next)) {
          // Monotone widening: ranges only grow.
          ValueRange merged = RangeUnion(it->second, next);
          if (round >= kMaxRounds / 2) {
            merged = ValueRange::Full(inst->type()->bits());
          }
          if (!(merged == it->second)) {
            it->second = merged;
            changed = true;
          }
        }
      }
    }
    if (!changed) {
      break;
    }
  }
}

ValueRange RangeAnalysis::RangeOf(const Value* v) const {
  if (const auto* ci = DynCast<ConstantInt>(v)) {
    return ValueRange::Exact(ci->SignedValue());
  }
  if (!v->type()->IsInt()) {
    return ValueRange::Full(64);
  }
  auto it = ranges_.find(v);
  if (it != ranges_.end()) {
    return it->second;
  }
  return ValueRange::Full(v->type()->bits());
}

ValueRange RangeAnalysis::Evaluate(const Instruction* inst) const {
  unsigned bits = inst->type()->bits();
  switch (inst->opcode()) {
    case Opcode::kAdd:
      return RangeAdd(RangeOf(inst->Operand(0)), RangeOf(inst->Operand(1)), bits);
    case Opcode::kSub:
      return RangeSub(RangeOf(inst->Operand(0)), RangeOf(inst->Operand(1)), bits);
    case Opcode::kMul:
      return RangeMul(RangeOf(inst->Operand(0)), RangeOf(inst->Operand(1)), bits);
    case Opcode::kAnd: {
      // With a non-negative constant mask m, the result is in [0, m].
      ValueRange rhs = RangeOf(inst->Operand(1));
      if (rhs.IsSingleValue() && rhs.lo >= 0) {
        return ValueRange{0, rhs.lo};
      }
      ValueRange lhs = RangeOf(inst->Operand(0));
      if (lhs.IsSingleValue() && lhs.lo >= 0) {
        return ValueRange{0, lhs.lo};
      }
      return ValueRange::Full(bits);
    }
    case Opcode::kOr: {
      // For non-negative operands, a|b >= max(a_lo, b_lo) and a|b fits in
      // the smallest power-of-two bound covering both highs.
      ValueRange a = RangeOf(inst->Operand(0));
      ValueRange b = RangeOf(inst->Operand(1));
      if (a.lo >= 0 && b.lo >= 0 && a.hi < INT64_MAX / 2 && b.hi < INT64_MAX / 2) {
        int64_t hi_bound = 1;
        while (hi_bound - 1 < a.hi || hi_bound - 1 < b.hi) {
          hi_bound <<= 1;
        }
        return ValueRange{std::max(a.lo, b.lo), hi_bound - 1};
      }
      return ValueRange::Full(bits);
    }
    case Opcode::kURem: {
      ValueRange rhs = RangeOf(inst->Operand(1));
      if (rhs.IsSingleValue() && rhs.lo > 0) {
        return ValueRange{0, rhs.lo - 1};
      }
      return ValueRange::Full(bits);
    }
    case Opcode::kLShr: {
      ValueRange rhs = RangeOf(inst->Operand(1));
      if (rhs.IsSingleValue() && rhs.lo > 0 && rhs.lo < bits) {
        // Result is non-negative and bounded by 2^(bits - shift) - 1.
        unsigned remaining = bits - static_cast<unsigned>(rhs.lo);
        int64_t hi = remaining >= 63 ? INT64_MAX : (int64_t{1} << remaining) - 1;
        return ValueRange{0, hi};
      }
      return ValueRange::Full(bits);
    }
    case Opcode::kICmp: {
      const auto* cmp = Cast<ICmpInst>(inst);
      bool result;
      if (DecideICmp(cmp->predicate(), cmp->lhs(), cmp->rhs(), result)) {
        return ValueRange::Exact(result ? 1 : 0);
      }
      return ValueRange{0, 1};
    }
    case Opcode::kZExt: {
      ValueRange src = RangeOf(inst->Operand(0));
      unsigned src_bits = inst->Operand(0)->type()->bits();
      if (src.lo >= 0) {
        return ClampToWidth(src, bits);
      }
      // Negative sources wrap to large positive values under zext.
      if (src_bits >= 64) {
        return ValueRange::Full(bits);
      }
      return ValueRange{0, (int64_t{1} << src_bits) - 1};
    }
    case Opcode::kSExt:
      return ClampToWidth(RangeOf(inst->Operand(0)), bits);
    case Opcode::kTrunc: {
      ValueRange src = RangeOf(inst->Operand(0));
      if (src.lo >= WidthMin(bits) && src.hi <= WidthMax(bits)) {
        return src;
      }
      return ValueRange::Full(bits);
    }
    case Opcode::kSelect:
      return RangeUnion(RangeOf(inst->Operand(1)), RangeOf(inst->Operand(2)));
    case Opcode::kPhi: {
      const auto* phi = Cast<PhiInst>(inst);
      bool first = true;
      ValueRange merged = ValueRange::Exact(0);
      for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
        const Value* incoming = phi->IncomingValue(i);
        // Unvisited incoming values (back edges on the first round) are
        // skipped; later rounds pick them up.
        if (!Isa<ConstantInt>(incoming) && ranges_.count(incoming) == 0 &&
            Isa<Instruction>(incoming)) {
          continue;
        }
        ValueRange r = RangeOf(incoming);
        merged = first ? r : RangeUnion(merged, r);
        first = false;
      }
      return first ? ValueRange::Full(bits) : merged;
    }
    case Opcode::kLoad: {
      // A load of width < 64 is bounded by its width.
      return ValueRange::Full(bits);
    }
    default:
      return ValueRange::Full(bits);
  }
}

bool RangeAnalysis::DecideICmp(ICmpPredicate pred, const Value* lhs, const Value* rhs,
                               bool& result) const {
  ValueRange a = RangeOf(lhs);
  ValueRange b = RangeOf(rhs);
  switch (pred) {
    case ICmpPredicate::kSLT:
      if (a.hi < b.lo) {
        result = true;
        return true;
      }
      if (a.lo >= b.hi) {  // min(a) >= max(b) implies a < b is never true
        result = false;
        return true;
      }
      return false;
    case ICmpPredicate::kSLE:
      if (a.hi <= b.lo) {
        result = true;
        return true;
      }
      if (a.lo > b.hi) {
        result = false;
        return true;
      }
      return false;
    case ICmpPredicate::kSGT:
      return DecideICmp(ICmpPredicate::kSLT, rhs, lhs, result);
    case ICmpPredicate::kSGE:
      return DecideICmp(ICmpPredicate::kSLE, rhs, lhs, result);
    case ICmpPredicate::kEq:
      if (a.IsSingleValue() && b.IsSingleValue() && a.lo == b.lo) {
        result = true;
        return true;
      }
      if (a.hi < b.lo || b.hi < a.lo) {
        result = false;
        return true;
      }
      return false;
    case ICmpPredicate::kNe: {
      bool eq_result;
      if (DecideICmp(ICmpPredicate::kEq, lhs, rhs, eq_result)) {
        result = !eq_result;
        return true;
      }
      return false;
    }
    case ICmpPredicate::kULT:
    case ICmpPredicate::kULE:
    case ICmpPredicate::kUGT:
    case ICmpPredicate::kUGE: {
      // Decide unsigned comparisons only when both ranges are non-negative,
      // where signed and unsigned agree.
      if (a.lo < 0 || b.lo < 0) {
        return false;
      }
      ICmpPredicate signed_pred;
      switch (pred) {
        case ICmpPredicate::kULT:
          signed_pred = ICmpPredicate::kSLT;
          break;
        case ICmpPredicate::kULE:
          signed_pred = ICmpPredicate::kSLE;
          break;
        case ICmpPredicate::kUGT:
          signed_pred = ICmpPredicate::kSGT;
          break;
        default:
          signed_pred = ICmpPredicate::kSGE;
          break;
      }
      return DecideICmp(signed_pred, lhs, rhs, result);
    }
  }
  return false;
}

}  // namespace overify
