// Static path counting: the number of acyclic paths through a function's
// CFG (back edges cut). This is the compile-time analogue of the path counts
// the symbolic-execution engine reports dynamically, and what Section 1 of
// the paper means by "O(3^length) paths through this function".
#pragma once

#include <cstdint>

#include "src/ir/function.h"

namespace overify {

// Number of entry-to-exit paths ignoring loop back edges, saturating at
// UINT64_MAX. A function whose every block is straight-line has 1 path.
uint64_t CountAcyclicPaths(Function& fn);

// Number of conditional branches in the function (a direct driver of
// symbolic-execution forks).
uint64_t CountConditionalBranches(Function& fn);

}  // namespace overify
