// Instruction-level dependence graph for one function, interprocedurally
// aware through call-graph mod/ref summaries (docs/slicing.md).
//
// Edges the slicer walks backwards:
//   - data:    instruction -> its instruction operands
//   - control: instruction -> the conditional branches its block is
//              control-dependent on (post-dominance frontiers), and
//              phi -> the terminators of its incoming blocks
//   - memory:  load -> stores/calls that may define the loaded location and
//              can execute before it; call -> stores whose location the
//              callee may read (mod/ref summaries, pruned by AliasAnalysis)
//
// Everything is ordered by a deterministic instruction numbering (block
// layout order), so graph consumers are pure functions of the module.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/alias_analysis.h"
#include "src/analysis/call_graph.h"
#include "src/ir/dominators.h"
#include "src/ir/function.h"

namespace overify {

class DependenceGraph {
 public:
  DependenceGraph(Function& fn, const CallGraph& call_graph,
                  const ModRefSummaries& summaries);

  // False when the function has blocks with no path to an exit (infinite
  // loops): control dependence is then incomplete and clients that need a
  // total answer (the slicer) must fall back.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  Function& function() const { return fn_; }
  const ModRefSummaries& summaries() const { return summaries_; }
  const CallGraph& call_graph() const { return call_graph_; }

  // Deterministic numbering of every instruction in every forward-reachable
  // block, in block layout order. Instructions in unreachable blocks are not
  // numbered (they never execute and never trap).
  const std::vector<Instruction*>& Instructions() const { return instructions_; }
  bool Covers(const Instruction* inst) const { return index_.count(inst) != 0; }
  unsigned IndexOf(const Instruction* inst) const { return index_.at(inst); }

  // Potential trap sites (InstructionMayTrapLocally plus calls whose callee
  // summary says may_trap), in index order.
  const std::vector<Instruction*>& TrapSites() const { return trap_sites_; }
  bool IsTrapSite(const Instruction* inst) const {
    return trap_site_set_.count(inst) != 0;
  }

  // True if `a` can execute strictly before `b` on some path: same-block
  // program order, a CFG path between distinct blocks, or a cycle through
  // the shared block.
  bool CanExecuteBefore(const Instruction* a, const Instruction* b) const;

  // Conditional branch instructions controlling whether `inst`'s block runs,
  // in deterministic order.
  std::vector<Instruction*> ControllingBranches(const Instruction* inst) const;

  // Stores and calls that may define memory read by `load` and can execute
  // before it, in index order.
  std::vector<Instruction*> MemoryDepsOfLoad(const Instruction* load) const;

  // Stores whose stored-to location the callee of `call` may read, restricted
  // to ones that can execute before the call, in index order.
  std::vector<Instruction*> MemoryDepsOfCall(const Instruction* call) const;

  // True when the callee of `call` may read / write the location `loc`
  // (argument-translated mod/ref summary of the callee at this site).
  bool CalleeMayRead(const CallInst* call, const MemoryLocation& loc) const;
  bool CalleeMayWrite(const CallInst* call, const MemoryLocation& loc) const;

  const PostDominatorTree& post_dominators() const { return pdt_; }

 private:
  bool BlockReaches(BasicBlock* from, BasicBlock* to) const;
  // Site-translated set of bases the callee may touch; `any` set when the
  // summary (or an argument base) is unattributable.
  void CalleeBases(const CallInst* call, bool write, std::set<Value*>* bases,
                   bool* any) const;
  bool LocTouchesBases(const MemoryLocation& loc, const std::set<Value*>& bases,
                       bool any) const;

  Function& fn_;
  const CallGraph& call_graph_;
  const ModRefSummaries& summaries_;
  bool ok_ = true;
  std::string error_;

  PostDominatorTree pdt_;
  std::vector<Instruction*> instructions_;
  std::map<const Instruction*, unsigned> index_;
  std::vector<Instruction*> trap_sites_;
  std::set<const Instruction*> trap_site_set_;
  // block -> bitset over block ids: which blocks are reachable via >= 1 edge.
  std::map<BasicBlock*, unsigned> block_id_;
  std::vector<std::vector<bool>> block_reaches_;
  // Stores and calls, in index order, for memory-dependence scans.
  std::vector<Instruction*> stores_;
  std::vector<Instruction*> calls_;
};

}  // namespace overify
