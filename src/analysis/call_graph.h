// Call graph construction. The inliner visits functions bottom-up (callees
// before callers), which is what makes the -OVERIFY "aggressive inlining"
// mechanism produce fully-specialized leaf-free functions.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "src/ir/module.h"

namespace overify {

class CallGraph {
 public:
  explicit CallGraph(Module& module);

  const std::set<Function*>& Callees(Function* fn) const;
  const std::set<Function*>& Callers(Function* fn) const;

  // True if `fn` participates in a call cycle (including self-recursion).
  bool IsRecursive(Function* fn) const { return recursive_.count(fn) != 0; }

  // Functions ordered callees-first. Functions in cycles appear in an
  // arbitrary relative order within their cycle.
  std::vector<Function*> BottomUpOrder() const;

  // All call sites of `callee` across the module.
  std::vector<CallInst*> CallSitesOf(Function* callee) const;

 private:
  void FindCycles();

  Module& module_;
  std::map<Function*, std::set<Function*>> callees_;
  std::map<Function*, std::set<Function*>> callers_;
  std::set<Function*> recursive_;
  std::set<Function*> empty_;
};

}  // namespace overify
