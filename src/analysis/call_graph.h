// Call graph construction. The inliner visits functions bottom-up (callees
// before callers), which is what makes the -OVERIFY "aggressive inlining"
// mechanism produce fully-specialized leaf-free functions.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "src/ir/module.h"

namespace overify {

class CallGraph {
 public:
  explicit CallGraph(Module& module);

  const std::set<Function*>& Callees(Function* fn) const;
  const std::set<Function*>& Callers(Function* fn) const;

  // True if `fn` participates in a call cycle (including self-recursion).
  bool IsRecursive(Function* fn) const { return recursive_.count(fn) != 0; }

  // Functions ordered callees-first. Functions in cycles appear in an
  // arbitrary relative order within their cycle.
  std::vector<Function*> BottomUpOrder() const;

  // All call sites of `callee` across the module.
  std::vector<CallInst*> CallSitesOf(Function* callee) const;

 private:
  void FindCycles();

  Module& module_;
  std::map<Function*, std::set<Function*>> callees_;
  std::map<Function*, std::set<Function*>> callers_;
  std::set<Function*> recursive_;
  std::set<Function*> empty_;
};

// True when executing `inst` itself — ignoring anything a callee might do —
// can raise an engine trap: checks, unreachable, div/rem whose divisor is not
// a safe constant, and loads/stores not provably in bounds of a known local
// or (for stores) writable global object. Calls always return false here;
// their trap-ness comes from the callee's ModRefSummary.
bool InstructionMayTrapLocally(const Instruction& inst);

// What a function may read or write through memory visible to its callers,
// plus whether executing it can trap. Param indices refer to pointer-typed
// parameters whose pointee may be accessed; locals (allocas) that do not
// escape the function are not part of the summary. The `unknown` bits are
// the conservative escape hatch: an access whose base cannot be attributed
// to a param, global, or local alloca taints the whole summary.
struct ModRefSummary {
  std::set<unsigned> ref_params;              // pointees that may be read
  std::set<unsigned> mod_params;              // pointees that may be written
  std::set<const GlobalVariable*> ref_globals;
  std::set<const GlobalVariable*> mod_globals;
  bool reads_unknown = false;
  bool writes_unknown = false;
  // True when executing the function (or anything it transitively calls) can
  // raise an engine trap: checks, div/rem guards, unprovable memory accesses,
  // unreachable, unmodeled externals, or recursion (stack-depth limit).
  bool may_trap = false;

  bool MayReadAnything() const {
    return reads_unknown || !ref_params.empty() || !ref_globals.empty();
  }
  bool MayWriteAnything() const {
    return writes_unknown || !mod_params.empty() || !mod_globals.empty();
  }
};

// Bottom-up mod/ref + may-trap summaries for every function in the module,
// iterated to a fixpoint so mutual recursion converges. Declarations are
// summarized by name: putchar/getchar are modeled (no visible memory, no
// trap); every other external is fully unknown and may trap.
class ModRefSummaries {
 public:
  ModRefSummaries(Module& module, const CallGraph& call_graph);

  const ModRefSummary& Of(const Function* fn) const;

 private:
  // Folds one instruction into `out`; returns true if `out` changed.
  bool Absorb(Function* fn, const Instruction& inst, ModRefSummary& out) const;

  const CallGraph& call_graph_;
  std::map<const Function*, ModRefSummary> summaries_;
  ModRefSummary unknown_;  // fallback for functions outside the module
};

}  // namespace overify
