#include "src/analysis/call_graph.h"

namespace overify {

CallGraph::CallGraph(Module& module) : module_(module) {
  for (const auto& fn : module.functions()) {
    callees_[fn.get()];
    callers_[fn.get()];
    for (BasicBlock& block : *fn) {
      for (auto& inst : block) {
        if (auto* call = DynCast<CallInst>(inst.get())) {
          callees_[fn.get()].insert(call->callee());
          callers_[call->callee()].insert(fn.get());
        }
      }
    }
  }
  FindCycles();
}

const std::set<Function*>& CallGraph::Callees(Function* fn) const {
  auto it = callees_.find(fn);
  return it == callees_.end() ? empty_ : it->second;
}

const std::set<Function*>& CallGraph::Callers(Function* fn) const {
  auto it = callers_.find(fn);
  return it == callers_.end() ? empty_ : it->second;
}

void CallGraph::FindCycles() {
  // Iterative Tarjan SCC.
  std::map<Function*, int> index;
  std::map<Function*, int> lowlink;
  std::map<Function*, bool> on_stack;
  std::vector<Function*> stack;
  int next_index = 0;

  struct Frame {
    Function* fn;
    std::vector<Function*> succs;
    size_t next_succ = 0;
  };

  for (const auto& root : module_.functions()) {
    if (index.count(root.get()) != 0) {
      continue;
    }
    std::vector<Frame> frames;
    auto push = [&](Function* fn) {
      index[fn] = next_index;
      lowlink[fn] = next_index;
      ++next_index;
      stack.push_back(fn);
      on_stack[fn] = true;
      Frame frame;
      frame.fn = fn;
      frame.succs.assign(Callees(fn).begin(), Callees(fn).end());
      frames.push_back(std::move(frame));
    };
    push(root.get());
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_succ < frame.succs.size()) {
        Function* succ = frame.succs[frame.next_succ++];
        if (index.count(succ) == 0) {
          push(succ);
        } else if (on_stack[succ]) {
          lowlink[frame.fn] = std::min(lowlink[frame.fn], index[succ]);
        }
        continue;
      }
      // Done with this node.
      Function* fn = frame.fn;
      if (lowlink[fn] == index[fn]) {
        std::vector<Function*> component;
        while (true) {
          Function* member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component.push_back(member);
          if (member == fn) {
            break;
          }
        }
        bool self_loop = Callees(fn).count(fn) != 0;
        if (component.size() > 1 || self_loop) {
          for (Function* member : component) {
            recursive_.insert(member);
          }
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().fn] = std::min(lowlink[frames.back().fn], lowlink[fn]);
      }
    }
  }
}

std::vector<Function*> CallGraph::BottomUpOrder() const {
  std::vector<Function*> order;
  std::set<Function*> visited;

  struct Frame {
    Function* fn;
    std::vector<Function*> succs;
    size_t next_succ = 0;
  };

  for (const auto& root : module_.functions()) {
    if (visited.count(root.get()) != 0) {
      continue;
    }
    std::vector<Frame> frames;
    visited.insert(root.get());
    frames.push_back(Frame{root.get(), {Callees(root.get()).begin(), Callees(root.get()).end()}});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_succ < frame.succs.size()) {
        Function* succ = frame.succs[frame.next_succ++];
        if (visited.insert(succ).second) {
          frames.push_back(Frame{succ, {Callees(succ).begin(), Callees(succ).end()}});
        }
        continue;
      }
      order.push_back(frame.fn);
      frames.pop_back();
    }
  }
  return order;
}

std::vector<CallInst*> CallGraph::CallSitesOf(Function* callee) const {
  // Callees are held as an instruction field rather than an operand, so call
  // sites are found by scanning callers (cheap: the caller set is tracked).
  std::vector<CallInst*> sites;
  auto it = callers_.find(callee);
  if (it == callers_.end()) {
    return sites;
  }
  for (Function* caller : it->second) {
    for (BasicBlock& block : *caller) {
      for (auto& inst : block) {
        if (auto* call = DynCast<CallInst>(inst.get())) {
          if (call->callee() == callee) {
            sites.push_back(call);
          }
        }
      }
    }
  }
  return sites;
}

}  // namespace overify
