#include "src/analysis/call_graph.h"

#include "src/analysis/alias_analysis.h"
#include "src/ir/constant.h"

namespace overify {

namespace {

// A load/store is provably safe when it resolves to a constant offset fully
// inside a known-size alloca or global (and, for stores, the global is
// writable). Anything based on an argument or an unresolvable pointer can
// trap at run time (null, bounds, dead object).
bool IsProvablySafeAccess(const Instruction& inst) {
  const bool is_store = inst.opcode() == Opcode::kStore;
  Value* pointer = inst.Operand(is_store ? 1 : 0);
  Type* accessed = is_store ? inst.Operand(0)->type() : inst.type();
  const uint64_t size = accessed->SizeInBytes();
  MemoryLocation loc = ResolvePointer(pointer, size);
  if (loc.base == nullptr || !loc.offset.has_value() || size == 0) {
    return false;
  }
  uint64_t object_size = 0;
  if (const auto* alloca = DynCast<AllocaInst>(loc.base)) {
    object_size = alloca->allocated_type()->SizeInBytes();
  } else if (const auto* global = DynCast<GlobalVariable>(loc.base)) {
    if (is_store && global->is_const()) {
      return false;  // write to a read-only object traps
    }
    object_size = global->value_type()->SizeInBytes();
  } else {
    return false;  // argument-based: object size unknown statically
  }
  return *loc.offset >= 0 && static_cast<uint64_t>(*loc.offset) + size <= object_size;
}

}  // namespace

bool InstructionMayTrapLocally(const Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::kCheck:
    case Opcode::kUnreachable:
      return true;
    case Opcode::kUDiv:
    case Opcode::kURem: {
      const auto* rhs = DynCast<ConstantInt>(inst.Operand(1));
      return rhs == nullptr || rhs->IsZero();
    }
    case Opcode::kSDiv:
    case Opcode::kSRem: {
      const auto* rhs = DynCast<ConstantInt>(inst.Operand(1));
      if (rhs == nullptr || rhs->IsZero()) {
        return true;
      }
      // sdiv additionally traps on INT_MIN / -1 overflow; -1 divisors stay
      // conservatively trapping rather than proving the dividend bound.
      return inst.opcode() == Opcode::kSDiv && rhs->IsAllOnes();
    }
    case Opcode::kLoad:
    case Opcode::kStore:
      return !IsProvablySafeAccess(inst);
    default:
      return false;
  }
}

CallGraph::CallGraph(Module& module) : module_(module) {
  for (const auto& fn : module.functions()) {
    callees_[fn.get()];
    callers_[fn.get()];
    for (BasicBlock& block : *fn) {
      for (auto& inst : block) {
        if (auto* call = DynCast<CallInst>(inst.get())) {
          callees_[fn.get()].insert(call->callee());
          callers_[call->callee()].insert(fn.get());
        }
      }
    }
  }
  FindCycles();
}

const std::set<Function*>& CallGraph::Callees(Function* fn) const {
  auto it = callees_.find(fn);
  return it == callees_.end() ? empty_ : it->second;
}

const std::set<Function*>& CallGraph::Callers(Function* fn) const {
  auto it = callers_.find(fn);
  return it == callers_.end() ? empty_ : it->second;
}

void CallGraph::FindCycles() {
  // Iterative Tarjan SCC.
  std::map<Function*, int> index;
  std::map<Function*, int> lowlink;
  std::map<Function*, bool> on_stack;
  std::vector<Function*> stack;
  int next_index = 0;

  struct Frame {
    Function* fn;
    std::vector<Function*> succs;
    size_t next_succ = 0;
  };

  for (const auto& root : module_.functions()) {
    if (index.count(root.get()) != 0) {
      continue;
    }
    std::vector<Frame> frames;
    auto push = [&](Function* fn) {
      index[fn] = next_index;
      lowlink[fn] = next_index;
      ++next_index;
      stack.push_back(fn);
      on_stack[fn] = true;
      Frame frame;
      frame.fn = fn;
      frame.succs.assign(Callees(fn).begin(), Callees(fn).end());
      frames.push_back(std::move(frame));
    };
    push(root.get());
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_succ < frame.succs.size()) {
        Function* succ = frame.succs[frame.next_succ++];
        if (index.count(succ) == 0) {
          push(succ);
        } else if (on_stack[succ]) {
          lowlink[frame.fn] = std::min(lowlink[frame.fn], index[succ]);
        }
        continue;
      }
      // Done with this node.
      Function* fn = frame.fn;
      if (lowlink[fn] == index[fn]) {
        std::vector<Function*> component;
        while (true) {
          Function* member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component.push_back(member);
          if (member == fn) {
            break;
          }
        }
        bool self_loop = Callees(fn).count(fn) != 0;
        if (component.size() > 1 || self_loop) {
          for (Function* member : component) {
            recursive_.insert(member);
          }
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().fn] = std::min(lowlink[frames.back().fn], lowlink[fn]);
      }
    }
  }
}

std::vector<Function*> CallGraph::BottomUpOrder() const {
  std::vector<Function*> order;
  std::set<Function*> visited;

  struct Frame {
    Function* fn;
    std::vector<Function*> succs;
    size_t next_succ = 0;
  };

  for (const auto& root : module_.functions()) {
    if (visited.count(root.get()) != 0) {
      continue;
    }
    std::vector<Frame> frames;
    visited.insert(root.get());
    frames.push_back(Frame{root.get(), {Callees(root.get()).begin(), Callees(root.get()).end()}});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_succ < frame.succs.size()) {
        Function* succ = frame.succs[frame.next_succ++];
        if (visited.insert(succ).second) {
          frames.push_back(Frame{succ, {Callees(succ).begin(), Callees(succ).end()}});
        }
        continue;
      }
      order.push_back(frame.fn);
      frames.pop_back();
    }
  }
  return order;
}

ModRefSummaries::ModRefSummaries(Module& module, const CallGraph& call_graph)
    : call_graph_(call_graph) {
  unknown_.reads_unknown = true;
  unknown_.writes_unknown = true;
  unknown_.may_trap = true;

  for (const auto& fn : module.functions()) {
    ModRefSummary& summary = summaries_[fn.get()];
    if (fn->IsDeclaration()) {
      const std::string& name = fn->name();
      if (name == "putchar" || name == "getchar") {
        // Modeled externals: no caller-visible memory, cannot trap.
      } else if (name == "abort") {
        summary.may_trap = true;
      } else {
        summary.reads_unknown = true;
        summary.writes_unknown = true;
        summary.may_trap = true;
      }
    } else if (call_graph.IsRecursive(fn.get())) {
      summary.may_trap = true;  // the engine's call-stack depth limit
    }
  }

  // Fixpoint, callees-first so acyclic regions converge in one sweep; cycles
  // converge because every merge is monotone over finite sets.
  std::vector<Function*> order = call_graph.BottomUpOrder();
  bool changed = true;
  while (changed) {
    changed = false;
    for (Function* fn : order) {
      if (fn->IsDeclaration()) {
        continue;
      }
      ModRefSummary& summary = summaries_[fn];
      for (BasicBlock& block : *fn) {
        for (auto& inst : block) {
          changed |= Absorb(fn, *inst, summary);
        }
      }
    }
  }
}

const ModRefSummary& ModRefSummaries::Of(const Function* fn) const {
  auto it = summaries_.find(fn);
  return it == summaries_.end() ? unknown_ : it->second;
}

bool ModRefSummaries::Absorb(Function* fn, const Instruction& inst,
                             ModRefSummary& out) const {
  (void)fn;
  bool changed = false;
  auto raise = [&](bool& flag) {
    if (!flag) {
      flag = true;
      changed = true;
    }
  };
  // Attribute an access base to the caller-visible summary sets. Local
  // allocas are the callee's own frame and invisible above it.
  auto record = [&](Value* base, bool write) {
    if (base != nullptr && Isa<AllocaInst>(base)) {
      return;
    }
    if (const auto* global = DynCast<GlobalVariable>(base)) {
      auto& set = write ? out.mod_globals : out.ref_globals;
      changed |= set.insert(global).second;
      return;
    }
    if (const auto* arg = DynCast<Argument>(base)) {
      auto& set = write ? out.mod_params : out.ref_params;
      changed |= set.insert(arg->index()).second;
      return;
    }
    raise(write ? out.writes_unknown : out.reads_unknown);
  };

  switch (inst.opcode()) {
    case Opcode::kLoad:
      record(ResolvePointer(inst.Operand(0), inst.type()->SizeInBytes()).base,
             /*write=*/false);
      break;
    case Opcode::kStore:
      record(ResolvePointer(inst.Operand(1), inst.Operand(0)->type()->SizeInBytes()).base,
             /*write=*/true);
      break;
    case Opcode::kCall: {
      const auto* call = Cast<CallInst>(&inst);
      const ModRefSummary& callee = Of(call->callee());
      if (callee.may_trap) {
        raise(out.may_trap);
      }
      if (callee.reads_unknown) {
        raise(out.reads_unknown);
      }
      if (callee.writes_unknown) {
        raise(out.writes_unknown);
      }
      for (const GlobalVariable* global : callee.ref_globals) {
        changed |= out.ref_globals.insert(global).second;
      }
      for (const GlobalVariable* global : callee.mod_globals) {
        changed |= out.mod_globals.insert(global).second;
      }
      // Param mod/ref translates through the actual pointer arguments.
      for (unsigned param : callee.ref_params) {
        if (param < call->NumArgs()) {
          record(ResolvePointer(call->Arg(param), 0).base, /*write=*/false);
        }
      }
      for (unsigned param : callee.mod_params) {
        if (param < call->NumArgs()) {
          record(ResolvePointer(call->Arg(param), 0).base, /*write=*/true);
        }
      }
      break;
    }
    default:
      break;
  }
  if (inst.opcode() != Opcode::kCall && InstructionMayTrapLocally(inst)) {
    raise(out.may_trap);
  }
  return changed;
}

std::vector<CallInst*> CallGraph::CallSitesOf(Function* callee) const {
  // Callees are held as an instruction field rather than an operand, so call
  // sites are found by scanning callers (cheap: the caller set is tracked).
  std::vector<CallInst*> sites;
  auto it = callers_.find(callee);
  if (it == callers_.end()) {
    return sites;
  }
  for (Function* caller : it->second) {
    for (BasicBlock& block : *caller) {
      for (auto& inst : block) {
        if (auto* call = DynCast<CallInst>(inst.get())) {
          if (call->callee() == callee) {
            sites.push_back(call);
          }
        }
      }
    }
  }
  return sites;
}

}  // namespace overify
