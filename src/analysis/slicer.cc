#include "src/analysis/slicer.h"

#include <algorithm>
#include <set>

#include "src/analysis/dependence_graph.h"
#include "src/ir/cfg.h"
#include "src/ir/cloning.h"
#include "src/ir/constant.h"
#include "src/ir/context.h"
#include "src/ir/verifier.h"

namespace overify {

namespace {

// How much of an instruction the cone needs. Gate mode keeps only what the
// instruction's own trap condition depends on (a load/store's address);
// full mode also keeps the produced/stored value and its memory sources.
enum class Need { kGate, kFull };

Constant* ZeroOf(IRContext& ctx, Type* type) {
  return type->IsPointer() ? static_cast<Constant*>(ctx.GetNull(type))
                           : static_cast<Constant*>(ctx.GetInt(type, 0));
}

// Appends `ret 0` (typed to the function's return type) to `block` after
// erasing its current terminator.
void ReplaceTerminatorWithRet(IRContext& ctx, Function* fn, BasicBlock* block) {
  Instruction* term = block->Terminator();
  block->Erase(term);
  if (fn->return_type()->IsVoid()) {
    block->Append(std::make_unique<RetInst>(ctx));
  } else {
    block->Append(std::make_unique<RetInst>(ctx, ZeroOf(ctx, fn->return_type())));
  }
}

}  // namespace

Slicer::Slicer(Module& module, Function* entry) : module_(module), entry_(entry) {}

SliceResult Slicer::Run() {
  SliceResult result;
  if (entry_ == nullptr || entry_->IsDeclaration()) {
    result.error = "no entry function body to slice";
    return result;
  }

  CallGraph call_graph(module_);
  ModRefSummaries summaries(module_, call_graph);
  DependenceGraph dg(*entry_, call_graph, summaries);
  if (!dg.ok()) {
    result.error = dg.error();
    return result;
  }

  const std::vector<Instruction*>& insts = dg.Instructions();
  const std::vector<Instruction*>& traps = dg.TrapSites();
  result.checks_found = traps.size();
  result.entry_instructions = insts.size();
  if (traps.empty()) {
    result.ok = true;  // nothing can trap: nothing to verify
    return result;
  }

  // Keep-set per criterion: every trap that can execute before it (or is it).
  // Criteria with the same keep-set share a slice; keep-sets strictly
  // contained in another are subsumed by the larger slice.
  std::map<std::vector<unsigned>, std::vector<const Instruction*>> groups;
  for (Instruction* criterion : traps) {
    std::vector<unsigned> keep;
    for (Instruction* trap : traps) {
      if (trap == criterion || dg.CanExecuteBefore(trap, criterion)) {
        keep.push_back(dg.IndexOf(trap));
      }
    }
    groups[keep].push_back(criterion);
  }
  std::vector<std::vector<unsigned>> keep_sets;
  for (const auto& [keep, criteria] : groups) {
    (void)criteria;
    keep_sets.push_back(keep);
  }
  auto is_subset = [](const std::vector<unsigned>& a, const std::vector<unsigned>& b) {
    return a.size() < b.size() && std::includes(b.begin(), b.end(), a.begin(), a.end());
  };
  std::vector<std::vector<unsigned>> maximal;
  for (const auto& keep : keep_sets) {
    bool subsumed = false;
    for (const auto& other : keep_sets) {
      if (is_subset(keep, other)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) {
      maximal.push_back(keep);
    }
  }

  IRContext& ctx = module_.context();
  const PostDominatorTree& pdt = dg.post_dominators();

  for (const auto& keep : maximal) {
    // ---- Cone closure over data, control, and memory dependences.
    std::map<unsigned, Need> need;
    std::vector<unsigned> worklist;
    auto add = [&](const Instruction* inst, Need n) {
      if (!dg.Covers(inst)) {
        return;  // constants/arguments/unreachable code terminate the walk
      }
      unsigned idx = dg.IndexOf(inst);
      auto it = need.find(idx);
      if (it != need.end() && (it->second == Need::kFull || n == Need::kGate)) {
        return;
      }
      need[idx] = n;
      worklist.push_back(idx);
    };
    auto add_value = [&](Value* v, Need n) {
      if (auto* inst = DynCast<Instruction>(v)) {
        add(inst, n);
      }
    };
    for (unsigned idx : keep) {
      Instruction* trap = insts[idx];
      Opcode op = trap->opcode();
      add(trap, (op == Opcode::kLoad || op == Opcode::kStore) ? Need::kGate
                                                              : Need::kFull);
    }
    while (!worklist.empty()) {
      unsigned idx = worklist.back();
      worklist.pop_back();
      Instruction* inst = insts[idx];
      Need mode = need.at(idx);
      for (Instruction* branch : dg.ControllingBranches(inst)) {
        add(branch, Need::kFull);
      }
      switch (inst->opcode()) {
        case Opcode::kLoad:
          add_value(inst->Operand(0), Need::kFull);
          if (mode == Need::kFull) {
            for (Instruction* def : dg.MemoryDepsOfLoad(inst)) {
              add(def, Need::kFull);
            }
          }
          break;
        case Opcode::kStore:
          add_value(inst->Operand(1), Need::kFull);
          if (mode == Need::kFull) {
            add_value(inst->Operand(0), Need::kFull);
          }
          break;
        case Opcode::kCall:
          for (unsigned i = 0; i < inst->NumOperands(); ++i) {
            add_value(inst->Operand(i), Need::kFull);
          }
          for (Instruction* def : dg.MemoryDepsOfCall(inst)) {
            add(def, Need::kFull);
          }
          break;
        case Opcode::kPhi: {
          const auto* phi = Cast<PhiInst>(inst);
          for (unsigned i = 0; i < phi->NumIncoming(); ++i) {
            add_value(phi->IncomingValue(i), Need::kFull);
            add(phi->IncomingBlock(i)->Terminator(), Need::kFull);
          }
          break;
        }
        default:
          for (unsigned i = 0; i < inst->NumOperands(); ++i) {
            add_value(inst->Operand(i), Need::kFull);
          }
          break;
      }
    }

    // ---- Extraction: clone the entry, then reduce to the cone.
    std::vector<Type*> param_types;
    for (unsigned i = 0; i < entry_->NumArgs(); ++i) {
      param_types.push_back(entry_->Arg(i)->type());
    }
    Function* slice_fn = module_.CreateFunction(
        entry_->name() + ".slice." + std::to_string(result.slices.size()),
        entry_->return_type(), param_types);
    CloneMapping mapping;
    for (unsigned i = 0; i < entry_->NumArgs(); ++i) {
      mapping.values[entry_->Arg(i)] = slice_fn->Arg(i);
    }
    CloneBlocksInto(entry_->BlockList(), slice_fn, "", mapping);

    auto clone_of = [&](Instruction* orig) {
      return Cast<Instruction>(mapping.values.at(orig));
    };
    auto in_cone = [&](unsigned idx) { return need.count(idx) != 0; };
    std::set<unsigned> kept_traps(keep.begin(), keep.end());

    // Rewrite terminators first (collapsing a branch drops its condition
    // use), then null out gate-only operands, then erase non-cone bodies.
    std::vector<Instruction*> to_erase;
    for (unsigned idx = 0; idx < insts.size(); ++idx) {
      Instruction* orig = insts[idx];
      Instruction* clone = clone_of(orig);
      switch (orig->opcode()) {
        case Opcode::kBr: {
          auto* branch = Cast<BranchInst>(clone);
          if (!branch->IsConditional() || in_cone(idx)) {
            break;
          }
          BasicBlock* join = pdt.ImmediatePostDominator(orig->parent());
          if (join == nullptr) {
            // Both arms leave the function with no common join: end the
            // path benignly.
            ReplaceTerminatorWithRet(ctx, slice_fn, clone->parent());
          } else {
            branch->MakeUnconditional(mapping.Lookup(join));
          }
          break;
        }
        case Opcode::kUnreachable:
          if (kept_traps.count(idx) == 0) {
            // Not a kept trap: reaching it must not re-introduce a bug the
            // criterion's slice does not own.
            ReplaceTerminatorWithRet(ctx, slice_fn, clone->parent());
          }
          break;
        case Opcode::kRet: {
          auto* ret = Cast<RetInst>(clone);
          if (ret->HasValue()) {
            auto* def = DynCast<Instruction>(ret->value());
            if (def != nullptr && (!dg.Covers(def) || !in_cone(dg.IndexOf(def)))) {
              ret->SetOperand(0, ZeroOf(ctx, ret->value()->type()));
            }
          }
          break;
        }
        case Opcode::kStore:
          if (in_cone(idx) && need.at(idx) == Need::kGate) {
            // Gate-only store: the address decides the trap; the stored
            // value is never read by anything kept.
            clone->SetOperand(0, ZeroOf(ctx, clone->Operand(0)->type()));
          } else if (!in_cone(idx)) {
            to_erase.push_back(clone);
          }
          break;
        default:
          if (!orig->IsTerminator() && !in_cone(idx)) {
            to_erase.push_back(clone);
          }
          break;
      }
    }
    for (Instruction* clone : to_erase) {
      if (!clone->type()->IsVoid()) {
        clone->ReplaceAllUsesWith(ctx.GetUndef(clone->type()));
      }
    }
    for (Instruction* clone : to_erase) {
      clone->parent()->Erase(clone);
    }
    RemoveUnreachableBlocks(*slice_fn);

    std::vector<std::string> violations = VerifyFunction(*slice_fn);
    if (!violations.empty()) {
      // Strict conservatism: a malformed slice aborts slice mode entirely.
      result.error = "slice '" + slice_fn->name() +
                     "' failed IR verification: " + violations.front();
      module_.EraseFunction(slice_fn);
      EraseSlices(module_, result);
      result.ok = false;
      return result;
    }

    Slice slice;
    slice.fn = slice_fn;
    for (const auto& [group_keep, criteria] : groups) {
      // Every criterion whose keep-set this maximal set contains is covered.
      if (group_keep == keep ||
          std::includes(keep.begin(), keep.end(), group_keep.begin(), group_keep.end())) {
        slice.criteria.insert(slice.criteria.end(), criteria.begin(), criteria.end());
      }
    }
    slice.instructions = slice_fn->InstructionCount();
    for (const auto& [orig, clone] : mapping.values) {
      const auto* orig_inst = DynCast<Instruction>(orig);
      const auto* clone_inst = DynCast<Instruction>(clone);
      if (orig_inst != nullptr && clone_inst != nullptr) {
        result.to_original[clone_inst] = orig_inst;
      }
    }
    result.slices.push_back(slice);
  }

  result.ok = true;
  return result;
}

void Slicer::EraseSlices(Module& module, SliceResult& result) {
  for (Slice& slice : result.slices) {
    if (slice.fn != nullptr) {
      module.EraseFunction(slice.fn);
      slice.fn = nullptr;
    }
  }
  result.slices.clear();
  result.to_original.clear();
}

}  // namespace overify
