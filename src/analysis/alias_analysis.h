// Basic alias analysis over allocas, globals and constant-offset GEPs.
//
// The paper ("Instruction simplification", §3) observes that memory accesses
// complicate the data-flow graph and that splitting/untangling them pays off
// for verification; this analysis is what lets the optimizer do so safely.
#pragma once

#include <cstdint>
#include <optional>

#include "src/ir/instruction.h"
#include "src/ir/module.h"

namespace overify {

enum class AliasResult {
  kNoAlias,
  kMayAlias,
  kMustAlias,
};

// A pointer resolved to (base object, byte offset). `offset` is present only
// when every GEP index on the path is a constant.
struct MemoryLocation {
  Value* base = nullptr;              // AllocaInst, GlobalVariable, Argument, or null (unknown)
  std::optional<int64_t> offset;      // byte offset from base when statically known
  uint64_t size = 0;                  // access size in bytes (0 = unknown)

  bool HasIdentifiableBase() const;
};

// Resolves `pointer` (possibly through a chain of GEPs) to a location.
// `access_size` is the byte size of the prospective access.
MemoryLocation ResolvePointer(Value* pointer, uint64_t access_size);

// Relation between two memory accesses.
AliasResult Alias(const MemoryLocation& a, const MemoryLocation& b);
AliasResult Alias(Value* pointer_a, uint64_t size_a, Value* pointer_b, uint64_t size_b);

// True if `v` is an address that cannot escape or be aliased through calls:
// an alloca whose address is only used by direct loads/stores/GEPs.
bool IsNonEscapingAlloca(const AllocaInst* alloca);

}  // namespace overify
