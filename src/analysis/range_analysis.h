// Forward interval analysis for integer SSA values.
//
// Used by the annotation pass (the paper's "Program annotations" row in
// Table 2: variable ranges are priceless for verification tools and cheap
// for the compiler to emit) and by the check-elimination logic in
// instcombine (a bounds check whose index range fits the object is dropped).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "src/ir/function.h"

namespace overify {

// A signed interval [lo, hi] over the mathematical integers, clamped to the
// value's width. Full-width values are represented as the width's full range.
struct ValueRange {
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;

  bool IsFull(unsigned bits) const;
  bool Contains(int64_t v) const { return lo <= v && v <= hi; }
  bool IsSingleValue() const { return lo == hi; }

  static ValueRange Exact(int64_t v) { return ValueRange{v, v}; }
  static ValueRange Full(unsigned bits);

  bool operator==(const ValueRange& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const ValueRange& o) const { return !(*this == o); }
};

class RangeAnalysis {
 public:
  // Runs to fixpoint (with widening) over the function.
  explicit RangeAnalysis(Function& fn);

  // The computed range of `v`; full range if unknown/non-integer.
  ValueRange RangeOf(const Value* v) const;

  // True if the comparison `pred(lhs, rhs)` is decided by the computed
  // ranges; `result` receives the decided outcome.
  bool DecideICmp(ICmpPredicate pred, const Value* lhs, const Value* rhs, bool& result) const;

 private:
  ValueRange Evaluate(const Instruction* inst) const;

  std::map<const Value*, ValueRange> ranges_;
};

// Range arithmetic helpers (exposed for tests).
ValueRange RangeAdd(ValueRange a, ValueRange b, unsigned bits);
ValueRange RangeSub(ValueRange a, ValueRange b, unsigned bits);
ValueRange RangeMul(ValueRange a, ValueRange b, unsigned bits);
ValueRange RangeUnion(ValueRange a, ValueRange b);

}  // namespace overify
