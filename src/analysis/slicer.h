// Per-check backward program slicing (docs/slicing.md).
//
// For every reachable potential-trap instruction in the entry function the
// slicer computes the backward dependence cone — data, control, and memory
// dependences from the DependenceGraph — and extracts a standalone sliced
// entry function into the host module (callees and globals are shared; the
// slice is self-contained in the sense that it is a complete entry point
// closed under the functions it still calls). Instructions outside the cone
// are dropped; conditional branches both of whose arms leave the cone
// collapse to the branch block's immediate post-dominator.
//
// Soundness model ("keep real traps"): a slice for criterion C keeps every
// potential trap that can execute before C, so no spurious trap is dropped
// on any path that reaches C, and every kept trap's condition and gating is
// in the cone and therefore exact. Criteria with identical kept-trap sets
// share one slice, and keep-sets subsumed by a larger one are pruned. Every
// emitted slice is run through the IR verifier; any failure aborts slicing
// for the whole run (callers fall back to whole-program mode), which keeps
// slice mode strictly conservative.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/ir/module.h"

namespace overify {

struct Slice {
  Function* fn = nullptr;                    // slice entry, lives in the module
  std::vector<const Instruction*> criteria;  // original trap sites covered
  size_t instructions = 0;                   // slice entry instruction count
};

struct SliceResult {
  bool ok = false;
  std::string error;              // fallback reason when !ok
  std::vector<Slice> slices;      // deterministic order
  size_t checks_found = 0;        // reachable potential-trap sites in the entry
  size_t entry_instructions = 0;  // original entry function size
  // Slice instruction -> original instruction, across all slices. Used to
  // re-attribute bug sites (and erase slices safely afterwards).
  std::map<const Instruction*, const Instruction*> to_original;
};

class Slicer {
 public:
  Slicer(Module& module, Function* entry);

  // Builds all slices. On failure (!ok) no slice functions remain in the
  // module. The result is a pure function of the module contents.
  SliceResult Run();

  // Unlinks every slice function from the module (they have no call sites).
  static void EraseSlices(Module& module, SliceResult& result);

 private:
  Module& module_;
  Function* entry_;
};

}  // namespace overify
