#include "src/symex/engine_core.h"

#include "src/ir/constant.h"
#include "src/support/string_utils.h"
#include "src/support/trace.h"

namespace overify {
namespace sched {

namespace {

// Largest object a symbolic-offset access may address before the engine
// refuses (select chains grow linearly with object size).
constexpr uint64_t kMaxSymbolicAccessObject = 4096;

// Steps between batched flushes of the local instruction count into the
// shared atomics (and global limit re-checks). Bounds the overshoot of a
// limit stop to kLimitCheckInterval instructions per worker.
constexpr uint64_t kLimitCheckInterval = 32;

// Per-side salts mixed into a state's path_id at every fork. Any two
// distinct constants work; the values are arbitrary.
constexpr uint64_t kTrueSideSalt = 0x2545f4914f6cdd1dULL;
constexpr uint64_t kFalseSideSalt = 0xd1b54a32d192ed03ULL;

}  // namespace

class EngineCore::Impl {
 public:
  Impl(Module& module, const SymexOptions& options, SharedCounters& shared,
       LocalSlotCache& slots, unsigned num_input_bytes, unsigned worker_index,
       ExprInterner* interner)
      : module_(module),
        options_(options),
        shared_(shared),
        slots_(slots),
        ctx_(interner),
        solver_(ctx_),
        injector_(options.faults, worker_index),
        num_symbols_(num_input_bytes),
        worker_index_(worker_index) {
    metrics_.timing = options_.metrics_timing;
    // The solver writes into this worker's shard directly; installed before
    // any query so no counts land in the chain's private fallback shard.
    solver_.set_metrics(&metrics_);
    solver_.set_preprocessing(options_.solver_preprocess);
    solver_.set_learning(options_.solver_learning);
    // Cooperative query controls: the run deadline (stamped by the pool; a
    // default-constructed SharedCounters leaves it unset, so direct engine
    // users never get spurious deadline unknowns), the stop latch, this
    // worker's fault injector, and the per-query budgets.
    QueryControl control;
    if (shared_.deadline != std::chrono::steady_clock::time_point{}) {
      control.has_deadline = true;
      control.deadline = shared_.deadline;
    }
    control.cancel = &shared_.stop;
    control.faults = injector_.enabled() ? &injector_ : nullptr;
    control.query_candidates = shared_.limits.query_candidates;
    control.query_seconds = shared_.limits.query_seconds;
    solver_.set_control(control);
    // Global object ids are deterministic — the initial state allocates
    // them first, in module order, starting at 1 — so every worker can
    // reconstruct the mapping without owning the allocation.
    uint64_t next_id = 1;
    for (const auto& global : module_.globals()) {
      global_objects_[global.get()] = next_id++;
    }
  }

  std::unique_ptr<ExecState> MakeInitialState(Function* entry) {
    auto state = std::make_unique<ExecState>();
    state->id = NextStateId();
    SetupGlobals(*state);
    SetupEntry(*state, entry);
    return state;
  }

  PathOutcome RunState(ExecState& state, ForkSink& sink, Searcher* searcher) {
    const bool timed = TimedEngine();
    const uint64_t t0 = timed ? MetricsNowNs() : 0;
    PathOutcome outcome = RunStateImpl(state, sink, searcher);
    if (timed) {
      const uint64_t t1 = MetricsNowNs();
      metrics_.Record(Hist::kPathRunNs, t1 - t0);
      if (trace_ != nullptr) {
        trace_->Span(TraceKind::kPathRun, t0, t1, static_cast<uint64_t>(outcome),
                     state.depth);
      }
    }
    return outcome;
  }

  MetricsShard& metrics_shard() { return metrics_; }

  // Flushes subsystem-owned totals (solver caches/preprocessor via the
  // chain, this worker's fault-injector stats) into the shard so a merge
  // sees everything.
  void SyncMetrics() {
    solver_.SyncMetrics();
    const FaultStats& f = injector_.stats();
    metrics_.Set(Counter::kFaultSolverUnknown, f.solver_unknown);
    metrics_.Set(Counter::kFaultCacheLookup, f.cache_lookup);
    metrics_.Set(Counter::kFaultStealBatch, f.steal_batch);
    metrics_.Set(Counter::kFaultWorkerStalls, f.worker_stalls);
    metrics_.Set(Counter::kFaultWorkerDeaths, f.worker_deaths);
    metrics_.Set(Counter::kFaultDraws, f.draws);
  }

  void set_trace(TraceBuffer* trace) {
    trace_ = trace;
    solver_.set_trace(trace);
  }
  TraceBuffer* trace() { return trace_; }

  const SolverStats& solver_stats() const { return solver_.stats(); }
  SolverChain& solver() { return solver_; }
  const std::map<std::pair<const Instruction*, BugKind>, BugCandidate>& bugs() const {
    return bugs_;
  }
  ExprContext& ctx() { return ctx_; }
  FaultInjector& faults() { return injector_; }

 private:
  bool TimedEngine() const { return metrics_.timing || trace_ != nullptr; }

  PathOutcome RunStateImpl(ExecState& state, ForkSink& sink, Searcher* searcher) {
    sink_ = &sink;
    searcher_ = searcher;
    for (;;) {
      if (++steps_since_check_ >= kLimitCheckInterval) {
        FlushInstructions();
        // Injected worker death: the state is untouched and still live; the
        // pool requeues it where a thief can pick it up (docs/robustness.md).
        // The draw only kills when the run's death cap has headroom, so a
        // configured number of survivors is guaranteed.
        if (injector_.enabled() && injector_.Fire(FaultSite::kWorkerDeath) &&
            shared_.ClaimWorkerDeath(options_.faults.max_worker_deaths)) {
          if (trace_ != nullptr) {
            trace_->Instant(TraceKind::kFaultFired, MetricsNowNs(),
                            static_cast<uint64_t>(FaultSite::kWorkerDeath));
          }
          return PathOutcome::kDied;
        }
        LatchExceededLimit();
      }
      if (shared_.StopRequested()) {
        FlushInstructions();
        metrics_.Inc(Counter::kPathsLimit);
        return PathOutcome::kLimitStop;
      }
      StepOutcome outcome = Step(state);
      if (outcome == StepOutcome::kContinue) {
        continue;
      }
      FlushInstructions();
      switch (outcome) {
        case StepOutcome::kPathComplete:
          metrics_.Inc(Counter::kPathsCompleted);
          shared_.paths_completed.fetch_add(1, std::memory_order_relaxed);
          LatchExceededLimit();
          return PathOutcome::kCompleted;
        case StepOutcome::kPathInfeasible:
          metrics_.Inc(Counter::kPathsInfeasible);
          return PathOutcome::kInfeasible;
        case StepOutcome::kPathUnknown:
          return RecordUnknown();
        default:
          metrics_.Inc(Counter::kPathsBug);
          return PathOutcome::kBug;
      }
    }
  }

  enum class StepOutcome {
    kContinue,        // state advanced; keep running it
    kPathComplete,    // main returned
    kPathInfeasible,  // no feasible direction remained
    kPathBug,         // died at a bug site (including engine errors)
    kPathUnknown,     // the solver gave up on a decisive query
  };

  // Guard/access outcomes: the state either survives or dies for a cause.
  enum class GuardResult { kOk, kDiedBug, kDiedInfeasible, kDiedUnknown };

  static StepOutcome DeadOutcome(GuardResult result) {
    switch (result) {
      case GuardResult::kDiedBug:
        return StepOutcome::kPathBug;
      case GuardResult::kDiedUnknown:
        return StepOutcome::kPathUnknown;
      default:
        return StepOutcome::kPathInfeasible;
    }
  }

  void LatchExceededLimit() {
    StopCause cause = shared_.ExceededCause();
    if (cause != StopCause::kNone) {
      shared_.RequestStop(cause);
    }
  }

  // Terminates the current path as unknown, attributed to exactly one cause.
  // A query cancelled by the global stop latch is a limit death (the path
  // would have been drained anyway); a query that itself hit the run
  // deadline both counts as a deadline unknown and latches the stop so the
  // rest of the pool drains promptly.
  PathOutcome RecordUnknown() {
    if (shared_.StopRequested()) {
      metrics_.Inc(Counter::kPathsLimit);
      return PathOutcome::kLimitStop;
    }
    metrics_.Inc(Counter::kPathsUnknown);
    switch (solver_.last_unknown_cause()) {
      case UnknownCause::kDeadline:
        metrics_.Inc(Counter::kPathsUnknownDeadline);
        shared_.RequestStop(StopCause::kDeadline);
        break;
      case UnknownCause::kInjected:
        metrics_.Inc(Counter::kPathsUnknownInjected);
        break;
      default:
        metrics_.Inc(Counter::kPathsUnknownBudget);
        break;
    }
    return PathOutcome::kUnknown;
  }

  uint64_t NextStateId() {
    return (static_cast<uint64_t>(worker_index_) << 48) | next_state_id_++;
  }

  void FlushInstructions() {
    steps_since_check_ = 0;
    if (unflushed_instructions_ != 0) {
      shared_.instructions.fetch_add(unflushed_instructions_, std::memory_order_relaxed);
      unflushed_instructions_ = 0;
    }
  }

  void CountInstructions(uint64_t n) {
    metrics_.Add(Counter::kInstructions, n);
    unflushed_instructions_ += n;
  }

  void EnterBlock(ExecState& state, BasicBlock* block) {
    if (searcher_ != nullptr) {
      searcher_->NotifyBlockEntered(block);
    }
    state.JumpTo(block);
  }

  // ---- Setup ----

  void SetupGlobals(ExecState& state) {
    for (const auto& global : module_.globals()) {
      uint64_t id = state.memory.Allocate(ctx_, global->value_type()->SizeInBytes(),
                                          global->is_const(), false, global->name());
      OVERIFY_ASSERT(id == global_objects_.at(global.get()),
                     "global object numbering out of sync");
      ObjectState& object = state.memory.Write(id);
      const auto& init = global->initializer();
      for (size_t i = 0; i < init.size(); ++i) {
        object.SetByte(i, ctx_.Constant(init[i], 8));
      }
    }
  }

  void SetupEntry(ExecState& state, Function* entry) {
    StackFrame frame;
    frame.fn = entry;
    frame.block = entry->entry();
    frame.pc = frame.block->begin();
    frame.locals.resize(slots_.Count(entry));

    if (entry->NumArgs() >= 1) {
      OVERIFY_ASSERT(entry->NumArgs() == 2 || entry->NumArgs() == 4,
                     "entry must be (u8* buf, i32 len), (u8* a, i32 na, u8* b, i32 nb), or ()");
      // Input buffers: the symbolic bytes plus a forced NUL terminator per
      // buffer (the paper's Coreutils runs model symbolic arguments the same
      // way). A 4-arg entry models two-input utilities (cmp, comm): the
      // symbolic bytes split first-buffer-gets-the-ceiling, with symbol
      // indices running consecutively across the buffers; the concrete
      // interpreter splits its input identically (docs/workloads.md).
      unsigned first = entry->NumArgs() == 4 ? num_symbols_ - num_symbols_ / 2 : num_symbols_;
      unsigned symbol = 0;
      for (size_t arg = 0; arg + 1 < entry->NumArgs(); arg += 2) {
        unsigned count = arg == 0 ? first : num_symbols_ - first;
        uint64_t buffer = state.memory.Allocate(ctx_, count + 1, false, false,
                                                arg == 0 ? "input" : "input2");
        ObjectState& object = state.memory.Write(buffer);
        for (unsigned i = 0; i < count; ++i) {
          object.SetByte(i, ctx_.Symbol(symbol++));
        }
        object.SetByte(count, ctx_.Constant(0, 8));
        frame.locals[entry->Arg(arg)->local_slot()] =
            RuntimeValue::Pointer(SymPointer{buffer, ctx_.Constant(0, 64)});
        frame.locals[entry->Arg(arg + 1)->local_slot()] = RuntimeValue::Int(
            ctx_.Constant(count, entry->Arg(arg + 1)->type()->bits()));
      }
    }
    state.stack.push_back(std::move(frame));
  }

  // ---- Bug reporting ----

  // Records a candidate report. The canonical representative of a (site,
  // kind) pair is the one from the smallest path_id; combined with the
  // canonical (history-free) model query, the surviving report is
  // schedule-independent, so merged bug sets are identical across worker
  // counts on exhausted runs.
  //
  // Returns true when a witnessed report for (site, kind) exists afterwards.
  // A candidate whose canonical witness query comes back non-SAT (budget,
  // deadline, or injected unknown) is dropped entirely rather than filed
  // without an example input — every surviving report stays replayable, and
  // the caller degrades the path to unknown instead (docs/robustness.md).
  bool ReportBug(ExecState& state, const Instruction* site, BugKind kind, std::string message) {
    auto key = std::make_pair(site, kind);
    auto it = bugs_.find(key);
    if (it != bugs_.end() && it->second.path_id <= state.path_id) {
      return true;
    }
    std::vector<uint8_t> model;
    if (solver_.CheckSatCanonical(state.constraints, &model) != SatResult::kSat) {
      // The candidate would have become (or replaced) the canonical report
      // but cannot be witnessed. Failing — even when an older report exists —
      // is what keeps the surviving representative identical to the clean
      // run's: the caller records the path as unknown, so the run is not
      // exhausted and is excluded from the bit-identity contract.
      return false;
    }
    BugCandidate bug;
    bug.kind = kind;
    bug.message = std::move(message);
    bug.site = site;
    bug.path_id = state.path_id;
    model.resize(num_symbols_, 0);
    bug.example_input = std::move(model);
    bugs_[key] = std::move(bug);
    return true;
  }

  // ---- Value resolution ----

  RuntimeValue Resolve(ExecState& state, const Value* v) {
    if (const auto* ci = DynCast<ConstantInt>(v)) {
      return RuntimeValue::Int(ctx_.Constant(ci->value(), ci->type()->bits()));
    }
    if (Isa<NullValue>(v)) {
      return RuntimeValue::Pointer(SymPointer{0, ctx_.Constant(0, 64)});
    }
    if (const auto* undef = DynCast<UndefValue>(v)) {
      // Undef concretizes to zero/null: deterministic and reproducible.
      if (undef->type()->IsPointer()) {
        return RuntimeValue::Pointer(SymPointer{0, ctx_.Constant(0, 64)});
      }
      return RuntimeValue::Int(ctx_.Constant(0, undef->type()->bits()));
    }
    if (const auto* global = DynCast<GlobalVariable>(v)) {
      return RuntimeValue::Pointer(
          SymPointer{global_objects_.at(global), ctx_.Constant(0, 64)});
    }
    return state.Local(v);
  }

  const Expr* ResolveInt(ExecState& state, const Value* v) {
    RuntimeValue rv = Resolve(state, v);
    OVERIFY_ASSERT(rv.kind == RuntimeValue::Kind::kInt, "expected integer value");
    return rv.expr;
  }

  // ---- Branch feasibility ----

  // Decides a boolean expr against the path constraints; forks when both
  // directions are possible. Returns the value for the current state
  // (true branch) and queues the false sibling.
  enum class CondOutcome { kTrue, kFalse, kBoth, kNeither, kUnknown };

  CondOutcome DecideCondition(ExecState& state, const Expr* cond, const Value* ir_cond) {
    if (cond->IsConstant()) {
      return cond->IsTrue() ? CondOutcome::kTrue : CondOutcome::kFalse;
    }
    // Compiler annotations can settle the branch without the solver.
    if (options_.annotations != nullptr && ir_cond != nullptr) {
      auto it = options_.annotations->value_ranges.find(ir_cond);
      if (it != options_.annotations->value_ranges.end() && it->second.IsSingleValue()) {
        metrics_.Inc(Counter::kAnnotationHits);
        return it->second.lo != 0 ? CondOutcome::kTrue : CondOutcome::kFalse;
      }
    }
    // Path-membership fast path. A forked sibling resumes *at* its branch
    // instruction with the decided direction already appended to its
    // constraints (ConstrainOrFork), so the re-executed branch is settled
    // here by a pointer scan — hash-consing makes structural equality
    // pointer equality within a context. Without this, the sibling's
    // re-decide poses a query containing a constraint and its own negation,
    // an UNSAT set the backtracking core can only refute by enumeration —
    // invisible on narrow conditions (the preprocessor's byte bindings
    // shortcut it), but a full candidate-budget burn per fork on
    // wide-support conditions like the suite-scale checksum workloads.
    const Expr* not_cond = ctx_.Not(cond);
    for (auto it = state.constraints.rbegin(); it != state.constraints.rend(); ++it) {
      if (*it == cond) {
        return CondOutcome::kTrue;
      }
      if (*it == not_cond) {
        return CondOutcome::kFalse;
      }
    }
    SatResult can_true = solver_.MayBeTrue(state.constraints, cond, nullptr,
                                           &state.solver_prefix);
    SatResult can_false = solver_.MayBeTrue(state.constraints, not_cond, nullptr,
                                            &state.solver_prefix);
    if (can_true == SatResult::kSat && can_false == SatResult::kSat) {
      return CondOutcome::kBoth;
    }
    if (can_true == SatResult::kSat && can_false == SatResult::kUnsat) {
      return CondOutcome::kTrue;
    }
    if (can_true == SatResult::kUnsat && can_false == SatResult::kSat) {
      return CondOutcome::kFalse;
    }
    if (can_true == SatResult::kUnsat && can_false == SatResult::kUnsat) {
      return CondOutcome::kNeither;
    }
    // One side unknown. The path invariant — the constraints alone are
    // satisfiable — decides the branch when the other side is refuted:
    // constraints SAT and constraints ∧ ¬cond UNSAT imply constraints ∧ cond
    // SAT. This is what lets a run absorb injected or budget unknowns on
    // one-sided branches and still match the clean run bit for bit; only a
    // genuinely undecidable branch (SAT/unknown or unknown/unknown) kills
    // the path as unknown.
    if (can_false == SatResult::kUnsat) {
      return CondOutcome::kTrue;
    }
    if (can_true == SatResult::kUnsat) {
      return CondOutcome::kFalse;
    }
    return CondOutcome::kUnknown;
  }

  // Adds `cond` (or its negation) to the state, forking if needed. The
  // current state dies on kInfeasible (no feasible direction) and on
  // kUnknown (the solver could not decide either direction). On a fork, the
  // sibling (negated) state goes to the sink.
  enum class ForkDecision { kOk, kInfeasible, kUnknown };

  ForkDecision ConstrainOrFork(ExecState& state, const Expr* cond, const Value* ir_cond,
                               bool* took_true) {
    // The fork-decide span is trace-only: most decisions settle on a
    // constant / annotation / path-membership fast path costing less than a
    // clock-read pair, so timing them in metrics mode would dominate what it
    // measures. The engine.forks counter stays exact either way.
    const bool traced = trace_ != nullptr;
    const uint64_t t0 = traced ? MetricsNowNs() : 0;
    CondOutcome outcome = DecideCondition(state, cond, ir_cond);
    if (traced) {
      const uint64_t t1 = MetricsNowNs();
      metrics_.Record(Hist::kForkDecideNs, t1 - t0);
      // ForkOutcome mirrors CondOutcome's declaration order (trace.h), so
      // the cast is a straight relabel.
      trace_->Span(TraceKind::kForkDecide, t0, t1, static_cast<uint64_t>(outcome));
    }
    switch (outcome) {
      case CondOutcome::kTrue:
        if (!cond->IsConstant()) {
          state.AddConstraint(cond);
        }
        *took_true = true;
        return ForkDecision::kOk;
      case CondOutcome::kFalse:
        if (!cond->IsConstant()) {
          state.AddConstraint(ctx_.Not(cond));
        }
        *took_true = false;
        return ForkDecision::kOk;
      case CondOutcome::kBoth: {
        metrics_.Inc(Counter::kForks);
        shared_.forks.fetch_add(1, std::memory_order_relaxed);
        auto sibling = state.Clone();
        sibling->id = NextStateId();
        sibling->depth = state.depth + 1;
        sibling->path_id = HashMix64(state.path_id ^ kFalseSideSalt);
        sibling->AddConstraint(ctx_.Not(cond));
        state.AddConstraint(cond);
        state.depth += 1;
        state.path_id = HashMix64(state.path_id ^ kTrueSideSalt);
        sink_->PushFork(std::move(sibling));
        LatchExceededLimit();
        *took_true = true;
        return ForkDecision::kOk;
      }
      case CondOutcome::kNeither:
        return ForkDecision::kInfeasible;
      case CondOutcome::kUnknown:
        return ForkDecision::kUnknown;
    }
    return ForkDecision::kInfeasible;
  }

  static StepOutcome ForkDeadOutcome(ForkDecision decision) {
    return decision == ForkDecision::kUnknown ? StepOutcome::kPathUnknown
                                              : StepOutcome::kPathInfeasible;
  }

  // Definite bug sites die as bugs only when the report was witnessed; a
  // dropped witness degrades the path to unknown (see ReportBug).
  static StepOutcome BugOutcome(bool reported) {
    return reported ? StepOutcome::kPathBug : StepOutcome::kPathUnknown;
  }

  // Guard for a potentially trapping condition: if `bad` is feasible, report
  // a bug, then continue on the safe side (constraining !bad). The state
  // dies when the safe side is infeasible — as a bug death when a report
  // was filed, otherwise as an infeasible one.
  //
  // Soundness never degrades under unknowns: when the bad-side query cannot
  // be decided, the state dies unknown instead of silently skipping a
  // possible bug, and a bug whose witness was dropped likewise degrades to
  // unknown rather than surviving as an unreplayable report.
  GuardResult GuardAgainst(ExecState& state, const Expr* bad, const Instruction* site,
                           BugKind kind, const std::string& message) {
    if (bad->IsFalse()) {
      return GuardResult::kOk;
    }
    if (bad->IsTrue()) {
      return ReportBug(state, site, kind, message) ? GuardResult::kDiedBug
                                                   : GuardResult::kDiedUnknown;
    }
    SatResult bad_sat =
        solver_.MayBeTrue(state.constraints, bad, nullptr, &state.solver_prefix);
    if (bad_sat == SatResult::kUnknown) {
      return GuardResult::kDiedUnknown;
    }
    bool reported = false;
    if (bad_sat == SatResult::kSat) {
      // Report with the bad branch's model.
      auto bug_state = state.Clone();
      bug_state->AddConstraint(bad);
      if (!ReportBug(*bug_state, site, kind, message)) {
        return GuardResult::kDiedUnknown;
      }
      reported = true;
    }
    const Expr* safe = ctx_.Not(bad);
    if (bad_sat == SatResult::kUnsat) {
      // Path invariant: the constraints alone are satisfiable, and the bad
      // side is refuted, so the safe side must be satisfiable — no query.
      state.AddConstraint(safe);
      return GuardResult::kOk;
    }
    SatResult safe_sat =
        solver_.MayBeTrue(state.constraints, safe, nullptr, &state.solver_prefix);
    if (safe_sat == SatResult::kUnknown) {
      // A clean run would have decided this query and either continued or
      // died at the bug; terminating as anything but unknown here would
      // leave the run looking exhausted with a diverged signature.
      return GuardResult::kDiedUnknown;
    }
    if (safe_sat != SatResult::kSat) {
      return reported ? GuardResult::kDiedBug : GuardResult::kDiedInfeasible;
    }
    state.AddConstraint(safe);
    return GuardResult::kOk;
  }

  // ---- Memory access ----

  // Computes the byte offset expression of a GEP.
  const Expr* GepOffset(ExecState& state, const GepInst* gep) {
    const Expr* offset = ctx_.Constant(0, 64);
    Type* current = gep->source_type();
    for (unsigned i = 0; i < gep->NumIndices(); ++i) {
      const Expr* index = ResolveInt(state, gep->Index(i));
      if (index->width() < 64) {
        index = ctx_.SExt(index, 64);
      }
      uint64_t scale;
      if (i == 0) {
        scale = current->SizeInBytes();
      } else if (current->IsArray()) {
        current = current->element();
        scale = current->SizeInBytes();
      } else {
        // Struct index: constant by construction.
        uint64_t field = Cast<ConstantInt>(gep->Index(i))->value();
        offset = ctx_.Binary(ExprKind::kAdd, offset,
                             ctx_.Constant(current->FieldOffset(
                                               static_cast<unsigned>(field)), 64));
        current = current->fields()[static_cast<unsigned>(field)];
        continue;
      }
      offset = ctx_.Binary(
          ExprKind::kAdd, offset,
          ctx_.Binary(ExprKind::kMul, index, ctx_.Constant(scale, 64)));
    }
    return offset;
  }

  // Validates an access of `width_bytes` at pointer `ptr`; reports bugs and
  // constrains to the in-bounds case.
  GuardResult CheckAccess(ExecState& state, const SymPointer& ptr, uint64_t width_bytes,
                          const Instruction* site) {
    if (ptr.IsNull()) {
      return ReportBug(state, site, BugKind::kNullDeref, "dereference of null pointer")
                 ? GuardResult::kDiedBug
                 : GuardResult::kDiedUnknown;
    }
    if (!state.memory.Exists(ptr.object_id)) {
      return ReportBug(state, site, BugKind::kOutOfBounds,
                       "use of a dead object (escaped stack address)")
                 ? GuardResult::kDiedBug
                 : GuardResult::kDiedUnknown;
    }
    const MemoryObject& meta = state.memory.Meta(ptr.object_id);
    if (meta.size < width_bytes) {
      return ReportBug(state, site, BugKind::kOutOfBounds,
                       StrFormat("%llu-byte access to %llu-byte object '%s'",
                                 static_cast<unsigned long long>(width_bytes),
                                 static_cast<unsigned long long>(meta.size),
                                 meta.name.c_str()))
                 ? GuardResult::kDiedBug
                 : GuardResult::kDiedUnknown;
    }
    // In-bounds: offset <= size - width.
    const Expr* in_bounds =
        ctx_.Compare(ICmpPredicate::kULE, ptr.offset,
                     ctx_.Constant(meta.size - width_bytes, 64));
    return GuardAgainst(state, ctx_.Not(in_bounds), site, BugKind::kOutOfBounds,
                        StrFormat("access beyond object '%s' (%llu bytes)", meta.name.c_str(),
                                  static_cast<unsigned long long>(meta.size)));
  }

  // The offset's feasible window, bounded by interval analysis over the
  // offset expression (with nothing assigned). Select chains then span only
  // the bytes the access can actually touch — keeping their symbol support
  // tight is what keeps solver queries small.
  std::pair<uint64_t, uint64_t> OffsetWindow(const Expr* offset, uint64_t last) {
    static const std::vector<uint8_t> kNoBytes;
    static const std::vector<bool> kNoneAssigned;
    ctx_.NewIntervalRound();
    ExprContext::UInterval bound = ctx_.EvalInterval(offset, kNoBytes, kNoneAssigned);
    uint64_t lo = std::min(bound.lo, last);
    uint64_t hi = std::min(bound.hi, last);
    if (lo > hi) {
      lo = 0;
      hi = last;
    }
    return {lo, hi};
  }

  // Reads `width_bytes` little-endian bytes at ptr (already bounds-checked).
  const Expr* ReadMemory(ExecState& state, const SymPointer& ptr, uint64_t width_bytes,
                         bool* engine_error) {
    const ObjectState& object = state.memory.Read(ptr.object_id);
    uint64_t size = object.size();
    if (ptr.offset->IsConstant()) {
      uint64_t base = ptr.offset->constant_value();
      std::vector<const Expr*> bytes;
      for (uint64_t i = 0; i < width_bytes; ++i) {
        bytes.push_back(object.Byte(base + i));
      }
      return ctx_.FromBytes(bytes);
    }
    if (size > kMaxSymbolicAccessObject) {
      *engine_error = true;
      return nullptr;
    }
    // Select chain over the feasible positions only.
    auto [first, last] = OffsetWindow(ptr.offset, size - width_bytes);
    std::vector<const Expr*> bytes;
    const Expr* result = nullptr;
    for (uint64_t k = first; k <= last; ++k) {
      bytes.clear();
      for (uint64_t i = 0; i < width_bytes; ++i) {
        bytes.push_back(object.Byte(k + i));
      }
      const Expr* value = ctx_.FromBytes(bytes);
      if (result == nullptr) {
        result = value;  // lowest offset as the default; guarded upward
      } else {
        const Expr* hits = ctx_.Compare(ICmpPredicate::kEq, ptr.offset, ctx_.Constant(k, 64));
        result = ctx_.Select(hits, value, result);
      }
    }
    return result;
  }

  void WriteMemory(ExecState& state, const SymPointer& ptr, const Expr* value,
                   bool* engine_error) {
    ObjectState& object = state.memory.Write(ptr.object_id);
    std::vector<const Expr*> bytes = ctx_.ToBytes(value);
    if (ptr.offset->IsConstant()) {
      uint64_t base = ptr.offset->constant_value();
      for (size_t i = 0; i < bytes.size(); ++i) {
        object.SetByte(base + i, bytes[i]);
      }
      return;
    }
    if (object.size() > kMaxSymbolicAccessObject) {
      *engine_error = true;
      return;
    }
    // byte[j] updates when offset + i == j for some written byte i; only
    // offsets inside the interval window can hit.
    uint64_t size = object.size();
    auto [first, last] = OffsetWindow(ptr.offset, size - bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (uint64_t j = first + i; j <= last + i && j < size; ++j) {
        const Expr* hits =
            ctx_.Compare(ICmpPredicate::kEq, ptr.offset, ctx_.Constant(j - i, 64));
        object.SetByte(j, ctx_.Select(hits, bytes[i], object.Byte(j)));
      }
    }
  }

  // ---- The step function ----

  StepOutcome Step(ExecState& state) {
    Instruction* inst = state.CurrentInstruction();
    ++state.instructions_executed;
    CountInstructions(1);

    switch (inst->opcode()) {
      case Opcode::kAlloca: {
        const auto* alloca = Cast<AllocaInst>(inst);
        uint64_t id = state.memory.Allocate(ctx_, alloca->allocated_type()->SizeInBytes(),
                                            false, true,
                                            alloca->HasName() ? alloca->name() : "alloca");
        state.Frame().alloca_objects.push_back(id);
        state.SetLocal(inst, RuntimeValue::Pointer(SymPointer{id, ctx_.Constant(0, 64)}));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kLoad: {
        RuntimeValue ptr = Resolve(state, inst->Operand(0));
        OVERIFY_ASSERT(ptr.kind == RuntimeValue::Kind::kPointer, "load from non-pointer");
        Type* type = inst->type();
        if (type->IsPointer()) {
          // Loading a pointer from memory: supported only when it was stored
          // as a whole (tracked via pointer spill map).
          return LoadPointer(state, inst, ptr.pointer);
        }
        uint64_t width_bytes = type->SizeInBytes();
        GuardResult access = CheckAccess(state, ptr.pointer, width_bytes, inst);
        if (access != GuardResult::kOk) {
          return DeadOutcome(access);
        }
        bool engine_error = false;
        const Expr* value = ReadMemory(state, ptr.pointer, width_bytes, &engine_error);
        if (engine_error) {
          return BugOutcome(ReportBug(state, inst, BugKind::kEngineError,
                                      "symbolic access to an oversized object"));
        }
        if (type->IsBool()) {
          value = ctx_.Compare(ICmpPredicate::kNe, value, ctx_.Constant(0, 8));
        }
        state.SetLocal(inst, RuntimeValue::Int(value));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kStore: {
        RuntimeValue ptr = Resolve(state, inst->Operand(1));
        OVERIFY_ASSERT(ptr.kind == RuntimeValue::Kind::kPointer, "store to non-pointer");
        RuntimeValue value = Resolve(state, inst->Operand(0));
        Type* type = inst->Operand(0)->type();
        if (type->IsPointer()) {
          return StorePointer(state, inst, ptr.pointer, value);
        }
        uint64_t width_bytes = type->SizeInBytes();
        GuardResult access = CheckAccess(state, ptr.pointer, width_bytes, inst);
        if (access != GuardResult::kOk) {
          return DeadOutcome(access);
        }
        if (state.memory.Meta(ptr.pointer.object_id).read_only) {
          return BugOutcome(
              ReportBug(state, inst, BugKind::kOutOfBounds, "write to read-only object"));
        }
        const Expr* expr = value.expr;
        if (type->IsBool()) {
          expr = ctx_.ZExt(expr, 8);
        }
        bool engine_error = false;
        WriteMemory(state, ptr.pointer, expr, &engine_error);
        if (engine_error) {
          return BugOutcome(ReportBug(state, inst, BugKind::kEngineError,
                                      "symbolic write to an oversized object"));
        }
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kGep: {
        const auto* gep = Cast<GepInst>(inst);
        RuntimeValue base = Resolve(state, gep->base());
        OVERIFY_ASSERT(base.kind == RuntimeValue::Kind::kPointer, "gep on non-pointer");
        const Expr* offset = GepOffset(state, gep);
        SymPointer result = base.pointer;
        result.offset = ctx_.Binary(ExprKind::kAdd, result.offset, offset);
        state.SetLocal(inst, RuntimeValue::Pointer(result));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kUDiv:
      case Opcode::kSDiv:
      case Opcode::kURem:
      case Opcode::kSRem: {
        const Expr* lhs = ResolveInt(state, inst->Operand(0));
        const Expr* rhs = ResolveInt(state, inst->Operand(1));
        unsigned bits = inst->type()->bits();
        const Expr* zero = ctx_.Constant(0, bits);
        GuardResult guard =
            GuardAgainst(state, ctx_.Compare(ICmpPredicate::kEq, rhs, zero), inst,
                         BugKind::kDivByZero, "division by zero");
        if (guard != GuardResult::kOk) {
          return DeadOutcome(guard);
        }
        if (inst->opcode() == Opcode::kSDiv || inst->opcode() == Opcode::kSRem) {
          // INT_MIN / -1 overflows.
          const Expr* min_val =
              ctx_.Constant(uint64_t{1} << (bits - 1), bits);
          const Expr* minus1 = ctx_.Constant(~uint64_t{0}, bits);
          const Expr* overflow = ctx_.Binary(
              ExprKind::kAnd, ctx_.Compare(ICmpPredicate::kEq, lhs, min_val),
              ctx_.Compare(ICmpPredicate::kEq, rhs, minus1));
          if (inst->opcode() == Opcode::kSDiv) {
            guard = GuardAgainst(state, overflow, inst, BugKind::kOverflow,
                                 "signed division overflow");
            if (guard != GuardResult::kOk) {
              return DeadOutcome(guard);
            }
          }
        }
        ExprKind kind = inst->opcode() == Opcode::kUDiv   ? ExprKind::kUDiv
                        : inst->opcode() == Opcode::kSDiv ? ExprKind::kSDiv
                        : inst->opcode() == Opcode::kURem ? ExprKind::kURem
                                                          : ExprKind::kSRem;
        state.SetLocal(inst, RuntimeValue::Int(ctx_.Binary(kind, lhs, rhs)));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kShl:
      case Opcode::kLShr:
      case Opcode::kAShr: {
        const Expr* lhs = ResolveInt(state, inst->Operand(0));
        const Expr* rhs = ResolveInt(state, inst->Operand(1));
        unsigned bits = inst->type()->bits();
        ExprKind kind = inst->opcode() == Opcode::kShl    ? ExprKind::kShl
                        : inst->opcode() == Opcode::kLShr ? ExprKind::kLShr
                                                          : ExprKind::kAShr;
        const Expr* result;
        if (rhs->IsConstant()) {
          result = rhs->constant_value() >= bits ? ctx_.Constant(0, bits)
                                                 : ctx_.Binary(kind, lhs, rhs);
        } else {
          // Oversized shifts are defined as zero (consistently with the
          // interpreter and the evaluator).
          const Expr* in_range =
              ctx_.Compare(ICmpPredicate::kULT, rhs, ctx_.Constant(bits, bits));
          result = ctx_.Select(in_range, ctx_.Binary(kind, lhs, rhs), ctx_.Constant(0, bits));
        }
        state.SetLocal(inst, RuntimeValue::Int(result));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor: {
        const Expr* lhs = ResolveInt(state, inst->Operand(0));
        const Expr* rhs = ResolveInt(state, inst->Operand(1));
        ExprKind kind;
        switch (inst->opcode()) {
          case Opcode::kAdd:
            kind = ExprKind::kAdd;
            break;
          case Opcode::kSub:
            kind = ExprKind::kSub;
            break;
          case Opcode::kMul:
            kind = ExprKind::kMul;
            break;
          case Opcode::kAnd:
            kind = ExprKind::kAnd;
            break;
          case Opcode::kOr:
            kind = ExprKind::kOr;
            break;
          default:
            kind = ExprKind::kXor;
            break;
        }
        state.SetLocal(inst, RuntimeValue::Int(ctx_.Binary(kind, lhs, rhs)));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kICmp: {
        const auto* cmp = Cast<ICmpInst>(inst);
        RuntimeValue lhs = Resolve(state, cmp->lhs());
        RuntimeValue rhs = Resolve(state, cmp->rhs());
        const Expr* result;
        if (lhs.kind == RuntimeValue::Kind::kPointer ||
            rhs.kind == RuntimeValue::Kind::kPointer) {
          result = ComparePointers(cmp->predicate(), lhs, rhs);
        } else {
          result = ctx_.Compare(cmp->predicate(), lhs.expr, rhs.expr);
        }
        state.SetLocal(inst, RuntimeValue::Int(result));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kSelect: {
        const Expr* cond = ResolveInt(state, inst->Operand(0));
        RuntimeValue tv = Resolve(state, inst->Operand(1));
        RuntimeValue fv = Resolve(state, inst->Operand(2));
        if (tv.kind == RuntimeValue::Kind::kPointer) {
          // Pointer select requires a decided condition (fork if needed).
          bool took_true;
          ForkDecision decision = ConstrainOrFork(state, cond, inst->Operand(0), &took_true);
          if (decision != ForkDecision::kOk) {
            return ForkDeadOutcome(decision);
          }
          state.SetLocal(inst, took_true ? tv : fv);
        } else {
          state.SetLocal(inst, RuntimeValue::Int(ctx_.Select(cond, tv.expr, fv.expr)));
        }
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kZExt:
      case Opcode::kSExt:
      case Opcode::kTrunc: {
        const Expr* v = ResolveInt(state, inst->Operand(0));
        unsigned width = inst->type()->bits();
        const Expr* result = inst->opcode() == Opcode::kZExt   ? ctx_.ZExt(v, width)
                             : inst->opcode() == Opcode::kSExt ? ctx_.SExt(v, width)
                                                               : ctx_.Trunc(v, width);
        state.SetLocal(inst, RuntimeValue::Int(result));
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kPhi: {
        // Resolve all phis of the block atomically against prev_block.
        BasicBlock* from = state.Frame().prev_block;
        OVERIFY_ASSERT(from != nullptr, "phi in entry block");
        std::vector<std::pair<Instruction*, RuntimeValue>> values;
        BasicBlock* block = state.Frame().block;
        for (auto& phi_inst : *block) {
          auto* phi = DynCast<PhiInst>(phi_inst.get());
          if (phi == nullptr) {
            break;
          }
          values.push_back({phi, Resolve(state, phi->IncomingValueFor(from))});
        }
        for (auto& [phi, value] : values) {
          state.SetLocal(phi, value);
          ++state.instructions_executed;
        }
        CountInstructions(values.size() - 1);
        // Jump the pc past all phis.
        StackFrame& frame = state.Frame();
        frame.pc = block->FirstNonPhi();
        return StepOutcome::kContinue;
      }
      case Opcode::kCheck: {
        const auto* check = Cast<CheckInst>(inst);
        const Expr* cond = ResolveInt(state, check->condition());
        // Compiler-inserted checks unify "various failures into run-time
        // crashes" (Table 2); the report keeps the underlying kind so bug
        // identity is stable across optimization levels.
        BugKind kind;
        switch (check->check_kind()) {
          case CheckKind::kDivByZero:
            kind = BugKind::kDivByZero;
            break;
          case CheckKind::kBounds:
            kind = BugKind::kOutOfBounds;
            break;
          case CheckKind::kNullDeref:
            kind = BugKind::kNullDeref;
            break;
          case CheckKind::kOverflow:
          case CheckKind::kShift:
            kind = BugKind::kOverflow;
            break;
          case CheckKind::kAssert:
            kind = BugKind::kCheckFailed;
            break;
        }
        GuardResult guard =
            GuardAgainst(state, ctx_.Not(cond), inst, kind,
                         StrFormat("%s: %s", CheckKindName(check->check_kind()),
                                   check->message().c_str()));
        if (guard != GuardResult::kOk) {
          return DeadOutcome(guard);
        }
        state.AdvancePC();
        return StepOutcome::kContinue;
      }
      case Opcode::kCall:
        return ExecCall(state, Cast<CallInst>(inst));
      case Opcode::kBr: {
        const auto* br = Cast<BranchInst>(inst);
        if (!br->IsConditional()) {
          EnterBlock(state, br->SingleDest());
          return StepOutcome::kContinue;
        }
        const Expr* cond = ResolveInt(state, br->condition());
        bool took_true;
        ForkDecision decision = ConstrainOrFork(state, cond, br->condition(), &took_true);
        if (decision != ForkDecision::kOk) {
          return ForkDeadOutcome(decision);
        }
        EnterBlock(state, took_true ? br->true_dest() : br->false_dest());
        return StepOutcome::kContinue;
      }
      case Opcode::kRet:
        return ExecRet(state, Cast<RetInst>(inst));
      case Opcode::kUnreachable:
        return BugOutcome(
            ReportBug(state, inst, BugKind::kUnreachable, "reached 'unreachable'"));
    }
    OVERIFY_UNREACHABLE("unhandled opcode in executor");
  }

  // Pointer loads/stores: pointers are not byte-serializable (they carry an
  // object id), so pointer-typed memory slots live in a side table keyed by
  // (object, constant offset). This matches how the workloads use pointer
  // variables (spilled locals at -O0).
  StepOutcome LoadPointer(ExecState& state, Instruction* inst, const SymPointer& ptr) {
    GuardResult access = CheckAccess(state, ptr, 8, inst);
    if (access != GuardResult::kOk) {
      return DeadOutcome(access);
    }
    if (!ptr.offset->IsConstant()) {
      return BugOutcome(ReportBug(state, inst, BugKind::kEngineError,
                                  "symbolic-offset load of a pointer value"));
    }
    auto key = std::make_pair(ptr.object_id, ptr.offset->constant_value());
    auto it = state.pointer_slots.find(key);
    if (it == state.pointer_slots.end()) {
      // Never-written pointer slot: treat as null.
      state.SetLocal(inst, RuntimeValue::Pointer(SymPointer{0, ctx_.Constant(0, 64)}));
    } else {
      state.SetLocal(inst, RuntimeValue::Pointer(it->second));
    }
    state.AdvancePC();
    return StepOutcome::kContinue;
  }

  StepOutcome StorePointer(ExecState& state, Instruction* inst, const SymPointer& ptr,
                           const RuntimeValue& value) {
    GuardResult access = CheckAccess(state, ptr, 8, inst);
    if (access != GuardResult::kOk) {
      return DeadOutcome(access);
    }
    if (!ptr.offset->IsConstant()) {
      return BugOutcome(ReportBug(state, inst, BugKind::kEngineError,
                                  "symbolic-offset store of a pointer value"));
    }
    OVERIFY_ASSERT(value.kind == RuntimeValue::Kind::kPointer, "pointer store of non-pointer");
    state.pointer_slots[{ptr.object_id, ptr.offset->constant_value()}] = value.pointer;
    state.AdvancePC();
    return StepOutcome::kContinue;
  }

  const Expr* ComparePointers(ICmpPredicate pred, const RuntimeValue& lhs,
                              const RuntimeValue& rhs) {
    OVERIFY_ASSERT(lhs.kind == RuntimeValue::Kind::kPointer &&
                       rhs.kind == RuntimeValue::Kind::kPointer,
                   "mixed pointer comparison");
    const SymPointer& a = lhs.pointer;
    const SymPointer& b = rhs.pointer;
    if (a.object_id != b.object_id) {
      // Distinct objects: equal never, unequal always; ordering is not
      // meaningful but must be deterministic.
      switch (pred) {
        case ICmpPredicate::kEq:
          return ctx_.False();
        case ICmpPredicate::kNe:
          return ctx_.True();
        default:
          return ctx_.Bool(a.object_id < b.object_id);
      }
    }
    return ctx_.Compare(pred, a.offset, b.offset);
  }

  StepOutcome ExecCall(ExecState& state, const CallInst* call) {
    Function* callee = call->callee();
    if (callee->IsDeclaration()) {
      return ExecExternal(state, call);
    }
    if (state.stack.size() >= 256) {
      return BugOutcome(ReportBug(state, call, BugKind::kEngineError,
                                  "call stack overflow (recursion too deep)"));
    }
    StackFrame frame;
    frame.fn = callee;
    frame.block = callee->entry();
    frame.pc = frame.block->begin();
    frame.call_site = call;
    frame.locals.resize(slots_.Count(callee));
    for (unsigned i = 0; i < call->NumArgs(); ++i) {
      frame.locals[callee->Arg(i)->local_slot()] = Resolve(state, call->Arg(i));
    }
    if (searcher_ != nullptr) {
      searcher_->NotifyBlockEntered(frame.block);
    }
    state.stack.push_back(std::move(frame));
    return StepOutcome::kContinue;
  }

  StepOutcome ExecExternal(ExecState& state, const CallInst* call) {
    const std::string& name = call->callee()->name();
    if (name == "putchar") {
      const Expr* c = ResolveInt(state, call->Arg(0));
      state.output.push_back(ctx_.Trunc(c, 8));
      state.SetLocal(const_cast<CallInst*>(call), RuntimeValue::Int(c));
      state.AdvancePC();
      return StepOutcome::kContinue;
    }
    if (name == "getchar") {
      // No interactive input in this model: EOF.
      state.SetLocal(const_cast<CallInst*>(call),
                     RuntimeValue::Int(ctx_.Constant(static_cast<uint64_t>(-1), 32)));
      state.AdvancePC();
      return StepOutcome::kContinue;
    }
    if (name == "abort") {
      return BugOutcome(ReportBug(state, call, BugKind::kAbort, "abort() called"));
    }
    return BugOutcome(ReportBug(
        state, call, BugKind::kEngineError,
        StrFormat("call to unmodeled external function '%s'", name.c_str())));
  }

  StepOutcome ExecRet(ExecState& state, const RetInst* ret) {
    RuntimeValue result;
    if (ret->HasValue()) {
      result = Resolve(state, ret->value());
    }
    // Free this frame's allocas.
    for (uint64_t id : state.Frame().alloca_objects) {
      state.memory.Free(id);
    }
    const CallInst* call_site = state.Frame().call_site;
    state.stack.pop_back();
    if (state.stack.empty()) {
      return StepOutcome::kPathComplete;
    }
    if (call_site != nullptr && !call_site->type()->IsVoid()) {
      state.SetLocal(call_site, result);
    }
    state.AdvancePC();  // past the call
    return StepOutcome::kContinue;
  }

  Module& module_;
  SymexOptions options_;
  SharedCounters& shared_;
  LocalSlotCache& slots_;
  ExprContext ctx_;
  SolverChain solver_;
  FaultInjector injector_;
  MetricsShard metrics_;
  TraceBuffer* trace_ = nullptr;
  std::map<std::pair<const Instruction*, BugKind>, BugCandidate> bugs_;
  unsigned num_symbols_ = 0;
  unsigned worker_index_ = 0;
  uint64_t next_state_id_ = 0;
  uint64_t unflushed_instructions_ = 0;
  uint64_t steps_since_check_ = 0;
  ForkSink* sink_ = nullptr;
  Searcher* searcher_ = nullptr;
  std::unordered_map<const GlobalVariable*, uint64_t> global_objects_;
};

EngineCore::EngineCore(Module& module, const SymexOptions& options, SharedCounters& shared,
                       LocalSlotCache& slots, unsigned num_input_bytes, unsigned worker_index,
                       ExprInterner* interner)
    : impl_(std::make_unique<Impl>(module, options, shared, slots, num_input_bytes,
                                   worker_index, interner)) {}

EngineCore::~EngineCore() = default;

std::unique_ptr<ExecState> EngineCore::MakeInitialState(Function* entry) {
  return impl_->MakeInitialState(entry);
}

PathOutcome EngineCore::RunState(ExecState& state, ForkSink& sink, Searcher* searcher) {
  return impl_->RunState(state, sink, searcher);
}

MetricsShard& EngineCore::metrics_shard() { return impl_->metrics_shard(); }

void EngineCore::SyncMetrics() { impl_->SyncMetrics(); }

void EngineCore::set_trace(TraceBuffer* trace) { impl_->set_trace(trace); }

TraceBuffer* EngineCore::trace() { return impl_->trace(); }

const SolverStats& EngineCore::solver_stats() const { return impl_->solver_stats(); }

SolverChain& EngineCore::solver() { return impl_->solver(); }

const std::map<std::pair<const Instruction*, BugKind>, BugCandidate>& EngineCore::bugs() const {
  return impl_->bugs();
}

ExprContext& EngineCore::ctx() { return impl_->ctx(); }

FaultInjector& EngineCore::faults() { return impl_->faults(); }

}  // namespace sched
}  // namespace overify
