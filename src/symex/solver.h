// Constraint solving for the symbolic-execution engine.
//
// The solver stack mirrors KLEE's: queries pass through constraint
// simplification, independent-constraint splitting, and a counterexample
// cache before reaching the core search procedure. The core solver performs
// backtracking search over the 8-bit symbolic input bytes with
// constraint-completion pruning — complete for the byte-level workloads this
// toolkit targets (the paper's evaluation uses 2-10 symbolic input bytes).
//
// Hot-path engineering (see docs/engine.md): independence splitting is a
// bitwise-AND fixpoint over SupportSet bitmasks, and the counterexample
// cache is keyed by a 64-bit hash of the canonical constraint set with FIFO
// eviction at a fixed capacity.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/symex/expr.h"

namespace overify {

enum class SatResult {
  kSat,
  kUnsat,
  kUnknown,  // budget exhausted
};

struct SolverStats {
  uint64_t queries = 0;            // top-level CheckSat calls
  uint64_t cache_hits = 0;         // answered by the counterexample cache
  uint64_t reuse_hits = 0;         // answered by re-evaluating a recent model
  uint64_t core_queries = 0;       // reached the core search
  uint64_t core_candidates = 0;    // candidate byte values tried in the core
  uint64_t independence_drops = 0; // constraints filtered out as independent
  // Fast-path counters added with the hash-consing refactor.
  uint64_t eval_memo_hits = 0;      // inline eval-memo hits (ExprContext)
  uint64_t interval_memo_hits = 0;  // inline interval-memo hits (ExprContext)
  uint64_t cex_evictions = 0;       // counterexample-cache entries evicted
};

// Core backtracking solver.
class CoreSolver {
 public:
  // `model`, when non-null and the result is kSat, receives one value per
  // symbol index (indexes absent from the constraints' support default to 0).
  // `candidate_budget` bounds the search.
  SatResult CheckSat(ExprContext& ctx, const std::vector<const Expr*>& constraints,
                     std::vector<uint8_t>* model, uint64_t candidate_budget = 1 << 22);

  uint64_t candidates_tried() const { return candidates_tried_; }

 private:
  uint64_t candidates_tried_ = 0;
};

// The full KLEE-style stack. One instance per symbolic-execution run.
class SolverChain {
 public:
  explicit SolverChain(ExprContext& ctx) : ctx_(ctx) {}

  // Is `constraints` satisfiable?
  SatResult CheckSat(const std::vector<const Expr*>& constraints, std::vector<uint8_t>* model);

  // CheckSat that bypasses the counterexample cache and model reuse and
  // always runs the core search over the canonical (hash-ordered) set. The
  // model returned is then a pure function of the constraints' structure —
  // independent of query history, and therefore identical no matter which
  // scheduler worker asks. Bug-report example inputs use this so reported
  // bugs are bit-identical across worker counts (docs/scheduler.md).
  SatResult CheckSatCanonical(const std::vector<const Expr*>& constraints,
                              std::vector<uint8_t>* model);

  // Branch feasibility: given an already-satisfiable path `constraints`, can
  // `cond` additionally hold? Only the constraints sharing symbols
  // (transitively) with `cond` are sent to the solver.
  SatResult MayBeTrue(const std::vector<const Expr*>& constraints, const Expr* cond,
                      std::vector<uint8_t>* model);

  const SolverStats& stats() const;

 private:
  SatResult Solve(const std::vector<const Expr*>& filtered, std::vector<uint8_t>* model);
  bool Canonicalize(const std::vector<const Expr*>& filtered,
                    std::vector<const Expr*>& canonical);

  ExprContext& ctx_;
  CoreSolver core_;
  // stats() refreshes the memo-hit counters from the ExprContext on read.
  mutable SolverStats stats_;

  struct CacheEntry {
    uint64_t fingerprint = 0;  // second independent hash; see Solve()
    SatResult result = SatResult::kUnknown;
    std::vector<uint8_t> model;
  };
  // Counterexample cache keyed by a 64-bit hash of the canonical constraint
  // set. Bounded: oldest entries are evicted FIFO beyond kMaxCexEntries.
  // Each entry also stores a second, independently-mixed 64-bit fingerprint
  // of the set; a hit must match both, so serving a wrong verdict needs a
  // simultaneous 128-bit collision (treated as impossible; see
  // docs/engine.md).
  static constexpr size_t kMaxCexEntries = 4096;
  std::unordered_map<uint64_t, CacheEntry> cex_cache_;
  std::deque<uint64_t> cex_order_;  // insertion order for FIFO eviction
  void InsertCacheEntry(uint64_t key, uint64_t fingerprint, SatResult result,
                        const std::vector<uint8_t>& model);
  // Recent satisfying assignments, newest last (bounded).
  std::vector<std::vector<uint8_t>> recent_models_;
  // Scratch buffers reused across queries (the chain sits on the engine's
  // per-branch path; steady-state queries should not allocate).
  std::vector<const Expr*> filtered_scratch_;
  std::vector<const Expr*> canonical_scratch_;
};

// Filters `constraints` to those transitively sharing support with `seed`.
// Exposed for tests.
std::vector<const Expr*> FilterIndependent(const std::vector<const Expr*>& constraints,
                                           const Expr* seed);

}  // namespace overify
