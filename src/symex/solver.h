// Constraint solving for the symbolic-execution engine.
//
// The solver stack mirrors KLEE's: queries pass through constraint
// preprocessing (byte-equality substitution + range tightening,
// src/symex/preprocess.h), independent-constraint splitting, and a
// subset/superset-aware counterexample cache before reaching the core
// search procedure. The core solver performs backtracking search over the
// 8-bit symbolic input bytes with constraint-completion pruning — complete
// for the byte-level workloads this toolkit targets (the paper's evaluation
// uses 2-10 symbolic input bytes).
//
// Hot-path engineering (see docs/engine.md): independence splitting is a
// bitwise-AND fixpoint over SupportSet bitmasks, and the counterexample
// cache is a KLEE-UBTree-style trie over sorted constraint-set
// fingerprints: a path's query at depth k+1 is answered from its depth-k
// prefix entry (UNSAT subset, SAT superset, or a validated model
// extension) instead of a fresh core search.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/support/fault.h"
#include "src/support/metrics.h"
#include "src/symex/expr.h"
#include "src/symex/expr_hash.h"
#include "src/symex/preprocess.h"

namespace overify {

class TraceBuffer;

enum class SatResult {
  kSat,
  kUnsat,
  kUnknown,  // gave up: budget, deadline, cancellation, or injected fault
};

// Why a query returned kUnknown. Every kUnknown carries exactly one cause,
// which the engine rolls up into SymexResult's paths_unknown breakdown
// (docs/robustness.md).
enum class UnknownCause {
  kNone,
  kCandidateBudget,  // per-query candidate budget exhausted
  kQueryTimeout,     // per-query wall budget exhausted
  kDeadline,         // the run deadline expired mid-search
  kCancelled,        // the run's stop latch tripped mid-search
  kInjected,         // FaultInjector kSolverUnknown fired
};

// Cooperative controls threaded into every query: the run deadline and
// cancel latch are checked inside the core search's candidate loop (every
// 4096 candidates, so a single pathological search can no longer overshoot
// max_seconds by its full candidate budget) and at preprocessing
// boundaries. All fields optional; the default control never interrupts.
struct QueryControl {
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};  // run-wide, monotonic
  const std::atomic<bool>* cancel = nullptr;         // the run's stop latch
  FaultInjector* faults = nullptr;                   // injected kUnknowns
  uint64_t query_candidates = 1ull << 22;            // core candidates per query
  double query_seconds = 0;                          // wall budget per query; 0 = none
};

// Legacy flat view of the solver's slice of the metrics registry
// (src/support/metrics.h). The registry's MetricsShard is the single source
// of truth — SolverChain::stats() assembles this struct from it on read —
// but the named fields stay because every bench harness and test reads
// them.
struct SolverStats {
  uint64_t queries = 0;            // top-level CheckSat calls
  uint64_t cache_hits = 0;         // answered by the counterexample cache
  uint64_t reuse_hits = 0;         // answered by re-evaluating a recent model
  uint64_t core_queries = 0;       // reached the core search
  uint64_t core_candidates = 0;    // candidate byte values tried in the core
  uint64_t independence_drops = 0; // constraints filtered out as independent
  // Fast-path counters added with the hash-consing refactor.
  uint64_t eval_memo_hits = 0;      // inline eval-memo hits (ExprContext)
  uint64_t interval_memo_hits = 0;  // inline interval-memo hits (ExprContext)
  uint64_t cex_evictions = 0;       // counterexample-cache entries evicted
  // Constraint-preprocessing counters (src/symex/preprocess.h).
  uint64_t preprocess_bindings = 0;        // byte-equality facts discovered
  uint64_t preprocess_substitutions = 0;   // constraints rewritten by substitution
  uint64_t preprocess_tautologies = 0;     // constraints dropped as implied
  uint64_t preprocess_contradictions = 0;  // sets refuted before any search
  uint64_t presolve_shortcuts = 0;  // queries answered by substitution/ranges alone
  // Prefix-cache (UBTree) hit counters.
  uint64_t prefix_subset_hits = 0;    // UNSAT via a cached subset
  uint64_t prefix_superset_hits = 0;  // SAT via a cached superset's model
  uint64_t prefix_model_hits = 0;     // SAT by extending a cached subset's model
  // kUnknown verdicts by cause (docs/robustness.md). kUnknown results are
  // never inserted into any cache, so a degraded query cannot poison a
  // later exact answer.
  uint64_t unknown_budget = 0;    // per-query candidate or wall budget
  uint64_t unknown_deadline = 0;  // run deadline expired mid-query
  uint64_t unknown_cancelled = 0; // stop latch tripped mid-query
  uint64_t unknown_injected = 0;  // FaultInjector kSolverUnknown
  // CDCL counters (docs/solver.md).
  uint64_t core_conflicts = 0;     // candidate assignments refuted in the core
  uint64_t core_learned = 0;       // nogood clauses added to a clause store
  uint64_t core_learned_hits = 0;  // candidates pruned by a stored clause
  uint64_t core_backjumps = 0;     // non-chronological jumps (>= 1 level skipped)
  uint64_t core_restarts = 0;      // Luby-scheduled search restarts
};

// A learned nogood: "no model of the constraint set assigns every
// (symbol, value) pair below simultaneously". Literals are keyed by symbol
// index (not decision level) and sorted ascending by symbol, so a clause
// derived while solving set S remains valid for any superset of S under any
// decision order — the property that makes cross-query reuse through the
// PrefixCache sound (docs/solver.md).
struct LearnedClause {
  std::vector<std::pair<uint16_t, uint8_t>> lits;  // (symbol, value), sorted
  double activity = 1.0;
};

// CDCL tuning knobs. The defaults are deliberately conservative; the solver
// CI job sweeps restart_base / activity_decay through the environment
// (OVERIFY_CDCL_RESTART_BASE / OVERIFY_CDCL_DECAY / OVERIFY_CDCL_CLAUSES)
// to prove that results are parameter-independent — learned-clause pruning
// only ever skips non-models, so the first model in the fixed value order
// is invariant (docs/solver.md#determinism).
struct CdclConfig {
  bool learning = true;        // clause store + restarts (domains stay on)
  uint64_t restart_base = 64;  // conflicts per Luby unit
  uint32_t max_restarts = 24;  // finite so completeness never depends on luck
  size_t clause_capacity = 512;     // store bound; low-activity half evicted
  size_t max_clause_literals = 8;   // longer nogoods are not worth storing
  size_t max_export_clauses = 16;   // top-activity clauses kept per cache entry
  double activity_decay = 0.95;     // applied to all activities every 128 conflicts
};

// `CdclConfig` with any OVERIFY_CDCL_* environment overrides applied.
CdclConfig CdclConfigFromEnv();

// Core backtracking solver with CDCL machinery: per-symbol domain pruning
// from unary constraints and caller range facts, structure-driven value
// ordering (domain endpoints first), conflict clause learning into a
// bounded activity-decayed store, clause-driven non-chronological
// backjumping, and Luby-scheduled restarts that keep the store
// (docs/solver.md).
class CoreSolver {
 public:
  // Optional inputs/outputs threaded around the stable CheckSat signature.
  struct SearchExtras {
    // Per-symbol interval facts implied by the constraint set (the
    // preprocessor's PathPrefix::range); values outside are excised from
    // the search domains. Soundness requires the facts be implied by
    // `constraints` — then only non-models are skipped.
    const std::vector<UInterval>* ranges = nullptr;
    // Clauses learned by earlier queries over subsets of this constraint
    // set (PrefixCache reuse). Subset derivation makes them valid here.
    const std::vector<const LearnedClause*>* seeds = nullptr;
    // When non-null and learning ran, receives the top-activity clauses of
    // this search, converted back to symbol space.
    std::vector<LearnedClause>* learned = nullptr;
    // When non-null, receives the conflict-depth histogram records.
    MetricsShard* metrics = nullptr;
  };

  // `model`, when non-null and the result is kSat, receives one value per
  // symbol index (indexes absent from the constraints' support default to 0).
  // `candidate_budget` bounds the search. `control`, when non-null, is
  // polled every 4096 candidates for the run deadline / per-query wall
  // budget / cancel latch. `cause`, when non-null, receives why a kUnknown
  // happened (kNone otherwise).
  SatResult CheckSat(ExprContext& ctx, const std::vector<const Expr*>& constraints,
                     std::vector<uint8_t>* model, uint64_t candidate_budget = 1 << 22,
                     const QueryControl* control = nullptr, UnknownCause* cause = nullptr,
                     const SearchExtras* extras = nullptr);

  void set_config(const CdclConfig& config) { config_ = config; }
  const CdclConfig& config() const { return config_; }

  // Cumulative across every CheckSat call on this instance.
  uint64_t candidates_tried() const { return candidates_tried_; }
  uint64_t conflicts() const { return conflicts_; }
  uint64_t learned() const { return learned_; }
  uint64_t learned_hits() const { return learned_hits_; }
  uint64_t backjumps() const { return backjumps_; }
  uint64_t restarts() const { return restarts_; }

 private:
  CdclConfig config_;
  uint64_t candidates_tried_ = 0;
  uint64_t conflicts_ = 0;
  uint64_t learned_ = 0;
  uint64_t learned_hits_ = 0;
  uint64_t backjumps_ = 0;
  uint64_t restarts_ = 0;
};

// KLEE-UBTree-style counterexample cache over canonical constraint sets.
//
// Every entry stores the set as its ascending per-constraint structural
// hashes ("sorted constraint-set fingerprint") plus a verdict and, for SAT,
// a model. Besides exact lookups (64-bit set hash + independent
// confirmation fingerprint, as before), the trie answers the two
// prefix-reuse questions:
//   - is some cached UNSAT set a *subset* of the query (then the query is
//     UNSAT), and
//   - is some cached SAT set a *superset* of the query (then its model
//     satisfies the query).
// Subset/superset reasoning equates constraints by their 64-bit structural
// hash — the same collision-impossible assumption as the exact cache
// (docs/engine.md). Capacity is bounded with FIFO eviction; trie nodes are
// pruned on removal so memory tracks the live entry count.
class PrefixCache {
 public:
  struct Entry {
    std::vector<uint64_t> keys;  // ascending per-constraint structural hashes
    uint64_t set_hash = 0;       // exact-lookup key (order-sensitive fold)
    // Independent confirmation hash: the portable content fingerprint of
    // the canonical set (src/symex/expr_hash.h). Together with set_hash it
    // forms a 128-bit identity that is stable across processes and
    // machines — the property cross-run persistence rests on.
    uint64_t fingerprint = 0;
    SatResult result = SatResult::kUnknown;
    std::vector<uint8_t> model;  // satisfying assignment for kSat entries
    // Top-activity nogoods learned while (or inherited from the entry this
    // one was derived from when) solving this set. Seeds later core
    // searches over supersets — any clause valid for a set is valid for
    // every superset (docs/solver.md#reuse).
    std::vector<LearnedClause> clauses;
    bool live = false;
    // Loaded from a persisted cross-run store (docs/daemon.md). Hits on
    // persisted entries are counted separately (persist.hits) — the warm
    // bench gate measures exactly these.
    bool persisted = false;
    // A persisted SAT model not yet re-validated in this process. Stored
    // models are never trusted from disk: the chain evaluates the live
    // query's constraints under the model at first use, clears the flag on
    // success, and drops the entry on mismatch so a corrupted or stale
    // store degrades to a cache miss, never a wrong verdict. Mutable: the
    // flag flips on logically-const lookup paths.
    mutable bool unvalidated = false;
  };

  explicit PrefixCache(size_t capacity = 4096) : capacity_(capacity) {}

  const Entry* FindExact(uint64_t set_hash, uint64_t fingerprint) const;
  // Some cached UNSAT set that is a subset of `keys` (then the query is
  // UNSAT too). Returns the entry on hit so callers can attribute
  // persisted-store hits; null on miss.
  const Entry* FindUnsatSubset(const std::vector<uint64_t>& keys) const;
  // Some cached SAT set that is a superset of `keys` (its model satisfies
  // every constraint of the query). Returns null on miss.
  const Entry* FindSatSuperset(const std::vector<uint64_t>& keys) const;
  // Collects up to `limit` SAT entries whose sets are subsets of `keys`
  // (prefix candidates whose models may extend to the full query).
  void CollectSatSubsets(const std::vector<uint64_t>& keys, size_t limit,
                         std::vector<const Entry*>& out) const;

  // Inserts (or overwrites, on a matching 128-bit identity) an entry;
  // evicts the oldest live entry beyond capacity. `clauses` (optional) are
  // the learned nogoods to carry on the entry for cross-query seeding.
  // A matching set_hash whose fingerprint (or key sequence) differs is a
  // 64-bit collision: both the resident entry and the new one are dropped,
  // so a collision degrades to a cache miss instead of ever serving one
  // set's verdict for the other (counted in collisions()).
  void Insert(std::vector<uint64_t> keys, uint64_t set_hash, uint64_t fingerprint,
              SatResult result, const std::vector<uint8_t>& model,
              std::vector<LearnedClause> clauses = {});

  // Insert for entries loaded from a persisted store: marks the entry
  // persisted, and — for SAT — unvalidated, deferring model trust to the
  // first live hit (see Entry::unvalidated).
  void InsertPersisted(std::vector<uint64_t> keys, uint64_t set_hash, uint64_t fingerprint,
                       SatResult result, const std::vector<uint8_t>& model,
                       std::vector<LearnedClause> clauses = {});

  // Drops the entry carrying `set_hash` if present (persisted-model
  // validation failure: the store's model did not satisfy the live set).
  void RemoveBySetHash(uint64_t set_hash);

  // Visits every live entry (the persistence harvest).
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const Entry& entry : entries_) {
      if (entry.live) {
        fn(entry);
      }
    }
  }

  size_t size() const { return live_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t collisions() const { return collisions_; }

 private:
  struct Node {
    std::map<uint64_t, std::unique_ptr<Node>> children;
    int32_t entry = -1;        // index into entries_ of the set ending here
    uint32_t subtree_sat = 0;  // live SAT / UNSAT entries at or below
    uint32_t subtree_unsat = 0;
  };

  // All searches carry a node-visit budget so a pathological trie shape
  // degrades to a cache miss, never a slow query.
  static constexpr size_t kSearchBudget = 2048;

  const Entry* FindUnsatSubsetFrom(const Node& node, const std::vector<uint64_t>& keys,
                                   size_t i, size_t& budget) const;
  const Entry* FindSatSupersetFrom(const Node& node, const std::vector<uint64_t>& keys,
                                   size_t i, size_t& budget) const;
  const Entry* FindAnySat(const Node& node, size_t& budget) const;
  void CollectSatSubsetsFrom(const Node& node, const std::vector<uint64_t>& keys, size_t i,
                             size_t limit, size_t& budget,
                             std::vector<const Entry*>& out) const;
  void RemoveEntry(uint32_t index);
  void RemoveFrom(Node& node, const std::vector<uint64_t>& keys, size_t i, bool sat);

  Node root_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> free_slots_;
  std::deque<uint32_t> fifo_;  // insertion order; may hold stale indices
  std::unordered_map<uint64_t, uint32_t> exact_;  // set_hash -> entry index
  size_t capacity_;
  size_t live_ = 0;
  uint64_t evictions_ = 0;
  uint64_t collisions_ = 0;  // set_hash collisions degraded to misses
};

// The full KLEE-style stack. One instance per symbolic-execution run.
class SolverChain {
 public:
  explicit SolverChain(ExprContext& ctx) : ctx_(ctx), preprocessor_(ctx) {
    core_.set_config(CdclConfigFromEnv());
  }

  // Is `constraints` satisfiable? When `prefix` is non-null it carries the
  // caller's incremental preprocessing summary for these constraints (the
  // engine passes the per-path handle owned by each ExecState); null runs a
  // one-shot preprocessing pass.
  SatResult CheckSat(const std::vector<const Expr*>& constraints, std::vector<uint8_t>* model,
                     PathPrefix* prefix = nullptr);

  // CheckSat that bypasses preprocessing, the counterexample cache, and
  // model reuse and always runs the core search over the canonical
  // (hash-ordered) set. The model returned is then a pure function of the
  // constraints' structure — independent of query history, and therefore
  // identical no matter which scheduler worker asks. Bug-report example
  // inputs use this so reported bugs are bit-identical across worker counts
  // (docs/scheduler.md).
  SatResult CheckSatCanonical(const std::vector<const Expr*>& constraints,
                              std::vector<uint8_t>* model);

  // Branch feasibility: given an already-satisfiable path `constraints`, can
  // `cond` additionally hold? Only the constraints sharing symbols
  // (transitively) with `cond` are sent to the solver. `prefix` as above.
  SatResult MayBeTrue(const std::vector<const Expr*>& constraints, const Expr* cond,
                      std::vector<uint8_t>* model, PathPrefix* prefix = nullptr);

  // Disables the preprocessing pipeline (A/B comparisons and regression
  // tests; queries then flow straight to canonicalization + caching).
  void set_preprocessing(bool on) { preprocess_enabled_ = on; }

  // Toggles CDCL clause learning (store, restarts, cross-query seeding).
  // Learning only ever prunes non-models, so verdicts and the models the
  // core returns are identical either way — the diff harness A/Bs this
  // in-lattice (DiffOptions::learning). Domain pruning and value ordering
  // are not gated: they define the value order models depend on, so they
  // must stay a pure function of the constraint set.
  void set_learning(bool on) {
    CdclConfig config = core_.config();
    config.learning = on;
    core_.set_config(config);
  }
  // Overrides the full CDCL parameter set (tests).
  void set_cdcl_config(const CdclConfig& config) { core_.set_config(config); }

  // Installs the run's cooperative controls (deadline, cancel latch, fault
  // injector, per-query budgets). The engine calls this once per run; the
  // default control never interrupts, so chain users without one (tests,
  // tools) are unaffected.
  void set_control(const QueryControl& control) {
    control_ = control;
    if (control.has_deadline) {
      preprocessor_.set_deadline(control.deadline);
    }
  }

  // The cause of the most recent kUnknown this chain returned (valid until
  // the next query; kNone if the chain has never returned kUnknown). The
  // engine reads it right after a kUnknown to attribute the path's
  // termination.
  UnknownCause last_unknown_cause() const { return last_unknown_cause_; }

  const SolverStats& stats() const;

  // Redirects all counters and histograms into `metrics` (the engine passes
  // its per-worker shard so pool aggregation is one registry merge). Must be
  // installed before the first query. The default private shard keeps
  // histogram timing OFF — a bare chain's cache-hit fast path is ~100ns and
  // must not pay for clock reads; engine shards opt in.
  void set_metrics(MetricsShard* metrics) { metrics_ = metrics; }
  MetricsShard& metrics() { return *metrics_; }

  // Flushes subsystem-owned totals (ExprContext memo hits, preprocessor
  // stats, cache evictions) into the shard. Called by stats() and by the
  // pool before merging shards.
  void SyncMetrics() const;

  // Structured trace spans for queries/lookups/core searches; null (the
  // default) disables tracing at the cost of one cold-pointer branch.
  void set_trace(TraceBuffer* trace) { trace_ = trace; }

  // ---- Cross-run persistence (docs/daemon.md) ----

  // Seeds the counterexample cache with one entry from a persisted store.
  // The entry's keys/hashes are portable content hashes, so an entry
  // harvested by one process addresses the same constraint sets in this
  // one. SAT models are marked unvalidated (re-checked against the live
  // query at first use, never trusted from disk).
  void SeedPersistedEntry(std::vector<uint64_t> keys, uint64_t set_hash,
                          uint64_t fingerprint, SatResult result,
                          const std::vector<uint8_t>& model,
                          std::vector<LearnedClause> clauses);

  // Read-only view of the counterexample cache (the persistence harvest
  // walks it with ForEachLive).
  const PrefixCache& cex_cache() const { return cache_; }

 private:
  SatResult CheckSatImpl(const std::vector<const Expr*>& constraints,
                         std::vector<uint8_t>* model, PathPrefix* prefix);
  SatResult CheckSatCanonicalImpl(const std::vector<const Expr*>& constraints,
                                  std::vector<uint8_t>* model);
  SatResult MayBeTrueImpl(const std::vector<const Expr*>& constraints, const Expr* cond,
                          std::vector<uint8_t>* model, PathPrefix* prefix);
  // Are query durations being measured (for histograms, traces, or both)?
  bool Timed() const { return metrics_->timing || trace_ != nullptr; }
  // Records the query span that started at `t0` (histogram + trace).
  void FinishQuery(uint64_t t0, SatResult result);
  // `prefix`, when non-null, supplies the per-symbol range facts the core
  // uses for domain pruning (implied by `filtered`, see docs/solver.md).
  SatResult Solve(const std::vector<const Expr*>& filtered, std::vector<uint8_t>* model,
                  const PathPrefix* prefix = nullptr);
  // Flushes the core's cumulative CDCL counters into the shard.
  void SyncCoreCounters() const;
  // Records `cause` into last_unknown_cause_ and the per-cause stats.
  SatResult Unknown(UnknownCause cause);
  bool Canonicalize(const std::vector<const Expr*>& filtered,
                    std::vector<const Expr*>& canonical);
  // Resolves the effective prefix for a query: the caller's handle, or the
  // cleared scratch summary. Extends it over `constraints`.
  PathPrefix* EffectivePrefix(PathPrefix* prefix, const std::vector<const Expr*>& constraints);
  // definitions + simplified of `prefix` into `out`.
  void AssemblePreprocessed(const PathPrefix& prefix, std::vector<const Expr*>& out);

  ExprContext& ctx_;
  CoreSolver core_;
  ConstraintPreprocessor preprocessor_;
  bool preprocess_enabled_ = true;
  QueryControl control_;
  UnknownCause last_unknown_cause_ = UnknownCause::kNone;
  // Where every counter/histogram lands: the engine's per-worker shard, or
  // the private one for standalone chains (tests, microbenches).
  MetricsShard own_metrics_;
  MetricsShard* metrics_ = &own_metrics_;
  TraceBuffer* trace_ = nullptr;
  // Scratch for stats(): the legacy flat view assembled from the shard.
  mutable SolverStats stats_;

  // Counterexample cache: exact, subset, and superset reuse over canonical
  // constraint sets (see PrefixCache above). Bounded FIFO as before.
  static constexpr size_t kMaxCexEntries = 4096;
  PrefixCache cache_{kMaxCexEntries};
  // Memoized portable per-constraint content hashes (src/symex/expr_hash.h)
  // feeding the cache's confirmation fingerprints.
  PortableHashCache portable_hashes_;
  // Recent satisfying assignments, newest last (bounded).
  std::vector<std::vector<uint8_t>> recent_models_;
  // Scratch buffers reused across queries (the chain sits on the engine's
  // per-branch path; steady-state queries should not allocate).
  std::vector<const Expr*> filtered_scratch_;
  std::vector<const Expr*> canonical_scratch_;
  std::vector<const Expr*> preprocessed_scratch_;
  // Scratch for clause seeding / export around each core search.
  std::vector<const LearnedClause*> seed_scratch_;
  std::vector<LearnedClause> learned_scratch_;
  PathPrefix scratch_prefix_;  // for callers without a per-path handle
  // The constraint sequence scratch_prefix_ summarizes; reused while a
  // handle-less caller keeps querying the same path.
  std::vector<const Expr*> scratch_constraints_;
};

// Filters `constraints` to those transitively sharing support with `seed`.
// Exposed for tests.
std::vector<const Expr*> FilterIndependent(const std::vector<const Expr*>& constraints,
                                           const Expr* seed);

}  // namespace overify
