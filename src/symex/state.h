// Execution states for the symbolic engine: call stack, SSA value bindings,
// path constraints, and the (copy-on-write) address space.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/ir/function.h"
#include "src/symex/memory.h"
#include "src/symex/preprocess.h"

namespace overify {

// A pointer value: which object, at what (possibly symbolic) byte offset.
// Object id 0 is the null pointer.
struct SymPointer {
  uint64_t object_id = 0;
  const Expr* offset = nullptr;  // 64-bit expr; null only for the null pointer

  bool IsNull() const { return object_id == 0; }
};

struct RuntimeValue {
  enum class Kind { kNone, kInt, kPointer };
  Kind kind = Kind::kNone;
  const Expr* expr = nullptr;
  SymPointer pointer;

  static RuntimeValue Int(const Expr* e) {
    RuntimeValue v;
    v.kind = Kind::kInt;
    v.expr = e;
    return v;
  }
  static RuntimeValue Pointer(SymPointer p) {
    RuntimeValue v;
    v.kind = Kind::kPointer;
    v.pointer = p;
    return v;
  }
};

// The module is immutable while the engine runs, so instruction-list
// iterators are stable and can be shared freely between forked states.
struct StackFrame {
  Function* fn = nullptr;
  BasicBlock* block = nullptr;
  BasicBlock* prev_block = nullptr;  // for phi resolution
  BasicBlock::iterator pc;
  // SSA bindings, indexed by each value's dense local slot (see
  // Function::AssignLocalSlots); kind == kNone marks an unbound slot. Flat
  // storage makes forking a state a straight vector copy.
  std::vector<RuntimeValue> locals;
  std::vector<uint64_t> alloca_objects;  // freed when the frame pops
  const CallInst* call_site = nullptr;   // in the caller frame
};

struct ExecState {
  uint64_t id = 0;
  // Deterministic path identity: a rolling hash of the fork decisions taken
  // along this path (root constant below; the executor mixes in a per-side
  // salt at every fork). Unlike `id`, it does not depend on scheduling
  // order, so it is identical for the same path no matter which worker ran
  // it — the canonical tie-breaker for bug-report selection.
  static constexpr uint64_t kRootPathId = 0x9e3779b97f4a7c15ULL;
  uint64_t path_id = kRootPathId;
  std::vector<StackFrame> stack;
  AddressSpace memory;
  std::vector<const Expr*> constraints;
  std::vector<const Expr*> output;  // bytes written via putchar
  // Pointer-typed memory slots: pointers carry an object id and are not
  // byte-serializable, so they live beside the byte memory, keyed by
  // (object id, constant byte offset). Path-local like all memory.
  std::map<std::pair<uint64_t, uint64_t>, SymPointer> pointer_slots;
  // Incremental constraint-preprocessing summary for this path's solver
  // queries (src/symex/preprocess.h). A pure cache over `constraints`:
  // cloned with the state (same context), cleared when the state migrates
  // to another worker's context (src/sched/translate.cc).
  PathPrefix solver_prefix;
  uint64_t instructions_executed = 0;
  uint64_t depth = 0;  // number of forks along this path

  StackFrame& Frame() { return stack.back(); }

  Instruction* CurrentInstruction() { return Frame().pc->get(); }
  void AdvancePC() { ++Frame().pc; }
  void JumpTo(BasicBlock* block) {
    Frame().prev_block = Frame().block;
    Frame().block = block;
    Frame().pc = block->begin();
  }

  RuntimeValue Local(const Value* v) const;
  void SetLocal(const Value* v, RuntimeValue value) {
    uint32_t slot = v->local_slot();
    OVERIFY_ASSERT(slot < Frame().locals.size(), "value has no slot in this frame");
    Frame().locals[slot] = std::move(value);
  }

  void AddConstraint(const Expr* e) { constraints.push_back(e); }

  // Forked copy (fresh id is assigned by the executor).
  std::unique_ptr<ExecState> Clone() const { return std::make_unique<ExecState>(*this); }
};

}  // namespace overify
