// Symbolic memory: objects with byte-granular symbolic contents.
//
// Pointers at run time are (object id, offset expression) pairs; address
// arithmetic never escapes an object, so aliasing is exact (the KLEE model).
// Reads and writes at symbolic offsets materialize select chains over the
// object's bytes — complete (no concretization) for the small buffers the
// workload suite uses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/symex/expr.h"

namespace overify {

struct MemoryObject {
  uint64_t id = 0;
  uint64_t size = 0;
  bool read_only = false;
  bool is_alloca = false;
  std::string name;
};

// The byte contents of one object. Shared copy-on-write between forked
// states.
class ObjectState {
 public:
  ObjectState(ExprContext& ctx, uint64_t size);

  const Expr* Byte(uint64_t index) const { return bytes_[index]; }
  void SetByte(uint64_t index, const Expr* value) { bytes_[index] = value; }
  uint64_t size() const { return bytes_.size(); }

 private:
  std::vector<const Expr*> bytes_;
};

class AddressSpace {
 public:
  // Allocates a fresh zero-initialized object.
  uint64_t Allocate(ExprContext& ctx, uint64_t size, bool read_only, bool is_alloca,
                    std::string name);
  void Free(uint64_t object_id);
  bool Exists(uint64_t object_id) const { return meta_.count(object_id) != 0; }

  const MemoryObject& Meta(uint64_t object_id) const { return meta_.at(object_id); }

  const ObjectState& Read(uint64_t object_id) const { return *contents_.at(object_id); }
  // Returns a mutable object state, cloning if it is shared with a forked
  // sibling (copy-on-write).
  ObjectState& Write(uint64_t object_id);

  size_t NumObjects() const { return meta_.size(); }

  // Replaces every object's contents with a fresh, unshared copy whose
  // bytes are rewritten through `fn`. Used when a state migrates to another
  // worker's ExprContext: the old contents may still be shared
  // (copy-on-write) with sibling states on the original worker, so they are
  // never mutated in place.
  void RewriteContents(const std::function<const Expr*(const Expr*)>& fn);

  // Read-only visit of every object's byte expressions (the scheduler's
  // steal-validation walk).
  void ForEachByte(const std::function<void(const Expr*)>& fn) const {
    for (const auto& [id, state] : contents_) {
      for (uint64_t i = 0; i < state->size(); ++i) {
        fn(state->Byte(i));
      }
    }
  }

 private:
  // Hash maps: object ids are dense and lookups sit on the engine's
  // per-instruction path; states fork by copying these tables, so flat
  // buckets also clone faster than node-based trees.
  std::unordered_map<uint64_t, MemoryObject> meta_;
  std::unordered_map<uint64_t, std::shared_ptr<ObjectState>> contents_;
  uint64_t next_id_ = 1;  // id 0 is the null object
};

}  // namespace overify
