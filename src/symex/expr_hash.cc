#include "src/symex/expr_hash.h"

namespace overify {

namespace {

// Walk tags outside the ExprKind value range: a repeat visit of a shared
// subtree folds kRefTag + the subtree's first-visit ordinal, and the
// symbol-index table appended after the walk opens with kTableTag. Both are
// part of the serialized hash definition — changing them (or anything else
// in this file) invalidates persisted stores and requires a
// kCacheStoreVersion bump (src/cache/persist.h).
constexpr uint8_t kRefTag = 0xFF;
constexpr uint8_t kTableTag = 0xFE;

// One constraint's walk: depth-first (a, b, c), symbols numbered by first
// occurrence, shared subtrees by first-visit ordinal. Recursive like the
// engine's evaluators — constraint DAGs are depth-bounded by the workloads'
// expression-building patterns, not by path length.
struct HashWalk {
  PortableHasher hasher;
  std::unordered_map<const Expr*, uint32_t> ordinal_of;
  std::unordered_map<unsigned, uint32_t> number_of;  // symbol index -> De Bruijn number
  std::vector<unsigned> symbol_table;                // De Bruijn number -> symbol index

  void Walk(const Expr* e) {
    auto [it, fresh] = ordinal_of.emplace(e, static_cast<uint32_t>(ordinal_of.size()));
    if (!fresh) {
      hasher.Fold(kRefTag);
      hasher.Fold(it->second);
      return;
    }
    hasher.Fold(static_cast<uint8_t>(e->kind()));
    hasher.Fold(static_cast<uint8_t>(e->width()));
    switch (e->kind()) {
      case ExprKind::kConstant:
        hasher.Fold(e->constant_value());
        return;
      case ExprKind::kSymbol: {
        auto [sym, added] =
            number_of.emplace(e->symbol_index(), static_cast<uint32_t>(symbol_table.size()));
        if (added) {
          symbol_table.push_back(e->symbol_index());
        }
        hasher.Fold(sym->second);
        return;
      }
      case ExprKind::kExtract:
        hasher.Fold(static_cast<uint32_t>(e->extract_offset()));
        break;
      default:
        break;
    }
    // Arity is determined by the kind (already folded), so child folds need
    // no per-slot separators.
    for (const Expr* child : {e->a(), e->b(), e->c()}) {
      if (child != nullptr) {
        Walk(child);
      }
    }
  }

  uint64_t Finish() {
    hasher.Fold(kTableTag);
    hasher.Fold(static_cast<uint32_t>(symbol_table.size()));
    for (unsigned sym : symbol_table) {
      hasher.Fold(static_cast<uint32_t>(sym));
    }
    return hasher.hash();
  }
};

}  // namespace

uint64_t PortableExprHash(const Expr* root) {
  HashWalk walk;
  walk.Walk(root);
  return walk.Finish();
}

uint64_t PortableHashCache::Hash(const Expr* root) {
  const size_t id = static_cast<size_t>(root->id());
  if (id < valid_.size() && valid_[id] != 0) {
    return values_[id];
  }
  const uint64_t h = PortableExprHash(root);
  if (id >= valid_.size()) {
    // Grow past the id like the contexts' eval memos: amortized by the
    // interner's dense id allocation.
    const size_t size = std::max(id + 1, valid_.size() + valid_.size() / 2);
    valid_.resize(size, 0);
    values_.resize(size, 0);
  }
  valid_[id] = 1;
  values_[id] = h;
  return h;
}

uint64_t PortableSetFingerprint(const std::vector<const Expr*>& canonical,
                                PortableHashCache& cache) {
  PortableHasher hasher;
  hasher.Fold(static_cast<uint64_t>(canonical.size()));
  for (const Expr* c : canonical) {
    hasher.Fold(cache.Hash(c));
  }
  return hasher.hash();
}

}  // namespace overify
