// The per-worker execution engine behind SymbolicExecutor.
//
// One EngineCore owns everything a scheduler worker needs to run paths in
// isolation: a private ExprContext (interner + memo slots), a private
// SolverChain (counterexample cache, model reuse), this worker's metrics
// shard (src/support/metrics.h), and the step machinery. The only mutable
// state shared between workers is the
// lock-free SharedCounters block, which enforces the global limits
// cooperatively, and the worker queues (owned by the WorkerPool).
//
// The module itself is immutable while a search runs; the pool pre-stamps
// every function's local-slot numbering before launching workers so no
// engine ever writes to the IR.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/module.h"
#include "src/support/stopwatch.h"
#include "src/symex/executor.h"

namespace overify {

class TraceBuffer;

namespace sched {

// Lock-free global limit accounting shared by all workers. Workers flush
// batched instruction counts and re-check cooperatively (every
// kLimitCheckInterval steps and at every fork / path end); `stop` is the
// one-way latch that drains the pool.
struct SharedCounters {
  SymexLimits limits;
  Stopwatch watch;
  // The run deadline as a monotonic time point (watch start + max_seconds),
  // stamped by the pool before workers launch; threaded into every solver
  // query's QueryControl so a pathological search is interrupted mid-query.
  std::chrono::steady_clock::time_point deadline{};
  std::atomic<uint64_t> paths_completed{0};
  std::atomic<uint64_t> instructions{0};
  std::atomic<uint64_t> forks{0};
  // Queued + running states across all workers: both the max_live_states
  // gauge and the termination signal (reaching 0 means the search is done,
  // so increments happen before a state becomes visible and decrements
  // after it fully finished).
  std::atomic<uint64_t> live_states{0};
  std::atomic<bool> stop{false};
  // First limit that latched `stop` (CAS-once; StopCause::kNone while the
  // run drains naturally). Cause attribution for partial runs.
  std::atomic<int> stop_cause{0};
  // Injected worker deaths claimed so far (bounded by
  // FaultConfig::max_worker_deaths so a run can guarantee a survivor).
  std::atomic<uint32_t> worker_deaths{0};

  bool StopRequested() const { return stop.load(std::memory_order_relaxed); }
  void RequestStop(StopCause cause) {
    int expected = 0;
    stop_cause.compare_exchange_strong(expected, static_cast<int>(cause),
                                       std::memory_order_relaxed);
    stop.store(true, std::memory_order_relaxed);
  }

  // The first limit currently exceeded (kNone when all are within bounds);
  // callers latch it via RequestStop(cause).
  StopCause ExceededCause() const {
    if (paths_completed.load(std::memory_order_relaxed) >= limits.max_paths) {
      return StopCause::kPaths;
    }
    if (instructions.load(std::memory_order_relaxed) >= limits.max_instructions) {
      return StopCause::kInstructions;
    }
    if (forks.load(std::memory_order_relaxed) >= limits.max_forks) {
      return StopCause::kForks;
    }
    if (live_states.load(std::memory_order_relaxed) >= limits.max_live_states) {
      return StopCause::kLiveStates;
    }
    if (watch.ElapsedSeconds() >= limits.max_seconds) {
      return StopCause::kDeadline;
    }
    return StopCause::kNone;
  }

  bool LimitsExceeded() const { return ExceededCause() != StopCause::kNone; }

  // Atomically claims one of the run's allowed injected worker deaths;
  // false once the cap is reached (the worker then survives its draw).
  bool ClaimWorkerDeath(uint32_t cap) {
    uint32_t current = worker_deaths.load(std::memory_order_relaxed);
    while (current < cap) {
      if (worker_deaths.compare_exchange_weak(current, current + 1,
                                              std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
};

// How a path ended.
enum class PathOutcome {
  kCompleted,   // main returned
  kInfeasible,  // no feasible direction remained
  kBug,         // died at a bug site (including engine errors)
  kLimitStop,   // the global stop latch tripped while it was running
  kUnknown,     // the solver gave up on a decisive query (budget/deadline/fault)
  kDied,        // injected worker death: the state is still live and must be
                // requeued by the pool, and this worker runs nothing further
};

// Receives forked sibling states. Implemented by the pool's worker queues;
// must be safe against concurrent thieves.
class ForkSink {
 public:
  virtual ~ForkSink() = default;
  virtual void PushFork(std::unique_ptr<ExecState> state) = 0;
};

// One bug site's best candidate so far. The canonical representative of a
// (site, kind) pair is the report from the smallest path_id — a
// schedule-independent choice, so merged bug sets are identical across
// worker counts on exhausted runs.
struct BugCandidate {
  BugKind kind = BugKind::kEngineError;
  std::string message;
  const Instruction* site = nullptr;
  std::vector<uint8_t> example_input;
  uint64_t path_id = 0;
};

class EngineCore {
 public:
  // `slots` must be pre-filled for every defined function in `module`
  // (WorkerPool::Run does this) — engines only read it. `interner`, when
  // non-null, is the run's shared lock-striped expression interner: the
  // engine's ExprContext builds into it instead of a private one, which is
  // what lets stolen states run on any worker without re-interning
  // (docs/scheduler.md). Null keeps the legacy private interner.
  EngineCore(Module& module, const SymexOptions& options, SharedCounters& shared,
             LocalSlotCache& slots, unsigned num_input_bytes, unsigned worker_index,
             ExprInterner* interner = nullptr);
  ~EngineCore();

  // Builds the root state (worker 0 calls this once per run).
  std::unique_ptr<ExecState> MakeInitialState(Function* entry);

  // Runs `state` until it completes, dies, or the stop latch trips. Forked
  // siblings go to `sink`; block entries are reported to `searcher` for
  // coverage-guided ordering (may be null).
  PathOutcome RunState(ExecState& state, ForkSink& sink, Searcher* searcher);

  // This worker's slice of the metrics registry: exact per-worker counters
  // and latency histograms, written only by the worker thread that runs
  // this engine, merged deterministically by the pool after the join (the
  // shared atomics above are only approximate limit gauges). Call
  // SyncMetrics() first to flush subsystem-owned totals (solver caches,
  // preprocessor, fault injector) into the shard.
  MetricsShard& metrics_shard();
  void SyncMetrics();
  // Structured trace buffer for this worker's spans (null disables tracing;
  // the pool wires one per worker when a trace path is configured).
  void set_trace(TraceBuffer* trace);
  TraceBuffer* trace();
  const SolverStats& solver_stats() const;
  // This worker's solver chain, exposed for cross-run persistence: the pool
  // seeds it from the CacheStore's run blob before exploration and harvests
  // its counterexample cache afterwards (src/cache/persist.h).
  SolverChain& solver();
  const std::map<std::pair<const Instruction*, BugKind>, BugCandidate>& bugs() const;
  ExprContext& ctx();
  // This worker's fault injector (disabled unless SymexOptions::faults is).
  // The pool draws the scheduler-side sites (stall, steal) from it so each
  // worker has exactly one deterministic stream.
  FaultInjector& faults();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sched
}  // namespace overify
