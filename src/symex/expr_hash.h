// Portable, machine- and run-stable content hashing for Exprs and
// constraint sets.
//
// The interner's structural hashes (Expr::hash()) are stable across runs —
// they fold only kinds, widths, constants, symbol indices and child hashes —
// but they are 64-bit *per-node* values folded in canonical order, and the
// counterexample cache's independent confirmation fingerprint historically
// folded Expr::id(): the interner's dense creation index, which depends on
// the order a run happened to build expressions in. Identical constraint
// sets from different processes therefore confirmed under different
// fingerprints, and cross-run cache reuse was silently impossible. This
// header is the fix: a content hash that is a pure function of expression
// structure, defined byte-for-byte so two independent processes (or
// machines, or interners that created the same expressions in opposite
// orders) agree bit-for-bit (docs/daemon.md#content-hashing).
//
// The scheme is De Bruijn-style: a canonically ordered depth-first walk
// (a, b, c) numbers symbols by first occurrence and shared subtrees by walk
// ordinal, then folds the numbering-to-actual-symbol-index table at the
// end. The walk body is thus alpha-independent — two expressions that
// differ only in which input byte plays each role share it — while the
// appended table keeps the final hash faithful to the actual byte
// positions, which models are specific to. Hash-consing guarantees
// structurally identical sets present isomorphic DAGs with identical
// sharing, so the ordinal-numbered walk is deterministic.
//
// Portability is classified at compile time: PortableHasher accepts only
// explicitly fixed-width unsigned integers. Pointers (memory layout),
// bool, enums, and host-width or signed integers — everything whose value
// or width can differ between runs or machines — select a deleted overload.
// Expr::id() shares a type with legitimate 64-bit constants and cannot be
// rejected by type alone; it is excluded by construction, since the walk
// only ever folds the fields that define structural identity
// (ExprInterner::Key's field set).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/symex/expr.h"

namespace overify {

// Order-sensitive 64-bit sponge over portable values only.
class PortableHasher {
 public:
  // Fixed-width unsigned integers are the only inputs classified portable.
  void Fold(uint8_t v) { Mix(v); }
  void Fold(uint16_t v) { Mix(v); }
  void Fold(uint32_t v) { Mix(v); }
  void Fold(uint64_t v) { Mix(v); }

  // Everything else is classified non-portable and rejected at compile
  // time: pointers and creation-order ids leak memory layout, bool invites
  // silent promotions, and signed or host-width integers (int, long,
  // size_t spellings, enums) have ABI-dependent width or representation.
  // Cast explicitly to a uint*_t to assert a serialized width.
  template <typename T>
  void Fold(T) = delete;

  uint64_t hash() const { return h_; }

 private:
  void Mix(uint64_t v) { h_ = HashMix64(h_ ^ v); }

  // Arbitrary non-zero seed so an empty fold is distinguishable from a
  // fold of zero.
  uint64_t h_ = 0xc2b2ae3d27d4eb4fULL;
};

// The portable content hash of one expression (typically a constraint
// root). A pure function of the expression's structure and its
// symbol-index table — identical across processes, machines, and interner
// creation orders. Stand-alone form; allocates its walk state per call.
uint64_t PortableExprHash(const Expr* root);

// Memo for per-root portable hashes, indexed by the Expr's dense id.
// Expressions are immutable and interners never delete nodes, so a
// computed hash is valid for the lifetime of the interner; the table grows
// lazily like the contexts' eval memos. One cache per interner-coherent
// user (the SolverChain keeps one): ids from different interners collide.
class PortableHashCache {
 public:
  uint64_t Hash(const Expr* root);

 private:
  std::vector<uint64_t> values_;  // by Expr::id()
  std::vector<uint8_t> valid_;
};

// The portable fingerprint of a canonically ordered constraint set: folds
// the set size and each constraint's portable hash in order. The canonical
// order (ascending structural hash) is itself run-stable, so the fold is
// too. This is the counterexample cache's confirmation fingerprint — the
// value that makes `(set_hash, fingerprint)` a 128-bit cross-run identity.
uint64_t PortableSetFingerprint(const std::vector<const Expr*>& canonical,
                                PortableHashCache& cache);

}  // namespace overify
