// Constraint preprocessing ahead of the core search.
//
// Every solver query flows through a ConstraintPreprocessor before
// canonicalization and the counterexample cache (see docs/engine.md):
//
//  1. Byte-equality substitution: `x == c` facts are rewritten into the
//     remaining constraints through the hash-consing builders, eliminating
//     bound bytes from their support sets (KLEE's ConstraintManager plays
//     the same role). The defining equalities are kept so models of the
//     simplified set are models of the original set.
//  2. Range tightening: single-byte comparison constraints become per-symbol
//     intervals; later constraints whose interval under those facts is
//     already {1,1} are dropped as implied, and an interval of {0,0}
//     refutes the whole set without any search.
//
// The per-path summary (PathPrefix) is incremental: path constraints only
// ever grow by appending, so a state's query at depth k+1 resumes from the
// depth-k summary instead of re-preprocessing the whole prefix. The summary
// is a pure function of the constraint sequence — resuming and recomputing
// from scratch produce identical results, which is what keeps 1..N-worker
// runs bit-identical (docs/scheduler.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/symex/expr.h"

namespace overify {

// Incremental per-path preprocessing summary, owned by the ExecState whose
// constraints it summarizes. All Expr pointers belong to the context that
// produced the constraints, so a state migrating between contexts (the
// scheduler's work-stealing re-intern pass) must Clear() the summary; it is
// a pure cache and is rebuilt on the next query.
struct PathPrefix {
  // Leading path constraints already folded into the summary.
  size_t consumed = 0;
  // The summarized prefix is unsatisfiable (refuted by substitution or
  // range facts; no search ran).
  bool contradiction = false;
  // Byte-equality facts `Symbol(i) == binding[i]` in discovery order. Kept
  // separate from `simplified` so substitution never folds a definition
  // into `true` and loses the binding from the solver-visible set.
  std::vector<const Expr*> definitions;
  // The remaining constraints, bindings substituted in, implied members
  // dropped. definitions + simplified is logically equivalent to the
  // consumed prefix (same models).
  std::vector<const Expr*> simplified;
  // binding[i] >= 0: Symbol(i) is bound to that byte. Mirrored in `bound`.
  std::vector<int16_t> binding;
  SupportSet bound;
  // Per-symbol unsigned intervals implied by the consumed prefix
  // (default/absent entries mean [0, 255]). Extracted from direct byte
  // comparisons and from the branch-free fused form `(s - base) u< span`;
  // besides powering the implication checks here, they seed the core
  // search's per-level value domains, so a range-constrained byte is
  // enumerated over its interval instead of all 256 values
  // (docs/solver.md#domains).
  std::vector<UInterval> range;
  // The context's interval-memo generation of this prefix's last RangeOf
  // round; while it still equals the context's current generation (nobody
  // bumped in between) and the facts are unchanged, consecutive queries
  // share memoized subtrees. 0 = facts changed, next RangeOf starts fresh.
  uint64_t interval_memo_generation = 0;

  // Resets to the empty summary, keeping vector capacity (the chain's
  // scratch prefix is cleared once per handle-less query).
  void Clear() {
    consumed = 0;
    contradiction = false;
    definitions.clear();
    simplified.clear();
    binding.clear();
    bound = SupportSet();
    range.clear();
    interval_memo_generation = 0;
  }
  UInterval RangeOf(unsigned sym) const {
    return sym < range.size() ? range[sym] : UInterval{0, 255};
  }
};

struct PreprocessStats {
  uint64_t bindings = 0;        // byte-equality facts discovered
  uint64_t substitutions = 0;   // constraints rewritten by substitution
  uint64_t tautologies = 0;     // constraints dropped as implied
  uint64_t contradictions = 0;  // sets refuted before any search
};

class ConstraintPreprocessor {
 public:
  explicit ConstraintPreprocessor(ExprContext& ctx) : ctx_(ctx) {}

  // Folds constraints [prefix.consumed, constraints.size()) into `prefix`.
  // Precondition: the first prefix.consumed entries are the ones already
  // folded (path constraint vectors only grow by appending). Returns false
  // without folding further when the run deadline (set_deadline) has
  // expired — the summary then covers a valid shorter prefix and the caller
  // must treat the query as kUnknown (docs/robustness.md).
  bool Extend(PathPrefix& prefix, const std::vector<const Expr*>& constraints);

  // Installs the run deadline Extend honors between folds. SolverChain
  // forwards its QueryControl deadline here; without one, Extend never
  // gives up.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
  }

  // `e` with the prefix's byte bindings substituted in (re-simplified
  // through the canonicalizing builders).
  const Expr* Apply(const PathPrefix& prefix, const Expr* e);

  // Sound unsigned interval of `e` under the prefix's per-symbol ranges
  // (non-const: bookkeeps the prefix's interval-memo generation).
  UInterval RangeOf(PathPrefix& prefix, const Expr* e);

  const PreprocessStats& stats() const { return stats_; }

 private:
  void FoldIn(PathPrefix& prefix, const Expr* c);
  // Recognizes `Symbol(i) == c` (directly or through a ZExt); records the
  // binding and returns true. Sets `contradiction` when the equality cannot
  // hold for any byte.
  bool ExtractBinding(PathPrefix& prefix, const Expr* c);
  // Tightens per-symbol ranges from single-byte comparison constraints.
  void ExtractRange(PathPrefix& prefix, const Expr* c);
  // After new bindings: re-substitutes the kept constraints, dropping the
  // ones that fold to true and promoting newly exposed equalities.
  void Resubstitute(PathPrefix& prefix);

  ExprContext& ctx_;
  PreprocessStats stats_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace overify
