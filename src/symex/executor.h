// The symbolic-execution engine (the toolkit's KLEE substitute).
//
// Explores one path at a time: inputs are symbolic bytes, conditional
// branches fork when both directions are feasible, and trapping operations
// (division by zero, out-of-bounds access, failed checks) become bug reports
// with concrete reproducing inputs from the solver's model.
//
// Exploration is scheduled by the src/sched/ subsystem: a pluggable
// Searcher orders pending states and a work-stealing WorkerPool fans them
// out over `jobs` workers, each with a private ExprContext and solver
// (states are re-interned on steal). Results are aggregated in canonical
// order, so bug sets and verdicts are identical for 1..N workers on
// exhausted runs — see docs/scheduler.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/passes/annotate.h"
#include "src/sched/searcher.h"
#include "src/support/fault.h"
#include "src/support/metrics.h"
#include "src/symex/solver.h"
#include "src/symex/state.h"

namespace overify {

class CacheStore;

enum class BugKind {
  kDivByZero,
  kOutOfBounds,
  kNullDeref,
  kCheckFailed,
  kOverflow,
  kUnreachable,
  kAbort,
  kEngineError,  // unsupported construct
};

const char* BugKindName(BugKind kind);

struct BugReport {
  BugKind kind = BugKind::kEngineError;
  std::string message;
  const Instruction* site = nullptr;
  std::vector<uint8_t> example_input;  // one value per symbolic byte
};

struct SymexLimits {
  uint64_t max_paths = 1 << 20;         // completed paths
  uint64_t max_instructions = 1 << 28;  // total across all paths
  uint64_t max_forks = 1 << 20;
  double max_seconds = 3600.0;
  uint64_t max_live_states = 1 << 16;  // queued + running, across all workers
  // Per-query solver budgets (run-level max_seconds is enforced inside the
  // solver's candidate loop regardless; see docs/robustness.md).
  uint64_t query_candidates = 1ull << 22;  // core-search candidates per query
  double query_seconds = 0;                // wall budget per query; 0 = none
};

// Which limit latched the run's stop flag first (kNone on runs that drained
// naturally — including exhausted runs that completed exactly at a limit).
enum class StopCause {
  kNone,
  kPaths,
  kInstructions,
  kForks,
  kLiveStates,
  kDeadline,
  kWorkerDeath,  // no limit fired, but injected deaths left states unexplored
};

const char* StopCauseName(StopCause cause);

struct SymexResult {
  // Malformed input (missing or mis-typed entry, zero-width symbolic
  // buffers, failed compilation through Analyze) is a structured error, not
  // an assertion: ok = false, `error` says why, every count stays zero.
  bool ok = true;
  std::string error;
  bool exhausted = false;  // every path explored within the limits
  uint64_t paths_completed = 0;
  // Terminated paths by cause; paths_terminated is always their sum.
  uint64_t paths_terminated = 0;
  uint64_t paths_infeasible = 0;   // no feasible branch direction remained
  uint64_t paths_bug = 0;          // died at a bug site
  uint64_t paths_limit = 0;        // running when a limit stopped the search
  uint64_t paths_unexplored = 0;   // still queued when a limit stopped the search
  // Paths terminated because the solver gave up (kUnknown) on a decisive
  // query — never silently explored past: an unproven branch direction is a
  // completeness loss, not a soundness one. Always the sum of the per-cause
  // breakdown below (docs/robustness.md).
  uint64_t paths_unknown = 0;
  uint64_t paths_unknown_budget = 0;    // per-query candidate/time budget
  uint64_t paths_unknown_deadline = 0;  // run deadline expired mid-query
  uint64_t paths_unknown_injected = 0;  // FaultInjector kSolverUnknown
  uint64_t instructions = 0;
  uint64_t forks = 0;
  uint64_t annotation_hits = 0;  // branch decisions settled by annotations
  // Which limit latched the stop flag first (kNone when the run drained
  // naturally; kWorkerDeath when only injected deaths cut it short).
  StopCause stop_cause = StopCause::kNone;
  // Injected-fault fires (zero unless SymexOptions::faults enabled them).
  // Schedule-dependent across workers, so excluded from the determinism
  // contract like the steal counters below.
  FaultStats faults;
  // Work-stealing traffic (scheduling-dependent, unlike the counts above:
  // these vary run to run and are excluded from the determinism contract).
  uint64_t steals = 0;          // states that migrated to another worker
  uint64_t steal_batches = 0;   // steal operations that yielded work
  uint64_t steal_reintern = 0;  // stolen states that needed a re-intern pass
                                // (0 whenever the shared interner is on)
  double wall_seconds = 0;
  unsigned workers = 1;  // worker threads that ran the search
  std::vector<BugReport> bugs;
  SolverStats solver;
  // The merged metrics registry for the run: every counter above plus the
  // latency histograms (src/support/metrics.h). Single source of truth —
  // the flat fields and `solver`/`faults` views are filled from it by
  // FinalizeFromMetrics (docs/observability.md).
  MetricsShard metrics;

  // Fills every legacy counter field (paths_*, instructions, forks, steal
  // and fault counts, the SolverStats view) from `metrics`, and asserts the
  // accounting invariants — unknown-cause and terminated-cause sums — in
  // this one place. The pool calls it once after merging worker shards.
  void FinalizeFromMetrics();

  bool FoundBug(BugKind kind) const {
    for (const BugReport& bug : bugs) {
      if (bug.kind == kind) {
        return true;
      }
    }
    return false;
  }
};

struct SymexOptions {
  // Compiler-produced annotations; branch conditions they decide skip the
  // solver entirely (§3 "Program annotations").
  const ProgramAnnotations* annotations = nullptr;
  // Search order for pending states (src/sched/searcher.h).
  SearchStrategy strategy = SearchStrategy::kDfs;
  // Worker threads exploring in parallel; 0 = one per hardware thread.
  unsigned jobs = 1;
  // Constraint preprocessing + prefix-aware counterexample caching ahead of
  // the core search (docs/engine.md). Off is for A/B comparisons and the
  // preprocessing regression tests; verdicts and bug reports are identical
  // either way.
  bool solver_preprocess = true;
  // Conflict clause learning, non-chronological backjumping and restarts in
  // the backtracking core (docs/solver.md). Off is for A/B comparisons in
  // the differential lattice; verdicts, models and bug reports are
  // identical either way — learning only prunes candidates the search
  // would have refuted one by one.
  bool solver_learning = true;
  // Multi-worker runs share one sharded, lock-striped expression interner,
  // so stolen states run on the thief without a re-intern pass
  // (docs/scheduler.md). Off restores the legacy per-worker interners with
  // ExprTranslator on every steal — kept for A/B comparisons and the
  // translation tests; results are identical either way.
  bool shared_interner = true;
  // Debug: with the shared interner, walk every stolen state and assert
  // each of its expressions is owned by the shared interner (the
  // validation-only residue of the old re-intern pass; slow).
  bool validate_steals = false;
  // Seed for the random-path strategy (worker index is mixed in per worker).
  uint64_t search_seed = 0x05e11a11;
  // Deterministic fault injection (src/support/fault.h). Disabled by
  // default (seed 0); tests and the robustness differential harness enable
  // it to exercise the graceful-degradation contract (docs/robustness.md).
  FaultConfig faults;
  // Per-check slice verification (docs/slicing.md): the driver slices the
  // entry function to each check's backward dependence cone and verifies
  // the slices instead of the whole module, replaying every bug through the
  // full-program concrete interpreter as the soundness oracle. Falls back
  // to whole-program mode (counted in slice.fallbacks) when slicing is not
  // possible. Only honored by Analyze(); a raw SymbolicExecutor ignores it.
  bool slice_checks = false;
  // Latency-histogram timing for engine runs (two clock reads per solver
  // query / fork decision / path). On by default: engine queries are
  // microseconds-scale, so the overhead is noise — and SymexResult then
  // carries real p50/p95 latencies. Off leaves every histogram empty;
  // counters are unaffected either way.
  bool metrics_timing = true;
  // When non-empty, the run writes a Chrome-trace-event JSON timeline of
  // solver queries, preprocessing, fork decisions, steals, cache lookups,
  // fault firings, and worker lifecycles to this path (load it in Perfetto;
  // docs/observability.md). Empty falls back to the OVERIFY_TRACE
  // environment variable; unset disables tracing at near-zero cost.
  std::string trace_path;
  // Cross-run persistence (docs/daemon.md): when non-null, every worker's
  // solver chain is seeded from the store's run blob for (module content
  // hash, options fingerprint) before exploration and harvested back into
  // it afterwards. The caller owns the store and decides when to Save() it;
  // verdicts are unchanged either way (persisted SAT models are re-validated
  // at first use, never trusted).
  CacheStore* cache_store = nullptr;
  // Warm expression interner owned by a long-lived host (the verification
  // daemon): when non-null, the run interns into it instead of building a
  // fresh one, so repeated runs of the same module skip re-construction of
  // the expression DAG. Must be a concurrent interner when jobs > 1.
  ExprInterner* warm_interner = nullptr;
  // DEPRECATED: pre-scheduler search toggle, kept so existing callers
  // compile unchanged. Read only through EffectiveStrategy(): setting it to
  // false selects BFS unless `strategy` was set explicitly.
  bool depth_first = true;
};

// Resolves the deprecated `depth_first` shim against `strategy`.
inline SearchStrategy EffectiveStrategy(const SymexOptions& options) {
  if (options.strategy == SearchStrategy::kDfs && !options.depth_first) {
    return SearchStrategy::kBfs;
  }
  return options.strategy;
}

class SymbolicExecutor {
 public:
  SymbolicExecutor(Module& module, SymexOptions options = {});
  ~SymbolicExecutor();

  // Explores `entry` with `num_input_bytes` symbolic bytes. The entry
  // function must take (u8* buffer, i32 length) — the buffer holds the
  // symbolic bytes plus a guaranteed NUL terminator — or no arguments, or
  // (u8* a, i32 na, u8* b, i32 nb) for two-input programs: the symbolic
  // bytes split first-buffer-gets-the-ceiling, each buffer NUL-terminated
  // (docs/workloads.md). Malformed input — a missing/declared-only entry, a
  // signature outside that contract, or zero symbolic bytes for an entry
  // that takes buffers — returns SymexResult::ok = false instead of
  // aborting.
  SymexResult Run(Function* entry, unsigned num_input_bytes, const SymexLimits& limits);
  SymexResult Run(const std::string& entry_name, unsigned num_input_bytes,
                  const SymexLimits& limits);

 private:
  Module& module_;
  SymexOptions options_;
};

}  // namespace overify
