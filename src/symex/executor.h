// The symbolic-execution engine (the toolkit's KLEE substitute).
//
// Explores one path at a time: inputs are symbolic bytes, conditional
// branches fork when both directions are feasible, and trapping operations
// (division by zero, out-of-bounds access, failed checks) become bug reports
// with concrete reproducing inputs from the solver's model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/module.h"
#include "src/passes/annotate.h"
#include "src/symex/solver.h"
#include "src/symex/state.h"

namespace overify {

enum class BugKind {
  kDivByZero,
  kOutOfBounds,
  kNullDeref,
  kCheckFailed,
  kOverflow,
  kUnreachable,
  kAbort,
  kEngineError,  // unsupported construct
};

const char* BugKindName(BugKind kind);

struct BugReport {
  BugKind kind = BugKind::kEngineError;
  std::string message;
  const Instruction* site = nullptr;
  std::vector<uint8_t> example_input;  // one value per symbolic byte
};

struct SymexLimits {
  uint64_t max_paths = 1 << 20;         // completed paths
  uint64_t max_instructions = 1 << 28;  // total across all paths
  uint64_t max_forks = 1 << 20;
  double max_seconds = 3600.0;
  uint64_t max_live_states = 1 << 16;
};

struct SymexResult {
  bool exhausted = false;  // every path explored within the limits
  uint64_t paths_completed = 0;
  uint64_t paths_terminated = 0;  // killed: infeasible, bug, or limit
  uint64_t instructions = 0;
  uint64_t forks = 0;
  uint64_t annotation_hits = 0;  // branch decisions settled by annotations
  double wall_seconds = 0;
  std::vector<BugReport> bugs;
  SolverStats solver;

  bool FoundBug(BugKind kind) const {
    for (const BugReport& bug : bugs) {
      if (bug.kind == kind) {
        return true;
      }
    }
    return false;
  }
};

struct SymexOptions {
  // Compiler-produced annotations; branch conditions they decide skip the
  // solver entirely (§3 "Program annotations").
  const ProgramAnnotations* annotations = nullptr;
  // Search order for pending states: true = depth-first (default), false =
  // breadth-first.
  bool depth_first = true;
};

class SymbolicExecutor {
 public:
  SymbolicExecutor(Module& module, SymexOptions options = {});
  ~SymbolicExecutor();

  // Explores `entry` with `num_input_bytes` symbolic bytes. The entry
  // function must take (u8* buffer, i32 length) — the buffer holds the
  // symbolic bytes plus a guaranteed NUL terminator — or no arguments.
  SymexResult Run(Function* entry, unsigned num_input_bytes, const SymexLimits& limits);
  SymexResult Run(const std::string& entry_name, unsigned num_input_bytes,
                  const SymexLimits& limits);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  Module& module_;
  SymexOptions options_;
};

}  // namespace overify
