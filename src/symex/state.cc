#include "src/symex/state.h"

namespace overify {

RuntimeValue ExecState::Local(const Value* v) const {
  const StackFrame& frame = stack.back();
  auto it = frame.locals.find(v);
  OVERIFY_ASSERT(it != frame.locals.end(), "use of unbound SSA value");
  return it->second;
}

}  // namespace overify
