#include "src/symex/state.h"

namespace overify {

RuntimeValue ExecState::Local(const Value* v) const {
  const StackFrame& frame = stack.back();
  uint32_t slot = v->local_slot();
  OVERIFY_ASSERT(slot < frame.locals.size(), "use of a value with no slot in this frame");
  const RuntimeValue& value = frame.locals[slot];
  OVERIFY_ASSERT(value.kind != RuntimeValue::Kind::kNone, "use of unbound SSA value");
  return value;
}

}  // namespace overify
