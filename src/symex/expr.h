// Symbolic expressions for the verification engine.
//
// Expressions form a hash-consed immutable DAG owned by an ExprContext;
// structural equality is pointer equality. The builder canonicalizes and
// constant-folds on construction (KLEE's ExprBuilder plays the same role),
// using the same fold kernel as the optimizer and the concrete interpreter
// so all three agree bit-for-bit.
//
// Engine-speed invariants (see docs/engine.md):
//  - every Expr stores its structural hash, computed once at intern time;
//    the interner is an open-addressing table probed by that hash.
//  - the support set is a 64-bit symbol bitmask (the paper's workloads use
//    2-10 symbolic bytes) with a sorted overflow vector for symbols >= 64.
//  - eval/interval memoization lives in generation-stamped slots inline on
//    the Expr itself: O(1), zero allocation, no unbounded growth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/ir/instruction.h"

namespace overify {

enum class ExprKind : uint8_t {
  kConstant,
  kSymbol,  // one 8-bit symbolic input byte, identified by index
  // Binary arithmetic/bitwise (operand widths equal; result same width).
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Comparisons (result width 1). The canonical set: others are expressed
  // via operand swap / negation at build time.
  kEq,
  kUlt,
  kUle,
  kSlt,
  kSle,
  kSelect,   // (cond width 1, a, b)
  kZExt,
  kSExt,
  kTrunc,
  kExtract,  // bits [offset, offset+width) of the operand
  kConcat,   // a is the high part, b the low part; width = a.width + b.width
};

// splitmix64 finalizer: cheap, well-distributed 64-bit mixing. Shared by the
// expression interner and the solver's constraint-set hashing so both fold
// the same structural hashes consistently.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Unsigned interval abstraction (see ExprContext::EvalInterval).
struct UInterval {
  uint64_t lo = 0;
  uint64_t hi = ~uint64_t{0};
  bool IsSingleton() const { return lo == hi; }
};

// The set of symbol indices an expression depends on. Symbols below 64 live
// in one bitmask word; larger indices (rare — the workloads use 2-10 bytes)
// go to a sorted overflow vector. Set algebra on the common case is one or
// two bitwise instructions.
class SupportSet {
 public:
  SupportSet() = default;

  bool Empty() const { return mask_ == 0 && overflow_.empty(); }

  size_t Size() const {
    return static_cast<size_t>(__builtin_popcountll(mask_)) + overflow_.size();
  }

  bool Contains(unsigned sym) const {
    if (sym < 64) {
      return ((mask_ >> sym) & 1) != 0;
    }
    return std::binary_search(overflow_.begin(), overflow_.end(), sym);
  }

  bool Intersects(const SupportSet& other) const {
    if ((mask_ & other.mask_) != 0) {
      return true;
    }
    if (overflow_.empty() || other.overflow_.empty()) {
      return false;
    }
    auto a = overflow_.begin();
    auto b = other.overflow_.begin();
    while (a != overflow_.end() && b != other.overflow_.end()) {
      if (*a == *b) {
        return true;
      }
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
    return false;
  }

  void Add(unsigned sym) {
    if (sym < 64) {
      mask_ |= uint64_t{1} << sym;
      return;
    }
    auto it = std::lower_bound(overflow_.begin(), overflow_.end(), sym);
    if (it == overflow_.end() || *it != sym) {
      overflow_.insert(it, sym);
    }
  }

  void UnionWith(const SupportSet& other) {
    mask_ |= other.mask_;
    if (!other.overflow_.empty()) {
      std::vector<unsigned> merged;
      merged.reserve(overflow_.size() + other.overflow_.size());
      std::set_union(overflow_.begin(), overflow_.end(), other.overflow_.begin(),
                     other.overflow_.end(), std::back_inserter(merged));
      overflow_ = std::move(merged);
    }
  }

  // Largest symbol index; requires !Empty().
  unsigned MaxSymbol() const {
    if (!overflow_.empty()) {
      return overflow_.back();
    }
    return 63 - static_cast<unsigned>(__builtin_clzll(mask_));
  }

  // Visits symbols in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t m = mask_;
    while (m != 0) {
      fn(static_cast<unsigned>(__builtin_ctzll(m)));
      m &= m - 1;
    }
    for (unsigned sym : overflow_) {
      fn(sym);
    }
  }

  std::set<unsigned> ToSet() const {
    std::set<unsigned> out;
    ForEach([&](unsigned sym) { out.insert(sym); });
    return out;
  }

  uint64_t mask() const { return mask_; }
  const std::vector<unsigned>& overflow() const { return overflow_; }

  bool operator==(const SupportSet& other) const {
    return mask_ == other.mask_ && overflow_ == other.overflow_;
  }
  bool operator!=(const SupportSet& other) const { return !(*this == other); }

 private:
  uint64_t mask_ = 0;
  std::vector<unsigned> overflow_;  // sorted, unique, indices >= 64
};

class Expr {
 public:
  ExprKind kind() const { return kind_; }
  unsigned width() const { return width_; }
  bool IsConstant() const { return kind_ == ExprKind::kConstant; }
  bool IsBool() const { return width_ == 1; }

  uint64_t constant_value() const {
    OVERIFY_ASSERT(kind_ == ExprKind::kConstant, "not a constant");
    return constant_;
  }
  bool IsTrue() const { return IsConstant() && width_ == 1 && constant_ == 1; }
  bool IsFalse() const { return IsConstant() && width_ == 1 && constant_ == 0; }

  unsigned symbol_index() const {
    OVERIFY_ASSERT(kind_ == ExprKind::kSymbol, "not a symbol");
    return symbol_;
  }

  const Expr* a() const { return a_; }
  const Expr* b() const { return b_; }
  const Expr* c() const { return c_; }
  unsigned extract_offset() const { return extract_offset_; }

  // Stable creation index; used for canonical operand ordering.
  uint64_t id() const { return id_; }

  // Structural hash, fixed at intern time. Hash-consing makes it canonical
  // per context: equal hashes for structurally equal expressions.
  uint64_t hash() const { return hash_; }

  // The set of symbol indices this expression depends on.
  const SupportSet& Support() const { return support_; }

 private:
  friend class ExprContext;
  Expr() = default;

  ExprKind kind_ = ExprKind::kConstant;
  uint8_t width_ = 1;
  uint64_t constant_ = 0;
  unsigned symbol_ = 0;
  const Expr* a_ = nullptr;
  const Expr* b_ = nullptr;
  const Expr* c_ = nullptr;
  unsigned extract_offset_ = 0;
  uint64_t id_ = 0;
  uint64_t hash_ = 0;
  SupportSet support_;

  // Generation-stamped inline memo slots, owned by the context's Evaluate /
  // EvalInterval (a slot is valid only while its stamp equals the context's
  // current generation; stamps start at 0, generations at 1).
  mutable uint64_t eval_gen_ = 0;
  mutable uint64_t eval_value_ = 0;
  mutable uint64_t interval_gen_ = 0;
  mutable UInterval interval_value_;
};

// Owns and interns expressions.
class ExprContext {
 public:
  using UInterval = overify::UInterval;

  ExprContext();
  ExprContext(const ExprContext&) = delete;
  ExprContext& operator=(const ExprContext&) = delete;

  const Expr* Constant(uint64_t value, unsigned width);
  const Expr* True() { return true_; }
  const Expr* False() { return false_; }
  const Expr* Bool(bool b) { return b ? true_ : false_; }
  const Expr* Symbol(unsigned index);  // width 8

  // May return a trapping-op marker? No: division by zero must be guarded by
  // the caller (the executor forks on the divisor) before building.
  const Expr* Binary(ExprKind kind, const Expr* a, const Expr* b);
  // Any ICmp predicate; canonicalized onto {eq, ult, ule, slt, sle} with
  // negation folded in.
  const Expr* Compare(ICmpPredicate pred, const Expr* a, const Expr* b);
  const Expr* Not(const Expr* e);  // width 1
  const Expr* Select(const Expr* cond, const Expr* a, const Expr* b);
  const Expr* ZExt(const Expr* e, unsigned width);
  const Expr* SExt(const Expr* e, unsigned width);
  const Expr* Trunc(const Expr* e, unsigned width);
  const Expr* Extract(const Expr* e, unsigned offset, unsigned width);
  const Expr* Concat(const Expr* high, const Expr* low);

  // Byte decomposition helpers (little endian).
  std::vector<const Expr*> ToBytes(const Expr* e);
  const Expr* FromBytes(const std::vector<const Expr*>& bytes);

  // Re-interns one node from another context. `a`/`b`/`c` are `src`'s
  // children already translated into this context (null where absent). The
  // source node is canonical — built by an identical builder whose
  // canonical orderings are structural-hash-based and therefore
  // context-independent — so the structure is copied bit-for-bit without
  // re-simplification, and hash-consing restores pointer identity for
  // already-present nodes. Used by the scheduler's work-stealing
  // re-interning pass (src/sched/translate.h).
  const Expr* ImportNode(const Expr* src, const Expr* a, const Expr* b, const Expr* c);

  // Rebuilds one node with replacement children through the canonicalizing
  // builders, so constant folding and identities re-apply (unlike
  // ImportNode's bit-for-bit copy). A binary node whose children folded to
  // a trapping constant pair (division by zero, oversized shift) is
  // interned raw instead — Evaluate defines those as 0, and such nodes only
  // arise inside guarded/contradictory sets. Used by Substitute.
  const Expr* Rebuild(const Expr* src, const Expr* a, const Expr* b, const Expr* c);

  // Substitution over the hash-consed DAG: returns `e` with every symbol in
  // `bound` replaced by the constant byte binding[sym]. Subtrees whose
  // support does not intersect `bound` are returned as-is (one bitmask AND),
  // and rebuilt nodes re-simplify through the builders — the constraint
  // preprocessor's byte-equality elimination (src/symex/preprocess.h).
  const Expr* Substitute(const Expr* e, const std::vector<int16_t>& binding,
                         const SupportSet& bound);

  // Evaluates `e` under a full assignment of its support. `bytes[i]` is the
  // value of Symbol(i). Memoized in the inline slot on each Expr, keyed by
  // the current generation; call NewEvaluation() before each new assignment.
  uint64_t Evaluate(const Expr* e, const std::vector<uint8_t>& bytes);
  void NewEvaluation() { ++eval_generation_; }

  // Unsigned interval abstraction under a *partial* assignment: symbols with
  // assigned[i] contribute their exact byte, the rest contribute [0, 255].
  // Sound over-approximation: the true value always lies in [lo, hi]. The
  // solver prunes a branch as soon as a constraint's interval excludes 1.
  UInterval EvalInterval(const Expr* e, const std::vector<uint8_t>& bytes,
                         const std::vector<bool>& assigned);
  // Same abstraction under per-symbol ranges: symbol i contributes
  // ranges[i] (or [0, 255] beyond the vector). The constraint
  // preprocessor's range-tightening stage evaluates candidates under the
  // facts extracted so far. Shares the interval memo generation.
  UInterval EvalIntervalRanges(const Expr* e, const std::vector<UInterval>& ranges);
  void NewIntervalRound() { ++interval_generation_; }
  // Current interval-memo generation. A caller that knows the generation has
  // not moved since its own last round (and that the symbol ranges it
  // evaluates under are unchanged) may keep evaluating without a new round,
  // sharing memoized subtrees across queries (see
  // ConstraintPreprocessor::RangeOf).
  uint64_t interval_generation() const { return interval_generation_; }

  size_t NumExprs() const { return exprs_.size(); }

  // Fast-path observability (cumulative since construction).
  uint64_t eval_memo_hits() const { return eval_memo_hits_; }
  uint64_t interval_memo_hits() const { return interval_memo_hits_; }

 private:
  struct Key {
    ExprKind kind = ExprKind::kConstant;
    unsigned width = 1;
    uint64_t constant = 0;
    unsigned symbol = 0;
    const Expr* a = nullptr;
    const Expr* b = nullptr;
    const Expr* c = nullptr;
    unsigned extract_offset = 0;
  };

  static uint64_t HashKey(const Key& key);
  static bool Matches(const Expr& e, const Key& key);

  const Expr* Intern(const Key& key);
  void GrowTable();

  // Shared recursive worker behind EvalInterval/EvalIntervalRanges; `sym`
  // maps a symbol index to its interval. Defined (and only instantiated) in
  // expr.cc.
  template <typename SymFn>
  UInterval EvalIntervalWith(const Expr* e, const SymFn& sym);

  std::vector<std::unique_ptr<Expr>> exprs_;
  // Open-addressing interner: power-of-two table of owned pointers, linear
  // probing, no deletions (expressions live as long as the context).
  std::vector<Expr*> table_;
  size_t table_mask_ = 0;
  std::vector<const Expr*> symbols_;  // dense by symbol index; null = absent
  const Expr* true_;
  const Expr* false_;
  uint64_t next_id_ = 0;

  uint64_t eval_generation_ = 1;
  uint64_t interval_generation_ = 1;
  uint64_t eval_memo_hits_ = 0;
  uint64_t interval_memo_hits_ = 0;

  // Scratch for Substitute (cleared per call; keeps its buckets so
  // steady-state substitution does not allocate).
  std::unordered_map<const Expr*, const Expr*> subst_memo_;
  std::vector<const Expr*> subst_stack_;
};

}  // namespace overify
