// Symbolic expressions for the verification engine.
//
// Expressions form a hash-consed immutable DAG owned by an ExprInterner;
// structural equality is pointer equality. An ExprContext is one worker's
// view of an interner — it carries the canonicalizing builders (KLEE's
// ExprBuilder plays the same role), using the same fold kernel as the
// optimizer and the concrete interpreter so all three agree bit-for-bit,
// plus the worker-private evaluation caches.
//
// The interner is sharded and lock-striped: expressions are distributed
// over independent open-addressing tables by the top bits of their
// structural hash, and each shard has its own mutex. A private interner
// (the default, one per single-threaded context) skips the locks entirely;
// a shared interner lets every scheduler worker intern into the same DAG so
// stolen states need no cross-context translation (docs/scheduler.md).
//
// Engine-speed invariants (see docs/engine.md):
//  - every Expr stores its structural hash, computed once at intern time;
//    each interner shard is an open-addressing table probed by that hash.
//  - the support set is a 64-bit symbol bitmask (the paper's workloads use
//    2-10 symbolic bytes) with a sorted overflow vector for symbols >= 64.
//  - eval/interval memoization lives in generation-stamped slots indexed by
//    the Expr's dense id, owned by each ExprContext (worker-private, so
//    memoizing over a shared DAG never takes a lock or races): O(1), one
//    flat array per worker, no unbounded growth.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/ir/instruction.h"

namespace overify {

enum class ExprKind : uint8_t {
  kConstant,
  kSymbol,  // one 8-bit symbolic input byte, identified by index
  // Binary arithmetic/bitwise (operand widths equal; result same width).
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Comparisons (result width 1). The canonical set: others are expressed
  // via operand swap / negation at build time.
  kEq,
  kUlt,
  kUle,
  kSlt,
  kSle,
  kSelect,   // (cond width 1, a, b)
  kZExt,
  kSExt,
  kTrunc,
  kExtract,  // bits [offset, offset+width) of the operand
  kConcat,   // a is the high part, b the low part; width = a.width + b.width
};

// splitmix64 finalizer: cheap, well-distributed 64-bit mixing. Shared by the
// expression interner and the solver's constraint-set hashing so both fold
// the same structural hashes consistently.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Unsigned interval abstraction (see ExprContext::EvalInterval).
struct UInterval {
  uint64_t lo = 0;
  uint64_t hi = ~uint64_t{0};
  bool IsSingleton() const { return lo == hi; }
};

// The set of symbol indices an expression depends on. Symbols below 64 live
// in one bitmask word; larger indices (rare — the workloads use 2-10 bytes)
// go to a sorted overflow vector. Set algebra on the common case is one or
// two bitwise instructions.
class SupportSet {
 public:
  SupportSet() = default;

  bool Empty() const { return mask_ == 0 && overflow_.empty(); }

  size_t Size() const {
    return static_cast<size_t>(__builtin_popcountll(mask_)) + overflow_.size();
  }

  bool Contains(unsigned sym) const {
    if (sym < 64) {
      return ((mask_ >> sym) & 1) != 0;
    }
    return std::binary_search(overflow_.begin(), overflow_.end(), sym);
  }

  bool Intersects(const SupportSet& other) const {
    if ((mask_ & other.mask_) != 0) {
      return true;
    }
    if (overflow_.empty() || other.overflow_.empty()) {
      return false;
    }
    auto a = overflow_.begin();
    auto b = other.overflow_.begin();
    while (a != overflow_.end() && b != other.overflow_.end()) {
      if (*a == *b) {
        return true;
      }
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
    return false;
  }

  void Add(unsigned sym) {
    if (sym < 64) {
      mask_ |= uint64_t{1} << sym;
      return;
    }
    auto it = std::lower_bound(overflow_.begin(), overflow_.end(), sym);
    if (it == overflow_.end() || *it != sym) {
      overflow_.insert(it, sym);
    }
  }

  void UnionWith(const SupportSet& other) {
    mask_ |= other.mask_;
    if (!other.overflow_.empty()) {
      std::vector<unsigned> merged;
      merged.reserve(overflow_.size() + other.overflow_.size());
      std::set_union(overflow_.begin(), overflow_.end(), other.overflow_.begin(),
                     other.overflow_.end(), std::back_inserter(merged));
      overflow_ = std::move(merged);
    }
  }

  // Largest symbol index; requires !Empty().
  unsigned MaxSymbol() const {
    if (!overflow_.empty()) {
      return overflow_.back();
    }
    return 63 - static_cast<unsigned>(__builtin_clzll(mask_));
  }

  // Visits symbols in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t m = mask_;
    while (m != 0) {
      fn(static_cast<unsigned>(__builtin_ctzll(m)));
      m &= m - 1;
    }
    for (unsigned sym : overflow_) {
      fn(sym);
    }
  }

  std::set<unsigned> ToSet() const {
    std::set<unsigned> out;
    ForEach([&](unsigned sym) { out.insert(sym); });
    return out;
  }

  uint64_t mask() const { return mask_; }
  const std::vector<unsigned>& overflow() const { return overflow_; }

  bool operator==(const SupportSet& other) const {
    return mask_ == other.mask_ && overflow_ == other.overflow_;
  }
  bool operator!=(const SupportSet& other) const { return !(*this == other); }

 private:
  uint64_t mask_ = 0;
  std::vector<unsigned> overflow_;  // sorted, unique, indices >= 64
};

class Expr {
 public:
  ExprKind kind() const { return kind_; }
  unsigned width() const { return width_; }
  bool IsConstant() const { return kind_ == ExprKind::kConstant; }
  bool IsBool() const { return width_ == 1; }

  uint64_t constant_value() const {
    OVERIFY_ASSERT(kind_ == ExprKind::kConstant, "not a constant");
    return constant_;
  }
  bool IsTrue() const { return IsConstant() && width_ == 1 && constant_ == 1; }
  bool IsFalse() const { return IsConstant() && width_ == 1 && constant_ == 0; }

  unsigned symbol_index() const {
    OVERIFY_ASSERT(kind_ == ExprKind::kSymbol, "not a symbol");
    return symbol_;
  }

  const Expr* a() const { return a_; }
  const Expr* b() const { return b_; }
  const Expr* c() const { return c_; }
  unsigned extract_offset() const { return extract_offset_; }

  // Dense creation index, unique within an interner; children always carry
  // smaller indices than their parents (they are interned first). Keys the
  // per-context eval/interval memo tables and breaks the (vanishingly rare)
  // structural-hash tie in canonical operand ordering.
  uint64_t id() const { return id_; }

  // Structural hash, fixed at intern time. Hash-consing makes it canonical
  // per interner: equal hashes for structurally equal expressions.
  uint64_t hash() const { return hash_; }

  // The set of symbol indices this expression depends on.
  const SupportSet& Support() const { return support_; }

 private:
  friend class ExprInterner;
  friend class ExprContext;
  Expr() = default;

  ExprKind kind_ = ExprKind::kConstant;
  uint8_t width_ = 1;
  uint64_t constant_ = 0;
  unsigned symbol_ = 0;
  const Expr* a_ = nullptr;
  const Expr* b_ = nullptr;
  const Expr* c_ = nullptr;
  unsigned extract_offset_ = 0;
  uint64_t id_ = 0;
  uint64_t hash_ = 0;
  SupportSet support_;

  // Generation-stamped inline memo slots for Evaluate / EvalInterval.
  // Used ONLY by a context that privately owns this node's interner (the
  // single-threaded configuration): with one owner they are exactly the
  // old zero-indirection fast path. Contexts attached to a *shared*
  // interner never touch these — concurrent workers would race — and
  // memoize into their own id-indexed tables instead (see ExprContext).
  mutable uint64_t eval_gen_ = 0;
  mutable uint64_t eval_value_ = 0;
  mutable uint64_t interval_gen_ = 0;
  mutable UInterval interval_value_;
};

// Owns and hash-conses expressions: sharded open-addressing tables keyed by
// structural hash, one mutex per shard (lock striping). Expressions are
// immutable after interning and owned by stable unique_ptrs, so readers
// never need a lock — only Intern serializes, and only within one shard.
//
// A private interner (concurrent == false, the ExprContext default) elides
// the locks entirely and matches the old single-table perf; the scheduler
// builds one concurrent interner per multi-worker run and hands every
// worker's ExprContext a reference, which is what lets stolen states skip
// the re-intern pass (docs/scheduler.md).
class ExprInterner {
 public:
  // The structural identity of one node; what the tables are keyed by.
  struct Key {
    ExprKind kind = ExprKind::kConstant;
    unsigned width = 1;
    uint64_t constant = 0;
    unsigned symbol = 0;
    const Expr* a = nullptr;
    const Expr* b = nullptr;
    const Expr* c = nullptr;
    unsigned extract_offset = 0;
  };

  explicit ExprInterner(bool concurrent = false);
  ExprInterner(const ExprInterner&) = delete;
  ExprInterner& operator=(const ExprInterner&) = delete;

  // Returns the canonical node for `key`, creating it if absent. Takes the
  // owning shard's lock iff the interner is concurrent.
  const Expr* Intern(const Key& key);
  // Same, with the key's hash (HashKey) already computed by the caller —
  // the contexts' local-cache fast path hashes first to probe its cache and
  // must not pay for it twice.
  const Expr* InternHashed(const Key& key, uint64_t hash);

  // Total interned expressions (sums the shards; takes the shard locks when
  // concurrent, so the count is exact).
  size_t NumExprs() const;

  // True iff `e` is one of this interner's nodes — the steal-validation
  // walk's primitive (src/sched/translate.h). Probes only e's home shard.
  bool Owns(const Expr* e) const;

  bool concurrent() const { return concurrent_; }

  static uint64_t HashKey(const Key& key);

 private:
  friend class ExprContext;

  // A concurrent interner uses 16 stripes: enough that 8 workers rarely
  // collide, few enough that per-shard tables stay warm. A private one
  // collapses to a single shard — the old flat-table layout, with no
  // per-construction cost for stripes that would never contend. Shards are
  // selected by the hash's top bits so the choice is independent of the
  // in-shard probe sequence (low bits).
  static constexpr size_t kConcurrentShards = 16;

  struct Shard {
    std::mutex mutex;
    std::vector<std::unique_ptr<Expr>> exprs;
    // Open-addressing: power-of-two table of borrowed pointers, linear
    // probing, no deletions (expressions live as long as the interner).
    std::vector<Expr*> table;
    size_t mask = 0;
  };

  static bool Matches(const Expr& e, const Key& key);
  static void GrowTable(Shard& shard);

  Shard& ShardFor(uint64_t hash) const { return shards_[(hash >> 60) & shard_mask_]; }

  // unique_ptr<Shard[]>: shards hold a mutex (immovable), and the count is
  // fixed at construction. Mutexes are taken from const readers (NumExprs,
  // Owns) when the interner is concurrent.
  std::unique_ptr<Shard[]> shards_;
  size_t shard_mask_ = 0;  // shard count - 1
  std::atomic<uint64_t> next_id_{0};
  bool concurrent_;
};

// One worker's view of an interner: the canonicalizing builders plus the
// worker-private evaluation caches. The default constructor owns a private
// (lock-free) interner — the single-threaded configuration; the reference
// constructor attaches to a shared one.
class ExprContext {
 public:
  using UInterval = overify::UInterval;

  ExprContext();
  explicit ExprContext(ExprInterner& shared);
  // Pointer form for callers that decide at runtime: null owns a private
  // interner, non-null attaches to `shared`.
  explicit ExprContext(ExprInterner* shared);
  ExprContext(const ExprContext&) = delete;
  ExprContext& operator=(const ExprContext&) = delete;

  const Expr* Constant(uint64_t value, unsigned width);
  const Expr* True() { return true_; }
  const Expr* False() { return false_; }
  const Expr* Bool(bool b) { return b ? true_ : false_; }
  const Expr* Symbol(unsigned index);  // width 8

  // May return a trapping-op marker? No: division by zero must be guarded by
  // the caller (the executor forks on the divisor) before building.
  const Expr* Binary(ExprKind kind, const Expr* a, const Expr* b);
  // Any ICmp predicate; canonicalized onto {eq, ult, ule, slt, sle} with
  // negation folded in.
  const Expr* Compare(ICmpPredicate pred, const Expr* a, const Expr* b);
  const Expr* Not(const Expr* e);  // width 1
  const Expr* Select(const Expr* cond, const Expr* a, const Expr* b);
  const Expr* ZExt(const Expr* e, unsigned width);
  const Expr* SExt(const Expr* e, unsigned width);
  const Expr* Trunc(const Expr* e, unsigned width);
  const Expr* Extract(const Expr* e, unsigned offset, unsigned width);
  const Expr* Concat(const Expr* high, const Expr* low);

  // Byte decomposition helpers (little endian).
  std::vector<const Expr*> ToBytes(const Expr* e);
  const Expr* FromBytes(const std::vector<const Expr*>& bytes);

  // Re-interns one node from another context. `a`/`b`/`c` are `src`'s
  // children already translated into this context (null where absent). The
  // source node is canonical — built by an identical builder whose
  // canonical orderings are structural-hash-based and therefore
  // context-independent — so the structure is copied bit-for-bit without
  // re-simplification, and hash-consing restores pointer identity for
  // already-present nodes. Used by the scheduler's legacy
  // (per-worker-interner) work-stealing re-intern pass
  // (src/sched/translate.h); the default shared-interner configuration
  // never needs it.
  const Expr* ImportNode(const Expr* src, const Expr* a, const Expr* b, const Expr* c);

  // Rebuilds one node with replacement children through the canonicalizing
  // builders, so constant folding and identities re-apply (unlike
  // ImportNode's bit-for-bit copy). A binary node whose children folded to
  // a trapping constant pair (division by zero, oversized shift) is
  // interned raw instead — Evaluate defines those as 0, and such nodes only
  // arise inside guarded/contradictory sets. Used by Substitute.
  const Expr* Rebuild(const Expr* src, const Expr* a, const Expr* b, const Expr* c);

  // Substitution over the hash-consed DAG: returns `e` with every symbol in
  // `bound` replaced by the constant byte binding[sym]. Subtrees whose
  // support does not intersect `bound` are returned as-is (one bitmask AND),
  // and rebuilt nodes re-simplify through the builders — the constraint
  // preprocessor's byte-equality elimination (src/symex/preprocess.h).
  const Expr* Substitute(const Expr* e, const std::vector<int16_t>& binding,
                         const SupportSet& bound);

  // Evaluates `e` under a full assignment of its support. `bytes[i]` is the
  // value of Symbol(i). Memoized in the inline slot on each Expr, keyed by
  // the current generation; call NewEvaluation() before each new assignment.
  uint64_t Evaluate(const Expr* e, const std::vector<uint8_t>& bytes);
  void NewEvaluation() { ++eval_generation_; }

  // Unsigned interval abstraction under a *partial* assignment: symbols with
  // assigned[i] contribute their exact byte, the rest contribute [0, 255].
  // Sound over-approximation: the true value always lies in [lo, hi]. The
  // solver prunes a branch as soon as a constraint's interval excludes 1.
  UInterval EvalInterval(const Expr* e, const std::vector<uint8_t>& bytes,
                         const std::vector<bool>& assigned);
  // Same abstraction under per-symbol ranges: symbol i contributes
  // ranges[i] (or [0, 255] beyond the vector). The constraint
  // preprocessor's range-tightening stage evaluates candidates under the
  // facts extracted so far. Shares the interval memo generation.
  UInterval EvalIntervalRanges(const Expr* e, const std::vector<UInterval>& ranges);
  void NewIntervalRound() { ++interval_generation_; }
  // Current interval-memo generation. A caller that knows the generation has
  // not moved since its own last round (and that the symbol ranges it
  // evaluates under are unchanged) may keep evaluating without a new round,
  // sharing memoized subtrees across queries (see
  // ConstraintPreprocessor::RangeOf).
  uint64_t interval_generation() const { return interval_generation_; }

  size_t NumExprs() const { return interner_->NumExprs(); }

  // The interner this context builds into (shared across workers in the
  // scheduler's multi-worker configuration, private otherwise).
  ExprInterner& interner() { return *interner_; }
  const ExprInterner& interner() const { return *interner_; }

  // Fast-path observability (cumulative since construction).
  uint64_t eval_memo_hits() const { return eval_memo_hits_; }
  uint64_t interval_memo_hits() const { return interval_memo_hits_; }

 private:
  using Key = ExprInterner::Key;

  // Per-expression memo slots, indexed by Expr::id() in the
  // context-private tables — the generation-stamped caches behind Evaluate
  // / EvalInterval. Worker-private so memoizing over a shared interner's
  // DAG never races (stamps start at 0, generations at 1: a fresh slot is
  // never valid). Eval and interval slots live in separate flat arrays so
  // each memo's hot loop touches a dense 16/24-byte stride.
  struct EvalSlot {
    uint64_t gen = 0;
    uint64_t value = 0;
  };
  struct IntervalSlot {
    uint64_t gen = 0;
    UInterval value;
  };

  const Expr* Intern(const Key& key);
  template <typename Slot>
  static Slot& SlotFor(std::vector<Slot>& slots, const Expr* e);

  // The recursive evaluators are instantiated once per memo mode
  // (kSharedMemos false = inline slots on the Expr, true = id-indexed
  // tables) so the single-owner fast path compiles without the mode branch
  // in its hot recursion. Defined (and only instantiated) in expr.cc.
  template <bool kSharedMemos>
  uint64_t EvaluateImpl(const Expr* e, const std::vector<uint8_t>& bytes);

  // Shared recursive worker behind EvalInterval/EvalIntervalRanges; `sym`
  // maps a symbol index to its interval.
  template <bool kSharedMemos, typename SymFn>
  UInterval EvalIntervalWith(const Expr* e, const SymFn& sym);

  std::unique_ptr<ExprInterner> owned_interner_;  // null when attached
  ExprInterner* interner_;
  // Contexts attached to a concurrent interner keep a lossy direct-mapped
  // cache of recent interns (structural hash -> canonical node). A hit
  // skips the shard lock and table probe entirely; the hash-consing hit
  // rate on the workloads is high enough that most builder calls never
  // touch the shared tables. Empty (and unused) over a private interner,
  // whose lock-free flat table needs no shortcut. Never stale: interners
  // never delete nodes.
  std::vector<const Expr*> intern_cache_;
  // True when this context must not touch the Exprs' inline memo slots
  // (the interner — and therefore the nodes — is shared with other
  // workers); memoization then uses the id-indexed tables below.
  bool shared_memos_ = false;
  // Indexed by Expr::id(), grown lazily. Unused when !shared_memos_.
  std::vector<EvalSlot> eval_memo_;
  std::vector<IntervalSlot> interval_memo_;
  std::vector<const Expr*> symbols_;  // dense by symbol index; null = absent
  const Expr* true_;
  const Expr* false_;

  uint64_t eval_generation_ = 1;
  uint64_t interval_generation_ = 1;
  uint64_t eval_memo_hits_ = 0;
  uint64_t interval_memo_hits_ = 0;

  // Scratch for Substitute (cleared per call; keeps its buckets so
  // steady-state substitution does not allocate).
  std::unordered_map<const Expr*, const Expr*> subst_memo_;
  std::vector<const Expr*> subst_stack_;
};

}  // namespace overify
