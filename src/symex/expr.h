// Symbolic expressions for the verification engine.
//
// Expressions form a hash-consed immutable DAG owned by an ExprContext;
// structural equality is pointer equality. The builder canonicalizes and
// constant-folds on construction (KLEE's ExprBuilder plays the same role),
// using the same fold kernel as the optimizer and the concrete interpreter
// so all three agree bit-for-bit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/ir/instruction.h"

namespace overify {

enum class ExprKind : uint8_t {
  kConstant,
  kSymbol,  // one 8-bit symbolic input byte, identified by index
  // Binary arithmetic/bitwise (operand widths equal; result same width).
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // Comparisons (result width 1). The canonical set: others are expressed
  // via operand swap / negation at build time.
  kEq,
  kUlt,
  kUle,
  kSlt,
  kSle,
  kSelect,   // (cond width 1, a, b)
  kZExt,
  kSExt,
  kTrunc,
  kExtract,  // bits [offset, offset+width) of the operand
  kConcat,   // a is the high part, b the low part; width = a.width + b.width
};

class Expr {
 public:
  ExprKind kind() const { return kind_; }
  unsigned width() const { return width_; }
  bool IsConstant() const { return kind_ == ExprKind::kConstant; }
  bool IsBool() const { return width_ == 1; }

  uint64_t constant_value() const {
    OVERIFY_ASSERT(kind_ == ExprKind::kConstant, "not a constant");
    return constant_;
  }
  bool IsTrue() const { return IsConstant() && width_ == 1 && constant_ == 1; }
  bool IsFalse() const { return IsConstant() && width_ == 1 && constant_ == 0; }

  unsigned symbol_index() const {
    OVERIFY_ASSERT(kind_ == ExprKind::kSymbol, "not a symbol");
    return symbol_;
  }

  const Expr* a() const { return a_; }
  const Expr* b() const { return b_; }
  const Expr* c() const { return c_; }
  unsigned extract_offset() const { return extract_offset_; }

  // Stable creation index; used for canonical operand ordering.
  uint64_t id() const { return id_; }

  // The set of symbol indices this expression depends on.
  const std::set<unsigned>& Support() const { return support_; }

 private:
  friend class ExprContext;
  Expr() = default;

  ExprKind kind_ = ExprKind::kConstant;
  uint8_t width_ = 1;
  uint64_t constant_ = 0;
  unsigned symbol_ = 0;
  const Expr* a_ = nullptr;
  const Expr* b_ = nullptr;
  const Expr* c_ = nullptr;
  unsigned extract_offset_ = 0;
  uint64_t id_ = 0;
  std::set<unsigned> support_;
};

// Owns and interns expressions.
class ExprContext {
 public:
  ExprContext();
  ExprContext(const ExprContext&) = delete;
  ExprContext& operator=(const ExprContext&) = delete;

  const Expr* Constant(uint64_t value, unsigned width);
  const Expr* True() { return true_; }
  const Expr* False() { return false_; }
  const Expr* Bool(bool b) { return b ? true_ : false_; }
  const Expr* Symbol(unsigned index);  // width 8

  // May return a trapping-op marker? No: division by zero must be guarded by
  // the caller (the executor forks on the divisor) before building.
  const Expr* Binary(ExprKind kind, const Expr* a, const Expr* b);
  // Any ICmp predicate; canonicalized onto {eq, ult, ule, slt, sle} with
  // negation folded in.
  const Expr* Compare(ICmpPredicate pred, const Expr* a, const Expr* b);
  const Expr* Not(const Expr* e);  // width 1
  const Expr* Select(const Expr* cond, const Expr* a, const Expr* b);
  const Expr* ZExt(const Expr* e, unsigned width);
  const Expr* SExt(const Expr* e, unsigned width);
  const Expr* Trunc(const Expr* e, unsigned width);
  const Expr* Extract(const Expr* e, unsigned offset, unsigned width);
  const Expr* Concat(const Expr* high, const Expr* low);

  // Byte decomposition helpers (little endian).
  std::vector<const Expr*> ToBytes(const Expr* e);
  const Expr* FromBytes(const std::vector<const Expr*>& bytes);

  // Evaluates `e` under a full assignment of its support. `bytes[i]` is the
  // value of Symbol(i). Uses an internal memo keyed by (expr, generation);
  // call NewEvaluation() before each new assignment.
  uint64_t Evaluate(const Expr* e, const std::vector<uint8_t>& bytes);
  void NewEvaluation() { ++eval_generation_; }

  // Unsigned interval abstraction under a *partial* assignment: symbols with
  // assigned[i] contribute their exact byte, the rest contribute [0, 255].
  // Sound over-approximation: the true value always lies in [lo, hi]. The
  // solver prunes a branch as soon as a constraint's interval excludes 1.
  struct UInterval {
    uint64_t lo = 0;
    uint64_t hi = ~uint64_t{0};
    bool IsSingleton() const { return lo == hi; }
  };
  UInterval EvalInterval(const Expr* e, const std::vector<uint8_t>& bytes,
                         const std::vector<bool>& assigned);
  void NewIntervalRound() { ++interval_generation_; }

  size_t NumExprs() const { return exprs_.size(); }

 private:
  struct Key {
    ExprKind kind;
    unsigned width;
    uint64_t constant;
    unsigned symbol;
    const Expr* a;
    const Expr* b;
    const Expr* c;
    unsigned extract_offset;

    bool operator<(const Key& other) const;
  };

  const Expr* Intern(const Key& key);

  std::vector<std::unique_ptr<Expr>> exprs_;
  std::map<Key, const Expr*> interned_;
  std::map<unsigned, const Expr*> symbols_;
  const Expr* true_;
  const Expr* false_;
  uint64_t next_id_ = 0;

  uint64_t eval_generation_ = 0;
  std::map<const Expr*, std::pair<uint64_t, uint64_t>> eval_memo_;  // expr -> (gen, value)
  uint64_t interval_generation_ = 0;
  std::map<const Expr*, std::pair<uint64_t, UInterval>> interval_memo_;
};

}  // namespace overify
