#include "src/symex/preprocess.h"

#include <algorithm>

namespace overify {

namespace {

// Matches a bare symbolic byte, possibly widened: Symbol(i) or
// ZExt(Symbol(i)). Returns the symbol index, or -1.
int MatchSymbolByte(const Expr* e) {
  if (e->kind() == ExprKind::kZExt) {
    e = e->a();
  }
  if (e->kind() == ExprKind::kSymbol) {
    return static_cast<int>(e->symbol_index());
  }
  return -1;
}

}  // namespace

bool ConstraintPreprocessor::Extend(PathPrefix& prefix,
                                    const std::vector<const Expr*>& constraints) {
  OVERIFY_ASSERT(prefix.consumed <= constraints.size(),
                 "stale path prefix: constraints shrank");
  while (prefix.consumed < constraints.size()) {
    // The run deadline is honored between folds, not just between queries:
    // Resubstitute can cascade on pathological binding chains, and a
    // deadline-blown run must drain promptly. Bailing here is sound — the
    // summary still covers exactly the first `consumed` constraints, so it
    // remains a pure function of that shorter prefix.
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return false;
    }
    const Expr* c = constraints[prefix.consumed++];
    if (!prefix.contradiction) {
      FoldIn(prefix, c);
    }
  }
  return true;
}

const Expr* ConstraintPreprocessor::Apply(const PathPrefix& prefix, const Expr* e) {
  if (prefix.bound.Empty() || !e->Support().Intersects(prefix.bound)) {
    return e;
  }
  return ctx_.Substitute(e, prefix.binding, prefix.bound);
}

UInterval ConstraintPreprocessor::RangeOf(PathPrefix& prefix, const Expr* e) {
  // Consecutive rounds under unchanged facts (the overwhelmingly common
  // case: a branch asks about cond and then ¬cond over the same prefix)
  // share one memo generation, so the second walk stops at memoized
  // subtrees instead of re-deriving the whole DAG.
  if (prefix.interval_memo_generation == 0 ||
      prefix.interval_memo_generation != ctx_.interval_generation()) {
    ctx_.NewIntervalRound();
    prefix.interval_memo_generation = ctx_.interval_generation();
  }
  return ctx_.EvalIntervalRanges(e, prefix.range);
}

void ConstraintPreprocessor::FoldIn(PathPrefix& prefix, const Expr* c) {
  const Expr* substituted = Apply(prefix, c);
  if (substituted != c) {
    ++stats_.substitutions;
  }
  c = substituted;
  if (c->IsTrue()) {
    ++stats_.tautologies;
    return;
  }
  if (c->IsFalse()) {
    prefix.contradiction = true;
    ++stats_.contradictions;
    return;
  }
  // Implication check against the facts of *earlier* constraints only; a
  // constraint is never folded against facts extracted from itself, so every
  // drop is backed by constraints that stay in the set.
  UInterval bound = RangeOf(prefix, c);
  if (bound.hi == 0) {
    prefix.contradiction = true;
    ++stats_.contradictions;
    return;
  }
  if (bound.lo >= 1) {
    ++stats_.tautologies;
    return;
  }
  if (ExtractBinding(prefix, c)) {
    if (!prefix.contradiction) {
      prefix.definitions.push_back(c);
      Resubstitute(prefix);
    }
    return;
  }
  prefix.simplified.push_back(c);
  ExtractRange(prefix, c);
}

bool ConstraintPreprocessor::ExtractBinding(PathPrefix& prefix, const Expr* c) {
  if (c->kind() != ExprKind::kEq || !c->b()->IsConstant()) {
    return false;
  }
  int sym = MatchSymbolByte(c->a());
  if (sym < 0) {
    return false;
  }
  uint64_t value = c->b()->constant_value();
  if (value > 255) {
    // A widened byte can never equal a value outside [0, 255].
    prefix.contradiction = true;
    ++stats_.contradictions;
    return true;
  }
  unsigned index = static_cast<unsigned>(sym);
  if (prefix.bound.Contains(index)) {
    // Already bound: Apply() folded conflicting or duplicate equalities to
    // constants before this point, so this cannot be reached with a live
    // binding. Treat defensively as "not a new binding".
    return false;
  }
  if (prefix.binding.size() <= index) {
    prefix.binding.resize(index + 1, -1);
  }
  prefix.binding[index] = static_cast<int16_t>(value);
  prefix.bound.Add(index);
  if (prefix.range.size() <= index) {
    prefix.range.resize(index + 1, UInterval{0, 255});
  }
  prefix.range[index] = UInterval{value, value};
  prefix.interval_memo_generation = 0;  // facts changed: invalidate memo round
  ++stats_.bindings;
  return true;
}

void ConstraintPreprocessor::ExtractRange(PathPrefix& prefix, const Expr* c) {
  bool strict;
  switch (c->kind()) {
    case ExprKind::kUlt:
      strict = true;
      break;
    case ExprKind::kUle:
      strict = false;
      break;
    default:
      return;
  }
  int sym;
  uint64_t new_lo = 0;
  uint64_t new_hi = 255;
  if (c->b()->IsConstant() && (sym = MatchSymbolByte(c->a())) >= 0) {
    // s < v  =>  s <= v - 1. FoldIn's contradiction check already rejected
    // v == 0 (the interval of `s < 0` is {0, 0}).
    uint64_t value = c->b()->constant_value();
    new_hi = std::min<uint64_t>(strict ? value - 1 : value, 255);
  } else if (c->a()->IsConstant() && (sym = MatchSymbolByte(c->b())) >= 0) {
    // v < s  =>  v + 1 <= s; v >= 255 was likewise already refuted.
    uint64_t value = c->a()->constant_value();
    new_lo = std::min<uint64_t>(strict ? value + 1 : value, 255);
  } else if (c->b()->IsConstant() && c->a()->kind() == ExprKind::kSub &&
             c->a()->b()->IsConstant() && (sym = MatchSymbolByte(c->a()->a())) >= 0) {
    // Fused range check, the branch-free ctype idiom `(s - base) u< span`
    // (vlibc's isdigit and the digit loops it feeds). At the subtraction's
    // width w, values of s below `base` wrap to at least 2^w - base, so the
    // two-sided reading  base <= s <= base + span(-1)  is sound exactly when
    // that wrap floor clears `span`; otherwise small s could satisfy the
    // check through the wraparound and no byte range is implied.
    const uint64_t base = c->a()->b()->constant_value();
    const uint64_t span = c->b()->constant_value();
    const unsigned w = c->a()->width();
    const uint64_t wrap_min = w >= 64 ? (uint64_t{0} - base) : ((uint64_t{1} << w) - base);
    if (base > 255 || (base > 0 && wrap_min <= span)) {
      return;
    }
    if (strict && span == 0) {
      prefix.contradiction = true;  // (s - base) u< 0 admits nothing
      ++stats_.contradictions;
      return;
    }
    new_lo = base;
    new_hi = std::min<uint64_t>(base + (strict ? span - 1 : span), 255);
  } else {
    return;
  }
  unsigned index = static_cast<unsigned>(sym);
  if (prefix.range.size() <= index) {
    prefix.range.resize(index + 1, UInterval{0, 255});
  }
  UInterval& range = prefix.range[index];
  const UInterval before = range;
  range.hi = std::min(range.hi, new_hi);
  range.lo = std::max(range.lo, new_lo);
  if (range.lo != before.lo || range.hi != before.hi) {
    prefix.interval_memo_generation = 0;  // facts changed: invalidate memo round
  }
  if (range.lo > range.hi) {
    // Cannot happen after the implication check, but soundness first.
    prefix.contradiction = true;
    ++stats_.contradictions;
  }
}

void ConstraintPreprocessor::Resubstitute(PathPrefix& prefix) {
  bool again = true;
  while (again && !prefix.contradiction) {
    again = false;
    std::vector<const Expr*> kept;
    kept.reserve(prefix.simplified.size());
    for (const Expr* cur : prefix.simplified) {
      const Expr* next = Apply(prefix, cur);
      if (next != cur) {
        ++stats_.substitutions;
      }
      if (next->IsTrue()) {
        ++stats_.tautologies;
        continue;
      }
      if (next->IsFalse()) {
        prefix.contradiction = true;
        ++stats_.contradictions;
        break;
      }
      if (next != cur && ExtractBinding(prefix, next)) {
        if (prefix.contradiction) {
          break;
        }
        prefix.definitions.push_back(next);
        again = true;  // the new binding may fold constraints kept earlier
        continue;
      }
      if (next != cur) {
        ExtractRange(prefix, next);
        if (prefix.contradiction) {
          break;
        }
      }
      kept.push_back(next);
    }
    if (!prefix.contradiction) {
      prefix.simplified = std::move(kept);
    }
  }
}

}  // namespace overify
