#include "src/symex/executor.h"

#include "src/sched/worker_pool.h"

namespace overify {

const char* StopCauseName(StopCause cause) {
  switch (cause) {
    case StopCause::kNone:
      return "none";
    case StopCause::kPaths:
      return "max_paths";
    case StopCause::kInstructions:
      return "max_instructions";
    case StopCause::kForks:
      return "max_forks";
    case StopCause::kLiveStates:
      return "max_live_states";
    case StopCause::kDeadline:
      return "max_seconds";
    case StopCause::kWorkerDeath:
      return "worker-death";
  }
  return "?";
}

const char* BugKindName(BugKind kind) {
  switch (kind) {
    case BugKind::kDivByZero:
      return "division by zero";
    case BugKind::kOutOfBounds:
      return "out-of-bounds memory access";
    case BugKind::kNullDeref:
      return "null pointer dereference";
    case BugKind::kCheckFailed:
      return "check failed";
    case BugKind::kOverflow:
      return "arithmetic overflow";
    case BugKind::kUnreachable:
      return "unreachable executed";
    case BugKind::kAbort:
      return "abort called";
    case BugKind::kEngineError:
      return "engine error";
  }
  return "?";
}

SymbolicExecutor::SymbolicExecutor(Module& module, SymexOptions options)
    : module_(module), options_(options) {}

SymbolicExecutor::~SymbolicExecutor() = default;

SymexResult SymbolicExecutor::Run(Function* entry, unsigned num_input_bytes,
                                  const SymexLimits& limits) {
  sched::WorkerPool pool(module_, options_);
  return pool.Run(entry, num_input_bytes, limits);
}

SymexResult SymbolicExecutor::Run(const std::string& entry_name, unsigned num_input_bytes,
                                  const SymexLimits& limits) {
  Function* entry = module_.GetFunction(entry_name);
  if (entry == nullptr || entry->IsDeclaration()) {
    SymexResult result;
    result.ok = false;
    result.error = "entry function '" + entry_name + "' is missing or has no body";
    return result;
  }
  return Run(entry, num_input_bytes, limits);
}

}  // namespace overify
