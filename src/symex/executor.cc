#include "src/symex/executor.h"

#include "src/sched/worker_pool.h"
#include "src/support/assert.h"

namespace overify {

void SymexResult::FinalizeFromMetrics() {
  const MetricsShard& m = metrics;
  paths_completed = m.Get(Counter::kPathsCompleted);
  paths_infeasible = m.Get(Counter::kPathsInfeasible);
  paths_bug = m.Get(Counter::kPathsBug);
  paths_limit = m.Get(Counter::kPathsLimit);
  paths_unexplored = m.Get(Counter::kPathsUnexplored);
  paths_unknown = m.Get(Counter::kPathsUnknown);
  paths_unknown_budget = m.Get(Counter::kPathsUnknownBudget);
  paths_unknown_deadline = m.Get(Counter::kPathsUnknownDeadline);
  paths_unknown_injected = m.Get(Counter::kPathsUnknownInjected);
  instructions = m.Get(Counter::kInstructions);
  forks = m.Get(Counter::kForks);
  annotation_hits = m.Get(Counter::kAnnotationHits);
  steals = m.Get(Counter::kSteals);
  steal_batches = m.Get(Counter::kStealBatches);
  steal_reintern = m.Get(Counter::kStealReintern);
  faults.solver_unknown = m.Get(Counter::kFaultSolverUnknown);
  faults.cache_lookup = m.Get(Counter::kFaultCacheLookup);
  faults.steal_batch = m.Get(Counter::kFaultStealBatch);
  faults.worker_stalls = m.Get(Counter::kFaultWorkerStalls);
  faults.worker_deaths = m.Get(Counter::kFaultWorkerDeaths);
  faults.draws = m.Get(Counter::kFaultDraws);
  solver.queries = m.Get(Counter::kSolverQueries);
  solver.cache_hits = m.Get(Counter::kSolverCacheHits);
  solver.reuse_hits = m.Get(Counter::kSolverReuseHits);
  solver.core_queries = m.Get(Counter::kSolverCoreQueries);
  solver.core_candidates = m.Get(Counter::kSolverCoreCandidates);
  solver.independence_drops = m.Get(Counter::kSolverIndependenceDrops);
  solver.eval_memo_hits = m.Get(Counter::kSolverEvalMemoHits);
  solver.interval_memo_hits = m.Get(Counter::kSolverIntervalMemoHits);
  solver.cex_evictions = m.Get(Counter::kSolverCexEvictions);
  solver.preprocess_bindings = m.Get(Counter::kPreprocessBindings);
  solver.preprocess_substitutions = m.Get(Counter::kPreprocessSubstitutions);
  solver.preprocess_tautologies = m.Get(Counter::kPreprocessTautologies);
  solver.preprocess_contradictions = m.Get(Counter::kPreprocessContradictions);
  solver.presolve_shortcuts = m.Get(Counter::kPresolveShortcuts);
  solver.prefix_subset_hits = m.Get(Counter::kPrefixSubsetHits);
  solver.prefix_superset_hits = m.Get(Counter::kPrefixSupersetHits);
  solver.prefix_model_hits = m.Get(Counter::kPrefixModelHits);
  solver.unknown_budget = m.Get(Counter::kSolverUnknownBudget);
  solver.unknown_deadline = m.Get(Counter::kSolverUnknownDeadline);
  solver.unknown_cancelled = m.Get(Counter::kSolverUnknownCancelled);
  solver.unknown_injected = m.Get(Counter::kSolverUnknownInjected);

  // The accounting invariants, asserted in this one place for every run
  // (docs/robustness.md): each unknown path carries exactly one cause, and
  // paths_terminated is exactly the sum of its per-cause components.
  OVERIFY_ASSERT(paths_unknown == paths_unknown_budget + paths_unknown_deadline +
                                      paths_unknown_injected,
                 "every unknown path must be attributed to exactly one cause");
  paths_terminated =
      paths_infeasible + paths_bug + paths_limit + paths_unexplored + paths_unknown;
  OVERIFY_ASSERT(paths_terminated >= paths_unknown,
                 "terminated-cause accounting must cover the unknown paths");
}

const char* StopCauseName(StopCause cause) {
  switch (cause) {
    case StopCause::kNone:
      return "none";
    case StopCause::kPaths:
      return "max_paths";
    case StopCause::kInstructions:
      return "max_instructions";
    case StopCause::kForks:
      return "max_forks";
    case StopCause::kLiveStates:
      return "max_live_states";
    case StopCause::kDeadline:
      return "max_seconds";
    case StopCause::kWorkerDeath:
      return "worker-death";
  }
  return "?";
}

const char* BugKindName(BugKind kind) {
  switch (kind) {
    case BugKind::kDivByZero:
      return "division by zero";
    case BugKind::kOutOfBounds:
      return "out-of-bounds memory access";
    case BugKind::kNullDeref:
      return "null pointer dereference";
    case BugKind::kCheckFailed:
      return "check failed";
    case BugKind::kOverflow:
      return "arithmetic overflow";
    case BugKind::kUnreachable:
      return "unreachable executed";
    case BugKind::kAbort:
      return "abort called";
    case BugKind::kEngineError:
      return "engine error";
  }
  return "?";
}

SymbolicExecutor::SymbolicExecutor(Module& module, SymexOptions options)
    : module_(module), options_(options) {}

SymbolicExecutor::~SymbolicExecutor() = default;

SymexResult SymbolicExecutor::Run(Function* entry, unsigned num_input_bytes,
                                  const SymexLimits& limits) {
  sched::WorkerPool pool(module_, options_);
  return pool.Run(entry, num_input_bytes, limits);
}

SymexResult SymbolicExecutor::Run(const std::string& entry_name, unsigned num_input_bytes,
                                  const SymexLimits& limits) {
  Function* entry = module_.GetFunction(entry_name);
  if (entry == nullptr || entry->IsDeclaration()) {
    SymexResult result;
    result.ok = false;
    result.error = "entry function '" + entry_name + "' is missing or has no body";
    return result;
  }
  return Run(entry, num_input_bytes, limits);
}

}  // namespace overify
